#!/bin/sh
# Golden-output check for the static analysis.
#
# Runs `acq lint --json` over every query in examples/queries/*.acq and
# `experiments --lint-families` over the experiment query families, and
# diffs the output against the checked-in goldens in
# examples/queries/expected/. Any behaviour change in the analyser —
# a new code, a reworded message, a reordered field — shows up as a
# diff here and must be reviewed with the change that caused it.
#
# Usage: scripts/lint_queries.sh [--update]
#   --update  regenerate the goldens instead of diffing.
set -eu

cd "$(dirname "$0")/.."

update=0
[ "${1:-}" = "--update" ] && update=1

dune build bin/acq.exe bin/experiments.exe 2>/dev/null

ACQ=_build/default/bin/acq.exe
EXPERIMENTS=_build/default/bin/experiments.exe
CORPUS=examples/queries
EXPECTED=$CORPUS/expected
mkdir -p "$EXPECTED"

fail=0

check() {
  name=$1
  golden=$2
  actual=$3
  if [ "$update" -eq 1 ]; then
    cp "$actual" "$golden"
    echo "updated $golden"
  elif [ ! -f "$golden" ]; then
    echo "lint-queries: missing golden $golden (run with --update)" >&2
    fail=1
  elif ! diff -u "$golden" "$actual" >&2; then
    echo "lint-queries: $name drifted from $golden" >&2
    fail=1
  fi
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for f in "$CORPUS"/*.acq; do
  name=$(basename "$f" .acq)
  # lint exits 1 on Error-severity diagnostics (e.g. the always_empty
  # query): that is expected corpus content, not a driver failure.
  status=0
  "$ACQ" lint --json -q "$(cat "$f")" > "$tmp/$name.json" || status=$?
  if [ "$status" -gt 1 ]; then
    echo "lint-queries: acq lint crashed on $f (exit $status)" >&2
    fail=1
    continue
  fi
  check "$name" "$EXPECTED/$name.json" "$tmp/$name.json"
done

"$EXPERIMENTS" --lint-families > "$tmp/families.txt"
check "families" "$EXPECTED/families.txt" "$tmp/families.txt"

if [ "$fail" -ne 0 ]; then
  echo "lint-queries: FAILED" >&2
  exit 1
fi
[ "$update" -eq 1 ] || echo "lint-queries: clean"
