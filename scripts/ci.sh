#!/bin/sh
# CI entry point: build everything, run the full test suite, then the
# parallel determinism sweep (jobs 1/2/4 must agree bit-for-bit).
#
# Usage: scripts/ci.sh [--with-bench]
#   --with-bench  also run the jobs sweep and leave BENCH_parallel.json
#                 in the repository root (slow: ~2 min on one core).
set -eu

cd "$(dirname "$0")/.."

echo "== source lint"
scripts/lint.sh

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== query-analysis goldens"
scripts/lint_queries.sh

echo "== daemon smoke (acqd boot, cache hit, graceful SIGTERM)"
scripts/smoke_server.sh

echo "== chaos soak (wire faults, kill -9 recovery, deadline shed)"
scripts/smoke_server.sh --chaos

echo "== live mutation smoke (insert/delete, exactly-once, journal recovery)"
scripts/smoke_server.sh --live

echo "== fleet smoke (2 workers + router, worker loss degrades, restart heals)"
scripts/smoke_server.sh --fleet

if [ "${1:-}" = "--with-bench" ]; then
  echo "== parallel jobs sweep (BENCH_parallel.json)"
  dune exec bench/main.exe -- --parallel
  echo "== server bench (BENCH_server.json)"
  dune exec bench/main.exe -- --server
  echo "== observability overhead (BENCH_obs.json, metrics p50 within 5%)"
  dune exec bench/main.exe -- --obs
  echo "== retry-layer overhead (BENCH_chaos.json, durable p50 within 5%)"
  dune exec bench/main.exe -- --chaos
  echo "== join kernels vs trie oracle (BENCH_join.json, kernels must win end-to-end)"
  dune exec bench/main.exe -- --join
  echo "== costed vs static chain (BENCH_cost.json, costed never slower beyond slack)"
  dune exec bench/main.exe -- --cost
  echo "== live main+delta storage (BENCH_live.json, post-merge cold p50 within 10% of rebuilt)"
  dune exec bench/main.exe -- --live
  echo "== sharded fleet scaling (BENCH_fleet.json, 2 workers >= 1.4x on multi-core)"
  dune exec bench/main.exe -- --fleet
fi

echo "== CI green"
