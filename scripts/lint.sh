#!/bin/sh
# Source lint: repository-wide invariants that the compiler cannot check.
# Run from anywhere; exits non-zero with one line per violation.
#
#   1. Entropy discipline — all seeding goes through Ac_runtime.Entropy:
#      no Random.self_init anywhere, no bare Random.<fn> (anything but
#      Random.State) in lib/ outside lib/runtime/entropy.ml. A stray
#      global-RNG call would silently break replayability.
#   2. Library purity — lib/ never writes to stdout (Printf.printf,
#      print_endline, print_string) and never calls exit: rendering and
#      process control belong to bin/.
#   3. Interface discipline — every lib/**/*.ml has a matching .mli.
#   4. Budget discipline — hot-loop files (lib/core, lib/dlm,
#      lib/automata, lib/join, lib/hom) that contain a while loop must
#      reference Budget.tick/Budget.check, or a runaway loop would be
#      invisible to the cooperative-cancellation governor.
#   5. Batch discipline — the vectorized join path must stay vectorized:
#      no tuple-at-a-time Relation.iter/fold/to_list in the hot-loop
#      modules (lib/join/generic_join.ml, lib/kernels/*). Indexes are
#      built from sealed columns via Relation.projection; the trie
#      reference path (lib/join/trie.ml) is the one deliberate
#      exception and lives in its own file.
#   6. Domain safety — shared-memory primitives (Atomic, Mutex, Domain,
#      Condition) appear only in the allowlisted modules that were
#      designed (and reviewed) for multi-domain use. A Mutex creeping
#      into, say, the analysis layer would mean planner state escaped
#      into shared memory — pure layers must stay pure so the engine's
#      determinism argument (per-trial streams, index-order reduce)
#      keeps holding.
set -u

cd "$(dirname "$0")/.."

fail=0
complain() {
  echo "lint: $1" >&2
  fail=1
}

# --- 1. entropy discipline -------------------------------------------------
if grep -rn "Random\.self_init" --include="*.ml" lib bin test examples bench 2>/dev/null; then
  complain "Random.self_init is forbidden: draw seeds from Ac_runtime.Entropy"
fi
bare_random=$(grep -rn "Random\." --include="*.ml" lib 2>/dev/null \
  | grep -v "Random\.State" \
  | grep -v "^lib/runtime/entropy\.ml:" || true)
if [ -n "$bare_random" ]; then
  echo "$bare_random" >&2
  complain "bare Random.* in lib/ (only Random.State and lib/runtime/entropy.ml may touch the global RNG)"
fi

# --- 2. library purity -----------------------------------------------------
stdout_writes=$(grep -rnw "Printf\.printf\|print_endline\|print_string\|print_newline" \
  --include="*.ml" lib 2>/dev/null || true)
if [ -n "$stdout_writes" ]; then
  echo "$stdout_writes" >&2
  complain "stdout writes in lib/ (render through Format/fmt; printing belongs to bin/)"
fi
exits=$(grep -rn "[^_a-zA-Z.]exit [0-9(]" --include="*.ml" lib 2>/dev/null || true)
if [ -n "$exits" ]; then
  echo "$exits" >&2
  complain "exit in lib/ (raise a typed Ac_runtime.Error instead; exiting belongs to bin/)"
fi

# --- 3. interface discipline -----------------------------------------------
for f in $(find lib -name "*.ml" | sort); do
  if [ ! -f "${f%.ml}.mli" ]; then
    complain "$f has no interface: add ${f%.ml}.mli"
  fi
done

# --- 4. budget discipline --------------------------------------------------
for f in $(grep -rl "while " --include="*.ml" \
    lib/core lib/dlm lib/automata lib/join lib/hom 2>/dev/null | sort); do
  if ! grep -q "Budget\.tick\|Budget\.check" "$f"; then
    complain "$f has a while loop but never polls Budget.tick/Budget.check"
  fi
done

# --- 5. batch discipline ---------------------------------------------------
tuple_at_a_time=$(grep -rn "Relation\.iter\|Relation\.fold\|Relation\.to_list" \
  lib/join/generic_join.ml lib/kernels 2>/dev/null || true)
if [ -n "$tuple_at_a_time" ]; then
  echo "$tuple_at_a_time" >&2
  complain "tuple-at-a-time Relation.iter/fold/to_list in a vectorized hot-loop module (read sealed columns via Relation.projection / Ac_kernels instead)"
fi

# --- 6. domain safety --------------------------------------------------------
# Allowlist of lib/ modules that may touch shared-memory primitives.
# Extending it is a review decision: add the file here in the same PR
# that introduces the primitive, with the reasoning in the commit.
domain_allowlist="
lib/automata/ltree.ml
lib/automata/tree_automaton.ml
lib/core/colour_oracle.ml
lib/exec/engine.ml
lib/exec/pool.ml
lib/hom/hom.ml
lib/join/generic_join.ml
lib/live/live.ml
lib/obs/metrics.ml
lib/obs/trace.ml
lib/relational/relation.ml
lib/runtime/chaos.ml
lib/server/cache.ml
lib/server/catalog.ml
lib/server/chaos_proxy.ml
lib/server/inflight.ml
lib/server/router.ml
lib/server/scheduler.ml
lib/server/server.ml
"
domain_users=$(grep -rlE '\b(Atomic\.|Mutex\.|Domain\.|Condition\.)' \
  --include="*.ml" lib 2>/dev/null | sort || true)
for f in $domain_users; do
  if ! echo "$domain_allowlist" | grep -qx "$f"; then
    complain "$f uses Atomic/Mutex/Domain/Condition but is not on the domain-safety allowlist (scripts/lint.sh)"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: clean"
