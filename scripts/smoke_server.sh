#!/bin/sh
# Daemon smoke test: boot acqd on a temporary Unix socket, serve three
# client requests (the third must be a result-cache hit doing zero
# estimation work), send SIGTERM and assert a clean drain (exit 0).
#
# With --fleet, instead boots a sharded fleet (two workers plus a
# router that cuts the database over hash:0 and ships the shards via
# LOAD), asserts scatter-gather answers are bit-reproducible, kills one
# worker (a typed degraded answer, exit 3, never a hang), restarts it
# and asserts the router re-seeds it transparently — the healthy
# estimate replays bit-for-bit.
#
# With --chaos, instead runs the fault-tolerance suite: the seeded
# wire-chaos soak (every answer bit-identical under injected frame
# faults), then a kill -9 crash with manifest recovery (the restarted
# daemon must refuse the stale socket without --force, recover the
# catalog, report recovered=true on HEALTH, and replay the pre-crash
# estimate bit-for-bit via --hex), and a deadline_ms=0 shed (exit 18).
#
# Runs the installed build products directly — not through `dune exec` —
# so the signal reaches the daemon itself.
set -eu

cd "$(dirname "$0")/.."

ACQ=_build/default/bin/acq.exe
ACQD=_build/default/bin/acqd.exe
[ -x "$ACQ" ] && [ -x "$ACQD" ] || { echo "smoke_server: build first (dune build)"; exit 1; }

if [ "${1:-}" = "--fleet" ]; then
  workdir=$(mktemp -d)
  w0="$workdir/w0.sock"
  w1="$workdir/w1.sock"
  rsock="$workdir/router.sock"
  db="$workdir/facts.txt"
  w0pid=""; w1pid=""; rpid=""
  trap 'kill $w0pid $w1pid $rpid 2>/dev/null || true; rm -rf "$workdir"' EXIT

  "$ACQ" generate --kind graph --size 40 --out "$db" >/dev/null

  wait_ping() {
    i=0
    until "$ACQ" ping --connect "$1" >/dev/null 2>&1; do
      i=$((i + 1))
      [ $i -lt 100 ] || { echo "smoke_server: $2 never answered on $1"; exit 1; }
      sleep 0.1
    done
  }

  # workers boot empty: the router ships their shards over LOAD
  "$ACQD" --socket "$w0" &
  w0pid=$!
  "$ACQD" --socket "$w1" &
  w1pid=$!
  wait_ping "$w0" "worker 0"
  wait_ping "$w1" "worker 1"

  # the router refuses to bind unless it can seed the whole fleet
  "$ACQD" --socket "$rsock" --load g="$db" --result-cache 0 \
    --worker unix:"$w0" --worker unix:"$w1" --partition hash:0 &
  rpid=$!
  wait_ping "$rsock" "router"

  # shardable on column 0: x anchors every E atom
  query='ans(x,y,z) :- E(x,y), E(x,z), y != z'

  echo "fleet: scatter-gather COUNT is bit-reproducible (result cache off)"
  est1=$("$ACQ" count --connect "$rsock" --use g -q "$query" --seed 11 --hex)
  est2=$("$ACQ" count --connect "$rsock" --use g -q "$query" --seed 11 --hex)
  [ "$est1" = "$est2" ] || { echo "smoke_server: scattered estimate not reproducible: $est1 vs $est2"; exit 1; }

  "$ACQ" stats --connect "$rsock" --metrics --prometheus | grep -q '^acq_fleet_scatter_total [1-9]' \
    || { echo "smoke_server: acq_fleet_scatter_total missing or zero"; exit 1; }
  "$ACQ" stats --connect "$rsock" --metrics --prometheus | grep -q '^acq_fleet_workers 2' \
    || { echo "smoke_server: acq_fleet_workers does not say 2"; exit 1; }

  echo "fleet: cross-shard query falls back to local execution"
  "$ACQ" count --connect "$rsock" --use g -q 'ans(x,y) :- E(x,y), E(y,z), x != z' --seed 11 >/dev/null \
    || { echo "smoke_server: cross-shard fallback failed"; exit 1; }
  "$ACQ" stats --connect "$rsock" --metrics --prometheus | grep -q '^acq_fleet_fallback_total{reason="cross_shard"} [1-9]' \
    || { echo "smoke_server: cross-shard fallback not counted"; exit 1; }

  echo "fleet: kill one worker — typed degradation (exit 3), no hang"
  kill -9 "$w1pid"
  wait "$w1pid" 2>/dev/null || true
  status=0
  timeout 30 "$ACQ" count --connect "$rsock" --use g -q "$query" --seed 11 >/dev/null 2>&1 || status=$?
  [ "$status" -eq 3 ] || { echo "smoke_server: one dead worker exited $status, wanted 3 (degraded)"; exit 1; }

  echo "fleet: restart the worker — the router re-seeds it over LOAD"
  "$ACQD" --socket "$w1" --force &
  w1pid=$!
  wait_ping "$w1" "restarted worker 1"
  est3=$("$ACQ" count --connect "$rsock" --use g -q "$query" --seed 11 --hex)
  [ "$est1" = "$est3" ] || { echo "smoke_server: healed fleet drifted: $est1 vs $est3"; exit 1; }

  for p in "$rpid" "$w0pid" "$w1pid"; do
    kill -TERM "$p"
    status=0
    wait "$p" || status=$?
    [ "$status" -eq 0 ] || { echo "smoke_server: pid $p exited $status after SIGTERM"; exit 1; }
  done

  echo "smoke_server: fleet ok (scatter reproducible at $est1, degraded on worker loss, healed by re-push)"
  exit 0
fi

if [ "${1:-}" = "--chaos" ]; then
  CHAOS=_build/default/test/chaos/chaos_wire_main.exe
  [ -x "$CHAOS" ] || { echo "smoke_server: build first (dune build)"; exit 1; }

  echo "chaos: wire-fault soak (seeded, bit-identical answers)"
  "$CHAOS" >/dev/null

  workdir=$(mktemp -d)
  sock="$workdir/acqd.sock"
  db="$workdir/facts.txt"
  manifest="$workdir/catalog.manifest"
  trap 'rm -rf "$workdir"' EXIT

  "$ACQ" generate --kind graph --size 24 --out "$db" >/dev/null

  "$ACQD" --socket "$sock" --load g="$db" --manifest "$manifest" &
  pid=$!
  i=0
  until "$ACQ" ping --connect "$sock" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -lt 50 ] || { echo "smoke_server: daemon never answered"; kill "$pid" 2>/dev/null; exit 1; }
    sleep 0.1
  done

  query='ans(x,y) :- E(x,y), x != y'
  est1=$("$ACQ" count --connect "$sock" --use g -q "$query" --seed 11 --hex)
  grep -q '"fingerprint"' "$manifest" || { echo "smoke_server: manifest has no fingerprints"; exit 1; }

  echo "chaos: kill -9, stale socket, manifest recovery"
  kill -9 "$pid"
  wait "$pid" 2>/dev/null || true
  [ -e "$sock" ] || { echo "smoke_server: kill -9 should leave the socket file behind"; exit 1; }

  # without --force the stale socket is a typed refusal (Io, exit 11)
  status=0
  timeout 10 "$ACQD" --socket "$sock" --manifest "$manifest" >/dev/null 2>&1 || status=$?
  [ "$status" -eq 11 ] || { echo "smoke_server: stale socket not refused (exit $status, wanted 11)"; exit 1; }

  "$ACQD" --socket "$sock" --manifest "$manifest" --force &
  pid=$!
  i=0
  until "$ACQ" ping --connect "$sock" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -lt 50 ] || { echo "smoke_server: recovered daemon never answered"; kill "$pid" 2>/dev/null; exit 1; }
    sleep 0.1
  done

  "$ACQ" health --connect "$sock" | grep -q '"recovered": true' \
    || { echo "smoke_server: HEALTH does not report recovered=true"; exit 1; }

  est2=$("$ACQ" count --connect "$sock" --use g -q "$query" --seed 11 --hex)
  [ "$est1" = "$est2" ] || { echo "smoke_server: estimate changed across crash: $est1 vs $est2"; exit 1; }

  # a request whose deadline already passed is shed at admission
  status=0
  "$ACQ" count --connect "$sock" --use g -q "$query" --seed 11 --deadline-ms 0 >/dev/null 2>&1 || status=$?
  [ "$status" -eq 18 ] || { echo "smoke_server: deadline_ms=0 exited $status, wanted 18"; exit 1; }

  kill -TERM "$pid"
  status=0
  wait "$pid" || status=$?
  [ "$status" -eq 0 ] || { echo "smoke_server: recovered daemon exited $status after SIGTERM"; exit 1; }

  echo "smoke_server: chaos ok (soak bit-identical, crash recovery replayed $est1)"
  exit 0
fi

if [ "${1:-}" = "--live" ]; then
  workdir=$(mktemp -d)
  sock="$workdir/acqd.sock"
  db="$workdir/facts.txt"
  manifest="$workdir/catalog.manifest"
  trap 'rm -rf "$workdir"' EXIT

  # every expected fingerprint below is captured from a response, never
  # hardcoded — the same assertions hold whatever the generated
  # database's content fingerprint is, mutated or not
  json_field() { sed -n "s/.*\"$1\": \"\([^\"]*\)\".*/\1/p"; }
  json_int() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p"; }

  "$ACQ" generate --kind graph --size 24 --out "$db" >/dev/null

  "$ACQD" --socket "$sock" --load g="$db" --manifest "$manifest" &
  pid=$!
  i=0
  until "$ACQ" ping --connect "$sock" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -lt 50 ] || { echo "smoke_server: daemon never answered"; kill "$pid" 2>/dev/null; exit 1; }
    sleep 0.1
  done

  query='ans(x,y) :- E(x,y), x != y'
  est0=$("$ACQ" count --connect "$sock" --use g -q "$query" --seed 11 --hex)
  fp0=$("$ACQ" stats --connect "$sock" | grep -A4 '"name": "g"' | json_field fingerprint)

  echo "live: INSERT bumps the version and rolls the fingerprint"
  out1=$("$ACQ" insert --connect "$sock" --use g --rel E --batch-id smoke-b1 23,22 22,23)
  v1=$(echo "$out1" | json_int version)
  fp1=$(echo "$out1" | json_field fingerprint)
  [ "$v1" = "1" ] || { echo "smoke_server: INSERT version $v1, wanted 1"; exit 1; }
  [ -n "$fp1" ] && [ "$fp1" != "$fp0" ] || { echo "smoke_server: fingerprint did not roll ($fp0 -> $fp1)"; exit 1; }
  echo "$out1" | grep -q '"replayed": false' || { echo "smoke_server: fresh batch marked replayed"; exit 1; }

  echo "live: the same batch id replays instead of re-applying"
  out2=$("$ACQ" insert --connect "$sock" --use g --rel E --batch-id smoke-b1 23,22 22,23)
  echo "$out2" | grep -q '"replayed": true' || { echo "smoke_server: retried batch not replayed"; exit 1; }
  [ "$(echo "$out2" | json_int version)" = "$v1" ] || { echo "smoke_server: replay bumped the version"; exit 1; }
  [ "$(echo "$out2" | json_field fingerprint)" = "$fp1" ] || { echo "smoke_server: replay changed the fingerprint"; exit 1; }

  echo "live: LOAD_BATCH from stdin (mixed ops, atomic)"
  batch='{"op":"insert","rel":"E","tuple":[21,20]}
{"op":"delete","rel":"E","tuple":[23,22]}'
  out3=$(printf '%s\n' "$batch" | "$ACQ" load-batch --connect "$sock" --use g --file - --batch-id smoke-b2)
  v3=$(echo "$out3" | json_int version)
  fp3=$(echo "$out3" | json_field fingerprint)
  [ "$v3" = "2" ] || { echo "smoke_server: LOAD_BATCH version $v3, wanted 2"; exit 1; }

  est_mutated=$("$ACQ" count --connect "$sock" --use g -q "$query" --seed 11 --hex)

  echo "live: kill -9, journal recovery, bit-identical replay"
  kill -9 "$pid"
  wait "$pid" 2>/dev/null || true

  "$ACQD" --socket "$sock" --manifest "$manifest" --force &
  pid=$!
  i=0
  until "$ACQ" ping --connect "$sock" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -lt 50 ] || { echo "smoke_server: recovered daemon never answered"; kill "$pid" 2>/dev/null; exit 1; }
    sleep 0.1
  done

  "$ACQ" health --connect "$sock" | grep -q '"recovered": true' \
    || { echo "smoke_server: HEALTH does not report recovered=true"; exit 1; }

  est_recovered=$("$ACQ" count --connect "$sock" --use g -q "$query" --seed 11 --hex)
  [ "$est_mutated" = "$est_recovered" ] \
    || { echo "smoke_server: mutated estimate changed across crash: $est_mutated vs $est_recovered"; exit 1; }

  # the recovered chain is exactly the pre-crash one: retrying the last
  # batch must replay at the captured version and fingerprint
  out4=$(printf '%s\n' "$batch" | "$ACQ" load-batch --connect "$sock" --use g --file - --batch-id smoke-b2)
  echo "$out4" | grep -q '"replayed": true' || { echo "smoke_server: pre-crash batch id forgotten after recovery"; exit 1; }
  [ "$(echo "$out4" | json_int version)" = "$v3" ] || { echo "smoke_server: recovered version drifted"; exit 1; }
  [ "$(echo "$out4" | json_field fingerprint)" = "$fp3" ] || { echo "smoke_server: recovered fingerprint drifted"; exit 1; }

  kill -TERM "$pid"
  status=0
  wait "$pid" || status=$?
  [ "$status" -eq 0 ] || { echo "smoke_server: daemon exited $status after SIGTERM"; exit 1; }

  echo "smoke_server: live ok (v$v3 @ $fp3 recovered from journal, $est_mutated replayed; baseline was $est0 @ $fp0)"
  exit 0
fi

workdir=$(mktemp -d)
sock="$workdir/acqd.sock"
db="$workdir/facts.txt"
trap 'rm -rf "$workdir"' EXIT

"$ACQ" generate --kind graph --size 24 --out "$db" >/dev/null

"$ACQD" --socket "$sock" --load g="$db" &
pid=$!

# wait for the socket to answer (the daemon binds before serving)
i=0
until "$ACQ" ping --connect "$sock" >/dev/null 2>&1; do
  i=$((i + 1))
  [ $i -lt 50 ] || { echo "smoke_server: daemon never answered"; kill "$pid" 2>/dev/null; exit 1; }
  sleep 0.1
done

query='ans(x,y) :- E(x,y), x != y'

# request 1: a seeded COUNT (cold: fills plan + result caches)
est1=$("$ACQ" count --connect "$sock" --use g -q "$query" --seed 11)
# request 2: a different seed (plan-hot)
"$ACQ" count --connect "$sock" --use g -q "$query" --seed 12 >/dev/null
# request 3: seed 11 again — must be a result-cache hit, bit-identical
est3=$("$ACQ" count --connect "$sock" --use g -q "$query" --seed 11)

[ "$est1" = "$est3" ] || { echo "smoke_server: replay mismatch: $est1 vs $est3"; exit 1; }

hits=$("$ACQ" stats --connect "$sock" | grep -A5 '"result_cache"' | grep '"hits"' | tr -dc '0-9')
[ "$hits" -ge 1 ] || { echo "smoke_server: expected a result-cache hit, counters say $hits"; exit 1; }

# the METRICS verb: the JSON snapshot must carry the request counters,
# and the Prometheus exposition must show a nonzero acq_requests_total
"$ACQ" stats --connect "$sock" --metrics | grep -q '"acq_requests_total"' \
  || { echo "smoke_server: METRICS (json) lacks acq_requests_total"; exit 1; }
requests=$("$ACQ" stats --connect "$sock" --metrics --prometheus \
  | grep '^acq_requests_total' | tr -s ' ' | cut -d' ' -f2 \
  | awk '{ s += $1 } END { print s }')
[ "${requests:-0}" -ge 3 ] || { echo "smoke_server: acq_requests_total says $requests, expected >= 3"; exit 1; }
"$ACQ" stats --connect "$sock" --metrics --prometheus | grep -q '^acq_cache_hits_total{cache="result"} [1-9]' \
  || { echo "smoke_server: expected a nonzero acq_cache_hits_total{cache=\"result\"}"; exit 1; }

# a traced COUNT returns the span summary alongside the estimate
trace="$workdir/trace.json"
"$ACQ" count --connect "$sock" --use g -q "$query" --seed 13 --trace "$trace" >/dev/null
grep -q '"aggs"' "$trace" || { echo "smoke_server: traced COUNT returned no span summary"; exit 1; }

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
[ "$status" -eq 0 ] || { echo "smoke_server: daemon exited $status after SIGTERM"; exit 1; }
[ ! -e "$sock" ] || { echo "smoke_server: socket not cleaned up"; exit 1; }

echo "smoke_server: ok (estimate $est1 replayed from cache, clean shutdown)"
