(* A2 — FPRAS sketch-quality ablation (DESIGN.md substitution 3).

   The ACJR engine's accuracy is governed by two knobs: the per-(node,
   state) sample-pool size and the Karp–Luby rounds per union estimate.
   On a fixed acyclic-join instance with known exact count, sweep both
   together (κ = rounds ∈ {4, 12, 48, 96}) and report the observed error
   over five seeds — the error should shrink roughly like 1/√κ, and the
   cost grow linearly. *)

module QF = Ac_workload.Query_families
module Dbgen = Ac_workload.Dbgen
module Fpras = Approxcount.Fpras
module Exact = Approxcount.Exact

let run fmt =
  let rng = Common.rng "a2" in
  let q = QF.acyclic_join () in
  let db =
    Dbgen.random_structure ~rng ~universe_size:25
      [ ("R", 2, 120); ("S", 2, 120); ("T", 2, 120) ]
  in
  let exact = float_of_int (Exact.by_join_projection q db) in
  let rows =
    List.map
      (fun kappa ->
        let errors, time =
          Common.time (fun () ->
              List.map
                (fun seed ->
                  let config =
                    {
                      Ac_automata.Acjr.sketch_size = kappa;
                      union_rounds = kappa;
                      rng = Random.State.make [| seed |];
                      budget = Ac_runtime.Budget.none;
                    }
                  in
                  let est = Fpras.approx_count ~config q db in
                  Common.rel_err ~estimate:est ~truth:exact)
                [ 1; 2; 3; 4; 5 ])
        in
        let mean = List.fold_left ( +. ) 0.0 errors /. 5.0 in
        let worst = List.fold_left Float.max 0.0 errors in
        [
          string_of_int kappa;
          Common.f1 exact;
          Common.f3 mean;
          Common.f3 worst;
          Common.f3 (time /. 5.0);
        ])
      [ 4; 12; 48; 96 ]
  in
  Common.table fmt
    ~title:"A2  ACJR sketch-quality ablation (pool size = union rounds = κ)"
    ~header:[ "kappa"; "exact"; "mean rel.err"; "worst rel.err"; "t/run(s)" ]
    rows

let experiment =
  {
    Common.id = "A2";
    claim = "Ablation: ACJR sketch size vs FPRAS accuracy and cost";
    queries = [ ("acyclic-join", QF.acyclic_join ()) ];
    run;
  }
