(* A1 — engine and budget ablations for the design choices DESIGN.md
   calls out (not a paper table; an implementation study).

   (a) Hom-engine ablation: the same DCQ instances counted with the
       tree-decomposition DP (Theorem 5's engine), the worst-case-optimal
       generic join (Theorem 13's stand-in) and the Direct
       disequality-aware join (no colour-coding, no width guarantee).
       All three must agree within tolerance; the costs differ.

   (b) Colour-budget ablation: the friends query with the colouring
       budget forced down — the base multiplier of the 4^{|Δ'|} schedule
       at 1 / 4 / 16 / 64 — showing how a starved budget turns into
       one-sided undercounting, which is exactly the failure mode the
       Lemma 22 budget is sized to avoid. *)

module QF = Ac_workload.Query_families
module Dbgen = Ac_workload.Dbgen
module Fptras = Approxcount.Fptras
module Exact = Approxcount.Exact
module Colour_oracle = Approxcount.Colour_oracle

let engines =
  [
    ("tree-dp", Colour_oracle.Tree_dp);
    ("generic", Colour_oracle.Generic);
    ("direct", Colour_oracle.Direct);
  ]

let run fmt =
  let rng = Common.rng "a1" in
  (* (a) engine ablation on two shapes *)
  let instances =
    [
      ( "friends n=150",
        QF.friends (),
        Dbgen.friends_database ~rng ~n:150 ~avg_degree:6.0 );
      ( "star-distinct n=100",
        QF.star_distinct 2,
        Dbgen.random_structure ~rng ~universe_size:100 [ ("E", 2, 400) ] );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, q, db) ->
        let exact = Exact.by_join_projection q db in
        List.map
          (fun (ename, engine) ->
            let r, t =
              Common.time (fun () ->
                  Fptras.approx_count
                    ~rng:(Random.State.make [| 5 |])
                    ~engine ~eps:0.3 ~delta:0.1 q db)
            in
            [
              name;
              ename;
              string_of_int exact;
              Common.f1 r.Fptras.estimate;
              Common.f3
                (Common.rel_err ~estimate:r.Fptras.estimate
                   ~truth:(float_of_int exact));
              string_of_int r.oracle_calls;
              string_of_int r.hom_calls;
              Common.f3 t;
            ])
          engines)
      instances
  in
  Common.table fmt
    ~title:"A1a  Hom-engine ablation (same instances, three engines)"
    ~header:
      [ "instance"; "engine"; "exact"; "estimate"; "rel.err"; "oracle"; "hom"; "t(s)" ]
    rows;
  (* (b) colour-budget ablation, with the witness pre-pass DISABLED so the
     raw Lemma 22 colouring is what decides ambiguous boxes *)
  let q = QF.friends () in
  let db = Dbgen.friends_database ~rng ~n:100 ~avg_degree:6.0 in
  let exact = Exact.by_join_projection q db in
  let rows_b =
    List.map
      (fun base ->
        let r, t =
          Common.time (fun () ->
              Fptras.approx_count
                ~rng:(Random.State.make [| 7 |])
                ~rounds:base ~probe_budget:0 ~eps:0.3 ~delta:0.1 q db)
        in
        [
          string_of_int base;
          string_of_int exact;
          Common.f1 r.Fptras.estimate;
          Common.f3
            (Common.rel_err ~estimate:r.Fptras.estimate ~truth:(float_of_int exact));
          string_of_int r.hom_calls;
          Common.f3 t;
        ])
      [ 1; 4; 16; 64 ]
  in
  Common.table fmt
    ~title:
      "A1b  Colour-budget ablation (pre-pass off; base multiplier of the 4^{|Δ'|} schedule)"
    ~header:[ "base"; "exact"; "estimate"; "rel.err"; "hom"; "t(s)" ]
    rows_b

let experiment =
  {
    Common.id = "A1";
    claim = "Ablations: Hom engines and the Lemma 22 colouring budget";
    queries =
      [ ("friends", QF.friends ()); ("star-distinct-2", QF.star_distinct 2) ];
    run;
  }
