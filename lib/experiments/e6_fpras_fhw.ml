(* E6 — Theorem 16: FPRAS for CQs of bounded fractional hypertreewidth,
   strictly beyond Arenas et al.'s bounded hypertreewidth (Theorem 38).

   Three CQ families: an acyclic join (hw = 1, covered by Theorem 38), a
   path query with quantified middles (hw = 1), and the fractional
   triangle (fhw = 1.5 < hw = 2 — the family Theorem 16 adds). For each,
   over growing databases: exact count, the tree-automaton FPRAS estimate,
   relative error, automaton size, and the estimate from the Theorem 5
   FPTRAS on the same instance for comparison (CQs have no disequalities,
   so its oracle is colour-free). *)

module QF = Ac_workload.Query_families
module Dbgen = Ac_workload.Dbgen
module Fpras = Approxcount.Fpras
module Fptras = Approxcount.Fptras
module Exact = Approxcount.Exact

let families rng n =
  [
    ( "acyclic-join (hw 1)",
      QF.acyclic_join (),
      Dbgen.random_structure ~rng ~universe_size:n
        [ ("R", 2, 5 * n); ("S", 2, 5 * n); ("T", 2, 5 * n) ] );
    ( "path-3 (hw 1)",
      QF.path_endpoints 3,
      Dbgen.random_structure ~rng ~universe_size:n [ ("E", 2, 5 * n) ] );
    ( "frac-triangle (fhw 1.5)",
      QF.fractional_triangle (),
      Dbgen.random_structure ~rng ~universe_size:n
        [ ("E1", 2, 4 * n); ("E2", 2, 4 * n); ("E3", 2, 4 * n) ] );
  ]

let run fmt =
  let rng = Common.rng "e6" in
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (name, q, db) ->
          let exact, t_exact = Common.time (fun () -> Exact.by_join_projection q db) in
          let config =
            Ac_automata.Acjr.
              {
                sketch_size = 48;
                union_rounds = 48;
                rng = Random.State.make [| n |];
                budget = Ac_runtime.Budget.none;
              }
          in
          let stats =
            match Fpras.build q db with
            | None -> "0 states"
            | Some b ->
                Printf.sprintf "%d st / %d nodes" b.Fpras.num_states b.num_nodes
          in
          let est, t_fpras =
            Common.time (fun () -> Fpras.approx_count ~config q db)
          in
          let err = Common.rel_err ~estimate:est ~truth:(float_of_int exact) in
          let r_fptras, t_fptras =
            Common.time (fun () ->
                Fptras.approx_count ~rng ~eps:0.3 ~delta:0.1 q db)
          in
          rows :=
            [
              name;
              string_of_int n;
              string_of_int exact;
              Common.f1 est;
              Common.f3 err;
              stats;
              Common.f1 r_fptras.Fptras.estimate;
              Common.f3 t_exact;
              Common.f3 t_fpras;
              Common.f3 t_fptras;
            ]
            :: !rows)
        (families rng n))
    [ 15; 30; 60 ];
  Common.table fmt
    ~title:
      "E6  Theorem 16: FPRAS via tree automata for bounded-fhw CQs (incl. fhw < hw)"
    ~header:
      [
        "query"; "n"; "exact"; "fpras"; "rel.err"; "automaton"; "fptras";
        "t_exact(s)"; "t_fpras(s)"; "t_fptras(s)";
      ]
    (List.rev !rows)

let experiment =
  {
    Common.id = "E6";
    claim = "Theorem 16: FPRAS for CQs of bounded fractional hypertreewidth";
    queries =
      [
        ("acyclic-join", QF.acyclic_join ());
        ("path-endpoints-3", QF.path_endpoints 3);
        ("fractional-triangle", QF.fractional_triangle ());
      ];
    run;
  }
