(* E2 — Corollary 6: FPTRAS for counting locally injective homomorphisms
   from bounded-treewidth patterns.

   Patterns (path, star, binary tree — all treewidth 1) are mapped into
   random host graphs of growing size; we compare the Corollary 6 FPTRAS
   against the exact count through the query encoding, which is itself
   cross-checked against direct graph brute force on the smallest host. *)

module G = Ac_workload.Graph
module Lihom = Approxcount.Lihom

let patterns =
  [
    ("path-4", G.path 4);
    ("star-3", G.star 3);
    ("bintree-d2", G.binary_tree ~depth:2);
  ]

let run fmt =
  let rng = Common.rng "e2" in
  let rows = ref [] in
  List.iter
    (fun hn ->
      let host = G.random_gnp ~rng hn 0.3 in
      List.iter
        (fun (name, pattern) ->
          let exact, t_exact =
            Common.time (fun () -> Lihom.exact_count ~pattern ~host)
          in
          (* cross-check with graph-level brute force on small hosts *)
          if hn <= 8 then
            assert (exact = Lihom.exact_count_brute ~pattern ~host);
          let r, t =
            Common.time (fun () ->
                Lihom.approx_count ~rng ~eps:0.3 ~delta:0.1 ~pattern host)
          in
          let err =
            Common.rel_err ~estimate:r.Approxcount.Fptras.estimate
              ~truth:(float_of_int exact)
          in
          rows :=
            [
              name;
              string_of_int hn;
              string_of_int exact;
              Common.f1 r.Approxcount.Fptras.estimate;
              Common.f3 err;
              (if r.exact then "exact" else Printf.sprintf "lvl %d" r.level);
              string_of_int r.hom_calls;
              Common.f3 t_exact;
              Common.f3 t;
            ]
            :: !rows)
        patterns)
    [ 8; 16; 24 ];
  Common.table fmt
    ~title:"E2  Corollary 6: #LIHom FPTRAS (frequency-assignment workload)"
    ~header:
      [
        "pattern"; "|host|"; "exact"; "estimate"; "rel.err"; "mode"; "hom";
        "t_exact(s)"; "t_fptras(s)";
      ]
    (List.rev !rows)

let experiment =
  {
    Common.id = "E2";
    claim = "Corollary 6: FPTRAS for locally injective homomorphisms";
    queries =
      List.map
        (fun (name, pattern) ->
          ("lihom-" ^ name, Ac_workload.Query_families.lihom pattern))
        patterns;
    run;
  }
