(* E5 — Theorem 13: FPTRAS for DCQs of bounded adaptive width with
   unbounded arity.

   The wide-path family has k atoms of arity a chaining on shared
   variables plus one disequality per atom: every bag of the natural
   decomposition is covered by a single atom, so fhw = 1 ≥ aw while the
   arity (and hence the treewidth, = a - 1) grows without bound. The
   generic-join engine (our Theorem 36 stand-in) handles every arity at
   the same polynomial cost; accuracy is checked against exact counts. *)

module QF = Ac_workload.Query_families
module Dbgen = Ac_workload.Dbgen
module Fptras = Approxcount.Fptras
module Exact = Approxcount.Exact
module Colour_oracle = Approxcount.Colour_oracle

let run fmt =
  let rng = Common.rng "e5" in
  let rows = ref [] in
  List.iter
    (fun arity ->
      let q = QF.wide_path ~num_free:2 ~k:3 ~arity () in
      let h = Ac_query.Ecq.hypergraph q in
      let fhw =
        if Ac_hypergraph.Hypergraph.num_vertices h <= 18 then
          fst (Ac_hypergraph.Widths.fhw_exact h)
        else Ac_hypergraph.Widths.fhw_upper h
      in
      let db =
        Dbgen.high_arity_database ~rng ~universe_size:20 ~arity ~count:600
      in
      let exact, t_exact = Common.time (fun () -> Exact.by_join_projection q db) in
      let r, t =
        Common.time (fun () ->
            Fptras.approx_count ~rng ~engine:Colour_oracle.Generic ~eps:0.3
              ~delta:0.1 q db)
      in
      let err =
        Common.rel_err ~estimate:r.Fptras.estimate ~truth:(float_of_int exact)
      in
      rows :=
        [
          string_of_int arity;
          string_of_int (Ac_query.Ecq.num_vars q);
          Common.f1 fhw;
          string_of_int (arity - 1);
          string_of_int exact;
          Common.f1 r.Fptras.estimate;
          Common.f3 err;
          string_of_int r.hom_calls;
          Common.f3 t_exact;
          Common.f3 t;
        ]
        :: !rows)
    [ 3; 4; 5; 6; 8 ];
  Common.table fmt
    ~title:
      "E5  Theorem 13: DCQ FPTRAS under bounded adaptive width, unbounded arity (fhw=1)"
    ~header:
      [
        "arity"; "vars"; "fhw"; "tw"; "exact"; "estimate"; "rel.err"; "hom";
        "t_exact(s)"; "t_fptras(s)";
      ]
    (List.rev !rows)

let experiment =
  {
    Common.id = "E5";
    claim = "Theorem 13: FPTRAS for bounded-adaptive-width DCQs of unbounded arity";
    queries =
      [ ("wide-path-3x4", QF.wide_path ~num_free:2 ~k:3 ~arity:4 ()) ];
    run;
  }
