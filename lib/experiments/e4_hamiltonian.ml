(* E4 — Observation 10: treewidth-1 DCQs encode Hamiltonian-path counting,
   so no FPRAS exists (unless NP = RP); the FPTRAS price is exponential in
   the query.

   For growing n: the Held–Karp ground truth, the count recovered through
   the query encoding, and the cost of the oracle pipeline with the two
   engines — the colour-coding engine (faithful to Lemma 22; budget
   4^{|Δ'|}) on small n, the Direct ablation engine on all n. The hom-call
   column grows explosively in n (the query size) while remaining
   polynomial in the database for fixed n: exactly the FPTRAS/no-FPRAS
   boundary the paper proves. *)

module G = Ac_workload.Graph
module Hardness = Approxcount.Hardness
module Colour_oracle = Approxcount.Colour_oracle

let run fmt =
  let rng = Common.rng "e4" in
  let rows = ref [] in
  List.iter
    (fun n ->
      let g = G.random_gnp ~rng n 0.6 in
      let dp, _ = Common.time (fun () -> Hardness.exact_paths g) in
      let engines =
        (if n <= 4 then [ ("colour", Colour_oracle.Tree_dp) ] else [])
        @ [ ("direct", Colour_oracle.Direct) ]
      in
      List.iter
        (fun (ename, engine) ->
          let r, t =
            Common.time (fun () ->
                Hardness.approx_via_query
                  ~rng:(Random.State.make [| n |])
                  ~engine ~rounds:16 ~eps:0.3 ~delta:0.2 g)
          in
          rows :=
            [
              string_of_int n;
              string_of_int (n * (n - 1) / 2);
              string_of_int dp;
              Common.f1 r.Approxcount.Fptras.estimate;
              ename;
              string_of_int r.oracle_calls;
              string_of_int r.hom_calls;
              Common.f3 t;
            ]
            :: !rows)
        engines)
    [ 3; 4; 5; 6; 7 ];
  Common.table fmt
    ~title:
      "E4  Observation 10: Hamiltonian paths as a tw-1 DCQ (no FPRAS; cost is exp(‖φ‖))"
    ~header:
      [ "n"; "|Δ|"; "DP"; "estimate"; "engine"; "oracle"; "hom"; "t(s)" ]
    (List.rev !rows)

let experiment =
  {
    Common.id = "E4";
    claim = "Observation 10: tw-1 DCQs count Hamiltonian paths (no FPRAS unless NP=RP)";
    queries = [ ("hamiltonian-4", Ac_workload.Query_families.hamiltonian 4) ];
    run;
  }
