(** All experiments in DESIGN.md §4 order. *)
val all : Common.t list

(** [(experiment id, family name, query)] triples across all experiments,
    in registry order — the lint surface for [experiments
    --lint-families]. *)
val families : unit -> (string * string * Ac_query.Ecq.t) list

(** Case-insensitive lookup by id ("E1" … "A2"). *)
val find : string -> Common.t option
