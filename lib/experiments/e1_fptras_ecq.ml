(* E1 — Theorem 5: the FPTRAS for bounded-treewidth, bounded-arity ECQs.

   For three query shapes (the paper's equation (1) DCQ, a 2-star with
   distinct leaves, and an ECQ with a negated atom), over random databases
   of growing size and two accuracy targets, we report the exact count,
   the FPTRAS estimate, the observed relative error (which must stay
   within ε up to the confidence δ) and the oracle/homomorphism call
   counts (which must grow mildly with ‖D‖ — the FPT shape). *)

module QF = Ac_workload.Query_families
module Dbgen = Ac_workload.Dbgen
module Fptras = Approxcount.Fptras
module Exact = Approxcount.Exact

let queries rng n =
  [
    ("friends (eq.1)", QF.friends (), Dbgen.friends_database ~rng ~n ~avg_degree:6.0);
    ( "star-distinct k=2",
      QF.star_distinct 2,
      Dbgen.random_structure ~rng ~universe_size:n [ ("E", 2, 4 * n) ] );
    ( "triangle-negation",
      QF.triangle_negation (),
      Dbgen.random_structure ~rng ~universe_size:n [ ("E", 2, 3 * n) ] );
  ]

let run fmt =
  let rows = ref [] in
  let rng = Common.rng "e1" in
  List.iter
    (fun n ->
      List.iter
        (fun (name, q, db) ->
          let exact, t_exact =
            Common.time (fun () -> Exact.by_join_projection q db)
          in
          List.iter
            (fun epsilon ->
              let r, t =
                Common.time (fun () ->
                    Fptras.approx_count ~rng ~eps:epsilon ~delta:0.1 q db)
              in
              let err =
                Common.rel_err ~estimate:r.Fptras.estimate
                  ~truth:(float_of_int exact)
              in
              rows :=
                [
                  name;
                  string_of_int n;
                  Printf.sprintf "%.2f" epsilon;
                  string_of_int exact;
                  Common.f1 r.Fptras.estimate;
                  Common.f3 err;
                  (if r.Fptras.exact then "exact" else Printf.sprintf "lvl %d" r.level);
                  string_of_int r.oracle_calls;
                  string_of_int r.hom_calls;
                  Common.f3 t_exact;
                  Common.f3 t;
                ]
                :: !rows)
            [ 0.5; 0.25 ])
        (queries rng n))
    [ 60; 120; 240 ];
  Common.table fmt
    ~title:
      "E1  Theorem 5 FPTRAS on ECQs (bounded tw & arity): accuracy and FPT cost"
    ~header:
      [
        "query"; "n"; "eps"; "exact"; "estimate"; "rel.err"; "mode"; "oracle";
        "hom"; "t_exact(s)"; "t_fptras(s)";
      ]
    (List.rev !rows)

let experiment =
  {
    Common.id = "E1";
    claim = "Theorem 5: FPTRAS for bounded-treewidth bounded-arity ECQs";
    queries =
      [
        ("friends", QF.friends ());
        ("star-distinct-2", QF.star_distinct 2);
        ("triangle-negation", QF.triangle_negation ());
      ];
    run;
  }
