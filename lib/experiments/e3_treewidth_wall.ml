(* E3 — the lower-bound shape (Observations 9/15 + Theorems 8/14): exact
   counting scales like n^{Θ(tw)} while the approximation stays mild.

   Clique queries K_k have treewidth k - 1. Two sweeps over G(n, p):
   (a) growing k at fixed n — exact enumeration cost explodes with the
       treewidth, the FPTRAS decision-based cost grows far slower;
   (b) growing n at fixed k — both are polynomial in the database, the
       fixed-parameter shape of Theorem 5.

   (A lower bound cannot be "run"; what we regenerate is its observable
   consequence — who hits the wall and in which variable.) *)

module QF = Ac_workload.Query_families
module G = Ac_workload.Graph
module Fptras = Approxcount.Fptras
module Exact = Approxcount.Exact

let db_of rng n p = G.to_structure (G.random_gnp ~rng n p)

let row rng q db label =
  let exact, t_exact = Common.time (fun () -> Exact.by_join_projection q db) in
  let r, t_apx =
    Common.time (fun () -> Fptras.approx_count ~rng ~eps:0.5 ~delta:0.2 q db)
  in
  let err =
    Common.rel_err ~estimate:r.Fptras.estimate ~truth:(float_of_int exact)
  in
  label
  @ [
      string_of_int exact;
      Common.f1 r.Fptras.estimate;
      Common.f3 err;
      string_of_int r.hom_calls;
      Common.f3 t_exact;
      Common.f3 t_apx;
    ]

let run fmt =
  let rng = Common.rng "e3" in
  (* sweep (a): treewidth grows, database fixed *)
  let rows_k =
    List.map
      (fun k ->
        let q = QF.clique_query ~num_free:2 k in
        let db = db_of rng 46 0.45 in
        row rng q db [ string_of_int k; string_of_int (k - 1); "46" ])
      [ 3; 4; 5 ]
  in
  Common.table fmt
    ~title:"E3a  exact-counting wall: clique query K_k, growing treewidth"
    ~header:
      [
        "k"; "tw"; "n"; "exact"; "estimate"; "rel.err"; "hom"; "t_exact(s)";
        "t_fptras(s)";
      ]
    rows_k;
  (* sweep (b): database grows, treewidth fixed *)
  let rows_n =
    List.map
      (fun n ->
        let q = QF.clique_query ~num_free:2 4 in
        let db = db_of rng n 0.4 in
        row rng q db [ "4"; "3"; string_of_int n ])
      [ 20; 40; 80 ]
  in
  Common.table fmt
    ~title:"E3b  fixed-parameter shape: K_4 query, growing database"
    ~header:
      [
        "k"; "tw"; "n"; "exact"; "estimate"; "rel.err"; "hom"; "t_exact(s)";
        "t_fptras(s)";
      ]
    rows_n

let experiment =
  {
    Common.id = "E3";
    claim =
      "Observations 9/15 shape: exact counting pays n^{Θ(tw)}, the FPTRAS stays FPT";
    queries =
      [ ("clique-3", QF.clique_query ~num_free:2 3);
        ("clique-4", QF.clique_query ~num_free:2 4) ];
    run;
  }
