(** Shared plumbing for the experiment harness (DESIGN.md §4): fixed-width
    table rendering, timing, relative error, and a deterministic RNG per
    experiment. *)

val rng : string -> Random.State.t

(** [time f] = (result, seconds). *)
val time : (unit -> 'a) -> 'a * float

val rel_err : estimate:float -> truth:float -> float

(** [table fmt ~title ~header rows] renders an aligned table. *)
val table :
  Format.formatter -> title:string -> header:string list -> string list list -> unit

val f1 : float -> string
val f3 : float -> string

(** Experiment registry entry. *)
type t = {
  id : string;        (** "E1" .. "E8" *)
  claim : string;     (** the paper claim it regenerates *)
  queries : (string * Ac_query.Ecq.t) list;
      (** named representative queries of the experiment's family — the
          lint surface checked by [experiments --lint-families] in CI *)
  run : Format.formatter -> unit;
}
