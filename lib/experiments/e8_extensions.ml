(* E8 — §6 extensions: approximate-uniform sampling and unions of queries.

   (a) JVV sampling through the counting oracle: draw many answers of the
       friends query over a fixed database, compare the empirical
       frequencies to uniform via a χ² statistic, and compare against the
       exactly-uniform baseline sampler.
   (b) The FPRAS-side sampler (ACJR's, through the tree automaton).
   (c) Karp–Luby union counting for a union of two CQs, against exact. *)

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Sampling = Approxcount.Sampling
module Exact = Approxcount.Exact
module Fpras = Approxcount.Fpras

let chi_square counts expected =
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0.0 counts

let run fmt =
  let rng = Common.rng "e8" in
  (* a small friends database with a known answer set *)
  let db =
    Structure.of_facts ~universe_size:8
      [
        ("F", [| 0; 1 |]); ("F", [| 0; 2 |]);
        ("F", [| 3; 1 |]); ("F", [| 3; 2 |]);
        ("F", [| 4; 5 |]); ("F", [| 4; 6 |]);
        ("F", [| 7; 5 |]); ("F", [| 7; 6 |]);
      ]
  in
  let q = Ac_workload.Query_families.friends () in
  let answers = List.sort compare (List.map (fun t -> t.(0)) (Exact.answers q db)) in
  let k = List.length answers in
  let index v =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = v then i else go (i + 1) rest
    in
    go 0 answers
  in
  let draws = 120 in
  let jvv = Array.make k 0 and uniform = Array.make k 0 in
  let jvv_miss = ref 0 in
  for _ = 1 to draws do
    (match Sampling.sample ~rng ~rounds:32 ~eps:0.4 ~delta:0.2 q db with
    | Some [| v |] when index v >= 0 -> jvv.(index v) <- jvv.(index v) + 1
    | _ -> incr jvv_miss);
    match Sampling.sample_exact ~rng q db with
    | Some [| v |] when index v >= 0 -> uniform.(index v) <- uniform.(index v) + 1
    | _ -> ()
  done;
  let expected = float_of_int (draws - !jvv_miss) /. float_of_int k in
  let expected_u = float_of_int draws /. float_of_int k in
  Common.table fmt
    ~title:"E8a  §6 JVV sampling: empirical frequencies over the answer set"
    ~header:[ "sampler"; "draws"; "answers"; "chi^2"; "misses" ]
    [
      [
        "jvv (oracle)";
        string_of_int (draws - !jvv_miss);
        string_of_int k;
        Common.f3 (chi_square jvv expected);
        string_of_int !jvv_miss;
      ];
      [
        "uniform baseline";
        string_of_int draws;
        string_of_int k;
        Common.f3 (chi_square uniform expected_u);
        "0";
      ];
    ];
  (* (b) the FPRAS sampler on a CQ *)
  let cq = Ac_workload.Query_families.acyclic_join () in
  let db2 =
    Ac_workload.Dbgen.random_structure ~rng ~universe_size:12
      [ ("R", 2, 30); ("S", 2, 30); ("T", 2, 30) ]
  in
  let valid = ref 0 and total = ref 0 in
  let config = Ac_automata.Acjr.default_config ~seed:21 () in
  for _ = 1 to 40 do
    match Fpras.sample_answer ~config cq db2 with
    | Some tau ->
        incr total;
        if Exact.is_answer cq db2 tau then incr valid
    | None -> ()
  done;
  Common.table fmt
    ~title:"E8b  §6 FPRAS-side sampler (ACJR, through the tree automaton)"
    ~header:[ "samples"; "valid answers" ]
    [ [ string_of_int !total; string_of_int !valid ] ];
  (* (c) Karp–Luby unions *)
  let q1 = Ecq.parse "ans(x) :- F(x, y), F(x, z), y != z" in
  let q2 = Ecq.parse "ans(x) :- F(y, x)" in
  let exact_union = Sampling.union_count_exact [ q1; q2 ] db in
  let kl, t_kl =
    Common.time (fun () ->
        Sampling.union_count_karp_luby ~rng ~rounds:4000 [ q1; q2 ] db)
  in
  let kl_full, t_full =
    Common.time (fun () ->
        Sampling.union_count_approx ~rng ~kl_rounds:150 ~eps:0.25 ~delta:0.1
          [ q1; q2 ] db)
  in
  Common.table fmt
    ~title:"E8c  §6 Karp–Luby union counting (UCQ)"
    ~header:[ "estimator"; "exact"; "estimate"; "rel.err"; "t(s)" ]
    [
      [
        "exact pools (baseline)";
        string_of_int exact_union;
        Common.f1 kl;
        Common.f3 (Common.rel_err ~estimate:kl ~truth:(float_of_int exact_union));
        Common.f3 t_kl;
      ];
      [
        "full pipeline (FPTRAS+JVV)";
        string_of_int exact_union;
        Common.f1 kl_full;
        Common.f3
          (Common.rel_err ~estimate:kl_full ~truth:(float_of_int exact_union));
        Common.f3 t_full;
      ];
    ];
  (* (d) the DLM-style edge sampler at the query level *)
  let dlm_valid = ref 0 and dlm_total = 30 in
  for _ = 1 to dlm_total do
    match Sampling.sample_dlm ~rng ~rounds:32 ~eps:0.3 ~delta:0.2 q db with
    | Some tau when Exact.is_answer q db tau -> incr dlm_valid
    | _ -> ()
  done;
  Common.table fmt
    ~title:"E8d  §6 DLM edge sampler over the answer hypergraph"
    ~header:[ "draws"; "valid answers" ]
    [ [ string_of_int dlm_total; string_of_int !dlm_valid ] ]

let experiment =
  {
    Common.id = "E8";
    claim = "§6 extensions: JVV sampling, ACJR sampling, Karp-Luby unions";
    queries =
      [
        ("friends", Ac_workload.Query_families.friends ());
        ("acyclic-join", Ac_workload.Query_families.acyclic_join ());
      ];
    run;
  }
