(* All experiments in DESIGN.md §4 order. *)

let all : Common.t list =
  [
    E1_fptras_ecq.experiment;
    E2_lihom.experiment;
    E3_treewidth_wall.experiment;
    E4_hamiltonian.experiment;
    E5_dcq_adaptive.experiment;
    E6_fpras_fhw.experiment;
    E7_width_landscape.experiment;
    E8_extensions.experiment;
    A1_ablation.experiment;
    A2_sketch_quality.experiment;
  ]

(* Every experiment's representative queries, flattened: the lint
   surface for [experiments --lint-families]. *)
let families () =
  List.concat_map
    (fun e ->
      List.map (fun (name, q) -> (e.Common.id, name, q)) e.Common.queries)
    all

let find id =
  List.find_opt
    (fun e -> String.lowercase_ascii e.Common.id = String.lowercase_ascii id)
    all
