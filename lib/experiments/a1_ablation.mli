(** A1 — see the module header for the claim. *)
val experiment : Common.t
