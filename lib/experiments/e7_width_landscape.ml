(* E7 — Figure 1 / Lemma 12: the width landscape behind the classification.

   For every query family used across E1–E6 we compute treewidth (exact),
   generalised hypertreewidth, fractional hypertreewidth (exact for ≤ 18
   vertices) and certified adaptive-width bounds, then read off the
   paper's classification: FPRAS for CQs with bounded fhw (Theorem 16),
   FPTRAS for DCQs with bounded aw (Theorem 13) / ECQs with bounded tw
   (Theorem 5), and "no FPRAS" whenever disequalities or negations are
   present (Observation 10). The numeric columns witness the domination
   chain tw + 1 ≥ ghw ≥ fhw ≥ aw of Lemma 12. *)

module QF = Ac_workload.Query_families
module Ecq = Ac_query.Ecq
module H = Ac_hypergraph.Hypergraph
module W = Ac_hypergraph.Widths
module TD = Ac_hypergraph.Tree_decomposition

let classification q =
  if Ecq.is_cq q then "FPRAS (Thm 16)"
  else if Ecq.is_dcq q then "FPTRAS only (Thm 13 / Obs 10)"
  else "FPTRAS only (Thm 5 / Obs 10)"

let run fmt =
  let rows =
    List.map
      (fun (name, q) ->
        let h = Ecq.hypergraph q in
        let small = H.num_vertices h <= 14 in
        let tw = if small then fst (TD.treewidth_exact h) else TD.width (TD.decompose h) in
        let fhw =
          if small then fst (W.fhw_exact h) else W.fhw_upper h
        in
        let ghw = if small then W.ghw_exact h else float_of_int (tw + 1) in
        let aw_lo, aw_hi = if small then W.adaptive_width_bounds h else (1.0, fhw) in
        let guard_width =
          Ac_hypergraph.Hypertree.width (Ac_hypergraph.Hypertree.of_hypergraph h)
        in
        [
          name;
          string_of_int (H.num_vertices h);
          string_of_int (H.arity h);
          string_of_int tw;
          string_of_int guard_width;
          Common.f1 ghw;
          Common.f1 fhw;
          Printf.sprintf "[%s, %s]" (Common.f1 aw_lo) (Common.f1 aw_hi);
          classification q;
        ])
      (QF.landscape ())
  in
  Common.table fmt
    ~title:"E7  Figure 1 landscape: width measures and classification per family"
    ~header:
      [ "family"; "vars"; "arity"; "tw"; "guards"; "ghw"; "fhw"; "aw"; "classification" ]
    rows

let experiment =
  {
    Common.id = "E7";
    claim = "Figure 1 / Lemma 12: width-measure landscape across the query families";
    queries = QF.landscape ();
    run;
  }
