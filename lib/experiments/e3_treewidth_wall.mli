(** E3 — see the module header for the claim. *)
val experiment : Common.t
