let rng name =
  Random.State.make (Array.of_seq (Seq.map Char.code (String.to_seq name)))

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rel_err ~estimate ~truth =
  if truth = 0.0 then if estimate = 0.0 then 0.0 else infinity
  else Float.abs (estimate -. truth) /. truth

let table fmt ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell -> cell ^ String.make (List.nth widths c - String.length cell) ' ')
         row)
  in
  Format.fprintf fmt "@.== %s@." title;
  Format.fprintf fmt "%s@." (line header);
  Format.fprintf fmt "%s@."
    (String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-');
  List.iter (fun row -> Format.fprintf fmt "%s@." (line row)) rows

let f1 x = Printf.sprintf "%.1f" x
let f3 x = Printf.sprintf "%.3f" x

type t = {
  id : string;
  claim : string;
  queries : (string * Ac_query.Ecq.t) list;
  run : Format.formatter -> unit;
}
