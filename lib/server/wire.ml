module Json = Ac_analysis.Json
module Api = Approxcount.Api
module Error = Ac_runtime.Error
module Trace = Ac_obs.Trace
module Metrics = Ac_obs.Metrics

(* Protocol version. Negotiation rule (docs/server.md): every message
   may carry a "version" field; a missing field means version 1; a
   peer seeing a version it does not speak refuses with a typed error;
   unknown fields are always ignored, so additive evolution does not
   bump the version. *)
let protocol_version = 1

type db_ref = Named of string | Inline of string | Session

(* The closed verb alphabet. Dispatch pattern-matches on this variant
   instead of on strings, so a verb added to the protocol without a
   handler is a compile error (non-exhaustive match), not a runtime
   "unknown verb" surprise; [of_string]/[to_string] are the single,
   total codec (pinned by a qcheck round-trip test). *)
module Verb = struct
  type t =
    | Count
    | Sample
    | Use
    | Load
    | Insert
    | Delete
    | Load_batch
    | Stats
    | Metrics
    | Ping
    | Health

  let all =
    [
      Count;
      Sample;
      Use;
      Load;
      Insert;
      Delete;
      Load_batch;
      Stats;
      Metrics;
      Ping;
      Health;
    ]

  let to_string = function
    | Count -> "count"
    | Sample -> "sample"
    | Use -> "use"
    | Load -> "load"
    | Insert -> "insert"
    | Delete -> "delete"
    | Load_batch -> "load_batch"
    | Stats -> "stats"
    | Metrics -> "metrics"
    | Ping -> "ping"
    | Health -> "health"

  let of_string = function
    | "count" -> Some Count
    | "sample" -> Some Sample
    | "use" -> Some Use
    | "load" -> Some Load
    | "insert" -> Some Insert
    | "delete" -> Some Delete
    | "load_batch" -> Some Load_batch
    | "stats" -> Some Stats
    | "metrics" -> Some Metrics
    | "ping" -> Some Ping
    | "health" -> Some Health
    | _ -> None
end

type params = {
  query : string;
  db : db_ref;
  eps : float;
  delta : float;
  method_ : Api.method_;
  seed : int option;
  jobs : int option;
  timeout_ms : int option;
  deadline_ms : int option;
  max_heap_mb : int option;
  strict : bool;
  trace : bool;
  tenant : string option;
}

let params ?(eps = 0.25) ?(delta = 0.1) ?(method_ = Api.Auto) ?seed ?jobs
    ?timeout_ms ?deadline_ms ?max_heap_mb ?(strict = false) ?(trace = false)
    ?tenant ~db query =
  {
    query;
    db;
    eps;
    delta;
    method_;
    seed;
    jobs;
    timeout_ms;
    deadline_ms;
    max_heap_mb;
    strict;
    trace;
    tenant;
  }

(* One element of a LOAD_BATCH: direction + fact. INSERT/DELETE are
   sugar for a batch of same-direction ops over one relation. *)
type mutation_op = { insert : bool; rel : string; tuple : int array }

type metrics_format = Metrics_json | Metrics_prometheus

let metrics_format_name = function
  | Metrics_json -> "json"
  | Metrics_prometheus -> "prometheus"

let metrics_format_of_name = function
  | "json" -> Some Metrics_json
  | "prometheus" | "prom" | "text" -> Some Metrics_prometheus
  | _ -> None

type request =
  | Count of params
  | Sample of { params : params; draws : int }
  | Use of string
  | Load of { name : string; text : string }
  | Insert of {
      db : db_ref;
      rel : string;
      tuples : int array list;
      batch_id : string option;
    }
  | Delete of {
      db : db_ref;
      rel : string;
      tuples : int array list;
      batch_id : string option;
    }
  | Load_batch of {
      db : db_ref;
      ops : mutation_op list;
      batch_id : string option;
    }
  | Stats
  | Metrics_req of { format : metrics_format }
  | Ping
  | Health

let method_of_name = Api.method_of_string

let verb_of_request = function
  | Ping -> Verb.Ping
  | Stats -> Verb.Stats
  | Metrics_req _ -> Verb.Metrics
  | Use _ -> Verb.Use
  | Load _ -> Verb.Load
  | Count _ -> Verb.Count
  | Sample _ -> Verb.Sample
  | Insert _ -> Verb.Insert
  | Delete _ -> Verb.Delete
  | Load_batch _ -> Verb.Load_batch
  | Health -> Verb.Health

let verb_name r = Verb.to_string (verb_of_request r)

(* A request is idempotent — safe to resend after a transport fault —
   iff replaying it cannot change the answer or spend budget twice.
   Seeded COUNT/SAMPLE are deterministic (and the daemon dedupes them
   against the result cache and in-flight table); unseeded ones draw a
   fresh seed per run, so a retry would silently answer a different
   random experiment. *)
(* Mutations are idempotent iff they carry a [batch_id]: the daemon's
   live-db dedupe table replays the stored result instead of applying
   the batch twice, so a resend is safe. Without one, a retried
   mutation would double-apply. *)
(* LOAD replaces the slot with the shipped content — resending the
   same text converges on the same catalog state, so it is safe. *)
let idempotent = function
  | Ping | Stats | Metrics_req _ | Use _ | Health | Load _ -> true
  | Count p -> p.seed <> None
  | Sample { params; _ } -> params.seed <> None
  | Insert { batch_id; _ } | Delete { batch_id; _ } | Load_batch { batch_id; _ }
    ->
      batch_id <> None

type attempt = { rung : string; error_class : string; error_message : string }

type outcome = {
  estimate : float;
  exact : bool;
  rung : string option;
  guarantee : bool;
  degraded : bool;
  attempts : attempt list;
  seed : int;
  jobs : int;
  ticks : int;
  elapsed_ms : float;
  trace : Trace.summary option;
  plan_cache : string;
  result_cache : string;
}

type health = {
  ready : bool;
  live : bool;
  draining : bool;
  in_flight : int;
  queue_capacity : int;
  catalog_entries : int;
  recovered : bool;
  uptime_ms : float;
}

type response =
  | Counted of outcome
  | Sampled of {
      samples : int array option array;
      seed : int;
      jobs : int;
      ticks : int;
      elapsed_ms : float;
      trace : Trace.summary option;
    }
  | Used of { name : string; fingerprint : string; universe : int; size : int }
  | Loaded of {
      name : string;
      fingerprint : string;
      universe : int;
      size : int;
    }
  | Mutated of {
      name : string;
      db_version : int;
      fingerprint : string;
      inserted : int;
      deleted : int;
      replayed : bool;
    }
  | Stats_reply of Json.t
  | Metrics_reply of { format : metrics_format; payload : Json.t }
  | Pong
  | Health_reply of health
  | Refused of { code : int; error_class : string; message : string }

let status_of_response = function
  | Counted o -> if o.degraded then 3 else 0
  | Sampled _ | Used _ | Loaded _ | Mutated _ | Stats_reply _ | Metrics_reply _
  | Pong | Health_reply _ ->
      0
  | Refused r -> r.code

let response_of_error e =
  Refused
    {
      code = Error.exit_code e;
      error_class = Error.class_name e;
      message = Error.message e;
    }

(* ---------- encoding ---------- *)

let opt_int_field name = function
  | Some v -> [ (name, Json.Int v) ]
  | None -> []

let params_fields (p : params) =
  [
    ("query", Json.String p.query);
    ("eps", Json.Float p.eps);
    ("delta", Json.Float p.delta);
    ("method", Json.String (Api.method_to_string p.method_));
    ("strict", Json.Bool p.strict);
  ]
  @ (if p.trace then [ ("trace", Json.Bool true) ] else [])
  @ (match p.db with
    | Named n -> [ ("use", Json.String n) ]
    | Inline text -> [ ("db_inline", Json.String text) ]
    | Session -> [])
  @ (match p.tenant with
    | Some tn -> [ ("tenant", Json.String tn) ]
    | None -> [])
  @ opt_int_field "seed" p.seed
  @ opt_int_field "jobs" p.jobs
  @ opt_int_field "timeout_ms" p.timeout_ms
  @ opt_int_field "deadline_ms" p.deadline_ms
  @ opt_int_field "max_heap_mb" p.max_heap_mb

let db_ref_fields = function
  | Named n -> [ ("use", Json.String n) ]
  | Inline text -> [ ("db_inline", Json.String text) ]
  | Session -> []

let tuple_json tuple =
  Json.List (Array.to_list (Array.map (fun v -> Json.Int v) tuple))

let batch_id_fields = function
  | Some id -> [ ("batch_id", Json.String id) ]
  | None -> []

let mutation_op_json (o : mutation_op) =
  Json.Obj
    [
      ("op", Json.String (if o.insert then "insert" else "delete"));
      ("rel", Json.String o.rel);
      ("tuple", tuple_json o.tuple);
    ]

let version_field = ("version", Json.Int protocol_version)

(* The optional envelope-level request id: the client's handle for
   matching responses to requests across retries and duplicated frames.
   Echoed verbatim by the server; requests without one get responses
   without one (the pre-id protocol). *)
let id_fields = function
  | None -> []
  | Some id -> [ ("id", Json.String id) ]

let json_id j =
  match Json.mem "id" j with Some (Json.String s) -> Some s | _ -> None

let request_to_json ?id = function
  | Count p ->
      Json.Obj
        (("verb", Json.String "count")
        :: version_field
        :: (id_fields id @ params_fields p))
  | Sample { params = p; draws } ->
      Json.Obj
        ((("verb", Json.String "sample")
         :: version_field
         :: (id_fields id @ params_fields p))
        @ [ ("draws", Json.Int draws) ])
  | Use name ->
      Json.Obj
        (("verb", Json.String "use")
        :: version_field
        :: (id_fields id @ [ ("name", Json.String name) ]))
  | Load { name; text } ->
      Json.Obj
        (("verb", Json.String "load")
        :: version_field
        :: (id_fields id
           @ [ ("name", Json.String name); ("text", Json.String text) ]))
  | Insert { db; rel; tuples; batch_id } ->
      Json.Obj
        (("verb", Json.String "insert")
        :: version_field
        :: (id_fields id @ db_ref_fields db
           @ [
               ("rel", Json.String rel);
               ("tuples", Json.List (List.map tuple_json tuples));
             ]
           @ batch_id_fields batch_id))
  | Delete { db; rel; tuples; batch_id } ->
      Json.Obj
        (("verb", Json.String "delete")
        :: version_field
        :: (id_fields id @ db_ref_fields db
           @ [
               ("rel", Json.String rel);
               ("tuples", Json.List (List.map tuple_json tuples));
             ]
           @ batch_id_fields batch_id))
  | Load_batch { db; ops; batch_id } ->
      Json.Obj
        (("verb", Json.String "load_batch")
        :: version_field
        :: (id_fields id @ db_ref_fields db
           @ [ ("ops", Json.List (List.map mutation_op_json ops)) ]
           @ batch_id_fields batch_id))
  | Stats -> Json.Obj (("verb", Json.String "stats") :: version_field :: id_fields id)
  | Metrics_req { format } ->
      Json.Obj
        (("verb", Json.String "metrics")
        :: version_field
        :: (id_fields id
           @ [ ("format", Json.String (metrics_format_name format)) ]))
  | Ping -> Json.Obj (("verb", Json.String "ping") :: version_field :: id_fields id)
  | Health ->
      Json.Obj (("verb", Json.String "health") :: version_field :: id_fields id)

let trace_summary_json (s : Trace.summary) =
  Json.Obj
    [
      ("spans", Json.Int s.Trace.spans);
      ("dropped", Json.Int s.Trace.summary_dropped);
      ("wall_ms", Json.Float s.Trace.wall_ms);
      ( "aggs",
        Json.List
          (List.map
             (fun (a : Trace.agg) ->
               Json.Obj
                 [
                   ("name", Json.String a.Trace.agg_name);
                   ("count", Json.Int a.Trace.count);
                   ("total_ms", Json.Float a.Trace.total_ms);
                   ("ticks", Json.Int a.Trace.agg_ticks);
                 ])
             s.Trace.aggs) );
    ]

let telemetry_json ?trace ~seed ~jobs ~ticks ~elapsed_ms () =
  Json.Obj
    ([
       ("seed", Json.Int seed);
       ("jobs", Json.Int jobs);
       ("ticks", Json.Int ticks);
       ("elapsed_ms", Json.Float elapsed_ms);
     ]
    @
    match trace with
    | None -> []
    | Some s -> [ ("trace", trace_summary_json s) ])

(* The registry snapshot as structured JSON: one entry per series.
   Histogram bucket upper bounds are the stable
   [Ac_obs.Metrics.bucket_bounds] contract, so only counts travel. *)
let metrics_json registry =
  let labels_json labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)
  in
  let metric_json (m : Metrics.metric) =
    let value_fields =
      match m.Metrics.value with
      | Metrics.Counter v ->
          [ ("type", Json.String "counter"); ("value", Json.Int v) ]
      | Metrics.Gauge v ->
          [ ("type", Json.String "gauge"); ("value", Json.Int v) ]
      | Metrics.Histogram h ->
          [
            ("type", Json.String "histogram");
            ("count", Json.Int h.Metrics.count);
            ("sum", Json.Float h.Metrics.sum);
            ( "buckets",
              Json.List
                (Array.to_list
                   (Array.map (fun c -> Json.Int c) h.Metrics.counts)) );
          ]
    in
    Json.Obj
      (("name", Json.String m.Metrics.metric_name)
      :: ("labels", labels_json m.Metrics.metric_labels)
      :: value_fields)
  in
  Json.List (List.map metric_json (Metrics.snapshot registry))

let metrics_payload ~format registry =
  match format with
  | Metrics_json -> metrics_json registry
  | Metrics_prometheus -> Json.String (Metrics.to_prometheus registry)

let response_to_json ?id r =
  let status = ("status", Json.Int (status_of_response r)) in
  let version = version_field in
  let base = status :: version :: id_fields id in
  match r with
  | Counted o ->
      Json.Obj
        (base
        @ [
          ("verb", Json.String "count");
          ("estimate", Json.Float o.estimate);
          ("estimate_hex", Json.String (Printf.sprintf "%h" o.estimate));
          ("exact", Json.Bool o.exact);
          ( "rung",
            match o.rung with Some r -> Json.String r | None -> Json.Null );
          ("guarantee", Json.Bool o.guarantee);
          ("degraded", Json.Bool o.degraded);
          ( "attempts",
            Json.List
              (List.map
                 (fun (a : attempt) ->
                   Json.Obj
                     [
                       ("rung", Json.String a.rung);
                       ("class", Json.String a.error_class);
                       ("message", Json.String a.error_message);
                     ])
                 o.attempts) );
          ( "telemetry",
            telemetry_json ?trace:o.trace ~seed:o.seed ~jobs:o.jobs
              ~ticks:o.ticks ~elapsed_ms:o.elapsed_ms () );
          ( "cache",
            Json.Obj
              [
                ("plan", Json.String o.plan_cache);
                ("result", Json.String o.result_cache);
              ] );
        ])
  | Sampled s ->
      Json.Obj
        (base
        @ [
          ("verb", Json.String "sample");
          ( "samples",
            Json.List
              (Array.to_list s.samples
              |> List.map (function
                   | None -> Json.Null
                   | Some tau ->
                       Json.List
                         (Array.to_list (Array.map (fun v -> Json.Int v) tau)))) );
          ( "telemetry",
            telemetry_json ?trace:s.trace ~seed:s.seed ~jobs:s.jobs
              ~ticks:s.ticks ~elapsed_ms:s.elapsed_ms () );
        ])
  | Used u ->
      Json.Obj
        (base
        @ [
            ("verb", Json.String "use");
            ("name", Json.String u.name);
            ("fingerprint", Json.String u.fingerprint);
            ("universe", Json.Int u.universe);
            ("size", Json.Int u.size);
          ])
  | Loaded l ->
      Json.Obj
        (base
        @ [
            ("verb", Json.String "load");
            ("name", Json.String l.name);
            ("fingerprint", Json.String l.fingerprint);
            ("universe", Json.Int l.universe);
            ("size", Json.Int l.size);
          ])
  | Mutated m ->
      (* one response shape for all three mutation verbs; "version" is
         taken by the protocol envelope, so the db counter travels as
         "db_version" *)
      Json.Obj
        (base
        @ [
            ("verb", Json.String "mutate");
            ("name", Json.String m.name);
            ("db_version", Json.Int m.db_version);
            ("fingerprint", Json.String m.fingerprint);
            ("inserted", Json.Int m.inserted);
            ("deleted", Json.Int m.deleted);
            ("replayed", Json.Bool m.replayed);
          ])
  | Stats_reply blob ->
      Json.Obj (base @ [ ("verb", Json.String "stats"); ("stats", blob) ])
  | Metrics_reply { format; payload } ->
      Json.Obj
        (base
        @ [
            ("verb", Json.String "metrics");
            ("format", Json.String (metrics_format_name format));
            ("metrics", payload);
          ])
  | Pong -> Json.Obj (base @ [ ("verb", Json.String "ping") ])
  | Health_reply h ->
      Json.Obj
        (base
        @ [
            ("verb", Json.String "health");
            ("ready", Json.Bool h.ready);
            ("live", Json.Bool h.live);
            ("draining", Json.Bool h.draining);
            ( "queue",
              Json.Obj
                [
                  ("in_flight", Json.Int h.in_flight);
                  ("capacity", Json.Int h.queue_capacity);
                ] );
            ("catalog_entries", Json.Int h.catalog_entries);
            ("recovered", Json.Bool h.recovered);
            ("uptime_ms", Json.Float h.uptime_ms);
          ])
  | Refused r ->
      Json.Obj
        (base
        @ [
            ( "error",
              Json.Obj
                [
                  ("class", Json.String r.error_class);
                  ("message", Json.String r.message);
                ] );
          ])

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let field_or name default j =
  match Json.mem name j with None | Some Json.Null -> default | Some v -> v

let req_str name j =
  match Json.mem name j with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_int name j =
  match Json.mem name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let opt_float name ~default j =
  match Json.mem name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S must be a number" name))

let opt_bool name ~default j =
  match Json.mem name j with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let params_of_json j =
  let* query = req_str "query" j in
  let* db =
    match (Json.mem "use" j, Json.mem "db_inline" j) with
    | Some (Json.String n), None -> Ok (Named n)
    | None, Some (Json.String text) -> Ok (Inline text)
    | None, None -> Ok Session
    | Some _, Some _ -> Error "give either \"use\" or \"db_inline\", not both"
    | _ -> Error "fields \"use\"/\"db_inline\" must be strings"
  in
  let* eps = opt_float "eps" ~default:0.25 j in
  let* delta = opt_float "delta" ~default:0.1 j in
  let* method_ =
    match field_or "method" (Json.String "auto") j with
    | Json.String name -> (
        match method_of_name name with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown method %S" name))
    | _ -> Error "field \"method\" must be a string"
  in
  let* seed = opt_int "seed" j in
  let* jobs = opt_int "jobs" j in
  let* timeout_ms = opt_int "timeout_ms" j in
  let* deadline_ms = opt_int "deadline_ms" j in
  let* max_heap_mb = opt_int "max_heap_mb" j in
  let* strict = opt_bool "strict" ~default:false j in
  let* trace = opt_bool "trace" ~default:false j in
  let* tenant =
    match Json.mem "tenant" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.String s) -> Ok (Some s)
    | Some _ -> Error "field \"tenant\" must be a string"
  in
  Ok
    {
      query;
      db;
      eps;
      delta;
      method_;
      seed;
      jobs;
      timeout_ms;
      deadline_ms;
      max_heap_mb;
      strict;
      trace;
      tenant;
    }

let db_ref_of_json j =
  match (Json.mem "use" j, Json.mem "db_inline" j) with
  | Some (Json.String n), None -> Ok (Named n)
  | None, Some (Json.String text) -> Ok (Inline text)
  | None, None -> Ok Session
  | Some _, Some _ -> Error "give either \"use\" or \"db_inline\", not both"
  | _ -> Error "fields \"use\"/\"db_inline\" must be strings"

let opt_str name j =
  match Json.mem name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let tuple_of_json name = function
  | Json.List vs ->
      let* rev =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match Json.to_int v with
            | Some i -> Ok (i :: acc)
            | None ->
                Error
                  (Printf.sprintf "field %S: tuple components must be integers"
                     name))
          (Ok []) vs
      in
      Ok (Array.of_list (List.rev rev))
  | _ -> Error (Printf.sprintf "field %S must contain integer lists" name)

let tuples_of_json j =
  match Json.mem "tuples" j with
  | Some (Json.List items) ->
      let* rev =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* t = tuple_of_json "tuples" item in
            Ok (t :: acc))
          (Ok []) items
      in
      if rev = [] then Error "field \"tuples\" must be non-empty"
      else Ok (List.rev rev)
  | _ -> Error "missing field \"tuples\" (a list of tuples)"

let mutation_op_of_json item =
  let* op = req_str "op" item in
  let* insert =
    match op with
    | "insert" -> Ok true
    | "delete" -> Ok false
    | other -> Error (Printf.sprintf "unknown op %S (insert|delete)" other)
  in
  let* rel = req_str "rel" item in
  let* tuple =
    match Json.mem "tuple" item with
    | Some v -> tuple_of_json "tuple" v
    | None -> Error "missing field \"tuple\""
  in
  Ok { insert; rel; tuple }

let ops_of_json j =
  match Json.mem "ops" j with
  | Some (Json.List items) ->
      let* rev =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* o = mutation_op_of_json item in
            Ok (o :: acc))
          (Ok []) items
      in
      if rev = [] then Error "field \"ops\" must be non-empty"
      else Ok (List.rev rev)
  | _ -> Error "missing field \"ops\" (a list of operations)"

(* The negotiation rule: absent means version 1, anything we do not
   speak is a hard (typed) refusal — never a silent misparse. *)
let check_version j =
  match Json.mem "version" j with
  | None | Some Json.Null -> Ok ()
  | Some (Json.Int v) when v = protocol_version -> Ok ()
  | Some (Json.Int v) ->
      Error
        (Printf.sprintf "unsupported protocol version %d (this peer speaks %d)"
           v protocol_version)
  | Some _ -> Error "field \"version\" must be an integer"

(* String dispatch happens exactly once — [Verb.of_string] — and the
   per-verb decoders are selected by an exhaustive match over the
   closed variant: adding a [Verb.t] constructor without a decoder is a
   compile error. *)
let request_of_json j =
  let* () = check_version j in
  let* verb = req_str "verb" j in
  match Verb.of_string verb with
  | None -> Error (Printf.sprintf "unknown verb %S" verb)
  | Some v -> (
      match v with
      | Verb.Count ->
          let* p = params_of_json j in
          Ok (Count p)
      | Verb.Sample ->
          let* p = params_of_json j in
          let* draws = opt_int "draws" j in
          let draws = Option.value draws ~default:1 in
          if draws < 1 then Error "field \"draws\" must be positive"
          else Ok (Sample { params = p; draws })
      | Verb.Use ->
          let* name = req_str "name" j in
          Ok (Use name)
      | Verb.Load ->
          let* name = req_str "name" j in
          let* text = req_str "text" j in
          Ok (Load { name; text })
      | Verb.Insert ->
          let* db = db_ref_of_json j in
          let* rel = req_str "rel" j in
          let* tuples = tuples_of_json j in
          let* batch_id = opt_str "batch_id" j in
          Ok (Insert { db; rel; tuples; batch_id })
      | Verb.Delete ->
          let* db = db_ref_of_json j in
          let* rel = req_str "rel" j in
          let* tuples = tuples_of_json j in
          let* batch_id = opt_str "batch_id" j in
          Ok (Delete { db; rel; tuples; batch_id })
      | Verb.Load_batch ->
          let* db = db_ref_of_json j in
          let* ops = ops_of_json j in
          let* batch_id = opt_str "batch_id" j in
          Ok (Load_batch { db; ops; batch_id })
      | Verb.Stats -> Ok Stats
      | Verb.Metrics -> (
          match field_or "format" (Json.String "json") j with
          | Json.String f -> (
              match metrics_format_of_name f with
              | Some format -> Ok (Metrics_req { format })
              | None -> Error (Printf.sprintf "unknown metrics format %S" f))
          | _ -> Error "field \"format\" must be a string")
      | Verb.Ping -> Ok Ping
      | Verb.Health -> Ok Health)

let trace_summary_of_json t =
  let aggs =
    match Json.mem "aggs" t with
    | Some (Json.List items) ->
        List.filter_map
          (fun item ->
            match
              ( Option.bind (Json.mem "name" item) Json.to_str,
                Option.bind (Json.mem "count" item) Json.to_int,
                Option.bind (Json.mem "total_ms" item) Json.to_float,
                Option.bind (Json.mem "ticks" item) Json.to_int )
            with
            | Some agg_name, Some count, Some total_ms, Some agg_ticks ->
                Some { Trace.agg_name; count; total_ms; agg_ticks }
            | _ -> None)
          items
    | _ -> []
  in
  {
    Trace.spans =
      Option.value (Option.bind (Json.mem "spans" t) Json.to_int) ~default:0;
    summary_dropped =
      Option.value (Option.bind (Json.mem "dropped" t) Json.to_int) ~default:0;
    wall_ms =
      Option.value
        (Option.bind (Json.mem "wall_ms" t) Json.to_float)
        ~default:0.0;
    aggs;
  }

let telemetry_of_json j =
  match Json.mem "telemetry" j with
  | Some t -> (
      match
        ( Option.bind (Json.mem "seed" t) Json.to_int,
          Option.bind (Json.mem "jobs" t) Json.to_int,
          Option.bind (Json.mem "ticks" t) Json.to_int,
          Option.bind (Json.mem "elapsed_ms" t) Json.to_float )
      with
      | Some seed, Some jobs, Some ticks, Some elapsed_ms ->
          let trace =
            match Json.mem "trace" t with
            | Some (Json.Obj _ as tr) -> Some (trace_summary_of_json tr)
            | _ -> None
          in
          Ok (seed, jobs, ticks, elapsed_ms, trace)
      | _ -> Error "malformed \"telemetry\" object")
  | None -> Error "missing \"telemetry\" object"

let estimate_of_json j =
  (* prefer the bit-exact hex rendering *)
  match Json.mem "estimate_hex" j with
  | Some (Json.String h) -> (
      match float_of_string_opt h with
      | Some f -> Ok f
      | None -> Error "unreadable \"estimate_hex\"")
  | _ -> (
      match Option.bind (Json.mem "estimate" j) Json.to_float with
      | Some f -> Ok f
      | None -> Error "missing \"estimate\"")

let counted_of_json j =
  let* estimate = estimate_of_json j in
  let exact = field_or "exact" (Json.Bool false) j = Json.Bool true in
  let rung =
    match Json.mem "rung" j with Some (Json.String r) -> Some r | _ -> None
  in
  let guarantee = field_or "guarantee" (Json.Bool true) j = Json.Bool true in
  let degraded = field_or "degraded" (Json.Bool false) j = Json.Bool true in
  let* attempts =
    match field_or "attempts" (Json.List []) j with
    | Json.List items ->
        let decode item =
          match
            ( Option.bind (Json.mem "rung" item) Json.to_str,
              Option.bind (Json.mem "class" item) Json.to_str,
              Option.bind (Json.mem "message" item) Json.to_str )
          with
          | Some rung, Some error_class, Some error_message ->
              Ok { rung; error_class; error_message }
          | _ -> Error "malformed attempt entry"
        in
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* a = decode item in
            Ok (a :: acc))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "field \"attempts\" must be a list"
  in
  let* seed, jobs, ticks, elapsed_ms, trace = telemetry_of_json j in
  let cache_field name =
    match Json.mem "cache" j with
    | Some c -> (
        match Option.bind (Json.mem name c) Json.to_str with
        | Some s -> s
        | None -> "bypass")
    | None -> "bypass"
  in
  Ok
    (Counted
       {
         estimate;
         exact;
         rung;
         guarantee;
         degraded;
         attempts;
         seed;
         jobs;
         ticks;
         elapsed_ms;
         trace;
         plan_cache = cache_field "plan";
         result_cache = cache_field "result";
       })

let sampled_of_json j =
  let* samples =
    match Json.mem "samples" j with
    | Some (Json.List items) ->
        let decode = function
          | Json.Null -> Ok None
          | Json.List vs ->
              let* tau =
                List.fold_left
                  (fun acc v ->
                    let* acc = acc in
                    match Json.to_int v with
                    | Some i -> Ok (i :: acc)
                    | None -> Error "sample entries must be integers")
                  (Ok []) vs
              in
              Ok (Some (Array.of_list (List.rev tau)))
          | _ -> Error "malformed sample entry"
        in
        let* rev =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* s = decode item in
              Ok (s :: acc))
            (Ok []) items
        in
        Ok (Array.of_list (List.rev rev))
    | _ -> Error "missing \"samples\" list"
  in
  let* seed, jobs, ticks, elapsed_ms, trace = telemetry_of_json j in
  Ok (Sampled { samples; seed; jobs; ticks; elapsed_ms; trace })

let response_of_json j =
  let* () = check_version j in
  match Json.mem "error" j with
  | Some err ->
      let code =
        match Option.bind (Json.mem "status" j) Json.to_int with
        | Some c -> c
        | None -> 16
      in
      let error_class =
        Option.value
          (Option.bind (Json.mem "class" err) Json.to_str)
          ~default:"internal"
      in
      let message =
        Option.value
          (Option.bind (Json.mem "message" err) Json.to_str)
          ~default:"(no message)"
      in
      Ok (Refused { code; error_class; message })
  | None -> (
      let* verb = req_str "verb" j in
      match verb with
      | "count" -> counted_of_json j
      | "sample" -> sampled_of_json j
      | "use" ->
          let* name = req_str "name" j in
          let* fingerprint = req_str "fingerprint" j in
          let universe =
            Option.value
              (Option.bind (Json.mem "universe" j) Json.to_int)
              ~default:0
          in
          let size =
            Option.value
              (Option.bind (Json.mem "size" j) Json.to_int)
              ~default:0
          in
          Ok (Used { name; fingerprint; universe; size })
      | "load" ->
          let* name = req_str "name" j in
          let* fingerprint = req_str "fingerprint" j in
          let universe =
            Option.value
              (Option.bind (Json.mem "universe" j) Json.to_int)
              ~default:0
          in
          let size =
            Option.value
              (Option.bind (Json.mem "size" j) Json.to_int)
              ~default:0
          in
          Ok (Loaded { name; fingerprint; universe; size })
      | "mutate" ->
          let* name = req_str "name" j in
          let* fingerprint = req_str "fingerprint" j in
          let int_field f =
            Option.value (Option.bind (Json.mem f j) Json.to_int) ~default:0
          in
          let replayed = field_or "replayed" (Json.Bool false) j = Json.Bool true in
          Ok
            (Mutated
               {
                 name;
                 db_version = int_field "db_version";
                 fingerprint;
                 inserted = int_field "inserted";
                 deleted = int_field "deleted";
                 replayed;
               })
      | "stats" -> (
          match Json.mem "stats" j with
          | Some blob -> Ok (Stats_reply blob)
          | None -> Error "missing \"stats\" object")
      | "metrics" -> (
          let* format =
            match field_or "format" (Json.String "json") j with
            | Json.String f -> (
                match metrics_format_of_name f with
                | Some format -> Ok format
                | None -> Error (Printf.sprintf "unknown metrics format %S" f))
            | _ -> Error "field \"format\" must be a string"
          in
          match Json.mem "metrics" j with
          | Some payload -> Ok (Metrics_reply { format; payload })
          | None -> Error "missing \"metrics\" payload")
      | "ping" -> Ok Pong
      | "health" ->
          let bool_field name ~default =
            match Json.mem name j with
            | Some (Json.Bool b) -> b
            | _ -> default
          in
          let queue name ~default =
            match Option.bind (Json.mem "queue" j) (Json.mem name) with
            | Some (Json.Int v) -> v
            | _ -> default
          in
          Ok
            (Health_reply
               {
                 ready = bool_field "ready" ~default:false;
                 live = bool_field "live" ~default:false;
                 draining = bool_field "draining" ~default:false;
                 in_flight = queue "in_flight" ~default:0;
                 queue_capacity = queue "capacity" ~default:0;
                 catalog_entries =
                   Option.value
                     (Option.bind (Json.mem "catalog_entries" j) Json.to_int)
                     ~default:0;
                 recovered = bool_field "recovered" ~default:false;
                 uptime_ms =
                   Option.value
                     (Option.bind (Json.mem "uptime_ms" j) Json.to_float)
                     ~default:0.0;
               })
      | v -> Error (Printf.sprintf "unknown response verb %S" v))

(* ---------- framing ---------- *)

type read = Msg of Json.t | Eof | Bad of string

let read_json ic =
  match input_line ic with
  | exception End_of_file -> Eof
  | exception Sys_error _ -> Eof
  (* an expired SO_RCVTIMEO surfaces as EAGAIN, which the channel layer
     reports as Sys_blocked_io: same contract as a dead connection *)
  | exception Sys_blocked_io -> Eof
  | line -> (
      if String.trim line = "" then Bad "empty line"
      else
        match Json.parse line with
        | Ok j -> Msg j
        | Error e -> Bad (Json.error_message e))

let write_json oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc
