module Json = Ac_analysis.Json
module Api = Approxcount.Api
module Colour_oracle = Approxcount.Colour_oracle
module Error = Ac_runtime.Error

type db_ref = Named of string | Inline of string | Session

type params = {
  query : string;
  db : db_ref;
  eps : float;
  delta : float;
  method_ : Api.method_;
  seed : int option;
  jobs : int option;
  timeout_ms : int option;
  max_heap_mb : int option;
  strict : bool;
}

let params ?(eps = 0.25) ?(delta = 0.1) ?(method_ = Api.Auto) ?seed ?jobs
    ?timeout_ms ?max_heap_mb ?(strict = false) ~db query =
  { query; db; eps; delta; method_; seed; jobs; timeout_ms; max_heap_mb; strict }

type request =
  | Count of params
  | Sample of { params : params; draws : int }
  | Use of string
  | Stats
  | Ping

let method_of_name = function
  | "auto" -> Some Api.Auto
  | "fpras" -> Some Api.Fpras
  | "fptras" | "fptras/tree-dp" -> Some (Api.Fptras Colour_oracle.Tree_dp)
  | "fptras/generic" -> Some (Api.Fptras Colour_oracle.Generic)
  | "fptras/direct" -> Some (Api.Fptras Colour_oracle.Direct)
  | "exact" -> Some Api.Exact
  | "brute" -> Some Api.Brute
  | _ -> None

type attempt = { rung : string; error_class : string; error_message : string }

type outcome = {
  estimate : float;
  exact : bool;
  rung : string option;
  guarantee : bool;
  degraded : bool;
  attempts : attempt list;
  seed : int;
  jobs : int;
  ticks : int;
  elapsed_ms : float;
  plan_cache : string;
  result_cache : string;
}

type response =
  | Counted of outcome
  | Sampled of {
      samples : int array option array;
      seed : int;
      jobs : int;
      ticks : int;
      elapsed_ms : float;
    }
  | Used of { name : string; fingerprint : string; universe : int; size : int }
  | Stats_reply of Json.t
  | Pong
  | Refused of { code : int; error_class : string; message : string }

let status_of_response = function
  | Counted o -> if o.degraded then 3 else 0
  | Sampled _ | Used _ | Stats_reply _ | Pong -> 0
  | Refused r -> r.code

let response_of_error e =
  Refused
    {
      code = Error.exit_code e;
      error_class = Error.class_name e;
      message = Error.message e;
    }

(* ---------- encoding ---------- *)

let opt_int_field name = function
  | Some v -> [ (name, Json.Int v) ]
  | None -> []

let params_fields (p : params) =
  [
    ("query", Json.String p.query);
    ("eps", Json.Float p.eps);
    ("delta", Json.Float p.delta);
    ("method", Json.String (Api.method_name p.method_));
    ("strict", Json.Bool p.strict);
  ]
  @ (match p.db with
    | Named n -> [ ("use", Json.String n) ]
    | Inline text -> [ ("db_inline", Json.String text) ]
    | Session -> [])
  @ opt_int_field "seed" p.seed
  @ opt_int_field "jobs" p.jobs
  @ opt_int_field "timeout_ms" p.timeout_ms
  @ opt_int_field "max_heap_mb" p.max_heap_mb

let request_to_json = function
  | Count p -> Json.Obj (("verb", Json.String "count") :: params_fields p)
  | Sample { params = p; draws } ->
      Json.Obj
        ((("verb", Json.String "sample") :: params_fields p)
        @ [ ("draws", Json.Int draws) ])
  | Use name ->
      Json.Obj [ ("verb", Json.String "use"); ("name", Json.String name) ]
  | Stats -> Json.Obj [ ("verb", Json.String "stats") ]
  | Ping -> Json.Obj [ ("verb", Json.String "ping") ]

let telemetry_json ~seed ~jobs ~ticks ~elapsed_ms =
  Json.Obj
    [
      ("seed", Json.Int seed);
      ("jobs", Json.Int jobs);
      ("ticks", Json.Int ticks);
      ("elapsed_ms", Json.Float elapsed_ms);
    ]

let response_to_json r =
  let status = ("status", Json.Int (status_of_response r)) in
  match r with
  | Counted o ->
      Json.Obj
        [
          status;
          ("verb", Json.String "count");
          ("estimate", Json.Float o.estimate);
          ("estimate_hex", Json.String (Printf.sprintf "%h" o.estimate));
          ("exact", Json.Bool o.exact);
          ( "rung",
            match o.rung with Some r -> Json.String r | None -> Json.Null );
          ("guarantee", Json.Bool o.guarantee);
          ("degraded", Json.Bool o.degraded);
          ( "attempts",
            Json.List
              (List.map
                 (fun (a : attempt) ->
                   Json.Obj
                     [
                       ("rung", Json.String a.rung);
                       ("class", Json.String a.error_class);
                       ("message", Json.String a.error_message);
                     ])
                 o.attempts) );
          ( "telemetry",
            telemetry_json ~seed:o.seed ~jobs:o.jobs ~ticks:o.ticks
              ~elapsed_ms:o.elapsed_ms );
          ( "cache",
            Json.Obj
              [
                ("plan", Json.String o.plan_cache);
                ("result", Json.String o.result_cache);
              ] );
        ]
  | Sampled s ->
      Json.Obj
        [
          status;
          ("verb", Json.String "sample");
          ( "samples",
            Json.List
              (Array.to_list s.samples
              |> List.map (function
                   | None -> Json.Null
                   | Some tau ->
                       Json.List
                         (Array.to_list (Array.map (fun v -> Json.Int v) tau)))) );
          ( "telemetry",
            telemetry_json ~seed:s.seed ~jobs:s.jobs ~ticks:s.ticks
              ~elapsed_ms:s.elapsed_ms );
        ]
  | Used u ->
      Json.Obj
        [
          status;
          ("verb", Json.String "use");
          ("name", Json.String u.name);
          ("fingerprint", Json.String u.fingerprint);
          ("universe", Json.Int u.universe);
          ("size", Json.Int u.size);
        ]
  | Stats_reply blob ->
      Json.Obj [ status; ("verb", Json.String "stats"); ("stats", blob) ]
  | Pong -> Json.Obj [ status; ("verb", Json.String "ping") ]
  | Refused r ->
      Json.Obj
        [
          status;
          ( "error",
            Json.Obj
              [
                ("class", Json.String r.error_class);
                ("message", Json.String r.message);
              ] );
        ]

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let field_or name default j =
  match Json.mem name j with None | Some Json.Null -> default | Some v -> v

let req_str name j =
  match Json.mem name j with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_int name j =
  match Json.mem name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let opt_float name ~default j =
  match Json.mem name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S must be a number" name))

let opt_bool name ~default j =
  match Json.mem name j with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let params_of_json j =
  let* query = req_str "query" j in
  let* db =
    match (Json.mem "use" j, Json.mem "db_inline" j) with
    | Some (Json.String n), None -> Ok (Named n)
    | None, Some (Json.String text) -> Ok (Inline text)
    | None, None -> Ok Session
    | Some _, Some _ -> Error "give either \"use\" or \"db_inline\", not both"
    | _ -> Error "fields \"use\"/\"db_inline\" must be strings"
  in
  let* eps = opt_float "eps" ~default:0.25 j in
  let* delta = opt_float "delta" ~default:0.1 j in
  let* method_ =
    match field_or "method" (Json.String "auto") j with
    | Json.String name -> (
        match method_of_name name with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown method %S" name))
    | _ -> Error "field \"method\" must be a string"
  in
  let* seed = opt_int "seed" j in
  let* jobs = opt_int "jobs" j in
  let* timeout_ms = opt_int "timeout_ms" j in
  let* max_heap_mb = opt_int "max_heap_mb" j in
  let* strict = opt_bool "strict" ~default:false j in
  Ok { query; db; eps; delta; method_; seed; jobs; timeout_ms; max_heap_mb; strict }

let request_of_json j =
  let* verb = req_str "verb" j in
  match verb with
  | "count" ->
      let* p = params_of_json j in
      Ok (Count p)
  | "sample" ->
      let* p = params_of_json j in
      let* draws = opt_int "draws" j in
      let draws = Option.value draws ~default:1 in
      if draws < 1 then Error "field \"draws\" must be positive"
      else Ok (Sample { params = p; draws })
  | "use" ->
      let* name = req_str "name" j in
      Ok (Use name)
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | v -> Error (Printf.sprintf "unknown verb %S" v)

let telemetry_of_json j =
  match Json.mem "telemetry" j with
  | Some t -> (
      match
        ( Option.bind (Json.mem "seed" t) Json.to_int,
          Option.bind (Json.mem "jobs" t) Json.to_int,
          Option.bind (Json.mem "ticks" t) Json.to_int,
          Option.bind (Json.mem "elapsed_ms" t) Json.to_float )
      with
      | Some seed, Some jobs, Some ticks, Some elapsed_ms ->
          Ok (seed, jobs, ticks, elapsed_ms)
      | _ -> Error "malformed \"telemetry\" object")
  | None -> Error "missing \"telemetry\" object"

let estimate_of_json j =
  (* prefer the bit-exact hex rendering *)
  match Json.mem "estimate_hex" j with
  | Some (Json.String h) -> (
      match float_of_string_opt h with
      | Some f -> Ok f
      | None -> Error "unreadable \"estimate_hex\"")
  | _ -> (
      match Option.bind (Json.mem "estimate" j) Json.to_float with
      | Some f -> Ok f
      | None -> Error "missing \"estimate\"")

let counted_of_json j =
  let* estimate = estimate_of_json j in
  let exact = field_or "exact" (Json.Bool false) j = Json.Bool true in
  let rung =
    match Json.mem "rung" j with Some (Json.String r) -> Some r | _ -> None
  in
  let guarantee = field_or "guarantee" (Json.Bool true) j = Json.Bool true in
  let degraded = field_or "degraded" (Json.Bool false) j = Json.Bool true in
  let* attempts =
    match field_or "attempts" (Json.List []) j with
    | Json.List items ->
        let decode item =
          match
            ( Option.bind (Json.mem "rung" item) Json.to_str,
              Option.bind (Json.mem "class" item) Json.to_str,
              Option.bind (Json.mem "message" item) Json.to_str )
          with
          | Some rung, Some error_class, Some error_message ->
              Ok { rung; error_class; error_message }
          | _ -> Error "malformed attempt entry"
        in
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* a = decode item in
            Ok (a :: acc))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "field \"attempts\" must be a list"
  in
  let* seed, jobs, ticks, elapsed_ms = telemetry_of_json j in
  let cache_field name =
    match Json.mem "cache" j with
    | Some c -> (
        match Option.bind (Json.mem name c) Json.to_str with
        | Some s -> s
        | None -> "bypass")
    | None -> "bypass"
  in
  Ok
    (Counted
       {
         estimate;
         exact;
         rung;
         guarantee;
         degraded;
         attempts;
         seed;
         jobs;
         ticks;
         elapsed_ms;
         plan_cache = cache_field "plan";
         result_cache = cache_field "result";
       })

let sampled_of_json j =
  let* samples =
    match Json.mem "samples" j with
    | Some (Json.List items) ->
        let decode = function
          | Json.Null -> Ok None
          | Json.List vs ->
              let* tau =
                List.fold_left
                  (fun acc v ->
                    let* acc = acc in
                    match Json.to_int v with
                    | Some i -> Ok (i :: acc)
                    | None -> Error "sample entries must be integers")
                  (Ok []) vs
              in
              Ok (Some (Array.of_list (List.rev tau)))
          | _ -> Error "malformed sample entry"
        in
        let* rev =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* s = decode item in
              Ok (s :: acc))
            (Ok []) items
        in
        Ok (Array.of_list (List.rev rev))
    | _ -> Error "missing \"samples\" list"
  in
  let* seed, jobs, ticks, elapsed_ms = telemetry_of_json j in
  Ok (Sampled { samples; seed; jobs; ticks; elapsed_ms })

let response_of_json j =
  match Json.mem "error" j with
  | Some err ->
      let code =
        match Option.bind (Json.mem "status" j) Json.to_int with
        | Some c -> c
        | None -> 16
      in
      let error_class =
        Option.value
          (Option.bind (Json.mem "class" err) Json.to_str)
          ~default:"internal"
      in
      let message =
        Option.value
          (Option.bind (Json.mem "message" err) Json.to_str)
          ~default:"(no message)"
      in
      Ok (Refused { code; error_class; message })
  | None -> (
      let* verb = req_str "verb" j in
      match verb with
      | "count" -> counted_of_json j
      | "sample" -> sampled_of_json j
      | "use" ->
          let* name = req_str "name" j in
          let* fingerprint = req_str "fingerprint" j in
          let universe =
            Option.value
              (Option.bind (Json.mem "universe" j) Json.to_int)
              ~default:0
          in
          let size =
            Option.value
              (Option.bind (Json.mem "size" j) Json.to_int)
              ~default:0
          in
          Ok (Used { name; fingerprint; universe; size })
      | "stats" -> (
          match Json.mem "stats" j with
          | Some blob -> Ok (Stats_reply blob)
          | None -> Error "missing \"stats\" object")
      | "ping" -> Ok Pong
      | v -> Error (Printf.sprintf "unknown response verb %S" v))

(* ---------- framing ---------- *)

type read = Msg of Json.t | Eof | Bad of string

let read_json ic =
  match input_line ic with
  | exception End_of_file -> Eof
  | exception Sys_error _ -> Eof
  | line -> (
      if String.trim line = "" then Bad "empty line"
      else
        match Json.parse line with
        | Ok j -> Msg j
        | Error e -> Bad (Json.error_message e))

let write_json oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc
