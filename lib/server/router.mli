(** The fleet router: scatter-gather COUNT over sharded workers.

    A router owns a {!Partition.spec} whose shard count is the worker
    count. {!distribute} splits a database with {!Partition.split},
    ships shard [i] to worker [i] over the [LOAD] verb, and remembers
    the shard texts so a worker that restarts (and loses its in-memory
    catalog) is re-seeded transparently mid-scatter.

    {!scatter_count} fans a COUNT out to every worker and combines:

    - {b exact counts sum} — the partition property guarantees each
      answer is counted in exactly one shard (see
      {!Partition.shardable});
    - {b estimates sum with δ-splitting} — shard [i] runs at
      (ε, δ/N) under seed [Ac_exec.Seeds.derive ~seed:root i], so by
      the union bound the sum is an (ε, δ)-approximation, and the run
      is bit-reproducible from (root seed, shard count) alone;
    - {b partial failure degrades, never hangs} — a failed shard
      becomes an attempt entry (rung ["shard:ADDR"]) on a degraded
      response; only when {e every} shard fails does the call return a
      typed error.

    Queries whose join structure crosses shard boundaries are detected
    by {!plan}; the server falls back to local execution and counts the
    fallback in [acq_fleet_fallback_total{reason}].

    All operations are thread-safe (per-worker connection pools). *)

type t

(** [create ~strategy ~column addresses] — one shard per worker, in
    order. [policy] (default [Retry_policy.default]) governs every
    worker connection. Raises [Invalid_argument] on an empty worker
    list. *)
val create :
  ?policy:Retry_policy.t ->
  strategy:Partition.strategy ->
  column:int ->
  Client.address list ->
  t

val spec : t -> Partition.spec
val shards : t -> int
val addresses : t -> Client.address list

(** Has [name] been {!distribute}d through this router? *)
val manages : t -> string -> bool

(** Count a local-execution fallback in
    [acq_fleet_fallback_total{reason}]. [reason] must be a
    low-cardinality slug (["cross_shard"], ["unnamed_db"], …) — the
    human-readable detail belongs in the response, not the label. *)
val note_fallback : t -> reason:string -> unit

(** Split [db] and ship shard [i] to worker [i], replacing any previous
    distribution of [name]. Returns per-shard sizes ([‖D_i‖]). On any
    push failure the distribution is forgotten (COUNTs fall back to
    local execution) and the first error returned. *)
val distribute :
  t ->
  name:string ->
  Ac_relational.Structure.t ->
  (int array, Ac_runtime.Error.t) result

(** [Partition.shardable] under this router's spec. *)
val plan : t -> Ac_query.Ecq.t -> (int, string) result

(** Fan the COUNT out (one thread per worker) and combine, in
    shard-index order. The given params' [db]/[seed]/[delta]/[trace]
    are rewritten per shard (root seed drawn fresh when unseeded — the
    combined outcome's [seed] field is the replay handle); [eps],
    [method_], [jobs], timeouts and [strict] pass through. Restarted
    workers are re-seeded from the cached shard text and retried once.
    [Error] only when every shard failed. *)
val scatter_count :
  t -> name:string -> Wire.params -> (Wire.outcome, Ac_runtime.Error.t) result

(** Close all pooled connections (idle ones; checked-out connections
    close when their call completes). *)
val close : t -> unit
