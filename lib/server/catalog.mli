(** A named-database registry of {e live} databases.

    The daemon loads each structure through [Structure_io] {e once}
    (paying the parse and the fingerprint at registration time), wraps
    it in an [Ac_live.Live.Db] and serves it to every session: clients
    say [USE <name>] instead of re-shipping the database with each
    request, and the [INSERT]/[DELETE]/[LOAD_BATCH] verbs mutate it in
    place. An {!entry} is an immutable per-version materialization —
    the query snapshot, the rolling fingerprint and version the caches
    key on, and per-relation statistics recomputed over main+delta (so
    the cost model plans with honest numbers after mutation, never a
    stale seal). Entries are rebuilt lazily when the live version moves
    on; an unmutated db costs nothing.

    All operations are thread-safe. Registering an existing name
    replaces the slot (a reload picks up a regenerated file). *)

(** The analysis layer's catalog record, re-exported: the [STATS] wire
    verb serialises exactly the numbers the {!Ac_analysis.Cost} model
    instantiates its bounds with. *)
type relation_stats = Ac_analysis.Cardinality.relation_stats = {
  symbol : string;
  arity : int;
  cardinality : int;  (** number of facts *)
  active_domain : int;
      (** distinct universe elements occurring in the relation's facts *)
  distinct : int array;  (** distinct values per column, length [arity] *)
}

type entry = {
  name : string;
  db : Ac_relational.Structure.t;
      (** the live snapshot at [version] — sealed, stable: queries keep
          joining over it while writers advance the db *)
  fingerprint : string;
      (** rolling fingerprint ([Ac_live.Live.Db.fingerprint]); equals
          {!Ac_relational.Structure.fingerprint} of the base at
          version 0 *)
  version : int;  (** monotone mutation counter *)
  universe : int;
  size : int;  (** the paper's [‖D‖] *)
  relations : relation_stats list;  (** sorted by symbol; main+delta *)
  source : string option;
      (** the snapshot file backing the entry — what the recovery
          manifest replays after a crash; [None] for in-memory entries *)
}

(** Persistence coordinates of one file-backed entry, consumed by
    [Manifest.snapshot]: the snapshot file, its {e content} fingerprint
    (verified on reload), the db version the file captures, the rolling
    fingerprint at that version, and the journal holding every batch
    applied since. *)
type persistence = {
  p_name : string;
  p_path : string;
  p_fingerprint : string;
  p_version : int;
  p_live_fingerprint : string;
  p_journal : string option;
}

type t

val create : unit -> t

(** Register an in-memory structure (sealed here; fingerprint computed
    here) as a live db at version 0. *)
val add : t -> name:string -> Ac_relational.Structure.t -> entry

(** Load from a file via [Structure_io.load_fingerprinted] and register;
    typed [Io]/[Parse] errors pass through. [version] (default [0]) and
    [live_fingerprint] (default: the file's content fingerprint) resume
    a mutated db's version/fingerprint chain during recovery; [journal]
    attaches the delta journal path. *)
val load :
  ?version:int ->
  ?live_fingerprint:string ->
  ?journal:string ->
  t ->
  name:string ->
  path:string ->
  (entry, Ac_runtime.Error.t) result

(** The entry at the db's {e current} version (rematerialized if a
    mutation moved it). *)
val find : t -> string -> entry option

(** The live database behind an entry — the mutation verbs' target. *)
val live_find : t -> string -> Ac_live.Live.Db.t option

(** The journal path attached to an entry, if any. *)
val journal_of : t -> string -> string option

val set_journal : t -> string -> string option -> unit

(** [compact_source t name ~path ~fingerprint ~version ~live_fingerprint]
    repoints the slot's persistence at the snapshot file [path]
    (content fingerprint [fingerprint]) which captures the db at
    [version] with rolling fingerprint [live_fingerprint] — the next
    manifest write records exactly these. The version/fingerprint are
    explicit rather than read from the live db: a concurrent writer may
    have advanced the db past what the file captures, and a rollback
    after a failed manifest sync repoints at the {e prior} file, which
    captures the prior version. *)
val compact_source :
  t ->
  string ->
  path:string ->
  fingerprint:string ->
  version:int ->
  live_fingerprint:string ->
  unit

(** All entries, sorted by name. *)
val entries : t -> entry list

(** Persistence coordinates of every file-backed entry, sorted by name. *)
val persistence : t -> persistence list

(** Statistics of a loose structure (used for inline databases too). *)
val stats_of : Ac_relational.Structure.t -> relation_stats list

val entry_to_json : entry -> Ac_analysis.Json.t
