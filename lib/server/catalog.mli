(** A named-database registry.

    The daemon loads each structure through [Structure_io] {e once}
    (paying the parse and the fingerprint at registration time) and
    serves it to every session: clients say [USE <name>] instead of
    re-shipping the database with each request. An {!entry} carries the
    structure together with its stable fingerprint and per-relation
    statistics (arity, cardinality, active-domain size) — the numbers a
    planner or an operator wants without touching the data.

    All operations are thread-safe. Registering an existing name
    replaces the entry (a reload picks up a regenerated file). *)

(** The analysis layer's catalog record, re-exported: the [STATS] wire
    verb serialises exactly the numbers the {!Ac_analysis.Cost} model
    instantiates its bounds with. *)
type relation_stats = Ac_analysis.Cardinality.relation_stats = {
  symbol : string;
  arity : int;
  cardinality : int;  (** number of facts *)
  active_domain : int;
      (** distinct universe elements occurring in the relation's facts *)
  distinct : int array;  (** distinct values per column, length [arity] *)
}

type entry = {
  name : string;
  db : Ac_relational.Structure.t;
  fingerprint : string;  (** {!Ac_relational.Structure.fingerprint} *)
  universe : int;
  size : int;  (** the paper's [‖D‖] *)
  relations : relation_stats list;  (** sorted by symbol *)
  source : string option;
      (** the file the entry was {!load}ed from — what the recovery
          manifest replays after a crash; [None] for in-memory entries *)
}

type t

val create : unit -> t

(** Register an in-memory structure (fingerprint computed here). *)
val add : t -> name:string -> Ac_relational.Structure.t -> entry

(** Load from a file via [Structure_io.load_fingerprinted] and
    register; typed [Io]/[Parse] errors pass through. *)
val load :
  t -> name:string -> path:string -> (entry, Ac_runtime.Error.t) result

val find : t -> string -> entry option

(** All entries, sorted by name. *)
val entries : t -> entry list

(** Statistics of a loose structure (used for inline databases too). *)
val stats_of : Ac_relational.Structure.t -> relation_stats list

val entry_to_json : entry -> Ac_analysis.Json.t
