(** String-keyed LRU caches with hit/miss/eviction counters, plus the
    key builders the server uses.

    Both server caches are instances of {!Lru}: the {e plan cache}
    stores full analysis reports ([Ac_analysis.Report.t]) keyed on the
    query's canonical classification input and the database
    fingerprint (the report's db-aware lints depend on the database);
    the {e result cache} stores finished wire outcomes keyed on
    (query, db fingerprint, eps, delta, method, seed). All operations
    are thread-safe; the counters are exact under concurrency
    (every [find] is either a hit or a miss). *)

type stats = {
  capacity : int;
  length : int;
  hits : int;
  misses : int;
  evictions : int;
}

module Lru : sig
  type 'a t

  (** [capacity = 0] disables the cache: every [find] is a miss and
      [add] is a no-op — used to measure cold paths honestly. [name],
      when given, mirrors the counters to the process-wide metrics
      registry as [acq_cache_{hits,misses,evictions}_total{cache=name}]
      and [acq_cache_entries{cache=name}]; anonymous caches (tests,
      ad-hoc uses) keep only their exact per-instance {!stats}. *)
  val create : ?name:string -> capacity:int -> unit -> 'a t

  (** Refreshes the entry's recency on a hit. *)
  val find : 'a t -> string -> 'a option

  (** Inserts (or replaces) and evicts the least-recently-used entry
      when over capacity. *)
  val add : 'a t -> string -> 'a -> unit

  val stats : 'a t -> stats
end

val stats_to_json : stats -> Ac_analysis.Json.t

(** Canonical classification input of a query: free/total variable
    counts plus the atom list over variable {e indices} — variable
    names do not enter the key, so α-renamed queries share a plan. *)
val query_key : Ac_query.Ecq.t -> string

(** The database component of {!plan_key}/{!result_key} for a live
    (mutable) database: rolling fingerprint [@] version. A mutation
    changes both, so cached plans and results invalidate {e precisely}
    — entries for the old state stop being referenced, and the same
    version re-queried hits again. For inline databases the server
    passes the bare content fingerprint (version 0 semantics). *)
val db_key : fingerprint:string -> version:int -> string

(** Plan-cache key: {!query_key} plus the database fingerprint (the
    cached report carries database-aware diagnostics). *)
val plan_key : db_fingerprint:string -> Ac_query.Ecq.t -> string

(** Result-cache key: everything the estimate is a deterministic
    function of — query, database fingerprint, accuracy targets
    (rendered exactly, in hex), method and seed. [jobs] is absent by
    design: estimates are bit-identical for any jobs count. *)
val result_key :
  db_fingerprint:string ->
  eps:float ->
  delta:float ->
  method_name:string ->
  seed:int ->
  Ac_query.Ecq.t ->
  string
