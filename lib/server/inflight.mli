(** Single-flight deduplication of identical in-progress requests.

    The idempotency backstop behind retried seeded [COUNT]s: the first
    request for a key (the result-cache key — db fingerprint, eps,
    delta, method, seed, canonical query) becomes the {e leader} and
    computes; any identical request arriving while the leader runs
    becomes a {e follower} and blocks for the leader's answer instead
    of entering the scheduler. A retry therefore {e never} spends
    estimation budget twice: before completion it joins the leader,
    after completion it hits the result cache.

    Keys are removed on completion (the result cache owns finished
    answers); an exception escaping the leader is re-raised in every
    waiter so nobody is stranded. *)

type 'a t

val create : unit -> 'a t

type role = Leader | Follower

(** [run t ~key f] — compute [f ()] as the leader, or wait for the
    in-progress leader of [key] and return its answer. *)
val run : 'a t -> key:string -> (unit -> 'a) -> role * 'a

(** [(led, followed, currently_in_flight)]. *)
val stats : 'a t -> int * int * int
