module Structure = Ac_relational.Structure
module Structure_io = Ac_relational.Structure_io
module Json = Ac_analysis.Json
module Cardinality = Ac_analysis.Cardinality
module Live = Ac_live.Live

type relation_stats = Cardinality.relation_stats = {
  symbol : string;
  arity : int;
  cardinality : int;
  active_domain : int;
  distinct : int array;
}

type entry = {
  name : string;
  db : Structure.t;
  fingerprint : string;
  version : int;
  universe : int;
  size : int;
  relations : relation_stats list;
  source : string option;
}

(* The registry slot behind an entry: the live database plus its
   persistence coordinates. [entry] values are immutable per-version
   materializations of the slot, rebuilt lazily when the live version
   moves on — so queries hold a stable snapshot while writers advance
   the db, and stats always describe main+delta, never a stale seal. *)
type slot = {
  live : Live.Db.t;
  mutable source : string option;  (* snapshot file, None for in-memory *)
  mutable source_fingerprint : string option;  (* content fp of that file *)
  mutable snapshot_version : int;  (* db version the file captures *)
  mutable snapshot_fingerprint : string;  (* rolling fp at that version *)
  mutable journal : string option;
  mutable cached : entry option;
}

type persistence = {
  p_name : string;
  p_path : string;
  p_fingerprint : string;
  p_version : int;
  p_live_fingerprint : string;
  p_journal : string option;
}

type t = {
  table : (string, slot) Hashtbl.t;
  mutex : Mutex.t;
}

let create () = { table = Hashtbl.create 8; mutex = Mutex.create () }

(* Delegated to the analysis layer: the catalog serves exactly the
   numbers the cost model plans with (including per-column distinct
   counts; sealed relations answer those from their memoized column
   dictionaries). *)
let stats_of db = (Cardinality.of_structure db).Cardinality.stats

let refresh name slot =
  let version, fingerprint, db = Live.Db.current slot.live in
  let e =
    {
      name;
      db;
      fingerprint;
      version;
      universe = Structure.universe_size db;
      size = Structure.size db;
      relations = stats_of db;
      source = slot.source;
    }
  in
  slot.cached <- Some e;
  e

let entry_of_slot name slot =
  match slot.cached with
  | Some e when e.version = Live.Db.version slot.live -> e
  | _ -> refresh name slot

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add t ~name db =
  (* catalog-resident databases are query-only between mutations: seal
     into the columnar phase once, here, so every request joins over
     shared columns and reuses their memoized projections *)
  let live = Live.Db.of_structure db in
  let slot =
    {
      live;
      source = None;
      source_fingerprint = None;
      snapshot_version = 0;
      snapshot_fingerprint = Live.Db.fingerprint live;
      journal = None;
      cached = None;
    }
  in
  locked t (fun () ->
      Hashtbl.replace t.table name slot;
      entry_of_slot name slot)

let load ?(version = 0) ?live_fingerprint ?journal t ~name ~path =
  match Structure_io.load_fingerprinted path with
  | Error e -> Error e
  | Ok { Structure_io.db; fingerprint } ->
      let live_fp = Option.value live_fingerprint ~default:fingerprint in
      let live = Live.Db.of_structure ~version ~fingerprint:live_fp db in
      let slot =
        {
          live;
          source = Some path;
          source_fingerprint = Some fingerprint;
          snapshot_version = version;
          snapshot_fingerprint = live_fp;
          journal;
          cached = None;
        }
      in
      locked t (fun () ->
          Hashtbl.replace t.table name slot;
          Ok (entry_of_slot name slot))

let find t name =
  locked t (fun () ->
      Option.map (entry_of_slot name) (Hashtbl.find_opt t.table name))

let live_find t name =
  locked t (fun () ->
      Option.map (fun s -> s.live) (Hashtbl.find_opt t.table name))

let journal_of t name =
  locked t (fun () ->
      Option.bind (Hashtbl.find_opt t.table name) (fun s -> s.journal))

let set_journal t name journal =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some slot -> slot.journal <- journal)

let compact_source t name ~path ~fingerprint ~version ~live_fingerprint =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some slot ->
          slot.source <- Some path;
          slot.source_fingerprint <- Some fingerprint;
          (* explicit, never re-read from the live db: the caller knows
             which version the file at [path] actually captures — the
             live db may have moved on (concurrent writers), and a
             rollback repoints at a file capturing an older version *)
          slot.snapshot_version <- version;
          slot.snapshot_fingerprint <- live_fingerprint;
          (* the entry carries [source]; refresh on next lookup *)
          slot.cached <- None)

let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun name slot acc -> entry_of_slot name slot :: acc) t.table [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let persistence t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name slot acc ->
          match (slot.source, slot.source_fingerprint) with
          | Some path, Some fp ->
              {
                p_name = name;
                p_path = path;
                p_fingerprint = fp;
                p_version = slot.snapshot_version;
                p_live_fingerprint = slot.snapshot_fingerprint;
                p_journal = slot.journal;
              }
              :: acc
          | _ -> acc)
        t.table [])
  |> List.sort (fun a b -> String.compare a.p_name b.p_name)

let entry_to_json e =
  Json.Obj
    [
      ("name", Json.String e.name);
      ("fingerprint", Json.String e.fingerprint);
      ("version", Json.Int e.version);
      ("universe", Json.Int e.universe);
      ("size", Json.Int e.size);
      ( "relations",
        Json.List (List.map Cardinality.relation_stats_to_json e.relations) );
    ]
