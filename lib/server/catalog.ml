module Structure = Ac_relational.Structure
module Structure_io = Ac_relational.Structure_io
module Json = Ac_analysis.Json
module Cardinality = Ac_analysis.Cardinality

type relation_stats = Cardinality.relation_stats = {
  symbol : string;
  arity : int;
  cardinality : int;
  active_domain : int;
  distinct : int array;
}

type entry = {
  name : string;
  db : Structure.t;
  fingerprint : string;
  universe : int;
  size : int;
  relations : relation_stats list;
  source : string option;
}

type t = {
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
}

let create () = { table = Hashtbl.create 8; mutex = Mutex.create () }

(* Delegated to the analysis layer: the catalog serves exactly the
   numbers the cost model plans with (including per-column distinct
   counts; sealed relations answer those from their memoized column
   dictionaries). *)
let stats_of db = (Cardinality.of_structure db).Cardinality.stats

let entry_of ?source ~name ~fingerprint db =
  {
    name;
    db;
    fingerprint;
    universe = Structure.universe_size db;
    size = Structure.size db;
    relations = stats_of db;
    source;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add t ~name db =
  (* catalog-resident databases are query-only: seal into the columnar
     phase once, here, so every request joins over shared columns and
     reuses their memoized projections *)
  let db = Structure.seal db in
  let entry = entry_of ~name ~fingerprint:(Structure.fingerprint db) db in
  locked t (fun () -> Hashtbl.replace t.table name entry);
  entry

let load t ~name ~path =
  match Structure_io.load_fingerprinted path with
  | Error e -> Error e
  | Ok { Structure_io.db; fingerprint } ->
      let entry = entry_of ~source:path ~name ~fingerprint db in
      locked t (fun () -> Hashtbl.replace t.table name entry);
      Ok entry

let find t name = locked t (fun () -> Hashtbl.find_opt t.table name)

let entries t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let entry_to_json e =
  Json.Obj
    [
      ("name", Json.String e.name);
      ("fingerprint", Json.String e.fingerprint);
      ("universe", Json.Int e.universe);
      ("size", Json.Int e.size);
      ( "relations",
        Json.List (List.map Cardinality.relation_stats_to_json e.relations) );
    ]
