(** Client side of the {!Wire} protocol: one surface, one policy knob.

    [connect ?policy addr] is the single entry point; the
    {!Retry_policy.t} decides how hard a call tries. The default
    ([Retry_policy.none]) is the plain synchronous client — one
    attempt, no envelope ids, byte-identical wire behaviour to the
    historical [Client.connect] — while [Retry_policy.default] (or any
    policy with [attempts > 1]) buys the historical [Client.Durable]
    machinery: per-call deadlines, read timeouts, reconnection, capped
    decorrelated-jitter backoff, and envelope request ids that make
    duplicated or delayed frames harmless.

    A retrying client only ever retries {e idempotent} requests
    ([Wire.idempotent]: service verbs, seeded [COUNT]/[SAMPLE] and
    batch-id'd mutations); a transport fault on anything else is
    refused with a typed [Retry_unsafe] instead of silently answering a
    different random experiment.

    One {!t} is one connection (and therefore one server session —
    [USE] sticks; a policy-driven reconnect starts a fresh session).
    Calls are synchronous. Not thread-safe; open one client per thread
    — [Router]'s shard pools do exactly that.

    Every error a client returns names the address it was talking to
    (in the [file]/[source] field) and the verb it was sending (as a
    message prefix) — a transport failure is attributable without
    reproducing it.

    The historical entry points survive as thin deprecated aliases:
    plain [connect] is now literally [connect ?policy:None], and the
    {!Durable} submodule maps the old config record onto a policy. *)

type address = Unix_socket of string | Tcp of string * int

(** Accepts ["unix:PATH"], ["tcp:HOST:PORT"], ["HOST:PORT"] and a bare
    filesystem path (anything without a colon, or starting with [/] or
    [.]). *)
val address_of_string : string -> (address, string) result

val address_to_string : address -> string

type t

(** Connect eagerly; failures surface as typed [Io] errors. [policy]
    defaults to {!Retry_policy.none} (the plain client). *)
val connect : ?policy:Retry_policy.t -> address -> (t, Ac_runtime.Error.t) result

(** Like {!connect} but lazy: no connection is opened until the first
    {!call}, and — under a retrying policy — a dead one is transparently
    reopened. Never fails; the first call surfaces dial errors. *)
val create : ?policy:Retry_policy.t -> address -> t

val address : t -> address
val policy : t -> Retry_policy.t

(** Retries performed over the client's lifetime (also counted by the
    [acq_retries_total] metric, labelled by verb); always [0] under a
    single-attempt policy. *)
val retries_total : t -> int

(** One logical call under the client's policy.

    Single-attempt policy: one round trip; [Error] covers transport
    failures (the server closing mid-call, malformed response JSON) — a
    server-side refusal is a successful call returning [Wire.Refused].

    Retrying policy, additionally:
    - each attempt carries a fresh envelope id — a digest of the
      canonical request plus the attempt number — and frames whose id
      does not match are discarded, so duplicated or delayed frames
      from earlier attempts are harmless;
    - each attempt tells the server the {e remaining} deadline
      ([deadline_ms] on the wire), so admission control can shed work
      nobody will wait for; when the deadline passes, the call returns
      a typed [Deadline_exceeded];
    - transport faults on idempotent requests reconnect and retry under
      capped decorrelated-jitter backoff; on non-idempotent (unseeded)
      requests they return [Retry_unsafe];
    - a decoded response, including a server-side [Refused], is final —
      the retry layer never second-guesses the server. *)
val call : t -> Wire.request -> (Wire.response, Ac_runtime.Error.t) result

val close : t -> unit

(** @deprecated The historical retrying client, kept for one release as
    a veneer: [Durable.create ~config] is [create] with the config
    mapped onto a {!Retry_policy.t} ([attempts = retries + 1]). New
    code passes [~policy:Retry_policy.default] to {!connect}/{!create}
    directly. *)
module Durable : sig
  type config = {
    retries : int;  (** max retries after the first attempt (default 3) *)
    backoff_base_ms : float;  (** first sleep (default 10) *)
    backoff_cap_ms : float;  (** sleep ceiling (default 500) *)
    read_timeout_ms : int option;
    deadline_ms : int option;
    seed : int;  (** seeds the backoff jitter (default 0) *)
  }

  val default_config : config

  type nonrec t = t

  val create : ?config:config -> address -> t
  val address : t -> address
  val retries_total : t -> int
  val call : t -> Wire.request -> (Wire.response, Ac_runtime.Error.t) result
  val close : t -> unit
end
