(** Client side of the {!Wire} protocol: connect, call, close.

    Used by [acq --connect] and the benchmark harness. One {!t} is one
    connection (and therefore one server session — [USE] sticks).
    Calls are synchronous: {!call} writes one request line and blocks
    for the one response line. Not thread-safe; open one connection
    per thread.

    Every error a client returns names the address it was talking to
    (in the [file]/[source] field) and the verb it was sending (as a
    message prefix) — a transport failure is attributable without
    reproducing it.

    {!Durable} layers fault tolerance on top: per-call deadlines, read
    timeouts, reconnection, capped exponential backoff with
    decorrelated jitter, and envelope request ids that make duplicated
    or delayed frames harmless. It only ever retries {e idempotent}
    requests ([Wire.idempotent]: service verbs and seeded
    [COUNT]/[SAMPLE]); a transport fault on an unseeded request is
    refused with a typed [Retry_unsafe] instead of silently answering
    a different random experiment. *)

type address = Unix_socket of string | Tcp of string * int

(** Accepts ["unix:PATH"], ["tcp:HOST:PORT"], ["HOST:PORT"] and a bare
    filesystem path (anything without a colon, or starting with [/] or
    [.]). *)
val address_of_string : string -> (address, string) result

val address_to_string : address -> string

type t

(** Connection failures surface as typed [Io] errors. *)
val connect : address -> (t, Ac_runtime.Error.t) result

val address : t -> address

(** One round trip. [Error] covers transport failures (the server
    closing mid-call, malformed response JSON) — a server-side refusal
    is a successful call returning [Wire.Refused]. *)
val call : t -> Wire.request -> (Wire.response, Ac_runtime.Error.t) result

val close : t -> unit

(** The retrying client. *)
module Durable : sig
  type config = {
    retries : int;  (** max retries after the first attempt (default 3) *)
    backoff_base_ms : float;  (** first sleep (default 10) *)
    backoff_cap_ms : float;  (** sleep ceiling (default 500) *)
    read_timeout_ms : int option;
        (** per-receive [SO_RCVTIMEO]; an expired timer is treated as a
            dead connection (reconnect + retry). Default none. *)
    deadline_ms : int option;
        (** default end-to-end deadline per {!call} when the request
            itself names none. Default none. *)
    seed : int;  (** seeds the backoff jitter (default 0) *)
  }

  val default_config : config

  type t

  (** No connection is opened until the first {!call} (and a dead one
      is transparently reopened). *)
  val create : ?config:config -> address -> t

  val address : t -> address

  (** Retries performed over the client's lifetime (also counted by the
      [acq_retries_total] metric, labelled by verb). *)
  val retries_total : t -> int

  (** One logical request, transparently surviving transport faults:

      - each attempt carries a fresh envelope id — a digest of the
        canonical request plus the attempt number — and frames whose id
        does not match are discarded, so duplicated or delayed frames
        from earlier attempts are harmless;
      - each attempt tells the server the {e remaining} deadline
        ([deadline_ms] on the wire), so admission control can shed work
        nobody will wait for; when the deadline passes, the call
        returns a typed [Deadline_exceeded];
      - transport faults on idempotent requests reconnect and retry
        under capped decorrelated-jitter backoff; on non-idempotent
        (unseeded) requests they return [Retry_unsafe];
      - a decoded response, including a server-side [Refused], is final
        — the retry layer never second-guesses the server. *)
  val call : t -> Wire.request -> (Wire.response, Ac_runtime.Error.t) result

  val close : t -> unit
end
