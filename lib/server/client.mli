(** Client side of the {!Wire} protocol: connect, call, close.

    Used by [acq --connect] and the benchmark harness. One {!t} is one
    connection (and therefore one server session — [USE] sticks).
    Calls are synchronous: {!call} writes one request line and blocks
    for the one response line. Not thread-safe; open one connection
    per thread. *)

type address = Unix_socket of string | Tcp of string * int

(** Accepts ["unix:PATH"], ["tcp:HOST:PORT"], ["HOST:PORT"] and a bare
    filesystem path (anything without a colon, or starting with [/] or
    [.]). *)
val address_of_string : string -> (address, string) result

val address_to_string : address -> string

type t

(** Connection failures surface as typed [Io] errors. *)
val connect : address -> (t, Ac_runtime.Error.t) result

(** One round trip. [Error] covers transport failures (the server
    closing mid-call, malformed response JSON) — a server-side refusal
    is a successful call returning [Wire.Refused]. *)
val call : t -> Wire.request -> (Wire.response, Ac_runtime.Error.t) result

val close : t -> unit
