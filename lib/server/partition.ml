module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Seeds = Ac_exec.Seeds

type strategy = Hash | Range

let strategy_name = function Hash -> "hash" | Range -> "range"

type spec = { strategy : strategy; column : int; shards : int }

let make ~strategy ~column ~shards =
  if shards < 1 then invalid_arg "Partition.make: shards < 1";
  if column < 0 then invalid_arg "Partition.make: column < 0";
  { strategy; column; shards }

(* "hash:0:2" — strategy, column, shard count; what the manifest
   records so a recovered router knows how its data was cut. *)
let spec_to_string s =
  Printf.sprintf "%s:%d:%d" (strategy_name s.strategy) s.column s.shards

let strategy_of_string = function
  | "hash" -> Some Hash
  | "range" -> Some Range
  | _ -> None

let spec_of_string text =
  let fail () =
    Error
      (Printf.sprintf
         "%S: expected STRATEGY[:COLUMN[:SHARDS]] with strategy hash|range"
         text)
  in
  match String.split_on_char ':' text with
  | [ s ] -> (
      match strategy_of_string s with
      | Some strategy -> Ok { strategy; column = 0; shards = 1 }
      | None -> fail ())
  | [ s; c ] -> (
      match (strategy_of_string s, int_of_string_opt c) with
      | Some strategy, Some column when column >= 0 ->
          Ok { strategy; column; shards = 1 }
      | _ -> fail ())
  | [ s; c; n ] -> (
      match (strategy_of_string s, int_of_string_opt c, int_of_string_opt n)
      with
      | Some strategy, Some column, Some shards when column >= 0 && shards >= 1
        ->
          Ok { strategy; column; shards }
      | _ -> fail ())
  | _ -> fail ()

(* Shard of a universe element. Hash routes through the SplitMix64
   finaliser ([Seeds.derive] — the same bijective avalanche mix the
   trial streams use), so the placement is deterministic across runs
   and architectures; range cuts [0, universe) into [shards]
   contiguous blocks. *)
let shard_of spec ~universe_size v =
  if spec.shards = 1 then 0
  else
    match spec.strategy with
    | Hash -> Seeds.derive ~seed:0 v land max_int mod spec.shards
    | Range ->
        if universe_size <= 0 then 0
        else min (spec.shards - 1) (v * spec.shards / universe_size)

(* Horizontal split. Every shard keeps the full universe and the full
   signature (so per-shard query semantics — negated atoms complement
   against the same universe, variables range over the same domain —
   match the whole database's); facts route by the value at
   [spec.column]. Relations too narrow to have that column are
   replicated to every shard: they cannot appear in a shardable query
   (the partition variable cannot occur at a column they lack), so
   replication only serves fallback-free single-shard reads and keeps
   every shard a self-contained database. *)
let split spec db =
  let universe_size = Structure.universe_size db in
  let outs =
    Array.init spec.shards (fun _ ->
        let s = Structure.create ~universe_size in
        List.iter
          (fun sym -> Structure.declare s sym ~arity:(Structure.arity_of db sym))
          (Structure.symbols db);
        s)
  in
  List.iter
    (fun sym ->
      let rel = Structure.relation db sym in
      let arity = Relation.arity rel in
      if arity <= spec.column then
        Relation.iter
          (fun tuple ->
            Array.iter (fun out -> Structure.add_fact out sym tuple) outs)
          rel
      else
        Relation.iter
          (fun tuple ->
            let i = shard_of spec ~universe_size tuple.(spec.column) in
            Structure.add_fact outs.(i) sym tuple)
          rel)
    (Structure.symbols db);
  Array.map Structure.seal outs

(* ---------- shardability ---------- *)

(* A COUNT decomposes over the partition iff some {e free} variable x
   pins every predicate atom to x's shard:

   - x occurs at position [spec.column] of every positive and negated
     atom, and at least one atom is positive.

   Then an answer a lands exactly in shard i = shard_of(a(x)): every
   positive atom's witnessing fact has a(x) at the partition column, so
   it lives in shard i (and in no other shard — facts are partitioned),
   and a negated atom ¬R(ȳ) with a(x) at the column holds globally iff
   it holds in shard i, because the only shard that could contain the
   offending fact is i. Disequalities and the variable domains are
   untouched (shards keep the full universe). Summing per-shard counts
   therefore counts every answer exactly once.

   Freeness of x is essential: partitioning on an existential variable
   would count one answer in several shards whenever it has witnesses
   on both sides of a cut. The positive-atom requirement is too:
   an all-negative query is satisfied vacuously by every shard that
   does not hold the relevant facts, double-counting. *)
let shardable spec query =
  let atoms = Ecq.atoms query in
  let predicate_args =
    List.filter_map
      (function
        | Ecq.Atom (_, args) | Ecq.Neg_atom (_, args) -> Some args
        | Ecq.Diseq _ -> None)
      atoms
  in
  let has_positive =
    List.exists (function Ecq.Atom _ -> true | _ -> false) atoms
  in
  if predicate_args = [] then
    Error "no predicate atoms — nothing pins a shard"
  else if not has_positive then
    Error
      "only negated atoms — per-shard complements would double-count \
       vacuous answers"
  else
    let pins args =
      Array.length args > spec.column
      && args.(spec.column) >= 0
      && args.(spec.column) < Ecq.num_free query
    in
    (* candidate partition variables: free variables at the partition
       column of the FIRST atom; then require them at every other *)
    match predicate_args with
    | [] -> Error "no predicate atoms — nothing pins a shard"
    | first :: rest ->
        if not (pins first) then
          Error
            (Printf.sprintf
               "no free variable at partition column %d of every atom"
               spec.column)
        else
          let x = first.(spec.column) in
          if
            List.for_all
              (fun args ->
                Array.length args > spec.column && args.(spec.column) = x)
              rest
          then Ok x
          else
            Error
              (Printf.sprintf
                 "the join crosses shard boundaries: %s is not at column %d \
                  of every atom"
                 (Ecq.var_name query x) spec.column)
