(** The crash-safe catalog manifest.

    [acqd] snapshots the catalog — database name, source path,
    fingerprint — to a JSON manifest after every file-backed load,
    using write-to-temp + [rename]: the file on disk is always one
    complete snapshot, never a torn write, so a [kill -9] at any
    instruction leaves a loadable manifest.

    On restart {!recover} replays the manifest: each entry is reloaded
    from its recorded path and its fingerprint re-verified against the
    recorded one. A mismatch is a hard typed error — the data changed
    under the manifest, and serving it would silently change estimates
    that clients may have cached. A successful recovery is surfaced as
    the [recovered] flag in [STATS]/[HEALTH] and counted by the
    [acq_recovery_total] / [acq_recovery_entries_total] metrics. *)

type entry = { name : string; path : string; fingerprint : string }

(** The manifest schema version this build writes (1). Reading refuses
    other versions with a typed parse error. *)
val version : int

(** The file-backed entries of a catalog (in-memory/inline entries have
    no path to replay and are skipped). *)
val snapshot : Catalog.t -> entry list

(** Atomic write (temp file + rename, same directory). *)
val write : path:string -> entry list -> (unit, Ac_runtime.Error.t) result

(** [write] of [snapshot]. *)
val store : path:string -> Catalog.t -> (unit, Ac_runtime.Error.t) result

val read : path:string -> (entry list, Ac_runtime.Error.t) result

(** Replay a manifest into the catalog, re-verifying every fingerprint;
    returns the recovered names in manifest order. Typed [Io]/[Parse]
    errors on unreadable files or fingerprint drift. *)
val recover :
  path:string -> Catalog.t -> (string list, Ac_runtime.Error.t) result

val entry_to_json : entry -> Ac_analysis.Json.t
val to_json : entry list -> Ac_analysis.Json.t
