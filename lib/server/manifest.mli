(** The crash-safe catalog manifest.

    [acqd] snapshots the catalog — database name, snapshot path and
    content fingerprint, plus each live db's snapshot version, rolling
    fingerprint and journal path — to a JSON manifest after every
    file-backed load and every merge compaction, using write-to-temp +
    [rename]: the file on disk is always one complete snapshot, never a
    torn write, so a [kill -9] at any instruction leaves a loadable
    manifest.

    On restart {!recover} replays the manifest: each entry is reloaded
    from its recorded path, its {e content} fingerprint re-verified
    against the recorded one, and then — for mutated catalogs — every
    journal batch with a sequence number above the snapshot's version
    is re-applied through [Ac_live.Live.Db.apply], re-verifying the
    {e rolling} fingerprint chain line by line. A mismatch at either
    level is a hard typed error — the data changed under the manifest,
    and serving it would silently change estimates that clients may
    have cached. Batches already compacted into the snapshot (a crash
    between the manifest rewrite and the journal truncate) are skipped
    by sequence number; replayed batch ids land back in the dedupe
    table, so exactly-once survives the crash. A successful recovery
    is surfaced as the [recovered] flag in [STATS]/[HEALTH] and counted
    by the [acq_recovery_total] / [acq_recovery_entries_total] /
    [acq_recovery_batches_total] metrics. *)

type entry = {
  name : string;
  path : string;
  fingerprint : string;  (** content fingerprint of the snapshot file *)
  db_version : int;  (** db version the snapshot captures (0 = fresh) *)
  live_fingerprint : string;
      (** rolling fingerprint at [db_version]; equals [fingerprint] for
          an unmutated catalog *)
  journal : string option;  (** delta journal replayed above [db_version] *)
  partition : string option;
      (** the fleet partition spec ([Partition.spec_to_string], e.g.
          ["hash:0:2"]) under which a router daemon distributed this
          database — recorded so a restarted router re-cuts the data
          the same way; [None] for non-fleet daemons *)
}

(** The manifest schema version this build writes (1). The live fields
    are additive with static-catalog defaults, so version 1 is
    unchanged; reading refuses other versions with a typed parse
    error. *)
val version : int

(** The file-backed entries of a catalog (in-memory/inline entries have
    no path to replay and are skipped). [partition], when given, is
    stamped on every entry. *)
val snapshot : ?partition:string -> Catalog.t -> entry list

(** Atomic write (temp file + rename, same directory). *)
val write : path:string -> entry list -> (unit, Ac_runtime.Error.t) result

(** [write] of [snapshot]. *)
val store :
  path:string -> ?partition:string -> Catalog.t -> (unit, Ac_runtime.Error.t) result

val read : path:string -> (entry list, Ac_runtime.Error.t) result

(** Replay a manifest into the catalog — snapshot loads, content
    fingerprint checks, then journal replay with rolling-fingerprint
    verification; returns the recovered names in manifest order. Typed
    [Io]/[Parse] errors on unreadable files or fingerprint drift at
    either level. *)
val recover :
  path:string -> Catalog.t -> (string list, Ac_runtime.Error.t) result

val entry_to_json : entry -> Ac_analysis.Json.t
val to_json : entry list -> Ac_analysis.Json.t
