module Json = Ac_analysis.Json
module Error = Ac_runtime.Error
module Metrics = Ac_obs.Metrics

let m_recoveries =
  lazy
    (Metrics.counter Metrics.global "acq_recovery_total"
       ~help:"Catalog recoveries attempted from a manifest")

let m_recovered_entries =
  lazy
    (Metrics.counter Metrics.global "acq_recovery_entries_total"
       ~help:"Catalog entries replayed (fingerprint-verified) from a manifest")

type entry = { name : string; path : string; fingerprint : string }

let version = 1

(* ---------- encoding ---------- *)

let entry_to_json e =
  Json.Obj
    [
      ("name", Json.String e.name);
      ("path", Json.String e.path);
      ("fingerprint", Json.String e.fingerprint);
    ]

let to_json entries =
  Json.Obj
    [
      ("manifest_version", Json.Int version);
      ("databases", Json.List (List.map entry_to_json entries));
    ]

let entry_of_json j =
  let str field =
    match Json.mem field j with Some (Json.String s) -> Some s | _ -> None
  in
  match (str "name", str "path", str "fingerprint") with
  | Some name, Some path, Some fingerprint -> Ok { name; path; fingerprint }
  | _ -> Result.Error "manifest entry: need name, path, fingerprint strings"

let of_json j =
  match Json.mem "manifest_version" j with
  | Some (Json.Int v) when v <> version ->
      Result.Error (Printf.sprintf "unsupported manifest version %d" v)
  | _ -> (
      match Json.mem "databases" j with
      | Some (Json.List l) ->
          List.fold_left
            (fun acc e ->
              match (acc, entry_of_json e) with
              | Ok entries, Ok entry -> Ok (entry :: entries)
              | (Result.Error _ as err), _ -> err
              | _, (Result.Error _ as err) -> err)
            (Ok []) l
          |> Result.map List.rev
      | _ -> Result.Error "manifest: missing \"databases\" list")

(* ---------- atomic persistence ---------- *)

(* Write-to-temp + rename: the manifest at [path] is always either the
   previous complete snapshot or the new complete snapshot, never a
   torn write — a crash at any instruction leaves a loadable file. *)
let write ~path entries =
  let tmp = path ^ ".tmp" in
  let run () =
    let oc = open_out tmp in
    (match
       output_string oc (Json.to_string_pretty (to_json entries));
       output_char oc '\n';
       flush oc
     with
    | () -> close_out oc
    | exception e ->
        close_out_noerr oc;
        raise e);
    Unix.rename tmp path
  in
  match run () with
  | () -> Ok ()
  | exception Sys_error msg -> Result.Error (Error.Io { file = path; msg })
  | exception Unix.Unix_error (e, _, _) ->
      Result.Error (Error.Io { file = path; msg = Unix.error_message e })

let snapshot catalog =
  List.filter_map
    (fun (e : Catalog.entry) ->
      Option.map
        (fun path ->
          { name = e.Catalog.name; path; fingerprint = e.Catalog.fingerprint })
        e.Catalog.source)
    (Catalog.entries catalog)

let store ~path catalog = write ~path (snapshot catalog)

let read ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Result.Error (Error.Io { file = path; msg })
  | text -> (
      match Json.parse text with
      | Result.Error e ->
          Result.Error
            (Error.Parse { source = path; msg = Json.error_message e })
      | Ok j -> (
          match of_json j with
          | Ok entries -> Ok entries
          | Result.Error msg -> Result.Error (Error.Parse { source = path; msg })
          ))

(* ---------- recovery ---------- *)

let recover ~path catalog =
  match read ~path with
  | Result.Error e -> Result.Error e
  | Ok entries ->
      Metrics.incr (Lazy.force m_recoveries);
      let rec replay recovered = function
        | [] -> Ok (List.rev recovered)
        | e :: rest -> (
            match Catalog.load catalog ~name:e.name ~path:e.path with
            | Result.Error err -> Result.Error err
            | Ok loaded ->
                if loaded.Catalog.fingerprint <> e.fingerprint then
                  Result.Error
                    (Error.Io
                       {
                         file = e.path;
                         msg =
                           Printf.sprintf
                             "fingerprint mismatch recovering %s: manifest has \
                              %s, file has %s — the data changed since the \
                              manifest was written"
                             e.name e.fingerprint loaded.Catalog.fingerprint;
                       })
                else begin
                  Metrics.incr (Lazy.force m_recovered_entries);
                  replay (e.name :: recovered) rest
                end)
      in
      replay [] entries
