module Json = Ac_analysis.Json
module Error = Ac_runtime.Error
module Metrics = Ac_obs.Metrics
module Live = Ac_live.Live
module Journal = Ac_live.Journal

let m_recoveries =
  lazy
    (Metrics.counter Metrics.global "acq_recovery_total"
       ~help:"Catalog recoveries attempted from a manifest")

let m_recovered_entries =
  lazy
    (Metrics.counter Metrics.global "acq_recovery_entries_total"
       ~help:"Catalog entries replayed (fingerprint-verified) from a manifest")

let m_replayed_batches =
  lazy
    (Metrics.counter Metrics.global "acq_recovery_batches_total"
       ~help:"Journal batches replayed (fingerprint-chain-verified) during \
              recovery")

type entry = {
  name : string;
  path : string;
  fingerprint : string;
  db_version : int;
  live_fingerprint : string;
  journal : string option;
  partition : string option;
}

let version = 1

(* ---------- encoding ---------- *)

(* The live fields are additive (version 1 readers older than them fill
   in the static-catalog defaults: db_version 0, live fingerprint =
   content fingerprint, no journal), so the manifest version stays 1. *)
let entry_to_json e =
  Json.Obj
    ([
       ("name", Json.String e.name);
       ("path", Json.String e.path);
       ("fingerprint", Json.String e.fingerprint);
     ]
    @ (if e.db_version <> 0 then [ ("db_version", Json.Int e.db_version) ]
       else [])
    @ (if e.live_fingerprint <> e.fingerprint then
         [ ("live_fingerprint", Json.String e.live_fingerprint) ]
       else [])
    @ (match e.journal with
      | Some j -> [ ("journal", Json.String j) ]
      | None -> [])
    @
    match e.partition with
    | Some p -> [ ("partition", Json.String p) ]
    | None -> [])

let to_json entries =
  Json.Obj
    [
      ("manifest_version", Json.Int version);
      ("databases", Json.List (List.map entry_to_json entries));
    ]

let entry_of_json j =
  let str field =
    match Json.mem field j with Some (Json.String s) -> Some s | _ -> None
  in
  match (str "name", str "path", str "fingerprint") with
  | Some name, Some path, Some fingerprint ->
      Ok
        {
          name;
          path;
          fingerprint;
          db_version =
            Option.value
              (Option.bind (Json.mem "db_version" j) Json.to_int)
              ~default:0;
          live_fingerprint =
            Option.value (str "live_fingerprint") ~default:fingerprint;
          journal = str "journal";
          partition = str "partition";
        }
  | _ -> Result.Error "manifest entry: need name, path, fingerprint strings"

let of_json j =
  match Json.mem "manifest_version" j with
  | Some (Json.Int v) when v <> version ->
      Result.Error (Printf.sprintf "unsupported manifest version %d" v)
  | _ -> (
      match Json.mem "databases" j with
      | Some (Json.List l) ->
          List.fold_left
            (fun acc e ->
              match (acc, entry_of_json e) with
              | Ok entries, Ok entry -> Ok (entry :: entries)
              | (Result.Error _ as err), _ -> err
              | _, (Result.Error _ as err) -> err)
            (Ok []) l
          |> Result.map List.rev
      | _ -> Result.Error "manifest: missing \"databases\" list")

(* ---------- atomic persistence ---------- *)

(* Write-to-temp + fsync + rename + directory fsync: the manifest at
   [path] is always either the previous complete snapshot or the new
   complete snapshot, never a torn write — a crash (or power loss: the
   temp file is fsynced before the rename and the directory after it)
   at any instruction leaves a loadable file. *)
let write ~path entries =
  let tmp = path ^ ".tmp" in
  let run () =
    let oc = open_out tmp in
    (match
       output_string oc (Json.to_string_pretty (to_json entries));
       output_char oc '\n';
       flush oc;
       Unix.fsync (Unix.descr_of_out_channel oc)
     with
    | () -> close_out oc
    | exception e ->
        close_out_noerr oc;
        raise e);
    Unix.rename tmp path;
    Journal.fsync_dir (Filename.dirname path)
  in
  match run () with
  | () -> Ok ()
  | exception Sys_error msg -> Result.Error (Error.Io { file = path; msg })
  | exception Unix.Unix_error (e, _, _) ->
      Result.Error (Error.Io { file = path; msg = Unix.error_message e })

let snapshot ?partition catalog =
  List.map
    (fun (p : Catalog.persistence) ->
      {
        name = p.Catalog.p_name;
        path = p.Catalog.p_path;
        fingerprint = p.Catalog.p_fingerprint;
        db_version = p.Catalog.p_version;
        live_fingerprint = p.Catalog.p_live_fingerprint;
        journal = p.Catalog.p_journal;
        partition;
      })
    (Catalog.persistence catalog)

let store ~path ?partition catalog = write ~path (snapshot ?partition catalog)

let read ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Result.Error (Error.Io { file = path; msg })
  | text -> (
      match Json.parse text with
      | Result.Error e ->
          Result.Error
            (Error.Parse { source = path; msg = Json.error_message e })
      | Ok j -> (
          match of_json j with
          | Ok entries -> Ok entries
          | Result.Error msg -> Result.Error (Error.Parse { source = path; msg })
          ))

(* ---------- recovery ---------- *)

(* Replay the delta journal on top of a freshly loaded snapshot. Lines
   at or below the snapshot's version are already contained in the
   snapshot — a crash between the post-merge manifest rewrite and the
   journal truncate leaves already-compacted batches in the journal —
   so they are not re-applied, but their idempotency keys are
   registered so a client retry after the crash is still answered as a
   replay (change counts are not in the journal, so such a replay
   reports zero inserted/deleted). Applied lines must be gap-free from
   the snapshot's version on — appends happen under the db mutex in
   version order, so a missing sequence number means an acknowledged
   batch is gone — and every applied line must land on the fingerprint
   it recorded; a diverging chain means the journal does not belong to
   this snapshot, and serving it would silently change estimates. *)
let replay_journal ~journal_path live entry =
  match Journal.replay journal_path with
  | Result.Error e -> Result.Error e
  | Ok lines ->
      let rec go expected = function
        | [] -> Ok ()
        | (l : Journal.line) :: rest ->
            if l.Journal.seq <= entry.db_version then begin
              (match l.Journal.id with
              | Some id ->
                  Live.Db.record_batch live ~id
                    {
                      Live.Db.version = l.Journal.seq;
                      fingerprint = l.Journal.fingerprint;
                      inserted = 0;
                      deleted = 0;
                      replayed = false;
                    }
              | None -> ());
              go expected rest
            end
            else if l.Journal.seq <> expected then
              Result.Error
                (Error.Io
                   {
                     file = journal_path;
                     msg =
                       Printf.sprintf
                         "journal gap replaying %s: expected batch %d, found \
                          %d — acknowledged batches are missing from the \
                          journal"
                         entry.name expected l.Journal.seq;
                   })
            else (
              match Live.Db.apply ?id:l.Journal.id live l.Journal.ops with
              | Result.Error e -> Result.Error e
              | Ok applied ->
                  if applied.Live.Db.fingerprint <> l.Journal.fingerprint then
                    Result.Error
                      (Error.Io
                         {
                           file = journal_path;
                           msg =
                             Printf.sprintf
                               "fingerprint mismatch replaying %s at batch %d: \
                                journal has %s, replay produced %s — the \
                                journal does not match the snapshot"
                               entry.name l.Journal.seq l.Journal.fingerprint
                               applied.Live.Db.fingerprint;
                         })
                  else begin
                    Metrics.incr (Lazy.force m_replayed_batches);
                    go (expected + 1) rest
                  end)
      in
      go (entry.db_version + 1) lines

let recover ~path catalog =
  match read ~path with
  | Result.Error e -> Result.Error e
  | Ok entries ->
      Metrics.incr (Lazy.force m_recoveries);
      let rec replay recovered = function
        | [] -> Ok (List.rev recovered)
        | e :: rest -> (
            match
              Catalog.load ~version:e.db_version
                ~live_fingerprint:e.live_fingerprint ?journal:e.journal catalog
                ~name:e.name ~path:e.path
            with
            | Result.Error err -> Result.Error err
            | Ok _loaded ->
                (* the {e content} fingerprint guards the snapshot file:
                   the loaded entry's rolling fingerprint is whatever the
                   manifest recorded (it was passed in), so drift is
                   detected against the file's own digest, which the
                   catalog keeps in its persistence record *)
                let file_fp =
                  List.find_map
                    (fun (p : Catalog.persistence) ->
                      if p.Catalog.p_name = e.name then
                        Some p.Catalog.p_fingerprint
                      else None)
                    (Catalog.persistence catalog)
                  |> Option.value ~default:"(unknown)"
                in
                if file_fp <> e.fingerprint then
                  Result.Error
                    (Error.Io
                       {
                         file = e.path;
                         msg =
                           Printf.sprintf
                             "fingerprint mismatch recovering %s: manifest has \
                              %s, file has %s — the data changed since the \
                              manifest was written"
                             e.name e.fingerprint file_fp;
                       })
                else
                  let journal_result =
                    match e.journal with
                    | None -> Ok ()
                    | Some journal_path -> (
                        match Catalog.live_find catalog e.name with
                        | None -> Ok ()
                        | Some live -> replay_journal ~journal_path live e)
                  in
                  (match journal_result with
                  | Result.Error err -> Result.Error err
                  | Ok () ->
                      Metrics.incr (Lazy.force m_recovered_entries);
                      replay (e.name :: recovered) rest))
      in
      replay [] entries
