module Chaos = Ac_runtime.Chaos

type t = {
  path : string;
  listener : Unix.file_descr;
  plan : Chaos.Wire_plan.t;
  stopping : bool Atomic.t;
  mutex : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
  mutable conn_fds : Unix.file_descr list;
}

let plan t = t.plan
let path t = t.path

(* ---------- byte plumbing ---------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Printable junk that can never parse as JSON — visible in a captured
   stream, guaranteed to produce a framing error at the peer. *)
let garbage n = String.init n (fun i -> "#?!%&*~^".[i mod 8])

let quietly f = try f () with Unix.Unix_error _ | Sys_error _ -> ()

(* Requests pass through untouched: the harness models a flaky
   {e response} path, which is where retry correctness is interesting
   (the client cannot tell a lost request from a lost reply). *)
let pump_requests ~client ~upstream () =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Unix.read client buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        let rec put off =
          if off < n then
            match Unix.write upstream buf off (n - off) with
            | written -> put (off + written)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> put off
        in
        put 0;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  (* EOF from the client: tell the upstream server the session is over *)
  quietly (fun () -> Unix.shutdown upstream Unix.SHUTDOWN_SEND)

(* Response frames are read whole (newline-delimited), and the fault
   plan decides the fate of each one. Returns when the upstream closes
   or a connection-killing fault fires. *)
let pump_responses t ~upstream_ic ~client () =
  let rec go () =
    match input_line upstream_ic with
    | exception (End_of_file | Sys_error _) -> `Upstream_closed
    | frame -> (
        match Chaos.Wire_plan.next t.plan with
        | None ->
            write_all client (frame ^ "\n");
            go ()
        | Some (Chaos.Truncate_frame n) ->
            write_all client (String.sub frame 0 (min n (String.length frame)));
            `Killed
        | Some (Chaos.Delay_frame_ms ms) ->
            Unix.sleepf (float_of_int ms /. 1000.0);
            write_all client (frame ^ "\n");
            go ()
        | Some Chaos.Drop_connection -> `Killed
        | Some (Chaos.Garbage_bytes n) ->
            write_all client (garbage n ^ "\n");
            go ()
        | Some Chaos.Duplicate_frame ->
            write_all client (frame ^ "\n");
            write_all client (frame ^ "\n");
            go ())
  in
  ignore (go () : [ `Upstream_closed | `Killed ])

let handle_connection t ~serve client =
  let upstream_client, upstream_server =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  (* the real server speaks on its own descriptor, oblivious to the
     proxy — exactly the code path production connections take *)
  let server_thread = Thread.create (fun () -> serve upstream_server) () in
  let req_thread =
    Thread.create (pump_requests ~client ~upstream:upstream_client) ()
  in
  let upstream_ic = Unix.in_channel_of_descr upstream_client in
  (match pump_responses t ~upstream_ic ~client () with
  | () -> ()
  | exception Unix.Unix_error _ -> ()
  | exception Sys_error _ -> ());
  (* kill the client side first (wakes the request pump), then unwind *)
  quietly (fun () -> Unix.shutdown client Unix.SHUTDOWN_ALL);
  quietly (fun () -> Unix.close client);
  Thread.join req_thread;
  quietly (fun () -> Unix.close upstream_client);
  Thread.join server_thread

let accept_loop t ~serve () =
  let rec go () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.accept t.listener with
      | client, _ when Atomic.get t.stopping ->
          (* the wake-up connection from [stop] *)
          quietly (fun () -> Unix.close client)
      | client, _ ->
          let thread = Thread.create (fun () -> handle_connection t ~serve client) () in
          Mutex.lock t.mutex;
          t.conn_threads <- thread :: t.conn_threads;
          t.conn_fds <- client :: t.conn_fds;
          Mutex.unlock t.mutex
      | exception Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

let start ~path ~plan ~serve () =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 16;
  let t =
    {
      path;
      listener;
      plan;
      stopping = Atomic.make false;
      mutex = Mutex.create ();
      accept_thread = None;
      conn_threads = [];
      conn_fds = [];
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t ~serve) ());
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Closing a listener does NOT wake a thread blocked in accept(2)
       on Linux. Shutting it down does; the self-connect is the
       portable fallback (the accept loop recognises it via the
       stopping flag and just closes it). *)
    quietly (fun () -> Unix.shutdown t.listener Unix.SHUTDOWN_ALL);
    quietly (fun () ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> quietly (fun () -> Unix.close fd))
          (fun () -> Unix.connect fd (Unix.ADDR_UNIX t.path)));
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    t.accept_thread <- None;
    quietly (fun () -> Unix.close t.listener);
    Mutex.lock t.mutex;
    let fds = t.conn_fds and threads = t.conn_threads in
    t.conn_fds <- [];
    t.conn_threads <- [];
    Mutex.unlock t.mutex;
    List.iter
      (fun fd -> quietly (fun () -> Unix.shutdown fd Unix.SHUTDOWN_ALL))
      fds;
    List.iter Thread.join threads;
    quietly (fun () -> Unix.unlink t.path)
  end
