(** The resident query service behind [acqd].

    One {!t} holds the {!Catalog}, the plan and result {!Cache}s, the
    admission {!Scheduler} and the per-verb counters; {!handle} is the
    pure-ish dispatch (unit-testable without sockets),
    {!serve_connection} speaks the {!Wire} protocol over one file
    descriptor, and {!serve} is the accept loop with the
    graceful-shutdown contract.

    {b Determinism.} A [COUNT] with an explicit seed returns exactly
    what single-shot [acq count --seed N] returns — same estimate
    (bit-for-bit), rung, degradation trail — for any jobs count: the
    server builds the identical [Approxcount.Api.request] and runs it
    under an equivalent (unarmed) budget slice. Responses of seeded,
    non-degraded counts are cached; a result-cache hit skips estimation
    entirely (its telemetry reports 0 ticks).

    {b Shutdown.} {!request_stop} (async-signal-safe enough for a
    [Sys.Signal_handle]) makes {!serve} stop accepting, drain every
    in-flight request, disconnect the remaining clients and return;
    the daemon then exits 0. *)

type config = {
  queue_capacity : int;  (** admission bound (default 64) *)
  plan_cache_capacity : int;  (** default 256 *)
  result_cache_capacity : int;  (** default 1024 *)
  default_timeout_ms : int option;
      (** per-request wall-clock budget applied when the request names
          none (default [None] — bit-parity with single-shot runs) *)
  manifest : string option;
      (** where to persist the crash-recovery {!Manifest} (default
          [None] — no manifest, no recovery, no delta journals) *)
  merge_threshold : int;
      (** compact a live db's deltas back into sealed columns once the
          delta reaches this many rows (default 4096; [<= 0] disables
          merging) *)
  merge_ratio : float;
      (** …and the delta is at least this fraction of the main segment
          (default 0.25) — small deltas on big databases stay resident *)
  tenant_quota : int option;
      (** per-tenant in-flight bound under the global capacity (default
          [None] — no per-tenant quotas); see [Scheduler] *)
  verbose : bool;
}

val default_config : config

type t

(** [router], when given, makes this daemon a fleet router: a [COUNT]
    against a database the router has {!Router.distribute}d, whose join
    structure decomposes over the partition, is scattered over the
    workers instead of running locally (non-decomposing queries fall
    back to the local full copy, counted in
    [acq_fleet_fallback_total]); the recovery manifest is stamped with
    the partition spec. *)
val create : ?router:Router.t -> ?config:config -> unit -> t

val catalog : t -> Catalog.t
val scheduler : t -> Scheduler.t
val router : t -> Router.t option

(** The catalog was replayed from the manifest after a crash (surfaced
    in [STATS] and [HEALTH]). *)
val recovered : t -> bool

(** Load a database file into the catalog {e and} atomically refresh
    the recovery manifest (when configured). The daemon's loading path
    — use this instead of [Catalog.load] so a [kill -9] after any load
    finds a complete manifest on restart. When a manifest is
    configured the entry also gets a delta journal at
    [<manifest>.<name>.journal], reset here: mutation batches append to
    it and recovery replays it on top of the snapshot.

    If [name] was already replayed by {!recover} this boot, the
    recovered entry is kept and the load is skipped: the journal holds
    acknowledged batches, and resetting it on a routine restart that
    passes the same [--load] as the first boot would silently discard
    them. A genuinely fresh load needs the manifest (and journal)
    removed first. *)
val load_db :
  t -> name:string -> path:string -> (Catalog.entry, Ac_runtime.Error.t) result

(** Replay the configured manifest, if it exists: reload every recorded
    database and re-verify its fingerprint (see {!Manifest.recover}).
    Returns the recovered names ([[]] when there is no manifest or no
    file yet) and sets the {!recovered} flag when any were. *)
val recover : t -> (string list, Ac_runtime.Error.t) result

(** Per-connection state: the database selected by [USE]. *)
type session

val new_session : t -> session

(** Dispatch one request. Never raises; every failure is a
    [Wire.Refused] with the typed class and exit code. *)
val handle : t -> session -> Wire.request -> Wire.response

(** The [STATS] payload: uptime, per-verb counters, catalog entries,
    cache and scheduler statistics, pool workers. *)
val stats_json : t -> Ac_analysis.Json.t

(** Serve one established connection (blocking loop until EOF or
    disconnect); used directly by tests over [Unix.socketpair]. Closes
    the descriptor before returning. *)
val serve_connection : t -> Unix.file_descr -> unit

(** Bind a Unix-domain socket at [path], refusing to fight over it:
    if the file exists and a daemon answers a probe-connect, this is a
    typed [Io] error (two daemons must not share a socket); if nothing
    answers, the file is the residue of a crash — also a typed error
    naming the remedy, unless [force] (default false) cleans it up and
    binds. *)
val listen_unix :
  ?force:bool ->
  path:string ->
  unit ->
  (Unix.file_descr, Ac_runtime.Error.t) result

val listen_tcp : host:string -> port:int -> Unix.file_descr

(** Accept loop over the given listening descriptors. Returns after
    {!request_stop}: stops accepting, closes the listeners, drains the
    scheduler, shuts down client connections and joins their threads.
    Ignores [SIGPIPE] for the whole process (a disconnecting client
    must not kill the daemon). *)
val serve : t -> Unix.file_descr list -> unit

(** Ask a running {!serve} to shut down gracefully. Idempotent. *)
val request_stop : t -> unit
