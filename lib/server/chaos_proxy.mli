(** A fault-injecting proxy between a wire client and the daemon.

    The proxy listens on its own Unix-domain socket; each accepted
    connection is bridged to a fresh server-side descriptor (handed to
    the [serve] callback — in tests, [Server.serve_connection]) through
    two pumps. Requests pass through {e untouched}; every {e response}
    frame is submitted to the shared [Ac_runtime.Chaos.Wire_plan],
    which can truncate it mid-frame, delay it, drop the connection,
    replace it with printable garbage (the connection stays open — the
    client must resynchronise), or duplicate it. The plan is seeded, so
    every failure mode a test observes is replayable from the seed.

    The client cannot tell a lost request from a lost reply — faulting
    only the response path therefore exercises the full retry /
    idempotency surface while keeping the injected fault sequence
    deterministic (requests never consume plan decisions). *)

type t

(** [start ~path ~plan ~serve ()] binds [path] (an existing socket file
    is replaced) and starts accepting. Each connection runs [serve] on
    its own thread with a private descriptor; [serve] must close it
    (as [Server.serve_connection] does). *)
val start :
  path:string ->
  plan:Ac_runtime.Chaos.Wire_plan.t ->
  serve:(Unix.file_descr -> unit) ->
  unit ->
  t

(** The shared fault plan (for inspecting [history] after a run). *)
val plan : t -> Ac_runtime.Chaos.Wire_plan.t

val path : t -> string

(** Stop accepting, tear down live connections, join every thread and
    remove the socket file. Idempotent. *)
val stop : t -> unit
