module Error = Ac_runtime.Error

type address = Unix_socket of string | Tcp of string * int

let address_of_string s =
  if s = "" then Error "empty address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_socket (String.sub s 5 (String.length s - 5)))
  else
    let tcp spec =
      match String.rindex_opt spec ':' with
      | None -> Error (Printf.sprintf "%S: expected HOST:PORT" spec)
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Error (Printf.sprintf "%S: bad port %S" spec port))
    in
    if String.length s > 4 && String.sub s 0 4 = "tcp:" then
      tcp (String.sub s 4 (String.length s - 4))
    else if s.[0] = '/' || s.[0] = '.' || not (String.contains s ':') then
      Ok (Unix_socket s)
    else tcp s

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect address =
  let target, sockaddr =
    match address with
    | Unix_socket path -> (path, Ok (Unix.ADDR_UNIX path))
    | Tcp (host, port) -> (
        ( Printf.sprintf "%s:%d" host port,
          match (Unix.gethostbyname host).Unix.h_addr_list.(0) with
          | addr -> Ok (Unix.ADDR_INET (addr, port))
          | exception Not_found -> (
              match Unix.inet_addr_of_string host with
              | addr -> Ok (Unix.ADDR_INET (addr, port))
              | exception Failure _ ->
                  Error (Printf.sprintf "cannot resolve host %S" host)) ))
  in
  match sockaddr with
  | Error msg -> Error (Error.Io { file = target; msg })
  | Ok sockaddr -> (
      let domain = Unix.domain_of_sockaddr sockaddr in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd sockaddr with
      | () ->
          Ok
            {
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Error.Io { file = target; msg = Unix.error_message e }))

let call t request =
  match Wire.write_json t.oc (Wire.request_to_json request) with
  | exception Sys_error msg -> Error (Error.Io { file = "<server>"; msg })
  | () -> (
      match Wire.read_json t.ic with
      | Wire.Eof ->
          Error
            (Error.Io
               { file = "<server>"; msg = "connection closed by server" })
      | Wire.Bad msg ->
          Error (Error.Parse { source = "<server>"; msg })
      | Wire.Msg j -> (
          match Wire.response_of_json j with
          | Ok r -> Ok r
          | Error msg -> Error (Error.Parse { source = "<server>"; msg })))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
