module Error = Ac_runtime.Error
module Json = Ac_analysis.Json
module Metrics = Ac_obs.Metrics

type address = Unix_socket of string | Tcp of string * int

let address_of_string s =
  if s = "" then Error "empty address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_socket (String.sub s 5 (String.length s - 5)))
  else
    let tcp spec =
      match String.rindex_opt spec ':' with
      | None -> Error (Printf.sprintf "%S: expected HOST:PORT" spec)
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Error (Printf.sprintf "%S: bad port %S" spec port))
    in
    if String.length s > 4 && String.sub s 0 4 = "tcp:" then
      tcp (String.sub s 4 (String.length s - 4))
    else if s.[0] = '/' || s.[0] = '.' || not (String.contains s ':') then
      Ok (Unix_socket s)
    else tcp s

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* Every failure a client surfaces names where it was talking to and
   what it was doing — "connection closed" without an address is a
   debugging dead end in a fleet. *)
let io_error ~address ~verb msg =
  Error.Io
    { file = address_to_string address; msg = Printf.sprintf "%s: %s" verb msg }

let parse_error ~address ~verb msg =
  Error.Parse
    {
      source = address_to_string address;
      msg = Printf.sprintf "%s: %s" verb msg;
    }

(* ---------- the raw connection ---------- *)

type conn = {
  conn_address : address;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let dial address =
  let sockaddr =
    match address with
    | Unix_socket path -> Ok (Unix.ADDR_UNIX path)
    | Tcp (host, port) -> (
        match (Unix.gethostbyname host).Unix.h_addr_list.(0) with
        | addr -> Ok (Unix.ADDR_INET (addr, port))
        | exception Not_found -> (
            match Unix.inet_addr_of_string host with
            | addr -> Ok (Unix.ADDR_INET (addr, port))
            | exception Failure _ ->
                Error (Printf.sprintf "cannot resolve host %S" host)))
  in
  match sockaddr with
  | Error msg -> Error (io_error ~address ~verb:"connect" msg)
  | Ok sockaddr -> (
      let domain = Unix.domain_of_sockaddr sockaddr in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd sockaddr with
      | () ->
          Ok
            {
              conn_address = address;
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (io_error ~address ~verb:"connect" (Unix.error_message e)))

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* [ms = None] disarms the timer; [read_json] surfaces an expired
   SO_RCVTIMEO as [Eof], which the retry layer treats like any other
   dead connection. *)
let set_conn_read_timeout c ms =
  let seconds =
    match ms with None -> 0.0 | Some v -> float_of_int v /. 1000.0
  in
  try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* ---------- the unified client ---------- *)

let m_retries verb =
  Metrics.counter Metrics.global "acq_retries_total"
    ~help:"Client request retries after transport faults"
    ~labels:[ ("verb", verb) ]

type t = {
  policy : Retry_policy.t;
  addr : address;
  rng : Random.State.t;
  mutable conn : conn option;
  mutable seq : int;
  mutable retries_total : int;
  mutable encoded : (Wire.request * string * string) option;
      (* (request, canonical rendering, canonical digest) for the last
         deadline-free request, keyed on physical equality: retries and
         cache-hot replays resend identical bytes, so they skip
         re-encoding and re-hashing *)
}

let create ?(policy = Retry_policy.none) addr =
  {
    policy;
    addr;
    rng = Random.State.make [| policy.Retry_policy.seed; 0xac_c1 |];
    conn = None;
    seq = 0;
    retries_total = 0;
    encoded = None;
  }

let connect ?policy addr =
  let t = create ?policy addr in
  match dial addr with
  | Ok c ->
      t.conn <- Some c;
      Ok t
  | Error e -> Error e

let address t = t.addr
let policy t = t.policy
let retries_total t = t.retries_total

let close t =
  match t.conn with
  | Some c ->
      t.conn <- None;
      close_conn c
  | None -> ()

let drop_conn = close

let conn t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
      match dial t.addr with
      | Ok c ->
          t.conn <- Some c;
          Ok c
      | Error e -> Error e)

(* The idempotency key: a digest of the canonical request JSON (query,
   db reference, eps/delta/method/seed — everything that defines the
   answer) plus the attempt sequence number. Identical retries get
   fresh ids, so a duplicated or delayed frame from an earlier attempt
   can never be mistaken for the current answer. *)
let canonical_digest s = String.sub (Digest.to_hex (Digest.string s)) 0 16

(* [remaining_ms = None] means [wire_request == request] (no deadline
   rewriting), so the rendering and digest are cacheable. *)
let encode t ~request ~wire_request ~remaining_ms =
  match t.encoded with
  | Some (r, canonical, digest) when r == request && remaining_ms = None ->
      (canonical, digest)
  | _ ->
      let canonical = Json.to_string (Wire.request_to_json wire_request) in
      let digest = canonical_digest canonical in
      if remaining_ms = None then t.encoded <- Some (request, canonical, digest);
      (canonical, digest)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Decorrelated jitter (capped): sleep ~ U(base, prev * 3), never more
   than the cap — retries spread out instead of synchronising. *)
let next_backoff t prev =
  let base = t.policy.Retry_policy.backoff_base_ms in
  let hi = Float.max base (prev *. 3.0) in
  let span = hi -. base in
  Float.min t.policy.Retry_policy.backoff_cap_ms
    (base +. Random.State.float t.rng (Float.max span 1.0))

let request_deadline_ms t request =
  let param =
    match request with
    | Wire.Count p | Wire.Sample { params = p; _ } -> p.Wire.deadline_ms
    | _ -> None
  in
  match param with
  | Some d -> Some d
  | None -> t.policy.Retry_policy.deadline_ms

(* Each attempt tells the server how much time is actually left, so
   admission can shed work nobody will wait for. *)
let with_deadline request remaining_ms =
  match (request, remaining_ms) with
  | _, None -> request
  | Wire.Count p, Some ms -> Wire.Count { p with Wire.deadline_ms = Some ms }
  | Wire.Sample { params = p; draws }, Some ms ->
      Wire.Sample { params = { p with Wire.deadline_ms = Some ms }; draws }
  | other, Some _ -> other

(* Read until the frame with our id: a frame carrying a different id is
   a duplicate or delayed answer to an earlier attempt and is discarded
   (bounded, so a babbling peer cannot hold us forever). *)
let read_matching c ~verb ~id ~read_timeout_ms =
  let max_stale = 32 in
  let rec go n =
    if n > max_stale then
      Error
        (parse_error ~address:c.conn_address ~verb
           "too many stale frames (peer out of sync)")
    else begin
      set_conn_read_timeout c read_timeout_ms;
      match Wire.read_json c.ic with
      | Wire.Eof ->
          Error
            (io_error ~address:c.conn_address ~verb
               "connection closed by server (or read timed out)")
      | Wire.Bad msg -> Error (parse_error ~address:c.conn_address ~verb msg)
      | Wire.Msg j -> (
          match Wire.json_id j with
          | Some id' when id' <> id -> go (n + 1)
          | _ -> Ok j)
    end
  in
  go 0

(* One id-tagged attempt of a retrying call. *)
let attempt t ~verb ~remaining_ms request =
  match conn t with
  | Error e -> Error e
  | Ok c -> (
      let read_timeout_ms =
        match (t.policy.Retry_policy.read_timeout_ms, remaining_ms) with
        | Some r, Some d -> Some (min r d)
        | Some r, None -> Some r
        | None, d -> d
      in
      let wire_request = with_deadline request remaining_ms in
      (* Encode once: the rendering feeds the idempotency digest, and
         the id (a fixed-alphabet token, safe to splice verbatim) is
         pasted into that same rendering — the id'd frame costs one
         string concat, not a second Json.to_string of the request. *)
      let canonical, digest = encode t ~request ~wire_request ~remaining_ms in
      t.seq <- t.seq + 1;
      let id = digest ^ "-" ^ string_of_int t.seq in
      let line =
        if String.length canonical > 2 && canonical.[0] = '{' then
          "{\"id\":\"" ^ id ^ "\","
          ^ String.sub canonical 1 (String.length canonical - 1)
        else canonical
      in
      match
        output_string c.oc line;
        output_char c.oc '\n';
        flush c.oc
      with
      | exception Sys_error msg ->
          Error (io_error ~address:c.conn_address ~verb msg)
      | () -> (
          match read_matching c ~verb ~id ~read_timeout_ms with
          | Error e -> Error e
          | Ok j -> (
              match Wire.response_of_json j with
              | Ok r -> Ok r
              | Error msg ->
                  Error (parse_error ~address:c.conn_address ~verb msg))))

(* The single-attempt path: no envelope id, no deadline rewriting —
   byte-identical to the historical plain client, so [Retry_policy.none]
   really is the old [Client.connect]. *)
let call_once t request =
  let verb = Wire.verb_name request in
  match conn t with
  | Error e -> Error e
  | Ok c -> (
      match Wire.write_json c.oc (Wire.request_to_json request) with
      | exception Sys_error msg ->
          drop_conn t;
          Error (io_error ~address:c.conn_address ~verb msg)
      | () -> (
          set_conn_read_timeout c t.policy.Retry_policy.read_timeout_ms;
          match Wire.read_json c.ic with
          | Wire.Eof ->
              drop_conn t;
              Error
                (io_error ~address:c.conn_address ~verb
                   "connection closed by server (or read timed out)")
          | Wire.Bad msg -> Error (parse_error ~address:c.conn_address ~verb msg)
          | Wire.Msg j -> (
              match Wire.response_of_json j with
              | Ok r -> Ok r
              | Error msg ->
                  Error (parse_error ~address:c.conn_address ~verb msg))))

(* Transport faults are retryable; a decoded response — including a
   server-side refusal — is final. A [Parse] failure means the
   connection survived but the stream carried garbage: the framing
   contract has already resynchronised it, so the connection is kept.
   An [Io] failure means the connection is gone. *)
let call_retrying t request =
  let verb = Wire.verb_name request in
  let deadline_abs =
    Option.map
      (fun ms -> now_ms () +. float_of_int ms)
      (request_deadline_ms t request)
  in
  let remaining () =
    Option.map
      (fun d -> int_of_float (Float.ceil (d -. now_ms ())))
      deadline_abs
  in
  let deadline_error () =
    let budget =
      match request_deadline_ms t request with Some d -> d | None -> 0
    in
    Error.Deadline_exceeded
      {
        deadline_ms = budget;
        msg =
          Printf.sprintf "%s to %s gave up after %d retries" verb
            (address_to_string t.addr) t.retries_total;
      }
  in
  let rec go ~attempt_no ~backoff =
    match remaining () with
    | Some r when r <= 0 -> Error (deadline_error ())
    | remaining_ms -> (
        match attempt t ~verb ~remaining_ms request with
        | Ok r -> Ok r
        | Error e ->
            (match e with Error.Io _ -> drop_conn t | _ -> ());
            if attempt_no >= t.policy.Retry_policy.attempts then Error e
            else if not (Wire.idempotent request) then
              Error
                (Error.Retry_unsafe
                   {
                     verb;
                     msg =
                       Printf.sprintf
                         "transport fault (%s) but the request is unseeded — \
                          a retry would answer a different random \
                          experiment; pass an explicit seed to make it \
                          retryable"
                         (Error.message e);
                   })
            else begin
              t.retries_total <- t.retries_total + 1;
              Metrics.incr (m_retries verb);
              let sleep_ms =
                match remaining () with
                | Some r -> Float.min backoff (float_of_int (max r 0))
                | None -> backoff
              in
              if sleep_ms > 0.0 then Unix.sleepf (sleep_ms /. 1000.0);
              go ~attempt_no:(attempt_no + 1) ~backoff:(next_backoff t backoff)
            end)
  in
  go ~attempt_no:1 ~backoff:t.policy.Retry_policy.backoff_base_ms

let call t request =
  if Retry_policy.retrying t.policy then call_retrying t request
  else call_once t request

(* ---------- deprecated aliases ---------- *)

module Durable = struct
  type config = {
    retries : int;
    backoff_base_ms : float;
    backoff_cap_ms : float;
    read_timeout_ms : int option;
    deadline_ms : int option;
    seed : int;
  }

  let default_config =
    {
      retries = 3;
      backoff_base_ms = 10.0;
      backoff_cap_ms = 500.0;
      read_timeout_ms = None;
      deadline_ms = None;
      seed = 0;
    }

  let policy_of_config c =
    {
      Retry_policy.attempts = c.retries + 1;
      backoff_base_ms = c.backoff_base_ms;
      backoff_cap_ms = c.backoff_cap_ms;
      read_timeout_ms = c.read_timeout_ms;
      deadline_ms = c.deadline_ms;
      seed = c.seed;
    }

  type nonrec t = t

  let create ?(config = default_config) addr =
    create ~policy:(policy_of_config config) addr

  let address = address
  let retries_total = retries_total
  let call = call
  let close = close
end
