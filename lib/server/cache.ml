module Ecq = Ac_query.Ecq
module Json = Ac_analysis.Json
module Metrics = Ac_obs.Metrics

type stats = {
  capacity : int;
  length : int;
  hits : int;
  misses : int;
  evictions : int;
}

module Lru = struct
  type 'a entry = { value : 'a; mutable last_used : int }

  (* Per-instance counters stay exact under the instance mutex (the
     [stats] contract); named caches additionally mirror every event to
     the process-wide metrics registry, where the [cache] label keeps
     the plan and result caches apart on the METRICS surface. *)
  type meters = {
    m_hits : Metrics.counter;
    m_misses : Metrics.counter;
    m_evictions : Metrics.counter;
    m_entries : Metrics.gauge;
  }

  (* Recency is a monotone stamp per entry; eviction scans for the
     minimum. O(n) per eviction, but n is the (small) cache capacity
     and evictions only happen once the cache is full — simple beats
     clever for a correctness-critical shared structure. *)
  type 'a t = {
    capacity : int;
    table : (string, 'a entry) Hashtbl.t;
    mutex : Mutex.t;
    meters : meters option;
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?name ~capacity () =
    if capacity < 0 then invalid_arg "Cache.Lru.create: negative capacity";
    let meters =
      Option.map
        (fun name ->
          let labels = [ ("cache", name) ] in
          {
            m_hits =
              Metrics.counter Metrics.global "acq_cache_hits_total" ~labels
                ~help:"Cache lookups that hit";
            m_misses =
              Metrics.counter Metrics.global "acq_cache_misses_total" ~labels
                ~help:"Cache lookups that missed";
            m_evictions =
              Metrics.counter Metrics.global "acq_cache_evictions_total"
                ~labels ~help:"Entries evicted to make room";
            m_entries =
              Metrics.gauge Metrics.global "acq_cache_entries" ~labels
                ~help:"Entries currently cached";
          })
        name
    in
    {
      capacity;
      table = Hashtbl.create (max 16 capacity);
      mutex = Mutex.create ();
      meters;
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let meter t f = match t.meters with None -> () | Some m -> f m

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some entry ->
            t.clock <- t.clock + 1;
            entry.last_used <- t.clock;
            t.hits <- t.hits + 1;
            meter t (fun m -> Metrics.incr m.m_hits);
            Some entry.value
        | None ->
            t.misses <- t.misses + 1;
            meter t (fun m -> Metrics.incr m.m_misses);
            None)

  let evict_lru t =
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, stamp) when stamp <= entry.last_used -> acc
          | _ -> Some (key, entry.last_used))
        t.table None
    in
    match victim with
    | Some (key, _) ->
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1;
        meter t (fun m -> Metrics.incr m.m_evictions)
    | None -> ()

  let add t key value =
    if t.capacity > 0 then
      locked t (fun () ->
          t.clock <- t.clock + 1;
          (if not (Hashtbl.mem t.table key) then
             while Hashtbl.length t.table >= t.capacity do
               evict_lru t
             done);
          Hashtbl.replace t.table key { value; last_used = t.clock };
          meter t (fun m -> Metrics.set m.m_entries (Hashtbl.length t.table)))

  let stats t =
    locked t (fun () ->
        {
          capacity = t.capacity;
          length = Hashtbl.length t.table;
          hits = t.hits;
          misses = t.misses;
          evictions = t.evictions;
        })
end

let stats_to_json s =
  Json.Obj
    [
      ("capacity", Json.Int s.capacity);
      ("length", Json.Int s.length);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
    ]

let query_key q =
  let buf = Buffer.create 64 in
  Printf.bprintf buf "%d/%d" (Ecq.num_free q) (Ecq.num_vars q);
  let var_list vs =
    String.concat "," (List.map string_of_int (Array.to_list vs))
  in
  List.iter
    (fun atom ->
      match atom with
      | Ecq.Atom (r, vs) -> Printf.bprintf buf ";+%s(%s)" r (var_list vs)
      | Ecq.Neg_atom (r, vs) -> Printf.bprintf buf ";-%s(%s)" r (var_list vs)
      | Ecq.Diseq (i, j) -> Printf.bprintf buf ";%d!=%d" i j)
    (Ecq.atoms q);
  Buffer.contents buf

(* Version-precise invalidation: the db component of every cache key is
   (rolling fingerprint @ version). A mutation bumps both, so entries
   cached against the old state simply stop being referenced — no
   scanning, no flush — and re-querying a db at the same version hits
   again. *)
let db_key ~fingerprint ~version = Printf.sprintf "%s@%d" fingerprint version

let plan_key ~db_fingerprint q =
  Printf.sprintf "plan|%s|%s" db_fingerprint (query_key q)

let result_key ~db_fingerprint ~eps ~delta ~method_name ~seed q =
  (* floats in hex: the key must distinguish every representable
     accuracy target, not just six significant digits *)
  Printf.sprintf "result|%s|%h|%h|%s|%d|%s" db_fingerprint eps delta
    method_name seed (query_key q)
