(** Admission control: a bounded in-flight set over a global budget.

    Every request enters through {!submit}. When [capacity] requests
    are already in flight the scheduler {e rejects immediately} with a
    typed [Ac_runtime.Error.Overloaded] — backpressure is a fast, typed
    answer, never a hang or a growing queue. An admitted request runs
    on the calling (connection) thread under a sub-budget obtained with
    [Ac_runtime.Budget.split] from the scheduler's global budget: the
    sub-budget inherits the global heap watermark and remaining
    wall-clock/work limits, its ticks are absorbed back into the global
    budget after the request (so a server-wide work ceiling is
    enforceable), and a tripped request never poisons its siblings.
    The estimation trials inside a request fan out over the shared
    [Ac_exec.Pool] exactly as in single-shot runs.

    {!drain} blocks until the in-flight set is empty — the graceful
    shutdown path: stop admitting (close the listeners), then drain,
    then exit 0. *)

type stats = {
  capacity : int;
  in_flight : int;
  peak_in_flight : int;
  admitted : int;
  rejected : int;
  deadline_shed : int;
      (** requests shed at admission because their deadline had passed *)
  tenant_rejected : int;
      (** requests rejected because their tenant's quota was full *)
  completed : int;
  ticks : int;  (** total work ticks absorbed from finished requests *)
}

type t

(** [capacity] defaults to 64; [budget] defaults to an unarmed (but
    tick-counting) budget labelled ["acqd"]. [tenant_quota], when
    given, bounds the in-flight requests of any single tenant (see
    {!submit}) — a layer {e under} the global capacity, so one noisy
    tenant cannot monopolise the queue. *)
val create :
  ?capacity:int -> ?tenant_quota:int -> ?budget:Ac_runtime.Budget.t -> unit -> t

val capacity : t -> int

(** [submit t ~label f] — admit and run [f sub_budget] on the calling
    thread, or reject with [Error (Overloaded _)] when full. An
    exception escaping [f] is mapped to its typed error (unknown
    exceptions become [Internal]); the slot is released either way.

    [tenant] is the request's accounting identity. When the scheduler
    was created with a [tenant_quota] and this tenant already has that
    many requests in flight, the request is rejected with the same
    typed [Overloaded] class (exit 17 — retry later), counted in
    [tenant_rejected] and the [acq_tenant_rejected_total{tenant}]
    metric. Requests without a tenant share the anonymous pool and are
    only bounded by the global capacity.

    [deadline_ms] is the time the client is still willing to wait.
    When it is [<= 0] the request is {e shed} before taking a slot —
    [Error (Deadline_exceeded _)], counted in [deadline_shed] and the
    [acq_deadline_shed_total] metric — because answering late is
    indistinguishable from not answering, but costs budget. *)
val submit :
  t ->
  label:string ->
  ?tenant:string ->
  ?deadline_ms:int ->
  (Ac_runtime.Budget.t -> 'a) ->
  ('a, Ac_runtime.Error.t) result

(** Block until no request is in flight. *)
val drain : t -> unit

val stats : t -> stats
val stats_to_json : stats -> Ac_analysis.Json.t
