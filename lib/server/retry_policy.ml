(* How hard a client tries: one record, two canonical points.
   [none] is the plain single-attempt client (no envelope ids, no
   deadline rewriting — byte-identical wire behaviour to the historical
   [Client.connect]); [default] reproduces the historical
   [Client.Durable.default_config] (1 + 3 retries, 10..500 ms capped
   decorrelated-jitter backoff). *)

type t = {
  attempts : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  read_timeout_ms : int option;
  deadline_ms : int option;
  seed : int;
}

let none =
  {
    attempts = 1;
    backoff_base_ms = 0.0;
    backoff_cap_ms = 0.0;
    read_timeout_ms = None;
    deadline_ms = None;
    seed = 0;
  }

let default =
  {
    none with
    attempts = 4;
    backoff_base_ms = 10.0;
    backoff_cap_ms = 500.0;
  }

(* Any knob beyond the bare single attempt engages the durable call
   path (envelope ids, deadline rewriting, read timeouts): a
   one-attempt policy with a deadline still needs the deadline
   enforced. *)
let retrying t =
  t.attempts > 1 || t.deadline_ms <> None || t.read_timeout_ms <> None
