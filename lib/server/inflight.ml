type 'a outcome = Value of 'a | Raised of exn

type 'a slot = {
  mutex : Mutex.t;
  done_ : Condition.t;
  mutable outcome : 'a outcome option;
}

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a slot) Hashtbl.t;
  mutable led : int;
  mutable followed : int;
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 8; led = 0; followed = 0 }

type role = Leader | Follower

let run t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      (* a retry of a request that is still being computed: wait for
         the leader's answer instead of spending budget twice *)
      t.followed <- t.followed + 1;
      Mutex.unlock t.mutex;
      Mutex.lock slot.mutex;
      while slot.outcome = None do
        Condition.wait slot.done_ slot.mutex
      done;
      let outcome = Option.get slot.outcome in
      Mutex.unlock slot.mutex;
      (match outcome with
      | Value v -> (Follower, v)
      | Raised e -> raise e)
  | None ->
      let slot =
        { mutex = Mutex.create (); done_ = Condition.create (); outcome = None }
      in
      Hashtbl.replace t.table key slot;
      t.led <- t.led + 1;
      Mutex.unlock t.mutex;
      let publish outcome =
        (* unregister first so a request arriving after completion
           starts fresh (the result cache serves it), then wake the
           followers that joined while we ran *)
        Mutex.lock t.mutex;
        Hashtbl.remove t.table key;
        Mutex.unlock t.mutex;
        Mutex.lock slot.mutex;
        slot.outcome <- Some outcome;
        Condition.broadcast slot.done_;
        Mutex.unlock slot.mutex
      in
      (match f () with
      | v ->
          publish (Value v);
          (Leader, v)
      | exception e ->
          (* the contract is that [f] returns errors as values; an
             escaping exception still must not strand followers *)
          let bt = Printexc.get_raw_backtrace () in
          publish (Raised e);
          Printexc.raise_with_backtrace e bt)

let stats t =
  Mutex.lock t.mutex;
  let s = (t.led, t.followed, Hashtbl.length t.table) in
  Mutex.unlock t.mutex;
  s
