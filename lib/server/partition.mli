(** Horizontal database partitioning for the acqd fleet.

    A {!spec} cuts a database into [shards] self-contained databases:
    every shard keeps the {e full} universe and the full signature, and
    each fact of a relation wide enough to have column [column] lives in
    exactly one shard — the one {!shard_of} assigns to the fact's value
    at that column. Narrower relations are replicated to every shard
    (they cannot occur in a shardable query, see {!shardable}, so
    replication never double-counts).

    The spec travels in the manifest as {!spec_to_string} (e.g.
    ["hash:0:2"]) so a recovered router knows how its data was cut. *)

(** [Hash] routes a value through the SplitMix64 finaliser
    ([Ac_exec.Seeds.derive]) — deterministic across runs and
    architectures, balanced for skewed key sets. [Range] cuts
    [\[0, universe)] into [shards] contiguous blocks — placement is
    order-preserving, useful when keys are already uniform. *)
type strategy = Hash | Range

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option

type spec = { strategy : strategy; column : int; shards : int }

(** Raises [Invalid_argument] when [shards < 1] or [column < 0]. *)
val make : strategy:strategy -> column:int -> shards:int -> spec

(** ["hash:0:2"] — strategy, partition column, shard count. *)
val spec_to_string : spec -> string

(** Inverse of {!spec_to_string}; also accepts the abbreviated CLI
    spellings [STRATEGY] and [STRATEGY:COLUMN] (column defaults to 0,
    shards to 1 — the caller overrides shard count from the worker
    list). The error is a human-readable expectation. *)
val spec_of_string : string -> (spec, string) result

(** The shard owning universe element [v]. Deterministic; total on
    [0 .. shards - 1]. *)
val shard_of : spec -> universe_size:int -> int -> int

(** Split [db] into [spec.shards] sealed shards (full universe, full
    signature, facts routed by [spec.column]; relations with
    [arity <= column] replicated). The concatenation of all shards'
    facts, minus the replicas, is exactly [db]. *)
val split : spec -> Ac_relational.Structure.t -> Ac_relational.Structure.t array

(** Does the COUNT decompose over the partition?

    [Ok x] — [x] is a {e free} variable sitting at [spec.column] of
    {e every} predicate atom (positive and negated), and at least one
    atom is positive. Each answer [a] then lives in exactly the shard
    [shard_of spec (a x)]: positive witnesses are pinned there because
    facts are partitioned on that column, and a negated atom holds
    globally iff it holds there, because no other shard can hold the
    offending fact. Per-shard counts therefore {b sum} to the global
    count, exactly.

    [Error reason] — the join structure crosses shard boundaries (or
    nothing pins a shard at all); the router must fall back to local
    execution. The reason is human-readable and lands in the
    [acq_fleet_fallback_total{reason}] metric's log line. *)
val shardable : spec -> Ac_query.Ecq.t -> (int, string) result
