module Error = Ac_runtime.Error
module Entropy = Ac_runtime.Entropy
module Metrics = Ac_obs.Metrics
module Structure_io = Ac_relational.Structure_io
module Seeds = Ac_exec.Seeds

(* ---------- fleet metrics ---------- *)

let m_workers =
  lazy
    (Metrics.gauge Metrics.global "acq_fleet_workers"
       ~help:"Workers in the fleet router's shard map")

let m_scatter =
  lazy
    (Metrics.counter Metrics.global "acq_fleet_scatter_total"
       ~help:"COUNT requests fanned out over the fleet")

let m_scatter_duration =
  lazy
    (Metrics.histogram Metrics.global "acq_fleet_scatter_duration_ms"
       ~help:"Wall-clock duration of a fleet scatter-gather (milliseconds)")

let m_shard_request outcome =
  Metrics.counter Metrics.global "acq_fleet_shard_requests_total"
    ~help:"Per-shard sub-requests issued by the router, by outcome"
    ~labels:[ ("outcome", outcome) ]

let m_fallback reason =
  Metrics.counter Metrics.global "acq_fleet_fallback_total"
    ~help:
      "COUNT requests the router handed back to local execution, by reason"
    ~labels:[ ("reason", reason) ]

let m_repush =
  lazy
    (Metrics.counter Metrics.global "acq_fleet_repush_total"
       ~help:
         "Shards re-shipped to a worker that lost its catalog (restart \
          recovery)")

(* ---------- the fleet ---------- *)

(* One worker: an address plus a pool of idle connections. A client is
   single-threaded, so concurrent scatters check connections out and
   back in; transport faults drop the connection instead of returning a
   poisoned stream to the pool. *)
type worker = {
  w_address : Client.address;
  w_mutex : Mutex.t;
  mutable w_idle : Client.t list;
}

type t = {
  spec : Partition.spec;
  workers : worker array;
  policy : Retry_policy.t;
  mutex : Mutex.t;  (* guards [shard_texts] *)
  (* db name -> serialized shard per worker, kept so a worker that
     lost its catalog (crash + restart) can be re-seeded on the fly *)
  shard_texts : (string, string array) Hashtbl.t;
}

let create ?(policy = Retry_policy.default) ~strategy ~column addresses =
  if addresses = [] then invalid_arg "Router.create: no workers";
  let workers =
    Array.map
      (fun w_address -> { w_address; w_mutex = Mutex.create (); w_idle = [] })
      (Array.of_list addresses)
  in
  Metrics.set (Lazy.force m_workers) (Array.length workers);
  {
    spec =
      Partition.make ~strategy ~column ~shards:(Array.length workers);
    workers;
    policy;
    mutex = Mutex.create ();
    shard_texts = Hashtbl.create 8;
  }

let spec t = t.spec
let shards t = Array.length t.workers

let addresses t =
  Array.to_list (Array.map (fun w -> w.w_address) t.workers)

let manages t name =
  Mutex.lock t.mutex;
  let yes = Hashtbl.mem t.shard_texts name in
  Mutex.unlock t.mutex;
  yes

let note_fallback _t ~reason = Metrics.incr (m_fallback reason)

(* ---------- connection pool ---------- *)

let checkout t w =
  Mutex.lock w.w_mutex;
  match w.w_idle with
  | c :: rest ->
      w.w_idle <- rest;
      Mutex.unlock w.w_mutex;
      c
  | [] ->
      Mutex.unlock w.w_mutex;
      (* lazy: dial errors surface as the first call's typed Io *)
      Client.create ~policy:t.policy w.w_address

let checkin w c =
  Mutex.lock w.w_mutex;
  w.w_idle <- c :: w.w_idle;
  Mutex.unlock w.w_mutex

(* [call] on worker [i], pooling the connection on success. A server
   refusal travels as [Ok (Refused _)] and keeps the stream healthy, so
   only transport-level [Error]s drop the connection. *)
let call_worker t i request =
  let w = t.workers.(i) in
  let c = checkout t w in
  match Client.call c request with
  | Ok _ as ok ->
      checkin w c;
      ok
  | Error _ as err ->
      Client.close c;
      err

let worker_name t i = Client.address_to_string t.workers.(i).w_address

(* ---------- distribution ---------- *)

let shard_text t ~name i =
  Mutex.lock t.mutex;
  let text =
    match Hashtbl.find_opt t.shard_texts name with
    | Some texts when i < Array.length texts -> Some texts.(i)
    | _ -> None
  in
  Mutex.unlock t.mutex;
  text

let push_shard t ~name i =
  match shard_text t ~name i with
  | None ->
      Error
        (Error.Io
           {
             file = worker_name t i;
             msg = Printf.sprintf "no shard recorded for database %S" name;
           })
  | Some text -> (
      match call_worker t i (Wire.Load { name; text }) with
      | Ok (Wire.Loaded _) -> Ok ()
      | Ok (Wire.Refused { error_class; message; _ }) ->
          Error
            (Error.Io
               {
                 file = worker_name t i;
                 msg =
                   Printf.sprintf "worker refused shard %d of %S (%s): %s" i
                     name error_class message;
               })
      | Ok _ ->
          Error
            (Error.Io
               {
                 file = worker_name t i;
                 msg = "protocol error: unexpected response to LOAD";
               })
      | Error e -> Error e)

let distribute t ~name db =
  let parts = Partition.split t.spec db in
  let texts = Array.map Structure_io.to_string parts in
  Mutex.lock t.mutex;
  Hashtbl.replace t.shard_texts name texts;
  Mutex.unlock t.mutex;
  let n = Array.length t.workers in
  let rec push i =
    if i >= n then Ok ()
    else match push_shard t ~name i with Ok () -> push (i + 1) | Error e -> Error e
  in
  match push 0 with
  | Ok () -> Ok (Array.map Ac_relational.Structure.size parts)
  | Error e ->
      (* the fleet is inconsistent: forget the db so COUNTs fall back
         to local execution instead of scattering over half a fleet *)
      Mutex.lock t.mutex;
      Hashtbl.remove t.shard_texts name;
      Mutex.unlock t.mutex;
      Error e

let plan t query = Partition.shardable t.spec query

(* ---------- scatter-gather COUNT ---------- *)

(* Is this refusal "I don't know that database"? The signature of a
   worker that restarted and lost its (in-memory) shard: re-push the
   cached shard text and retry the sub-request once. *)
let unknown_db_refusal = function
  | Wire.Refused { error_class = "io"; message; _ } ->
      let needle = "unknown database" in
      let nl = String.length needle and ml = String.length message in
      let rec scan i =
        i + nl <= ml && (String.sub message i nl = needle || scan (i + 1))
      in
      scan 0
  | _ -> false

type shard_result =
  | Shard_ok of Wire.outcome
  | Shard_failed of { s_class : string; s_message : string }

let shard_count t ~name i (p : Wire.params) =
  let request = Wire.Count p in
  let attempt () = call_worker t i request in
  let response =
    match attempt () with
    | Ok r when unknown_db_refusal r -> (
        (* worker restarted since distribution: re-seed it and retry *)
        Metrics.incr (Lazy.force m_repush);
        match push_shard t ~name i with
        | Ok () -> attempt ()
        | Error e -> Error e)
    | other -> other
  in
  match response with
  | Ok (Wire.Counted o) ->
      Metrics.incr (m_shard_request "ok");
      Shard_ok o
  | Ok (Wire.Refused { error_class; message; _ }) ->
      Metrics.incr (m_shard_request "refused");
      Shard_failed { s_class = error_class; s_message = message }
  | Ok _ ->
      Metrics.incr (m_shard_request "protocol");
      Shard_failed
        {
          s_class = "io";
          s_message = "protocol error: unexpected response to COUNT";
        }
  | Error e ->
      Metrics.incr (m_shard_request "error");
      Shard_failed { s_class = Error.class_name e; s_message = Error.message e }

(* Combine per-shard outcomes, in shard-index order (the sum is
   deterministic for a fixed seed and shard count — float addition is
   not associative, so the order is part of the contract).

   - estimate: Σ over shards — exact when every shard was exact (the
     partition property: each answer is counted in exactly one shard);
   - guarantee: every shard kept its (ε, δ/N) guarantee and none
     failed — by the union bound the sum is then within (1 ± ε) of the
     true count with probability ≥ 1 − δ;
   - degraded: any shard degraded {e or} failed; failed shards
     contribute an attempt entry (rung ["shard:ADDR"]) and their
     absence makes the estimate a lower bound, surfaced exactly like a
     local degradation trail;
   - ticks: Σ of worker-side work; elapsed: router wall clock. *)
let combine t ~root_seed ~jobs ~elapsed_ms results =
  let n = Array.length results in
  let exact = ref true in
  let guarantee = ref true in
  let degraded = ref false in
  let ticks = ref 0 in
  let max_jobs = ref jobs in
  let rung = ref None in
  let rung_mixed = ref false in
  let attempts = ref [] in
  for i = n - 1 downto 0 do
    match results.(i) with
    | Shard_ok o ->
        if not o.Wire.exact then exact := false;
        if not o.Wire.guarantee then guarantee := false;
        if o.Wire.degraded then degraded := true;
        ticks := !ticks + o.Wire.ticks;
        if o.Wire.jobs > !max_jobs then max_jobs := o.Wire.jobs;
        (match (!rung, o.Wire.rung) with
        | None, r -> rung := r
        | Some r, Some r' when r = r' -> ()
        | Some _, _ -> rung_mixed := true);
        attempts :=
          List.map
            (fun (a : Wire.attempt) ->
              {
                a with
                Wire.rung =
                  Printf.sprintf "shard:%s:%s" (worker_name t i) a.Wire.rung;
              })
            o.Wire.attempts
          @ !attempts
    | Shard_failed { s_class; s_message } ->
        exact := false;
        guarantee := false;
        degraded := true;
        attempts :=
          {
            Wire.rung = Printf.sprintf "shard:%s" (worker_name t i);
            error_class = s_class;
            error_message = s_message;
          }
          :: !attempts
  done;
  (* estimate is a sum in shard order: recompute forward so the order
     is the documented one (the loop above runs backwards to build the
     attempts list without a List.rev) *)
  let forward_sum = ref 0.0 in
  Array.iter
    (function
      | Shard_ok o -> forward_sum := !forward_sum +. o.Wire.estimate
      | Shard_failed _ -> ())
    results;
  {
    Wire.estimate = !forward_sum;
    exact = !exact;
    rung = (if !rung_mixed then Some "fleet:mixed" else !rung);
    guarantee = !guarantee;
    degraded = !degraded;
    attempts = !attempts;
    seed = root_seed;
    jobs = !max_jobs;
    ticks = !ticks;
    elapsed_ms;
    trace = None;
    plan_cache = "bypass";
    result_cache = "bypass";
  }

let scatter_count t ~name (p : Wire.params) =
  let n = Array.length t.workers in
  Metrics.incr (Lazy.force m_scatter);
  let t0 = Unix.gettimeofday () in
  let root_seed =
    match p.Wire.seed with Some s -> s | None -> Entropy.fresh_seed ()
  in
  (* per-shard sub-request: shard i runs at (ε, δ/N) under the i-th
     SplitMix64-derived seed — the same derivation the parallel trial
     streams use, so a sharded run is reproducible from (root seed,
     shard count) alone. Workers answer with their own tenant pool and
     no tracing (the router's span is the fleet-level record). *)
  let sub i =
    {
      p with
      Wire.db = Wire.Named name;
      seed = Some (Seeds.derive ~seed:root_seed i);
      delta = p.Wire.delta /. float_of_int n;
      trace = false;
      tenant = None;
    }
  in
  let results =
    Array.make n
      (Shard_failed { s_class = "internal"; s_message = "shard not run" })
  in
  let run i = results.(i) <- shard_count t ~name i (sub i) in
  if n = 1 then run 0
  else begin
    let threads =
      Array.init n (fun i -> Thread.create (fun () -> run i) ())
    in
    Array.iter Thread.join threads
  end;
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Metrics.observe (Lazy.force m_scatter_duration) elapsed_ms;
  let any_ok =
    Array.exists (function Shard_ok _ -> true | _ -> false) results
  in
  if not any_ok then
    (* every shard failed: no estimate to degrade — surface the first
       failure as the typed refusal *)
    match results.(0) with
    | Shard_failed { s_class; s_message } ->
        Error
          (Error.Io
             {
               file = worker_name t 0;
               msg =
                 Printf.sprintf "all %d shards failed; first (%s): %s" n
                   s_class s_message;
             })
    | Shard_ok _ -> assert false
  else
    Ok
      (combine t ~root_seed
         ~jobs:(match p.Wire.jobs with Some j -> max 1 j | None -> 1)
         ~elapsed_ms results)

let close t =
  Array.iter
    (fun w ->
      Mutex.lock w.w_mutex;
      let idle = w.w_idle in
      w.w_idle <- [];
      Mutex.unlock w.w_mutex;
      List.iter Client.close idle)
    t.workers
