(** How hard a {!Client} tries: attempts, backoff, deadlines.

    One policy record parameterises the whole client surface —
    [Client.connect ?policy] is the single entry point, and the two
    canonical points of the policy space recover the two historical
    clients:

    - {!none} (the default) is the plain client: one attempt, no
      envelope request ids, no deadline rewriting — byte-identical wire
      behaviour to the pre-policy [Client.connect];
    - {!default} is the historical durable client
      ([Client.Durable.default_config]): 4 total attempts with capped
      decorrelated-jitter backoff between them.

    An engaged policy (see {!retrying}) buys the full fault-tolerance
    machinery: envelope ids with stale-frame discard, per-attempt
    deadline rewriting, reconnection, and the [Retry_unsafe] refusal on
    non-idempotent requests. *)

type t = {
  attempts : int;
      (** total attempts per call, [>= 1]; [1] disables the retry loop
          (a deadline or read timeout still engages the durable call
          path so it can be enforced) *)
  backoff_base_ms : float;  (** first sleep between attempts *)
  backoff_cap_ms : float;  (** sleep ceiling *)
  read_timeout_ms : int option;
      (** per-receive [SO_RCVTIMEO]; an expired timer is treated as a
          dead connection (reconnect + retry under a retrying policy) *)
  deadline_ms : int option;
      (** default end-to-end deadline per call when the request itself
          names none *)
  seed : int;  (** seeds the backoff jitter *)
}

(** One attempt, nothing else — today's plain client. *)
val none : t

(** 4 attempts, 10..500 ms capped decorrelated-jitter backoff — the
    historical durable client. *)
val default : t

(** Does the policy engage the durable call path? True when
    [attempts > 1] or a deadline/read timeout is set — {!none} (and any
    policy equal to it in these fields) stays on the plain
    single-attempt path. *)
val retrying : t -> bool
