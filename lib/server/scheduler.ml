module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Json = Ac_analysis.Json
module Metrics = Ac_obs.Metrics

(* Global admission-control metrics: queue depth as gauges, admission
   outcomes as counters. Exact per-instance numbers stay in [stats];
   these are the scrape surface. *)
let m_in_flight =
  lazy
    (Metrics.gauge Metrics.global "acq_scheduler_in_flight"
       ~help:"Requests currently executing under admission control")

let m_capacity =
  lazy
    (Metrics.gauge Metrics.global "acq_scheduler_capacity"
       ~help:"Admission-control concurrency limit")

let m_admitted =
  lazy
    (Metrics.counter Metrics.global "acq_scheduler_admitted_total"
       ~help:"Requests admitted by the scheduler")

let m_rejected =
  lazy
    (Metrics.counter Metrics.global "acq_scheduler_rejected_total"
       ~help:"Requests rejected at admission (capacity reached)")

let m_deadline_shed =
  lazy
    (Metrics.counter Metrics.global "acq_deadline_shed_total"
       ~help:"Requests shed at admission because their deadline had passed")

let m_completed =
  lazy
    (Metrics.counter Metrics.global "acq_scheduler_completed_total"
       ~help:"Requests that finished executing (ok or error)")

let m_tenant_rejected tenant =
  Metrics.counter Metrics.global "acq_tenant_rejected_total"
    ~help:"Requests rejected at admission because the tenant's quota was full"
    ~labels:[ ("tenant", tenant) ]

type stats = {
  capacity : int;
  in_flight : int;
  peak_in_flight : int;
  admitted : int;
  rejected : int;
  deadline_shed : int;
  tenant_rejected : int;
  completed : int;
  ticks : int;
}

type t = {
  capacity : int;
  tenant_quota : int option;
  budget : Budget.t;
  mutex : Mutex.t;
  idle : Condition.t;  (* signalled whenever in_flight drops *)
  tenants : (string, int) Hashtbl.t;  (* tenant -> in-flight count *)
  mutable in_flight : int;
  mutable peak_in_flight : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable deadline_shed : int;
  mutable tenant_rejected : int;
  mutable completed : int;
}

let create ?(capacity = 64) ?tenant_quota ?budget () =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity < 1";
  (match tenant_quota with
  | Some q when q < 1 -> invalid_arg "Scheduler.create: tenant_quota < 1"
  | _ -> ());
  let budget =
    match budget with Some b -> b | None -> Budget.create ~label:"acqd" ()
  in
  Metrics.set (Lazy.force m_capacity) capacity;
  {
    capacity;
    tenant_quota;
    budget;
    mutex = Mutex.create ();
    idle = Condition.create ();
    tenants = Hashtbl.create 16;
    in_flight = 0;
    peak_in_flight = 0;
    admitted = 0;
    rejected = 0;
    deadline_shed = 0;
    tenant_rejected = 0;
    completed = 0;
  }

let capacity t = t.capacity

(* Per-tenant accounting, called under [t.mutex]. Entries are removed
   when they drop to zero so the table tracks only active tenants. *)
let tenant_count t tenant =
  match Hashtbl.find_opt t.tenants tenant with Some n -> n | None -> 0

let tenant_adjust t tenant d =
  match tenant with
  | None -> ()
  | Some tn ->
      let n = tenant_count t tn + d in
      if n <= 0 then Hashtbl.remove t.tenants tn
      else Hashtbl.replace t.tenants tn n

let submit t ~label ?tenant ?deadline_ms f =
  (* Shed before taking a slot: a request whose deadline has already
     passed cannot be answered in time, and running it anyway would
     spend budget on an answer nobody is waiting for. The rule is
     deterministic — shed iff the remaining deadline is <= 0 at
     admission — so tests can pin it exactly. *)
  match deadline_ms with
  | Some d when d <= 0 ->
      Mutex.lock t.mutex;
      t.deadline_shed <- t.deadline_shed + 1;
      Mutex.unlock t.mutex;
      Metrics.incr (Lazy.force m_deadline_shed);
      Error
        (Error.Deadline_exceeded
           {
             deadline_ms = d;
             msg = Printf.sprintf "shed %s request at admission" label;
           })
  | _ ->
  Mutex.lock t.mutex;
  let tenant_full =
    match (t.tenant_quota, tenant) with
    | Some quota, Some tn -> tenant_count t tn >= quota
    | _ -> false
  in
  if tenant_full then begin
    (* the tenant's own slice is full while global capacity may be
       free: same typed class (overloaded, exit code 17 — retry later, the
       server is healthy), separate counter and metric so a noisy
       neighbour is attributable *)
    t.tenant_rejected <- t.tenant_rejected + 1;
    Mutex.unlock t.mutex;
    let tn = Option.value tenant ~default:"" in
    Metrics.incr (m_tenant_rejected tn);
    Error
      (Error.Overloaded
         (Printf.sprintf
            "tenant %S quota reached (%d in flight) — retry later" tn
            (Option.value t.tenant_quota ~default:0)))
  end
  else if t.in_flight >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    Metrics.incr (Lazy.force m_rejected);
    Mutex.unlock t.mutex;
    Error
      (Error.Overloaded
         (Printf.sprintf
            "%d requests in flight (capacity %d) — retry later" t.in_flight
            t.capacity))
  end
  else begin
    t.in_flight <- t.in_flight + 1;
    t.admitted <- t.admitted + 1;
    tenant_adjust t tenant 1;
    Metrics.incr (Lazy.force m_admitted);
    Metrics.incr_gauge (Lazy.force m_in_flight);
    if t.in_flight > t.peak_in_flight then t.peak_in_flight <- t.in_flight;
    Mutex.unlock t.mutex;
    let slice = (Budget.split ~label ~into:1 t.budget).(0) in
    let release () =
      Budget.absorb t.budget slice;
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      tenant_adjust t tenant (-1);
      t.completed <- t.completed + 1;
      Metrics.incr (Lazy.force m_completed);
      Metrics.decr_gauge (Lazy.force m_in_flight);
      Condition.broadcast t.idle;
      Mutex.unlock t.mutex
    in
    match f slice with
    | v ->
        release ();
        Ok v
    | exception e ->
        release ();
        (match Error.of_exn e with
        | Some err -> Error err
        | None -> Error (Error.Internal (Printexc.to_string e)))
  end

let drain t =
  Mutex.lock t.mutex;
  while t.in_flight > 0 do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      capacity = t.capacity;
      in_flight = t.in_flight;
      peak_in_flight = t.peak_in_flight;
      admitted = t.admitted;
      rejected = t.rejected;
      deadline_shed = t.deadline_shed;
      tenant_rejected = t.tenant_rejected;
      completed = t.completed;
      ticks = Budget.ticks t.budget;
    }
  in
  Mutex.unlock t.mutex;
  s

let stats_to_json (s : stats) =
  Json.Obj
    [
      ("capacity", Json.Int s.capacity);
      ("in_flight", Json.Int s.in_flight);
      ("peak_in_flight", Json.Int s.peak_in_flight);
      ("admitted", Json.Int s.admitted);
      ("rejected", Json.Int s.rejected);
      ("deadline_shed", Json.Int s.deadline_shed);
      ("tenant_rejected", Json.Int s.tenant_rejected);
      ("completed", Json.Int s.completed);
      ("ticks", Json.Int s.ticks);
    ]
