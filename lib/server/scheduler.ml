module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Json = Ac_analysis.Json
module Metrics = Ac_obs.Metrics

(* Global admission-control metrics: queue depth as gauges, admission
   outcomes as counters. Exact per-instance numbers stay in [stats];
   these are the scrape surface. *)
let m_in_flight =
  lazy
    (Metrics.gauge Metrics.global "acq_scheduler_in_flight"
       ~help:"Requests currently executing under admission control")

let m_capacity =
  lazy
    (Metrics.gauge Metrics.global "acq_scheduler_capacity"
       ~help:"Admission-control concurrency limit")

let m_admitted =
  lazy
    (Metrics.counter Metrics.global "acq_scheduler_admitted_total"
       ~help:"Requests admitted by the scheduler")

let m_rejected =
  lazy
    (Metrics.counter Metrics.global "acq_scheduler_rejected_total"
       ~help:"Requests rejected at admission (capacity reached)")

let m_deadline_shed =
  lazy
    (Metrics.counter Metrics.global "acq_deadline_shed_total"
       ~help:"Requests shed at admission because their deadline had passed")

let m_completed =
  lazy
    (Metrics.counter Metrics.global "acq_scheduler_completed_total"
       ~help:"Requests that finished executing (ok or error)")

type stats = {
  capacity : int;
  in_flight : int;
  peak_in_flight : int;
  admitted : int;
  rejected : int;
  deadline_shed : int;
  completed : int;
  ticks : int;
}

type t = {
  capacity : int;
  budget : Budget.t;
  mutex : Mutex.t;
  idle : Condition.t;  (* signalled whenever in_flight drops *)
  mutable in_flight : int;
  mutable peak_in_flight : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable deadline_shed : int;
  mutable completed : int;
}

let create ?(capacity = 64) ?budget () =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity < 1";
  let budget =
    match budget with Some b -> b | None -> Budget.create ~label:"acqd" ()
  in
  Metrics.set (Lazy.force m_capacity) capacity;
  {
    capacity;
    budget;
    mutex = Mutex.create ();
    idle = Condition.create ();
    in_flight = 0;
    peak_in_flight = 0;
    admitted = 0;
    rejected = 0;
    deadline_shed = 0;
    completed = 0;
  }

let capacity t = t.capacity

let submit t ~label ?deadline_ms f =
  (* Shed before taking a slot: a request whose deadline has already
     passed cannot be answered in time, and running it anyway would
     spend budget on an answer nobody is waiting for. The rule is
     deterministic — shed iff the remaining deadline is <= 0 at
     admission — so tests can pin it exactly. *)
  match deadline_ms with
  | Some d when d <= 0 ->
      Mutex.lock t.mutex;
      t.deadline_shed <- t.deadline_shed + 1;
      Mutex.unlock t.mutex;
      Metrics.incr (Lazy.force m_deadline_shed);
      Error
        (Error.Deadline_exceeded
           {
             deadline_ms = d;
             msg = Printf.sprintf "shed %s request at admission" label;
           })
  | _ ->
  Mutex.lock t.mutex;
  if t.in_flight >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    Metrics.incr (Lazy.force m_rejected);
    Mutex.unlock t.mutex;
    Error
      (Error.Overloaded
         (Printf.sprintf
            "%d requests in flight (capacity %d) — retry later" t.in_flight
            t.capacity))
  end
  else begin
    t.in_flight <- t.in_flight + 1;
    t.admitted <- t.admitted + 1;
    Metrics.incr (Lazy.force m_admitted);
    Metrics.incr_gauge (Lazy.force m_in_flight);
    if t.in_flight > t.peak_in_flight then t.peak_in_flight <- t.in_flight;
    Mutex.unlock t.mutex;
    let slice = (Budget.split ~label ~into:1 t.budget).(0) in
    let release () =
      Budget.absorb t.budget slice;
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      t.completed <- t.completed + 1;
      Metrics.incr (Lazy.force m_completed);
      Metrics.decr_gauge (Lazy.force m_in_flight);
      Condition.broadcast t.idle;
      Mutex.unlock t.mutex
    in
    match f slice with
    | v ->
        release ();
        Ok v
    | exception e ->
        release ();
        (match Error.of_exn e with
        | Some err -> Error err
        | None -> Error (Error.Internal (Printexc.to_string e)))
  end

let drain t =
  Mutex.lock t.mutex;
  while t.in_flight > 0 do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      capacity = t.capacity;
      in_flight = t.in_flight;
      peak_in_flight = t.peak_in_flight;
      admitted = t.admitted;
      rejected = t.rejected;
      deadline_shed = t.deadline_shed;
      completed = t.completed;
      ticks = Budget.ticks t.budget;
    }
  in
  Mutex.unlock t.mutex;
  s

let stats_to_json (s : stats) =
  Json.Obj
    [
      ("capacity", Json.Int s.capacity);
      ("in_flight", Json.Int s.in_flight);
      ("peak_in_flight", Json.Int s.peak_in_flight);
      ("admitted", Json.Int s.admitted);
      ("rejected", Json.Int s.rejected);
      ("deadline_shed", Json.Int s.deadline_shed);
      ("completed", Json.Int s.completed);
      ("ticks", Json.Int s.ticks);
    ]
