module Api = Approxcount.Api
module Planner = Approxcount.Planner
module Ecq = Ac_query.Ecq
module Structure_io = Ac_relational.Structure_io
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Engine = Ac_exec.Engine
module Pool = Ac_exec.Pool
module Report = Ac_analysis.Report
module Json = Ac_analysis.Json
module Trace = Ac_obs.Trace
module Metrics = Ac_obs.Metrics
module Live = Ac_live.Live
module Journal = Ac_live.Journal

type config = {
  queue_capacity : int;
  plan_cache_capacity : int;
  result_cache_capacity : int;
  default_timeout_ms : int option;
  manifest : string option;
  merge_threshold : int;
  merge_ratio : float;
  tenant_quota : int option;
  verbose : bool;
}

let default_config =
  {
    queue_capacity = 64;
    plan_cache_capacity = 256;
    result_cache_capacity = 1024;
    default_timeout_ms = None;
    manifest = None;
    merge_threshold = 4096;
    merge_ratio = 0.25;
    tenant_quota = None;
    verbose = false;
  }

type counters = {
  mutable count : int;
  mutable sample : int;
  mutable use : int;
  mutable load : int;
  mutable insert : int;
  mutable delete : int;
  mutable load_batch : int;
  mutable stats : int;
  mutable metrics : int;
  mutable ping : int;
  mutable health : int;
  mutable bad : int;
}

type t = {
  config : config;
  router : Router.t option;
  catalog : Catalog.t;
  plan_cache : Report.t Cache.Lru.t;
  result_cache : Wire.outcome Cache.Lru.t;
  scheduler : Scheduler.t;
  inflight : Wire.response Inflight.t;
  recovered : bool Atomic.t;
  started_ms : float;
  counters : counters;
  counters_mutex : Mutex.t;
  stopping : bool Atomic.t;
  (* self-pipe: request_stop writes one byte, the accept loop selects
     on the read end — signal-handler-safe wakeup *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  conns_mutex : Mutex.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
  (* serializes merge persistence (snapshot save → catalog repoint →
     manifest sync → journal truncate) across connection threads *)
  merge_mutex : Mutex.t;
}

let create ?router ?(config = default_config) () =
  let stop_r, stop_w = Unix.pipe () in
  {
    config;
    router;
    catalog = Catalog.create ();
    plan_cache =
      Cache.Lru.create ~name:"plan" ~capacity:config.plan_cache_capacity ();
    result_cache =
      Cache.Lru.create ~name:"result" ~capacity:config.result_cache_capacity ();
    scheduler =
      Scheduler.create ~capacity:config.queue_capacity
        ?tenant_quota:config.tenant_quota ();
    inflight = Inflight.create ();
    recovered = Atomic.make false;
    started_ms = Unix.gettimeofday () *. 1000.0;
    counters =
      {
        count = 0;
        sample = 0;
        use = 0;
        load = 0;
        insert = 0;
        delete = 0;
        load_batch = 0;
        stats = 0;
        metrics = 0;
        ping = 0;
        health = 0;
        bad = 0;
      };
    counters_mutex = Mutex.create ();
    stopping = Atomic.make false;
    stop_r;
    stop_w;
    conns_mutex = Mutex.create ();
    conns = [];
    merge_mutex = Mutex.create ();
  }

let catalog t = t.catalog
let scheduler t = t.scheduler
let router t = t.router
let recovered t = Atomic.get t.recovered

(* ---------- crash-safe catalog ---------- *)

(* Every file-backed load refreshes the manifest, so the snapshot on
   disk always names exactly the databases a restarted daemon must
   replay. Failing to persist the manifest is a hard error: a daemon
   that cannot write its recovery state should not pretend it can
   recover. *)
let sync_manifest t =
  match t.config.manifest with
  | None -> Ok ()
  | Some path ->
      (* a router daemon stamps its partition spec on every entry so a
         restart re-cuts the data exactly as before *)
      let partition =
        Option.map
          (fun r -> Partition.spec_to_string (Router.spec r))
          t.router
      in
      Manifest.store ~path ?partition t.catalog

let journal_path t ~name =
  Option.map (fun m -> Printf.sprintf "%s.%s.journal" m name) t.config.manifest

let load_db t ~name ~path =
  match Catalog.find t.catalog name with
  | Some entry when Atomic.get t.recovered ->
      (* this name was just replayed from the manifest: its journal
         holds acknowledged batches, and a fresh load would reset that
         journal and rewrite the manifest at version 0 — a routine
         restart that passes the same --load as the first boot must not
         silently discard acknowledged mutations. A genuinely fresh
         load needs the manifest (and journal) removed first. *)
      Ok entry
  | _ -> (
      match Catalog.load t.catalog ~name ~path with
      | Error e -> Error e
      | Ok entry -> (
          (* a fresh load starts a fresh journal: a leftover journal
             from a previous life belongs to a different snapshot
             lineage and must not replay on top of this one *)
          let journal_ok =
            match journal_path t ~name with
            | None -> Ok ()
            | Some jpath -> (
                match Journal.reset jpath with
                | Ok () ->
                    Catalog.set_journal t.catalog name (Some jpath);
                    Ok ()
                | Error e -> Error e)
          in
          match journal_ok with
          | Error e -> Error e
          | Ok () -> (
              match sync_manifest t with
              | Ok () -> Ok entry
              | Error e -> Error e)))

let recover t =
  match t.config.manifest with
  | None -> Ok []
  | Some path -> (
      match Unix.access path [ Unix.F_OK ] with
      | exception Unix.Unix_error _ -> Ok []
      | () -> (
          match Manifest.recover ~path t.catalog with
          | Error e -> Error e
          | Ok names ->
              if names <> [] then Atomic.set t.recovered true;
              Ok names))

type session = { mutable current : Catalog.entry option }

let new_session _t = { current = None }

let bump t f =
  Mutex.lock t.counters_mutex;
  f t.counters;
  Mutex.unlock t.counters_mutex

(* ---------- db resolution ---------- *)

let resolve_db t session = function
  | Wire.Named name -> (
      match Catalog.find t.catalog name with
      | Some entry -> Ok entry
      | None ->
          Error
            (Error.Io
               { file = name; msg = "unknown database (not in the catalog)" }))
  | Wire.Inline text -> (
      match Structure_io.of_string ~name:"<inline>" text with
      | db ->
          (* not registered in the catalog: inline databases are
             per-request, but the fingerprint still keys the caches;
             sealed so the join path reads columns like catalog entries *)
          let db = Ac_relational.Structure.seal db in
          Ok
            (Catalog.
               {
                 name = "<inline>";
                 db;
                 fingerprint = Ac_relational.Structure.fingerprint db;
                 version = 0;
                 universe = Ac_relational.Structure.universe_size db;
                 size = Ac_relational.Structure.size db;
                 relations = [];
                 source = None;
               })
      | exception Failure msg ->
          Error (Error.Parse { source = "<inline>"; msg }))
  | Wire.Session -> (
      match session.current with
      | Some entry -> (
          (* re-resolve by name: the session pins a {e database}, not a
             version — a USE taken before a mutation must not serve the
             stale snapshot (or stale cache keys) afterwards *)
          match Catalog.find t.catalog entry.Catalog.name with
          | Some fresh -> Ok fresh
          | None -> Ok entry)
      | None ->
          Error
            (Error.Io
               {
                 file = "<session>";
                 msg = "no database selected — send USE <name> first";
               }))

(* Per-request budget: the scheduler's sub-slice when the request sets
   no limits (unarmed — bit-parity with a single-shot run), a fresh
   armed budget otherwise, with its work absorbed into the slice so the
   global ceiling still sees it. *)
let request_budget (p : Wire.params) ~default_timeout_ms slice =
  let timeout_ms =
    match p.Wire.timeout_ms with Some v -> Some v | None -> default_timeout_ms
  in
  (* the deadline also caps the wall clock: work past it is wasted *)
  let timeout_ms =
    match (timeout_ms, p.Wire.deadline_ms) with
    | Some t, Some d -> Some (min t d)
    | None, d -> d
    | t, None -> t
  in
  match (timeout_ms, p.Wire.max_heap_mb) with
  | None, None -> (slice, fun () -> ())
  | _ ->
      let b =
        Budget.create ~label:"req"
          ?deadline_ms:(Option.map float_of_int timeout_ms)
          ?max_heap_mb:p.Wire.max_heap_mb ()
      in
      (b, fun () -> Budget.absorb slice b)

let resolved_jobs (p : Wire.params) =
  match p.Wire.jobs with Some j -> max 1 j | None -> Engine.default_jobs ()

let outcome_of_response ~plan_cache ~result_cache (r : Api.response) =
  {
    Wire.estimate = r.Api.estimate;
    exact = r.Api.exact;
    rung = Option.map Planner.rung_name r.Api.rung;
    guarantee = r.Api.guarantee;
    degraded = r.Api.degraded;
    attempts =
      List.map
        (fun (a : Planner.attempt) ->
          {
            Wire.rung = Planner.rung_name a.Planner.rung;
            error_class = Error.class_name a.Planner.error;
            error_message = Error.message a.Planner.error;
          })
        r.Api.attempts;
    seed = r.Api.telemetry.Api.seed;
    jobs = r.Api.telemetry.Api.jobs;
    ticks = r.Api.telemetry.Api.ticks;
    elapsed_ms = r.Api.telemetry.Api.elapsed_ms;
    trace = r.Api.telemetry.Api.trace;
    plan_cache;
    result_cache;
  }

(* ---------- COUNT ---------- *)

(* One local COUNT under admission control: plan-cache lookup, request
   budget, estimation on the calling thread, result-cache fill. *)
let run_local t entry ~db_fingerprint ~result_key (p : Wire.params) query =
  match
    Scheduler.submit t.scheduler ~label:"count" ?tenant:p.Wire.tenant
      ?deadline_ms:p.Wire.deadline_ms (fun slice ->
        let plan_key = Cache.plan_key ~db_fingerprint query in
        let report, plan_state =
          match Cache.Lru.find t.plan_cache plan_key with
          | Some rep -> (rep, "hit")
          | None ->
              let rep = Report.analyze ~db:entry.Catalog.db query in
              Cache.Lru.add t.plan_cache plan_key rep;
              (rep, "miss")
        in
        let budget, absorb =
          request_budget p ~default_timeout_ms:t.config.default_timeout_ms
            slice
        in
        let tracer = if p.Wire.trace then Some (Trace.create ()) else None in
        let request =
          Api.Request.make query entry.Catalog.db
          |> Api.Request.with_eps p.Wire.eps
          |> Api.Request.with_delta p.Wire.delta
          |> Api.Request.with_method p.Wire.method_
          |> Api.Request.with_seed p.Wire.seed
          |> Api.Request.with_jobs p.Wire.jobs
          |> Api.Request.with_budget (Some budget)
          |> Api.Request.with_strict p.Wire.strict
          |> Api.Request.with_verbose t.config.verbose
          |> Api.Request.with_trace tracer
        in
        let result = Api.run ~report request in
        absorb ();
        Result.map
          (fun r ->
            outcome_of_response ~plan_cache:plan_state
              ~result_cache:(if result_key = None then "bypass" else "miss")
              r)
          result)
  with
  | Error e -> Wire.response_of_error e
  | Ok (Error e) -> Wire.response_of_error e
  | Ok (Ok outcome) ->
      (match result_key with
      | Some key when not outcome.Wire.degraded ->
          (* degraded answers depend on budget timing — only
             deterministic, guaranteed results are cached *)
          Cache.Lru.add t.result_cache key outcome
      | _ -> ());
      Wire.Counted outcome

(* One scattered COUNT: the fan-out runs on the fleet, so the local
   scheduler slot only accounts for admission (and tenant quota) while
   the router threads wait on worker replies. Same result-cache policy
   as local runs — the #fleetN-tagged key keeps the two result spaces
   apart. *)
let run_scatter t router ~name ~result_key (p : Wire.params) =
  match
    Scheduler.submit t.scheduler ~label:"count" ?tenant:p.Wire.tenant
      ?deadline_ms:p.Wire.deadline_ms (fun _slice ->
        Router.scatter_count router ~name p)
  with
  | Error e -> Wire.response_of_error e
  | Ok (Error e) -> Wire.response_of_error e
  | Ok (Ok outcome) ->
      let outcome =
        {
          outcome with
          Wire.result_cache = (if result_key = None then "bypass" else "miss");
        }
      in
      (match result_key with
      | Some key when not outcome.Wire.degraded ->
          Cache.Lru.add t.result_cache key outcome
      | _ -> ());
      Wire.Counted outcome

let run_count t session (p : Wire.params) =
  match resolve_db t session p.Wire.db with
  | Error e -> Wire.response_of_error e
  | Ok entry -> (
      match Ecq.parse_result p.Wire.query with
      | Error e -> Wire.response_of_error e
      | Ok query -> (
          (* fleet routing: when this daemon fronts a sharded fleet
             holding [entry]'s shards and the query's join structure
             decomposes over the partition, the COUNT scatters instead
             of running locally. Non-decomposing queries fall back to
             the local full copy — counted, so a fleet that never
             scatters is visible. *)
          let fleet =
            match t.router with
            | Some router when Router.manages router entry.Catalog.name -> (
                match Router.plan router query with
                | Ok _var -> Some (router, entry.Catalog.name)
                | Error _reason ->
                    Router.note_fallback router ~reason:"cross_shard";
                    None)
            | _ -> None
          in
          (* (rolling fingerprint @ version): cache entries stop being
             referenced the moment a mutation moves the db, and hit
             again whenever the same version is re-queried. A scattered
             result is the sum of per-shard runs — a different
             experiment than a local run under the same seed — so the
             fleet shard count is part of the key *)
          let db_fingerprint =
            let base =
              Cache.db_key ~fingerprint:entry.Catalog.fingerprint
                ~version:entry.Catalog.version
            in
            match fleet with
            | Some (router, _) ->
                Printf.sprintf "%s#fleet%d" base (Router.shards router)
            | None -> base
          in
          let result_key =
            Option.map
              (fun seed ->
                Cache.result_key ~db_fingerprint ~eps:p.Wire.eps
                  ~delta:p.Wire.delta
                  ~method_name:(Api.method_name p.Wire.method_)
                  ~seed query)
              p.Wire.seed
          in
          (* result-cache-hot requests skip admission too: they do no
             estimation work, so they must not occupy a queue slot *)
          match Option.map (Cache.Lru.find t.result_cache) result_key with
          | Some (Some cached) ->
              (* a replay does no work, so it carries no trace even when
                 the request asked for one *)
              Wire.Counted
                {
                  cached with
                  Wire.jobs = resolved_jobs p;
                  ticks = 0;
                  elapsed_ms = 0.0;
                  trace = None;
                  plan_cache = "bypass";
                  result_cache = "hit";
                }
          | Some None | None ->
              let compute () =
                match fleet with
                | Some (router, name) ->
                    run_scatter t router ~name ~result_key p
                | None -> run_local t entry ~db_fingerprint ~result_key p query
              in
              (* a seeded request is deduplicated against identical
                 in-flight work: a retry that races its original joins
                 the leader instead of spending budget twice *)
              (match result_key with
              | None -> compute ()
              | Some key -> (
                  match Inflight.run t.inflight ~key compute with
                  | Inflight.Leader, response -> response
                  | Inflight.Follower, response -> (
                      Metrics.incr
                        (Metrics.counter Metrics.global
                           "acq_inflight_deduped_total"
                           ~help:
                             "Requests answered by joining identical \
                              in-flight work instead of recomputing");
                      match response with
                      | Wire.Counted o ->
                          (* like a cache replay: the follower did no
                             work of its own *)
                          Wire.Counted
                            {
                              o with
                              Wire.ticks = 0;
                              elapsed_ms = 0.0;
                              trace = None;
                              result_cache = "inflight";
                            }
                      | other -> other)))))

(* ---------- SAMPLE ---------- *)

let run_sample t session (p : Wire.params) ~draws =
  match resolve_db t session p.Wire.db with
  | Error e -> Wire.response_of_error e
  | Ok entry -> (
      match Ecq.parse_result p.Wire.query with
      | Error e -> Wire.response_of_error e
      | Ok query -> (
          let result =
            Scheduler.submit t.scheduler ~label:"sample"
              ?tenant:p.Wire.tenant ?deadline_ms:p.Wire.deadline_ms
              (fun slice ->
                let budget, absorb =
                  request_budget p
                    ~default_timeout_ms:t.config.default_timeout_ms slice
                in
                let tracer =
                  if p.Wire.trace then Some (Trace.create ()) else None
                in
                let request =
                  Api.Request.make query entry.Catalog.db
                  |> Api.Request.with_eps p.Wire.eps
                  |> Api.Request.with_delta p.Wire.delta
                  |> Api.Request.with_method p.Wire.method_
                  |> Api.Request.with_seed p.Wire.seed
                  |> Api.Request.with_jobs p.Wire.jobs
                  |> Api.Request.with_budget (Some budget)
                  |> Api.Request.with_verbose t.config.verbose
                  |> Api.Request.with_trace tracer
                in
                let result = Api.sample ~draws request in
                absorb ();
                result)
          in
          match result with
          | Error e -> Wire.response_of_error e
          | Ok (Error e) -> Wire.response_of_error e
          | Ok (Ok s) ->
              Wire.Sampled
                {
                  samples = s.Api.draws;
                  seed = s.Api.telemetry.Api.seed;
                  jobs = s.Api.telemetry.Api.jobs;
                  ticks = s.Api.telemetry.Api.ticks;
                  elapsed_ms = s.Api.telemetry.Api.elapsed_ms;
                  trace = s.Api.telemetry.Api.trace;
                }))

(* ---------- INSERT / DELETE / LOAD_BATCH ---------- *)

let m_live_batches =
  lazy
    (Metrics.counter Metrics.global "acq_live_batches_total"
       ~help:"Mutation batches applied to live databases")

let m_live_replayed =
  lazy
    (Metrics.counter Metrics.global "acq_live_replayed_batches_total"
       ~help:"Mutation batches answered from the idempotency table instead \
              of re-applying")

let m_live_journal_appends =
  lazy
    (Metrics.counter Metrics.global "acq_live_journal_appends_total"
       ~help:"Mutation batches appended (fsynced) to a delta journal")

let m_live_ops op =
  Metrics.counter Metrics.global "acq_live_ops_total"
    ~help:"Mutation operations applied, by direction" ~labels:[ ("op", op) ]

let live_ops_of_request = function
  | Wire.Insert { rel; tuples; _ } ->
      List.map (fun tuple -> Live.Db.Insert { rel; tuple }) tuples
  | Wire.Delete { rel; tuples; _ } ->
      List.map (fun tuple -> Live.Db.Delete { rel; tuple }) tuples
  | Wire.Load_batch { ops; _ } ->
      List.map
        (fun (o : Wire.mutation_op) ->
          if o.Wire.insert then Live.Db.Insert { rel = o.Wire.rel; tuple = o.Wire.tuple }
          else Live.Db.Delete { rel = o.Wire.rel; tuple = o.Wire.tuple })
        ops
  | _ -> []

(* Post-mutation compaction. When the delta crosses the policy
   threshold the deltas fold back into sealed columns under the
   request's budget slice; for a file-backed entry the compacted
   snapshot is then persisted (fresh versioned file + atomic manifest
   switch + journal restart — each crash window between those steps
   recovers correctly, see Manifest). Compaction is an optimization:
   if any step fails, the mutation has already been journaled and
   acknowledged, so the delta simply stays resident and the next batch
   retries. *)
let persist_merge t ~name live budget manifest =
  let persisted =
    List.find_opt
      (fun (p : Catalog.persistence) -> p.Catalog.p_name = name)
      (Catalog.persistence t.catalog)
  in
  match persisted with
  | None -> () (* in-memory db: nothing to persist *)
  | Some prior -> (
      (* one consistent (version, fingerprint, snapshot) triple: a
         concurrent writer may advance the db between any two steps
         here, so everything below persists exactly this version, and
         the journal truncate keeps any batch past it *)
      match Live.Db.current ~budget live with
      | exception Budget.Budget_exceeded _ -> ()
      | version, live_fingerprint, snap -> (
          let path =
            Printf.sprintf "%s.%s.v%d.snapshot" manifest name version
          in
          match Structure_io.save path snap with
          | exception _ -> ()
          | () ->
              let fingerprint = Ac_relational.Structure.fingerprint snap in
              Catalog.compact_source t.catalog name ~path ~fingerprint
                ~version ~live_fingerprint;
              (match sync_manifest t with
              | Error _ ->
                  (* roll the slot back to the prior snapshot so catalog
                     state matches the manifest on disk — at the prior
                     file's own version/fingerprint, not the live db's
                     current ones, which the old file does not capture *)
                  Catalog.compact_source t.catalog name
                    ~path:prior.Catalog.p_path
                    ~fingerprint:prior.Catalog.p_fingerprint
                    ~version:prior.Catalog.p_version
                    ~live_fingerprint:prior.Catalog.p_live_fingerprint
              | Ok () ->
                  (match Catalog.journal_of t.catalog name with
                  | Some jpath ->
                      (* under the db's write lock: an append between
                         the truncate's read and its rename would be
                         lost *)
                      ignore
                        (Live.Db.exclusively live (fun () ->
                             Journal.truncate jpath ~upto:version))
                  | None -> ());
                  (* drop the superseded generated snapshot (never a
                     user-supplied source file) *)
                  if
                    prior.Catalog.p_path <> path
                    && String.starts_with ~prefix:(manifest ^ ".")
                         prior.Catalog.p_path
                  then
                    try Unix.unlink prior.Catalog.p_path
                    with Unix.Unix_error _ -> ())))

let maybe_merge t ~name live budget =
  if
    Live.Db.needs_merge ~threshold:t.config.merge_threshold
      ~ratio:t.config.merge_ratio live
  then begin
    (* try_lock, not lock: a merge is an optimization — if another
       thread is mid-persistence, interleaving a second merge's steps
       could pair a manifest version with the wrong snapshot file, so
       the loser just leaves its delta for the next batch *)
    if Mutex.try_lock t.merge_mutex then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.merge_mutex)
        (fun () ->
          match Live.Db.merge ~budget live with
          | exception Budget.Budget_exceeded _ -> ()
          | _compacted -> (
              match t.config.manifest with
              | None -> ()
              | Some manifest -> persist_merge t ~name live budget manifest))
  end

let run_mutation t session req =
  let verb = Wire.verb_name req in
  let db_ref, batch_id =
    match req with
    | Wire.Insert { db; batch_id; _ }
    | Wire.Delete { db; batch_id; _ }
    | Wire.Load_batch { db; batch_id; _ } ->
        (db, batch_id)
    | _ -> (Wire.Session, None)
  in
  let name_result =
    match db_ref with
    | Wire.Named n -> Ok n
    | Wire.Inline _ ->
        Error
          (Error.Parse
             {
               source = "wire";
               msg =
                 "mutations need a named catalog database (\"use\"), not \
                  \"db_inline\" — inline databases are per-request";
             })
    | Wire.Session -> (
        match session.current with
        | Some e -> Ok e.Catalog.name
        | None ->
            Error
              (Error.Io
                 {
                   file = "<session>";
                   msg = "no database selected — send USE <name> first";
                 }))
  in
  match name_result with
  | Error e -> Wire.response_of_error e
  | Ok name -> (
      match Catalog.live_find t.catalog name with
      | None ->
          Wire.response_of_error
            (Error.Io
               { file = name; msg = "unknown database (not in the catalog)" })
      | Some live -> (
          let ops = live_ops_of_request req in
          (* resolved before apply: the journal hook below runs under
             the db mutex and must not take the catalog mutex there
             (catalog lookups take catalog-then-db, so the reverse
             order could deadlock) *)
          let jpath = Catalog.journal_of t.catalog name in
          (* the journal append runs {e inside} the apply critical
             section (Live.Db.apply ~journal) and {e before} the reply:
             batches journal in version order (two concurrent batches
             can never journal as v2,v1 — recovery replays in file
             order), a failed append rolls the whole batch back instead
             of leaving an applied-but-unjournaled gap in the
             fingerprint chain, and once the client hears success a
             crash cannot lose the batch. An unacknowledged batch that
             made it to the journal is fine — the client retries with
             the same batch_id and gets the replayed result
             (exactly-once across crashes). *)
          let journal applied =
            match jpath with
            | None -> Ok ()
            | Some jpath -> (
                let line =
                  {
                    Journal.seq = applied.Live.Db.version;
                    id = batch_id;
                    fingerprint = applied.Live.Db.fingerprint;
                    ops;
                  }
                in
                match Journal.append jpath line with
                | Ok () ->
                    Metrics.incr (Lazy.force m_live_journal_appends);
                    Ok ()
                | Error e -> Error e)
          in
          let result =
            Scheduler.submit t.scheduler ~label:verb (fun slice ->
                match Live.Db.apply ?id:batch_id ~journal live ops with
                | Error e -> Error e
                | Ok applied ->
                    Metrics.incr (Lazy.force m_live_batches);
                    if applied.Live.Db.replayed then begin
                      Metrics.incr (Lazy.force m_live_replayed);
                      Ok applied
                    end
                    else begin
                      List.iter
                        (fun op ->
                          Metrics.incr
                            (m_live_ops
                               (match op with
                               | Live.Db.Insert _ -> "insert"
                               | Live.Db.Delete _ -> "delete")))
                        ops;
                      maybe_merge t ~name live slice;
                      Ok applied
                    end)
          in
          match result with
          | Error e -> Wire.response_of_error e
          | Ok (Error e) -> Wire.response_of_error e
          | Ok (Ok applied) ->
              Wire.Mutated
                {
                  name;
                  db_version = applied.Live.Db.version;
                  fingerprint = applied.Live.Db.fingerprint;
                  inserted = applied.Live.Db.inserted;
                  deleted = applied.Live.Db.deleted;
                  replayed = applied.Live.Db.replayed;
                }))

(* ---------- STATS ---------- *)

let stats_json t =
  let c = t.counters in
  let requests =
    Mutex.lock t.counters_mutex;
    let j =
      Json.Obj
        [
          ("count", Json.Int c.count);
          ("sample", Json.Int c.sample);
          ("use", Json.Int c.use);
          ("load", Json.Int c.load);
          ("insert", Json.Int c.insert);
          ("delete", Json.Int c.delete);
          ("load_batch", Json.Int c.load_batch);
          ("stats", Json.Int c.stats);
          ("metrics", Json.Int c.metrics);
          ("ping", Json.Int c.ping);
          ("health", Json.Int c.health);
          ("malformed", Json.Int c.bad);
        ]
    in
    Mutex.unlock t.counters_mutex;
    j
  in
  let led, followed, waiting = Inflight.stats t.inflight in
  Json.Obj
    [
      ( "uptime_ms",
        Json.Float ((Unix.gettimeofday () *. 1000.0) -. t.started_ms) );
      ("recovered", Json.Bool (Atomic.get t.recovered));
      ("requests", requests);
      ( "inflight_dedup",
        Json.Obj
          [
            ("led", Json.Int led);
            ("followed", Json.Int followed);
            ("waiting", Json.Int waiting);
          ] );
      ( "catalog",
        Json.List (List.map Catalog.entry_to_json (Catalog.entries t.catalog))
      );
      ("plan_cache", Cache.stats_to_json (Cache.Lru.stats t.plan_cache));
      ( "result_cache",
        Cache.stats_to_json (Cache.Lru.stats t.result_cache) );
      ("scheduler", Scheduler.stats_to_json (Scheduler.stats t.scheduler));
      ("pool_workers", Json.Int (Pool.spawned (Pool.shared ())));
    ]

(* ---------- dispatch ---------- *)

(* Every handled request lands in the global registry: volume by verb
   and wire status, latency by verb. *)
let observe_request ~verb ~status ~elapsed_ms =
  Metrics.incr
    (Metrics.counter Metrics.global "acq_requests_total"
       ~help:"Wire requests handled, by verb and status"
       ~labels:[ ("verb", verb); ("status", string_of_int status) ]);
  Metrics.observe
    (Metrics.histogram Metrics.global "acq_request_duration_ms"
       ~help:"Wire request handling duration (milliseconds)"
       ~labels:[ ("verb", verb) ])
    elapsed_ms

let handle_request t session req =
  match req with
  | Wire.Ping ->
      bump t (fun c -> c.ping <- c.ping + 1);
      Wire.Pong
  | Wire.Health ->
      bump t (fun c -> c.health <- c.health + 1);
      let s = Scheduler.stats t.scheduler in
      let draining = Atomic.get t.stopping in
      Wire.Health_reply
        {
          Wire.ready = not draining;
          live = true;
          draining;
          in_flight = s.Scheduler.in_flight;
          queue_capacity = s.Scheduler.capacity;
          catalog_entries = List.length (Catalog.entries t.catalog);
          recovered = Atomic.get t.recovered;
          uptime_ms = (Unix.gettimeofday () *. 1000.0) -. t.started_ms;
        }
  | Wire.Stats ->
      bump t (fun c -> c.stats <- c.stats + 1);
      Wire.Stats_reply (stats_json t)
  | Wire.Metrics_req { format } ->
      bump t (fun c -> c.metrics <- c.metrics + 1);
      Wire.Metrics_reply
        { format; payload = Wire.metrics_payload ~format Metrics.global }
  | Wire.Use name -> (
      bump t (fun c -> c.use <- c.use + 1);
      match Catalog.find t.catalog name with
      | Some entry ->
          session.current <- Some entry;
          Wire.Used
            {
              name = entry.Catalog.name;
              fingerprint = entry.Catalog.fingerprint;
              universe = entry.Catalog.universe;
              size = entry.Catalog.size;
            }
      | None ->
          Wire.response_of_error
            (Error.Io
               { file = name; msg = "unknown database (not in the catalog)" }))
  | Wire.Load { name; text } -> (
      bump t (fun c -> c.load <- c.load + 1);
      (* the fleet seeding verb: parse the shipped text and register it
         as an in-memory catalog entry (replacing any existing slot).
         Not file-backed, so it does not enter the recovery manifest —
         a restarted worker simply reports unknown-database and the
         router re-pushes from its cached shard text. *)
      match Structure_io.of_string ~name text with
      | db ->
          let entry = Catalog.add t.catalog ~name db in
          Wire.Loaded
            {
              name = entry.Catalog.name;
              fingerprint = entry.Catalog.fingerprint;
              universe = entry.Catalog.universe;
              size = entry.Catalog.size;
            }
      | exception Failure msg ->
          Wire.response_of_error (Error.Parse { source = name; msg }))
  | Wire.Count p ->
      bump t (fun c -> c.count <- c.count + 1);
      run_count t session p
  | Wire.Sample { params = p; draws } ->
      bump t (fun c -> c.sample <- c.sample + 1);
      run_sample t session p ~draws
  | Wire.Insert _ as req ->
      bump t (fun c -> c.insert <- c.insert + 1);
      run_mutation t session req
  | Wire.Delete _ as req ->
      bump t (fun c -> c.delete <- c.delete + 1);
      run_mutation t session req
  | Wire.Load_batch _ as req ->
      bump t (fun c -> c.load_batch <- c.load_batch + 1);
      run_mutation t session req

let handle t session req =
  let t0 = Unix.gettimeofday () in
  let response = handle_request t session req in
  observe_request ~verb:(Wire.verb_name req)
    ~status:(Wire.status_of_response response)
    ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.0);
  response

(* ---------- connections ---------- *)

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session = new_session t in
  let refuse msg =
    bump t (fun c -> c.bad <- c.bad + 1);
    Wire.response_of_error (Error.Parse { source = "wire"; msg })
  in
  let rec loop () =
    match Wire.read_json ic with
    | Wire.Eof -> ()
    | Wire.Bad msg -> (
        match Wire.write_json oc (Wire.response_to_json (refuse msg)) with
        | () -> loop ()
        | exception Sys_error _ -> ())
    | Wire.Msg j -> (
        (* echo the client's envelope id so a retrying client can match
           this response to its request and drop duplicate frames *)
        let id = Wire.json_id j in
        let response =
          match Wire.request_of_json j with
          | Ok req -> handle t session req
          | Error msg -> refuse msg
        in
        match Wire.write_json oc (Wire.response_to_json ?id response) with
        | () -> loop ()
        | exception Sys_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* ---------- listeners and the accept loop ---------- *)

let listen_unix ?(force = false) ~path () =
  let io msg = Error (Error.Io { file = path; msg }) in
  let bind_fresh () =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
    with
    | fd -> Ok fd
    | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e)
  in
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> bind_fresh ()
  | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e)
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      (* the file alone is ambiguous: probe-connect to learn whether a
         daemon is behind it (refuse — two daemons on one socket) or it
         is the residue of a crash (refuse with guidance, or clean up
         under --force) *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let close_probe () =
        try Unix.close probe with Unix.Unix_error _ -> ()
      in
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () ->
          close_probe ();
          io "a daemon is already listening on this socket"
      | exception Unix.Unix_error _ ->
          close_probe ();
          if force then (
            match Unix.unlink path with
            | () -> bind_fresh ()
            | exception Unix.Unix_error (e, _, _) ->
                io (Unix.error_message e))
          else
            io
              "stale socket file (no daemon is listening) — a previous \
               daemon crashed; remove the file or restart with --force")
  | _ -> io "path exists and is not a socket"

let listen_tcp ~host ~port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    (* one byte on the self-pipe wakes the select loop *)
    try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()

let register_conn t fd thread =
  Mutex.lock t.conns_mutex;
  t.conns <- (fd, thread) :: t.conns;
  Mutex.unlock t.conns_mutex

let serve t listeners =
  (* a client hanging up mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select (t.stop_r :: listeners) [] [] (-1.0) with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd <> t.stop_r && not (Atomic.get t.stopping) then begin
                match Unix.accept fd with
                | client, _ ->
                    let thread =
                      Thread.create (fun () -> serve_connection t client) ()
                    in
                    register_conn t client thread
                | exception Unix.Unix_error _ -> ()
              end)
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* graceful shutdown: stop accepting, finish what is in flight, then
     disconnect whoever is still connected *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  Scheduler.drain t.scheduler;
  Mutex.lock t.conns_mutex;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.conns_mutex;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, thread) -> Thread.join thread) conns
