(** The acqd wire protocol: newline-delimited JSON envelopes.

    Each message is one JSON object on one line ([\n]-terminated).
    Requests map 1:1 onto [Approxcount.Api.request] (verbs [COUNT] and
    [SAMPLE]) plus the service verbs [USE], [STATS] and [PING];
    responses carry everything [Approxcount.Api.response] does —
    estimate, rung, degradation trail, telemetry — plus cache
    provenance, with [Ac_runtime.Error.exit_code] as the wire status
    ([0] success, [3] degraded, [10..17] the typed error classes).

    {b Exactness.} The estimate travels twice: human-readable
    ([estimate], [%.6g]) and bit-exact ([estimate_hex], OCaml [%h]).
    Decoders prefer the hex field, so a replayed estimate survives the
    wire bit-for-bit — the protocol preserves the
    same-seed-same-answer guarantee of the engine.

    {b Versioning.} Every message may carry a ["version"] field
    (absent = version 1 = {!protocol_version}). Unknown {e fields} are
    ignored — additive evolution is free — but a peer that receives a
    version it does not speak refuses the message with a typed error
    instead of guessing. See [docs/server.md].

    See [docs/server.md] for the grammar and examples. *)

module Json = Ac_analysis.Json

(** The protocol version this build speaks (1). *)
val protocol_version : int

(** How a request names its database. *)
type db_ref =
  | Named of string  (** a catalog entry ([USE]-style, field ["use"]) *)
  | Inline of string
      (** the database text itself (field ["db_inline"], for one-shot
          clients without a catalog entry) *)
  | Session  (** whatever the connection last [USE]d *)

(** The closed verb alphabet of the protocol. Server dispatch and the
    router's verb forwarding pattern-match on this variant, so a verb
    added without a handler is a compile error instead of a runtime
    string mismatch. [of_string]/[to_string] form the single, total
    codec — every constructor round-trips (pinned by a qcheck test),
    and [of_string] returns [None] for anything off-alphabet. *)
module Verb : sig
  type t =
    | Count
    | Sample
    | Use
    | Load  (** register a shipped database text in the catalog *)
    | Insert
    | Delete
    | Load_batch
    | Stats
    | Metrics
    | Ping
    | Health

  (** Every constructor, in wire order. *)
  val all : t list

  val to_string : t -> string
  val of_string : string -> t option
end

type params = {
  query : string;
  db : db_ref;
  eps : float;
  delta : float;
  method_ : Approxcount.Api.method_;
  seed : int option;
  jobs : int option;
  timeout_ms : int option;
  deadline_ms : int option;
      (** end-to-end time the client is still willing to wait; the
          scheduler sheds the request (class [deadline], exit 18) when
          it cannot possibly answer in time, and the remaining time
          additionally caps the request budget *)
  max_heap_mb : int option;
  strict : bool;
  trace : bool;
      (** ask the server to trace this request and return the span
          summary inside the response telemetry *)
  tenant : string option;
      (** accounting identity for per-tenant admission quotas
          ([Scheduler]); [None] shares the anonymous pool *)
}

(** Builder with the CLI defaults ([eps = 0.25], [delta = 0.1],
    [method_ = Auto], [strict = false], [trace = false]). *)
val params :
  ?eps:float ->
  ?delta:float ->
  ?method_:Approxcount.Api.method_ ->
  ?seed:int ->
  ?jobs:int ->
  ?timeout_ms:int ->
  ?deadline_ms:int ->
  ?max_heap_mb:int ->
  ?strict:bool ->
  ?trace:bool ->
  ?tenant:string ->
  db:db_ref ->
  string ->
  params

(** One element of a [LOAD_BATCH]: direction + fact. The [INSERT] and
    [DELETE] verbs are sugar for a batch of same-direction ops over one
    relation; all three apply atomically under one version bump. *)
type mutation_op = { insert : bool; rel : string; tuple : int array }

(** Exposition format of the [METRICS] verb. *)
type metrics_format = Metrics_json | Metrics_prometheus

val metrics_format_name : metrics_format -> string
val metrics_format_of_name : string -> metrics_format option

type request =
  | Count of params
  | Sample of { params : params; draws : int }
  | Use of string
  | Load of { name : string; text : string }
      (** register [text] (a [Structure_io] database) in the catalog as
          [name], replacing any existing slot — how a fleet router ships
          shards to its workers *)
  | Insert of {
      db : db_ref;
      rel : string;
      tuples : int array list;
      batch_id : string option;
    }
  | Delete of {
      db : db_ref;
      rel : string;
      tuples : int array list;
      batch_id : string option;
    }
  | Load_batch of {
      db : db_ref;
      ops : mutation_op list;
      batch_id : string option;
    }
  | Stats
  | Metrics_req of { format : metrics_format }
  | Ping
  | Health

(** The shared method codec — an alias for
    [Approxcount.Api.method_of_string], so the wire and the CLI accept
    exactly the same spellings. *)
val method_of_name : string -> Approxcount.Api.method_ option

(** Stable lowercase verb slug, used in error messages and the
    per-verb request metrics. *)
val verb_name : request -> string

(** Safe to resend after a transport fault: the service verbs, any
    {e seeded} [COUNT]/[SAMPLE], and any mutation carrying a
    [batch_id] (the daemon's dedupe table replays the stored result
    instead of applying twice). Unseeded requests draw a fresh seed per
    run, and an id-less mutation would double-apply — the retrying
    client refuses those with a typed [Retry_unsafe]. *)
val idempotent : request -> bool

(** One failed rung of the degradation trail, flattened for the wire. *)
type attempt = { rung : string; error_class : string; error_message : string }

(** A finished [COUNT], 1:1 with [Approxcount.Api.response]. *)
type outcome = {
  estimate : float;
  exact : bool;
  rung : string option;
  guarantee : bool;
  degraded : bool;
  attempts : attempt list;
  seed : int;
  jobs : int;
  ticks : int;
  elapsed_ms : float;
  trace : Ac_obs.Trace.summary option;
      (** span summary, present iff the request set [trace] (and the
          outcome was computed, not replayed from the result cache) *)
  plan_cache : string;  (** ["hit"] | ["miss"] | ["bypass"] *)
  result_cache : string;
}

(** The [HEALTH] verb's payload: liveness (the dispatch loop answers),
    readiness (not draining), queue depth and the crash-recovery flag. *)
type health = {
  ready : bool;  (** accepting and serving (false while draining) *)
  live : bool;  (** the process answers at all — always true in-band *)
  draining : bool;
  in_flight : int;
  queue_capacity : int;
  catalog_entries : int;
  recovered : bool;
      (** the catalog was replayed from the manifest after a crash *)
  uptime_ms : float;
}

type response =
  | Counted of outcome
  | Sampled of {
      samples : int array option array;
      seed : int;
      jobs : int;
      ticks : int;
      elapsed_ms : float;
      trace : Ac_obs.Trace.summary option;
    }
  | Used of { name : string; fingerprint : string; universe : int; size : int }
  | Loaded of {
      name : string;
      fingerprint : string;
      universe : int;
      size : int;
    }  (** a [LOAD] landed: the registered entry's identity *)
  | Mutated of {
      name : string;
      db_version : int;
          (** the database's monotone version {e after} the batch (the
              envelope ["version"] field is the protocol version, so
              this travels as ["db_version"]) *)
      fingerprint : string;  (** rolling fingerprint after the batch *)
      inserted : int;
      deleted : int;
      replayed : bool;
          (** the batch id had already been applied; the stored result
              was returned and nothing changed *)
    }
  | Stats_reply of Json.t
  | Metrics_reply of { format : metrics_format; payload : Json.t }
      (** [payload] is the structured snapshot for [Metrics_json] and a
          [Json.String] holding the Prometheus text exposition for
          [Metrics_prometheus] *)
  | Pong
  | Health_reply of health
  | Refused of { code : int; error_class : string; message : string }

(** [0] success, [3] a degraded (but answered) [COUNT], an
    [Ac_runtime.Error.exit_code] otherwise. *)
val status_of_response : response -> int

val response_of_error : Ac_runtime.Error.t -> response

(** {2 JSON mapping}

    [id] is the optional envelope-level request id: an opaque client
    token echoed verbatim in the response, letting a retrying client
    match responses to requests and discard duplicated or stale frames.
    Decoders expose it through {!json_id}; messages without one decode
    exactly as before. *)

val request_to_json : ?id:string -> request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : ?id:string -> response -> Json.t
val response_of_json : Json.t -> (response, string) result

(** The envelope id of a decoded message, if any. *)
val json_id : Json.t -> string option

(** A span summary as carried inside the ["telemetry"] object. *)
val trace_summary_json : Ac_obs.Trace.summary -> Json.t

(** Registry snapshot as the [METRICS] JSON payload: a list of series
    objects ([name], [labels], [type], and the kind-specific value
    fields; histogram bucket bounds are the stable
    [Ac_obs.Metrics.bucket_bounds] contract and do not travel). *)
val metrics_json : Ac_obs.Metrics.t -> Json.t

(** The payload for a [Metrics_reply] in the requested format. *)
val metrics_payload : format:metrics_format -> Ac_obs.Metrics.t -> Json.t

(** {2 Framing} *)

type read = Msg of Json.t | Eof | Bad of string

(** Read one newline-delimited JSON message. [Bad] keeps the stream in
    sync (the offending line has been consumed). *)
val read_json : in_channel -> read

(** Write one message and flush. *)
val write_json : out_channel -> Json.t -> unit
