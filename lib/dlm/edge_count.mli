(** Counting the hyperedges of an ℓ-partite ℓ-uniform hypergraph through a
    colourful [EdgeFree] decision oracle — the engine the paper imports as
    Theorem 17 (Dell–Lapinskas–Meeks) and that Lemma 22 plugs query
    answers into.

    Two modes (see DESIGN.md substitution 1):

    - {!enumerate}/{!exact_count}: recursive splitting with the oracle; an
      exact enumeration making [O(|E| · ℓ · log max|U_i|)] oracle calls.
    - {!estimate}: the randomized (ε,δ)-approximation. Geometric
      subsampling (keep every vertex independently with probability
      [2^{-j/ℓ}], so each edge survives with probability [2^{-j}])
      locates the magnitude of [|E|]; at the located level, the few
      survivors are enumerated exactly and rescaled by [2^j]; a median
      over independent repetitions yields the confidence bound. When the
      whole hypergraph already has at most the target number of edges the
      answer returned is exact. *)

(** An edge: one local vertex id per class. *)
type edge = int array

(** [enumerate space oracle ~within ~limit] lists the edges of
    [H[within]] (default: the whole space), stopping after [limit] edges;
    the boolean is [true] when the enumeration is complete. *)
val enumerate :
  Partite.space ->
  Partite.aligned_oracle ->
  ?within:Partite.aligned ->
  ?limit:int ->
  unit ->
  edge list * bool

(** Complete enumeration count (no limit). *)
val exact_count :
  Partite.space -> Partite.aligned_oracle -> ?within:Partite.aligned -> unit -> int

type result = {
  value : float;
  exact : bool;         (** [true] when [value] is an exact count *)
  level : int;          (** subsampling level used (0 when exact) *)
  repetitions : int;    (** independent estimates the median was taken over *)
}

(** [restrict space box oracle] is the sub-hypergraph [H[box]] presented
    as a fresh space (class [i] relabelled to [0 .. |box.(i)|-1]) with a
    translating oracle. Used by box-restricted estimation and by the
    JVV-style samplers. *)
val restrict :
  Partite.space ->
  Partite.aligned ->
  Partite.aligned_oracle ->
  Partite.space * Partite.aligned_oracle

(** Median repetitions giving confidence [1 - delta] — exposed so
    callers (and their parallel engines) can size a batch up front. *)
val repetitions_for : delta:float -> int

(** [(ε,δ)]-style estimate of [|E(H)|] (or of [|E(H[within])|]). [rng]
    defaults to a self-init state. *)
val estimate :
  ?rng:Random.State.t ->
  ?within:Partite.aligned ->
  epsilon:float ->
  delta:float ->
  Partite.space ->
  Partite.aligned_oracle ->
  result

(** An oracle whose probes are themselves randomized (e.g. the Lemma 22
    colourful oracle re-colours per probe). The estimator passes the
    per-trial stream in, keeping the result independent of global RNG
    state and of the jobs count. *)
type seeded_oracle = rng:Random.State.t -> Partite.aligned -> bool

(** {!estimate} with its median trials fanned out over [exec]'s domains
    ({!Ac_exec.Engine.run}); bit-identical for any jobs count. The exact
    pre-enumeration and the level-locating descent run sequentially on
    dedicated streams (0 and 1); refine round [k] runs its repetitions
    on the derived engine [split exec (2 + k)]. [budget] governs the
    parallel trials through per-chunk sub-slices. *)
val estimate_exec :
  exec:Ac_exec.Engine.t ->
  ?budget:Ac_runtime.Budget.t ->
  ?within:Partite.aligned ->
  epsilon:float ->
  delta:float ->
  Partite.space ->
  seeded_oracle ->
  result

(** Approximately-uniform random edge — the sampling counterpart the paper
    cites from Dell–Lapinskas–Meeks (§6): recursive halving of the widest
    class, each half chosen with probability proportional to its
    (estimated) edge count; exact uniform sampling when the current box's
    edges fit the estimator's exact path. [None] when the hypergraph is
    (believed) edge-free. *)
val sample_edge :
  ?rng:Random.State.t ->
  epsilon:float ->
  delta:float ->
  Partite.space ->
  Partite.aligned_oracle ->
  edge option
