type edge = int array

exception Limit_reached

let enumerate space oracle ?within ?(limit = max_int) () =
  let parts = match within with Some p -> p | None -> Partite.all space in
  let edges = ref [] in
  let found = ref 0 in
  let complete = ref true in
  (* Split the largest part in two and recurse; a sub-box with all parts
     singleton and a non-edge-free oracle answer is exactly one edge. *)
  let rec go parts =
    if Partite.is_empty_part parts then ()
    else if oracle parts then ()
    else begin
      let widest = ref 0 in
      Array.iteri
        (fun i p ->
          if Array.length p > Array.length parts.(!widest) then widest := i)
        parts;
      if Array.length parts.(!widest) = 1 then begin
        if !found >= limit then begin
          complete := false;
          raise Limit_reached
        end;
        edges := Array.map (fun p -> p.(0)) parts :: !edges;
        incr found
      end
      else begin
        let p = parts.(!widest) in
        let mid = Array.length p / 2 in
        let left = Array.sub p 0 mid in
        let right = Array.sub p mid (Array.length p - mid) in
        let with_part part =
          let copy = Array.copy parts in
          copy.(!widest) <- part;
          copy
        in
        go (with_part left);
        go (with_part right)
      end
    end
  in
  (try go parts with Limit_reached -> ());
  (List.rev !edges, !complete)

let exact_count space oracle ?within () =
  let edges, complete = enumerate space oracle ?within () in
  assert complete;
  List.length edges

type result = {
  value : float;
  exact : bool;
  level : int;
  repetitions : int;
}

(* Median repetitions giving confidence 1 - delta (Chernoff on the
   majority of trials landing inside the per-trial error band). *)
let repetitions_for ~delta =
  let m = int_of_float (ceil (2.5 *. Float.log (1.0 /. delta))) in
  (2 * max 2 m) + 1

(* Keep probability at subsampling level [j]: every vertex survives with
   probability [2^{-j/l}], so an l-vertex edge survives with [2^{-j}]. *)
let keep_probability ~classes j =
  Float.exp (-.(float_of_int j) *. Float.log 2.0 /. float_of_int classes)

(* |E| ≤ ∏|U_i|; beyond log2 of that, survivors are ~0. *)
let top_level space =
  int_of_float
    (Float.log (Float.max 2.0 (Partite.tuple_count (Partite.all space)))
    /. Float.log 2.0)
  + 2

let quartiles values =
  let sorted = List.sort Float.compare values in
  let n = List.length sorted in
  (List.nth sorted (n / 4), List.nth sorted (n / 2), List.nth sorted (3 * n / 4))

(* Random aligned subsample where each vertex is kept independently with
   probability [p]. *)
let subsample rng (space : Partite.space) p : Partite.aligned =
  Array.map
    (fun size ->
      let kept = ref [] in
      for v = size - 1 downto 0 do
        if Random.State.float rng 1.0 < p then kept := v :: !kept
      done;
      Array.of_list !kept)
    space.Partite.class_sizes

let restrict (space : Partite.space) (box : Partite.aligned) oracle =
  if Array.length box <> Partite.num_classes space then
    invalid_arg "Edge_count.restrict: wrong class count";
  let space' = Partite.space (Array.map Array.length box) in
  let oracle' (parts' : Partite.aligned) =
    oracle (Array.mapi (fun i part -> Array.map (fun k -> box.(i).(k)) part) parts')
  in
  (space', oracle')

let rec estimate ?rng ?within ~epsilon ~delta space oracle =
  match within with
  | Some box ->
      let space', oracle' = restrict space box oracle in
      estimate ?rng ~epsilon ~delta space' oracle'
  | None ->
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Edge_count.estimate: epsilon";
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Edge_count.estimate: delta";
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let l = Partite.num_classes space in
  (* target survivor count: per-trial relative error ≈ 1/sqrt(target) *)
  let target = max 24 (int_of_float (ceil (8.0 /. (epsilon *. epsilon)))) in
  let cap = 8 * target in
  (* exact when the hypergraph is already small *)
  let all_edges, complete = enumerate space oracle ~limit:(2 * target) () in
  if complete then
    { value = float_of_int (List.length all_edges); exact = true; level = 0; repetitions = 1 }
  else begin
    let capped_count ~limit j =
      let parts = subsample rng space (keep_probability ~classes:l j) in
      let edges, complete = enumerate space oracle ~within:parts ~limit () in
      (List.length edges, complete)
    in
    (* Locate the smallest level whose survivors fit the target, probing
       DOWNWARD from the sparsest level: probes above the boundary see few
       survivors and are cheap, and the first over-full probe stops the
       descent (expected total work ~ 2·target enumerated edges). *)
    let max_level = top_level space in
    let rec locate j =
      if j <= 1 then 1
      else
        let c, complete = capped_count ~limit:target j in
        if complete && c <= target then locate (j - 1) else j + 1
    in
    let level = min max_level (locate max_level) in
    (* fresh unbiased trials at the located level; median for confidence *)
    let repetitions = repetitions_for ~delta in
    let run_trials ~cap level =
      List.init repetitions (fun _ ->
          let c, complete = capped_count ~limit:cap level in
          let c = if complete then c else cap in
          float_of_int c *. Float.pow 2.0 (float_of_int level))
    in
    (* The located level can be too sparse: the single-probe descent may
       overshoot, and overlapping hyperedges (answers sharing free-variable
       values) correlate survival, inflating the per-trial variance beyond
       the 1/sqrt(survivors) of independent edges. Refine adaptively: if
       the trials' interquartile spread exceeds the accuracy target (or
       they see far fewer survivors than planned), descend two levels —
       quadrupling expected survivors and the enumeration cap — and redo,
       up to three times. *)
    let rec refine level cap attempts =
      let trials = run_trials ~cap level in
      let q1, med, q3 = quartiles trials in
      let dispersion = (q3 -. q1) /. Float.max med 1.0 in
      let raw = med /. Float.pow 2.0 (float_of_int level) in
      if
        attempts > 0 && level > 1
        && (dispersion > epsilon || raw < float_of_int target /. 3.0)
      then refine (max 1 (level - 2)) (cap * 4) (attempts - 1)
      else (level, med)
    in
    let level, value = refine level cap 3 in
    { value; exact = false; level; repetitions }
  end

(* Oracle whose probes are themselves randomized (the Lemma 22 colourful
   oracle re-colours per call): the per-trial stream must feed it too,
   or trial results would depend on global mutable RNG state and the
   jobs count. *)
type seeded_oracle = rng:Random.State.t -> Partite.aligned -> bool

let restrict_seeded (space : Partite.space) (box : Partite.aligned)
    (oracle : seeded_oracle) =
  if Array.length box <> Partite.num_classes space then
    invalid_arg "Edge_count.restrict: wrong class count";
  let space' = Partite.space (Array.map Array.length box) in
  let oracle' ~rng (parts' : Partite.aligned) =
    oracle ~rng
      (Array.mapi (fun i part -> Array.map (fun k -> box.(i).(k)) part) parts')
  in
  (space', oracle')

(* Same estimator as {!estimate}, with the independent median trials
   fanned out over the engine's domains. Stream discipline (all indices
   relative to [exec]'s seed): stream 0 feeds the exact pre-enumeration,
   stream 1 the level-locating descent — both sequential — and refine
   round [k] runs its trials on the derived engine [split exec (2 + k)],
   trial [i] on that engine's stream [i]. Every random draw is pinned to
   a stream, so the result is bit-identical for any jobs count. *)
let rec estimate_exec ~exec ?budget ?within ~epsilon ~delta space
    (oracle : seeded_oracle) =
  match within with
  | Some box ->
      let space', oracle' = restrict_seeded space box oracle in
      estimate_exec ~exec ?budget ~epsilon ~delta space' oracle'
  | None ->
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Edge_count.estimate: epsilon";
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Edge_count.estimate: delta";
  let l = Partite.num_classes space in
  let target = max 24 (int_of_float (ceil (8.0 /. (epsilon *. epsilon)))) in
  let cap = 8 * target in
  let pre_rng = Ac_exec.Engine.state exec ~stream:0 in
  let all_edges, complete =
    enumerate space (oracle ~rng:pre_rng) ~limit:(2 * target) ()
  in
  if complete then
    { value = float_of_int (List.length all_edges); exact = true; level = 0; repetitions = 1 }
  else begin
    let locate_rng = Ac_exec.Engine.state exec ~stream:1 in
    let capped_count ~rng ~limit j =
      let parts = subsample rng space (keep_probability ~classes:l j) in
      let edges, complete = enumerate space (oracle ~rng) ~within:parts ~limit () in
      (List.length edges, complete)
    in
    let max_level = top_level space in
    let rec locate j =
      if j <= 1 then 1
      else
        let c, complete = capped_count ~rng:locate_rng ~limit:target j in
        if complete && c <= target then locate (j - 1) else j + 1
    in
    let level = min max_level (locate max_level) in
    let repetitions = repetitions_for ~delta in
    let run_trials ~round ~cap level =
      let sub = Ac_exec.Engine.split exec (2 + round) in
      Array.to_list
        (Ac_exec.Engine.run ?budget sub ~trials:repetitions
           (fun ~rng ~budget:_ _i ->
             let parts = subsample rng space (keep_probability ~classes:l level) in
             let edges, complete =
               enumerate space (oracle ~rng) ~within:parts ~limit:cap ()
             in
             let c = if complete then List.length edges else cap in
             float_of_int c *. Float.pow 2.0 (float_of_int level)))
    in
    let rec refine ~round level cap attempts =
      let trials = run_trials ~round ~cap level in
      let q1, med, q3 = quartiles trials in
      let dispersion = (q3 -. q1) /. Float.max med 1.0 in
      let raw = med /. Float.pow 2.0 (float_of_int level) in
      if
        attempts > 0 && level > 1
        && (dispersion > epsilon || raw < float_of_int target /. 3.0)
      then refine ~round:(round + 1) (max 1 (level - 2)) (cap * 4) (attempts - 1)
      else (level, med)
    in
    let level, value = refine ~round:0 level cap 3 in
    { value; exact = false; level; repetitions }
  end

let sample_edge ?rng ~epsilon ~delta space oracle =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  (* Descend boxes by halving the widest class, weighting each half by its
     (estimated) edge count; a box whose edges the estimator can list
     exactly finishes with a uniform draw among them. *)
  let rec descend box =
    let space', oracle' = restrict space box oracle in
    let edges, complete = enumerate space' oracle' ~limit:64 () in
    if complete then begin
      match edges with
      | [] -> None
      | _ ->
          let arr = Array.of_list edges in
          let local = arr.(Random.State.int rng (Array.length arr)) in
          (* translate local ids back through the box *)
          Some (Array.mapi (fun i k -> box.(i).(k)) local)
    end
    else begin
      let widest = ref 0 in
      Array.iteri
        (fun i p -> if Array.length p > Array.length box.(!widest) then widest := i)
        box;
      let p = box.(!widest) in
      let mid = Array.length p / 2 in
      let with_part part =
        let copy = Array.copy box in
        copy.(!widest) <- part;
        copy
      in
      let left = with_part (Array.sub p 0 mid) in
      let right = with_part (Array.sub p mid (Array.length p - mid)) in
      let n_left = (estimate ~rng ~within:left ~epsilon ~delta space oracle).value in
      let n_right = (estimate ~rng ~within:right ~epsilon ~delta space oracle).value in
      let total = n_left +. n_right in
      if total <= 0.0 then None
      else if Random.State.float rng total < n_left then descend left
      else descend right
    end
  in
  descend (Partite.all space)
