module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module D = Diagnostic

let atom_to_string q = function
  | Ecq.Atom (name, vs) | Ecq.Neg_atom (name, vs) ->
      Printf.sprintf "%s(%s)" name
        (String.concat ", "
           (Array.to_list (Array.map (Ecq.var_name q) vs)))
  | Ecq.Diseq (i, j) ->
      Printf.sprintf "%s != %s" (Ecq.var_name q i) (Ecq.var_name q j)

let span_of spans idx =
  match spans with
  | Some spans when idx >= 0 && idx < Array.length spans ->
      let start, stop = spans.(idx) in
      Some { D.start; stop }
  | _ -> None

let diag ?span ?theorem code severity message =
  { D.code; severity; span; message; theorem }

(* QL001 — an existential variable with exactly one occurrence, inside a
   positive atom, is pure projection: the relation could be projected
   before counting. *)
let unused_variables ~spans q acc =
  let free = Ecq.num_free q in
  let n = Ecq.num_vars q in
  let occurrences = Array.make n 0 in
  let home = Array.make n (-1) in
  let positive_home = Array.make n false in
  List.iteri
    (fun idx atom ->
      let record positive vs =
        Array.iter
          (fun v ->
            occurrences.(v) <- occurrences.(v) + 1;
            home.(v) <- idx;
            positive_home.(v) <- positive)
          vs
      in
      match atom with
      | Ecq.Atom (_, vs) -> record true vs
      | Ecq.Neg_atom (_, vs) -> record false vs
      | Ecq.Diseq (i, j) -> record false [| i; j |])
    (Ecq.atoms q);
  let atoms = Array.of_list (Ecq.atoms q) in
  let found = ref acc in
  for v = free to n - 1 do
    if occurrences.(v) = 1 && positive_home.(v) then
      found :=
        diag
          ?span:(span_of spans home.(v))
          D.Unused_variable D.Hint
          (Printf.sprintf
             "existential variable %s occurs only in %s: it is pure \
              projection — project the relation before counting"
             (Ecq.var_name q v)
             (atom_to_string q atoms.(home.(v))))
        :: !found
  done;
  !found

(* QL002 — > 1 connected component: the answer count is a product of the
   per-component counts; the joint query wastes budget. *)
let disconnected (c : Classification.t) acc =
  match c.Classification.components with
  | _ :: _ :: _ as comps ->
      diag D.Disconnected D.Warning
        (Printf.sprintf
           "query splits into %d independent components: the answer set is \
            a cartesian product — count each component separately and \
            multiply"
           (List.length comps))
      :: acc
  | _ -> acc

(* QL003 — duplicate disequalities (the contradictory x != x form is
   caught at parse time and reported on the text path). *)
let degenerate_diseqs ~spans q acc =
  let seen = Hashtbl.create 8 in
  let found = ref acc in
  List.iteri
    (fun idx atom ->
      match atom with
      | Ecq.Diseq (i, j) ->
          let key = (min i j, max i j) in
          (match Hashtbl.find_opt seen key with
          | Some first ->
              found :=
                diag
                  ?span:(span_of spans idx)
                  D.Diseq_degenerate D.Warning
                  (Printf.sprintf
                     "duplicate disequality %s (already stated as atom %d)"
                     (atom_to_string q atom) first)
                :: !found
          | None -> Hashtbl.replace seen key idx)
      | _ -> ())
    (Ecq.atoms q);
  !found

(* QL004 — identical atoms (same polarity, symbol, argument tuple). *)
let duplicate_atoms ~spans q acc =
  let seen = Hashtbl.create 8 in
  let found = ref acc in
  List.iteri
    (fun idx atom ->
      match atom with
      | Ecq.Atom (name, vs) | Ecq.Neg_atom (name, vs) ->
          let polarity =
            match atom with Ecq.Atom _ -> `Pos | _ -> `Neg
          in
          let key = (polarity, name, Array.to_list vs) in
          (match Hashtbl.find_opt seen key with
          | Some first ->
              found :=
                diag
                  ?span:(span_of spans idx)
                  D.Duplicate_atom D.Warning
                  (Printf.sprintf "duplicate atom %s (already stated as atom %d)"
                     (atom_to_string q atom) first)
                :: !found
          | None -> Hashtbl.replace seen key idx)
      | Ecq.Diseq _ -> ())
    (Ecq.atoms q);
  !found

(* QL005 — the classification's static-emptiness witness. *)
let negated_twin ~spans q (c : Classification.t) acc =
  match c.Classification.always_empty with
  | Some w ->
      let atoms = Array.of_list (Ecq.atoms q) in
      diag
        ?span:(span_of spans w.Classification.neg_index)
        ~theorem:"Definition 1 semantics"
        D.Negated_twin D.Error
        (Printf.sprintf
           "negated atom %s contradicts its positive twin (atom %d): the \
            query is always empty — the exact count is 0"
           (atom_to_string q atoms.(w.Classification.neg_index))
           w.Classification.pos_index)
      :: acc
  | None -> acc

(* QL006 — signature containment against a concrete database. *)
let signature_mismatch ~db q acc =
  List.fold_left
    (fun acc (name, arity) ->
      if not (Structure.mem_symbol db name) then
        diag D.Signature_mismatch D.Error
          (Printf.sprintf "relation %s/%d is missing from the database" name
             arity)
        :: acc
      else
        let a = Structure.arity_of db name in
        if a <> arity then
          diag D.Signature_mismatch D.Error
            (Printf.sprintf
               "relation %s has arity %d in the query but %d in the database"
               name arity a)
          :: acc
        else acc)
    acc (Ecq.signature q)

(* QL007 — large quantified star size: each colour-coded trial must hit
   all free leaves of one existential component, so the Lemma 22 colour
   budget (4^{|Δ'|}-style) grows with the dominated star size. *)
let star_size q (c : Classification.t) acc =
  ignore q;
  if c.Classification.star_size >= Classify.star_warn_threshold then
    let witness =
      match c.Classification.max_star with
      | Some s ->
          Printf.sprintf " (component of %d existential variables carries %d free leaves)"
            (List.length s.Classification.existential_core)
            (List.length s.Classification.free_leaves)
      | None -> ""
    in
    diag ~theorem:"Theorem 5 / Lemma 22" D.Star_size D.Warning
      (Printf.sprintf
         "quantified star size %d ≥ %d: FPTRAS trial cost is exponential in \
          the dominated star size%s"
         c.Classification.star_size Classify.star_warn_threshold witness)
    :: acc
  else acc

(* QL008 — width beyond the exact-computation comfort zone. *)
let width_blowup (c : Classification.t) acc =
  let tw_high = c.Classification.treewidth >= Classify.width_warn_threshold in
  let fhw_high = c.Classification.fhw >= Classify.fhw_warn_threshold in
  if tw_high || fhw_high then
    diag ~theorem:"Theorems 8/14 lower bounds" D.Width_blowup D.Warning
      (Printf.sprintf
         "treewidth %d, fhw %.2f exceed the exact-computation threshold \
          (tw %d / fhw %.1f): DP tables scale like |U|^(tw+1) — expect the \
          budget to trip on non-trivial databases"
         c.Classification.treewidth c.Classification.fhw
         Classify.width_warn_threshold Classify.fhw_warn_threshold)
    :: acc
  else acc

(* QL009 — a variable not guarded by any positive atom ranges over the
   whole universe (complements/diseqs only constrain, never ground). *)
let unguarded_variables ~spans q acc =
  let n = Ecq.num_vars q in
  let guarded = Array.make n false in
  let first_home = Array.make n (-1) in
  List.iteri
    (fun idx atom ->
      let touch vs =
        Array.iter
          (fun v -> if first_home.(v) < 0 then first_home.(v) <- idx)
          vs
      in
      match atom with
      | Ecq.Atom (_, vs) ->
          touch vs;
          Array.iter (fun v -> guarded.(v) <- true) vs
      | Ecq.Neg_atom (_, vs) -> touch vs
      | Ecq.Diseq (i, j) -> touch [| i; j |])
    (Ecq.atoms q);
  let found = ref acc in
  for v = n - 1 downto 0 do
    if not guarded.(v) then
      found :=
        diag
          ?span:(span_of spans first_home.(v))
          D.Unguarded_variable D.Warning
          (Printf.sprintf
             "variable %s is not guarded by any positive atom: it ranges \
              over the entire universe, inflating every enumeration"
             (Ecq.var_name q v))
        :: !found
  done;
  !found

(* QL010 — a positive atom over a relation that is empty in this
   database: the query answers nothing here (db-specific, so Warning,
   not Error — the query itself is fine). *)
let empty_relations ~db ~spans q acc =
  let reported = Hashtbl.create 4 in
  let found = ref acc in
  List.iteri
    (fun idx atom ->
      match atom with
      | Ecq.Atom (name, _)
        when Structure.mem_symbol db name && not (Hashtbl.mem reported name) ->
          let rel = Structure.relation db name in
          if Relation.cardinality rel = 0 then begin
            Hashtbl.replace reported name ();
            found :=
              diag
                ?span:(span_of spans idx)
                D.Empty_relation D.Warning
                (Printf.sprintf
                   "relation %s is empty in this database: the query has no \
                    answers here"
                   name)
              :: !found
          end
      | _ -> ())
    (Ecq.atoms q);
  !found

(* QL012 — the instantiated fractional-edge-cover bound (Definition 39
   with catalog cardinalities) predicts an output blow-up: the bound is
   the witness, and a cartesian split makes the product shape explicit.
   Only fires on measured stats — a nominal instantiation would warn on
   every wide query. *)
let output_blowup ~(cost : Cost.t) (c : Classification.t) acc =
  let b = cost.Cost.query_bound in
  if
    (not cost.Cost.stats.Cardinality.nominal)
    && b.Cost.log2 >= Cost.output_blowup_threshold_log2
  then
    let cartesian =
      match c.Classification.components with
      | _ :: _ :: _ as comps ->
          Printf.sprintf
            " (cartesian product of %d components multiplies the \
             per-component bounds)"
            (List.length comps)
      | _ -> ""
    in
    diag ~theorem:"Definition 39 (fractional edge cover)" D.Output_blowup
      D.Warning
      (Printf.sprintf
         "instantiated edge-cover bound admits up to %.3g answers \
          (threshold %.0e): materialising or enumerating the output can \
          blow up%s%s"
         (Cost.bound_value b) Cost.output_blowup_threshold cartesian
         (if b.Cost.exact_lp then "" else "; bound from a degraded greedy cover"))
    :: acc
  else acc

(* QL013 — a negated atom whose complement relation cannot be
   materialised under the engine cap: execution falls back to lazy
   complement views, paying the universe sweep on every enumeration. *)
let complement_blowup ~db ~spans q acc =
  let universe = float_of_int (Structure.universe_size db) in
  let cap = Relation.default_complement_cap in
  let found = ref acc in
  List.iteri
    (fun idx atom ->
      match atom with
      | Ecq.Neg_atom (_, vs) ->
          let tuples = universe ** float_of_int (Array.length vs) in
          if tuples > float_of_int cap then
            found :=
              diag
                ?span:(span_of spans idx)
                ~theorem:"Definition 20 (complement semantics)"
                D.Complement_blowup D.Warning
                (Printf.sprintf
                   "negated atom %s: complement spans %.3g tuples, above \
                    the %d materialisation cap — the engine uses a lazy \
                    complement view, paying the universe sweep per \
                    enumeration"
                   (atom_to_string q atom) tuples cap)
              :: !found
      | _ -> ())
    (Ecq.atoms q);
  !found

(* QL011 — quantifier-free, disequality-free: counting reduces to the
   footnote 4 #Hom DP, exact in polynomial time for bounded treewidth. *)
let quantifier_free (c : Classification.t) acc =
  if
    c.Classification.quantifier_free && c.Classification.diseq_free
    && c.Classification.always_empty = None
  then
    diag ~theorem:"footnote 4 (Dalmau–Jonsson)" D.Quantifier_free D.Hint
      "quantifier-free and disequality-free: exact counting is \
       fixed-parameter tractable — prefer --method exact over sampling"
    :: acc
  else acc

let run ?db ?cost ?spans q (c : Classification.t) =
  let acc = [] in
  let acc = unused_variables ~spans q acc in
  let acc = disconnected c acc in
  let acc = degenerate_diseqs ~spans q acc in
  let acc = duplicate_atoms ~spans q acc in
  let acc = negated_twin ~spans q c acc in
  let acc = match db with Some db -> signature_mismatch ~db q acc | None -> acc in
  let acc = star_size q c acc in
  let acc = width_blowup c acc in
  let acc = unguarded_variables ~spans q acc in
  let acc =
    match db with Some db -> empty_relations ~db ~spans q acc | None -> acc
  in
  let acc = quantifier_free c acc in
  let acc = match cost with Some cost -> output_blowup ~cost c acc | None -> acc in
  let acc =
    match db with
    | Some db -> complement_blowup ~db ~spans q acc
    | None -> acc
  in
  List.sort D.compare acc
