(** The QL lint checks (see [docs/analysis.md] for the code table).

    Structural checks (QL001–QL005, QL007–QL009, QL011) need only the
    query and its {!Classification}; database-aware checks (QL006,
    QL010, QL013) run when [db] is given, and the cost-aware check
    (QL012 — instantiated output-bound blow-up) when a {!Cost.t} is.
    [spans] — one character range per atom, in [Ecq.atoms] order, as
    returned by [Ecq.parse_spans] — attaches source spans to
    atom-level diagnostics. *)

val run :
  ?db:Ac_relational.Structure.t ->
  ?cost:Cost.t ->
  ?spans:(int * int) array ->
  Ac_query.Ecq.t ->
  Classification.t ->
  Diagnostic.t list
