(** Static cost & cardinality analysis: stats-instantiated
    fractional-edge-cover (AGM-style) output bounds plus per-rung work
    predictions.

    The width machinery already solves the fractional edge cover LP
    exactly (Definition 39, [Ac_hypergraph.Widths.fcn_rational]); this
    module {e instantiates} its optimal weights with catalog
    cardinalities and per-column distinct counts
    ({!Cardinality.relation_stats}): for a cover [x] of the query's
    hypergraph, [|Q| <= Π_e N_e^{x_e}] where [N_e] is the smallest
    matching atom projection — the classical AGM bound, computed in
    log2 space so a blow-up never overflows. Negated atoms are priced
    at their complement cardinality ([U^arity - |R|], Definition 20);
    variables no hyperedge reaches cost [U] each.

    On top of the bounds sit per-rung work predictions: trial counts
    from the (ε, δ)-driven batch formulas of the Theorem 16 sketch and
    the DLM edge-count layer (the ACJR sampling-cost shape), and probe
    costs from the instantiated bag bounds (Definition 41 applied to
    the width certificate). {!rank} orders the rungs cheapest-first;
    the planner starts the governed chain at {!chosen} instead of the
    Figure-1 first match, and [Ladder.build] appends the budget-aware
    ε-degradation steps.

    {b Typed degradation.} Instantiating the LP with hostile
    cardinalities can overflow the exact rationals; the analyzer
    catches [Ac_lp.Rat.Overflow] and degrades to a weight-1 greedy
    cover — still a sound bound — recording the event as an
    [Ac_runtime.Error.t] in {!bound.degraded} instead of crashing. *)

(** Mirror of [Planner.rung] (which lives above this library). *)
type rung = Fpras | Exact | Tree_dp | Generic_join | Partial

val rung_name : rung -> string

(** An instantiated output bound, in log2 space ([neg_infinity]: the
    (sub-)query is provably empty on these stats). *)
type bound = {
  log2 : float;
  exact_lp : bool;  (** the exact rational simplex produced the cover *)
  degraded : Ac_runtime.Error.t option;
      (** why [exact_lp] is false (e.g. [Numeric_overflow]) *)
}

type alternative = {
  rung : rung;
  applicable : bool;   (** e.g. the FPRAS requires a CQ *)
  guaranteed : bool;   (** meets (ε, δ) or better; [Partial] does not *)
  log2_probes : float;        (** predicted trial/repetition count *)
  log2_probe_cost : float;    (** predicted work per probe *)
  log2_cost : float;          (** total: probes + probe cost *)
  note : string;
}

type t = {
  eps : float;    (** the targets {!field-alternatives} was ranked at *)
  delta : float;
  stats : Cardinality.t;
  query_bound : bound;            (** whole-query instantiated bound *)
  component_bounds : bound list;  (** per connected component *)
  bag_bounds : bound list;        (** per width-certificate bag (Definition 41) *)
  run_bound_log2 : float;
      (** max instantiated bag bound — the columnar run bound priced
          into the Fpras and Exact rungs *)
  static_choice : rung;  (** the Figure-1 regime's rung *)
  is_cq : bool;
  always_empty : bool;
  treewidth : int;
  star_size : int;
  alternatives : alternative list;  (** ranked at [(eps, delta)] *)
}

(** Restatements of [Fpras.repetitions_for] / [Edge_count.repetitions_for]
    (those modules sit above this library); pinned to the originals by
    the test suite. *)
val fpras_repetitions : delta:float -> int
val edge_count_repetitions : delta:float -> int

(** QL012 fires when the whole-query bound exceeds this many answers. *)
val output_blowup_threshold : float

val output_blowup_threshold_log2 : float

(** Full analysis of a query against measured (or {!Cardinality.nominal})
    statistics. [eps]/[delta] default to the API defaults (0.25, 0.1);
    {!rank} re-prices the alternatives for other targets without
    re-solving any LP. *)
val analyze :
  ?eps:float ->
  ?delta:float ->
  stats:Cardinality.t ->
  Ac_query.Ecq.t ->
  Classification.t ->
  t

(** Re-rank the alternatives at different accuracy targets (cheap: the
    bounds are target-independent). Applicable-and-guaranteed rungs
    sort first by predicted cost; ties prefer the static choice. *)
val rank : eps:float -> delta:float -> t -> alternative list

(** The cheapest applicable rung whose guarantee holds — what the
    costed planner starts the governed chain with. *)
val chosen : t -> rung

(** [2^log2] as an answer count ([0.] for provably-empty). *)
val bound_value : bound -> float

val bound_to_json : bound -> Json.t
val alternative_to_json : alternative -> Json.t
val to_json : t -> Json.t

(** The costed-alternatives table, as [acq explain --cost] prints it. *)
val pp : Format.formatter -> t -> unit
