(** Per-relation catalog statistics feeding the static cost model.

    The numbers the {!Cost} analyzer instantiates the fractional-edge-
    cover LP with: per-relation cardinality, active-domain size and the
    per-column distinct counts (a projection of [R] onto columns
    [S] has at most [min (|R|, Π_{j∈S} distinct.(j))] tuples). The same
    record is what the daemon catalog serialises for the [STATS] wire
    verb — the operator sees exactly the numbers the planner used.

    Sealed relations answer distinct counts from their memoized column
    dictionaries; builder-phase relations pay one scan. *)

type relation_stats = {
  symbol : string;
  arity : int;
  cardinality : int;  (** number of facts *)
  active_domain : int;
      (** distinct universe elements occurring in the relation's facts *)
  distinct : int array;
      (** distinct values per column, length [arity]; for complement
          views the universe size per column (a sound upper bound) *)
}

type t = {
  universe : int;
  db_size : int;  (** the paper's [‖D‖] *)
  nominal : bool;
      (** [true] when the stats are the symbolic defaults of {!nominal}
          rather than measured from a database *)
  stats : relation_stats list;  (** in [Structure.symbols] order *)
}

val of_structure : Ac_relational.Structure.t -> t

(** Symbolic stats for a signature with no database at hand (the
    db-less [acq explain --cost] path): every relation gets
    {!nominal_cardinality} facts over a {!nominal_universe}-element
    universe, and the result is flagged [nominal]. *)
val nominal : (string * int) list -> t

val nominal_cardinality : int
val nominal_universe : int

val find : t -> string -> relation_stats option

val relation_stats_to_json : relation_stats -> Json.t
val to_json : t -> Json.t
