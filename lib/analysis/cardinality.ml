module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Column = Ac_relational.Column

type relation_stats = {
  symbol : string;
  arity : int;
  cardinality : int;
  active_domain : int;
  distinct : int array;
}

type t = {
  universe : int;
  db_size : int;
  nominal : bool;
  stats : relation_stats list;
}

(* Distinct counts per column. Sealed relations answer from their
   memoized column dictionaries in O(1); builders pay one scan (the
   analysis runs once per (query, db) and is plan-cached). Complement
   views are never scanned — every column ranges over the whole
   universe, which is the exact distinct count whenever the base is not
   full, and a sound upper bound always. *)
let distinct_counts ~universe rel =
  let arity = Relation.arity rel in
  if Relation.is_complement rel then Array.make arity universe
  else
    match Relation.sealed_cols rel with
    | Some _ ->
        Array.init arity (fun j -> Column.length (Relation.dict rel j))
    | None ->
        let seen = Array.init arity (fun _ -> Hashtbl.create 64) in
        Relation.iter
          (fun tuple ->
            Array.iteri (fun j v -> Hashtbl.replace seen.(j) v ()) tuple)
          rel;
        Array.map Hashtbl.length seen

let stats_of_relation ~universe symbol rel =
  {
    symbol;
    arity = Relation.arity rel;
    cardinality = Relation.cardinality rel;
    active_domain = Relation.active_domain rel;
    distinct = distinct_counts ~universe rel;
  }

let of_structure db =
  let universe = Structure.universe_size db in
  {
    universe;
    db_size = Structure.size db;
    nominal = false;
    stats =
      List.map
        (fun symbol ->
          stats_of_relation ~universe symbol (Structure.relation db symbol))
        (Structure.symbols db);
  }

let nominal_cardinality = 1_000_000
let nominal_universe = 1_000_000

let nominal signature =
  {
    universe = nominal_universe;
    db_size = List.fold_left (fun acc (_, _) -> acc + nominal_cardinality) 0 signature;
    nominal = true;
    stats =
      List.map
        (fun (symbol, arity) ->
          {
            symbol;
            arity;
            cardinality = nominal_cardinality;
            active_domain = nominal_universe;
            distinct = Array.make arity (min nominal_cardinality nominal_universe);
          })
        signature;
  }

let find t symbol = List.find_opt (fun s -> s.symbol = symbol) t.stats

let relation_stats_to_json r =
  Json.Obj
    [
      ("symbol", Json.String r.symbol);
      ("arity", Json.Int r.arity);
      ("cardinality", Json.Int r.cardinality);
      ("active_domain", Json.Int r.active_domain);
      ( "distinct",
        Json.List (Array.to_list (Array.map (fun d -> Json.Int d) r.distinct))
      );
    ]

let to_json t =
  Json.Obj
    [
      ("universe", Json.Int t.universe);
      ("db_size", Json.Int t.db_size);
      ("nominal", Json.Bool t.nominal);
      ("relations", Json.List (List.map relation_stats_to_json t.stats));
    ]
