type severity = Error | Warning | Info | Hint

type code =
  | Syntax_error
  | Unused_variable
  | Disconnected
  | Diseq_degenerate
  | Duplicate_atom
  | Negated_twin
  | Signature_mismatch
  | Star_size
  | Width_blowup
  | Unguarded_variable
  | Empty_relation
  | Quantifier_free
  | Output_blowup
  | Complement_blowup

type span = { start : int; stop : int }

type t = {
  code : code;
  severity : severity;
  span : span option;
  message : string;
  theorem : string option;
}

let code_number = function
  | Syntax_error -> 0
  | Unused_variable -> 1
  | Disconnected -> 2
  | Diseq_degenerate -> 3
  | Duplicate_atom -> 4
  | Negated_twin -> 5
  | Signature_mismatch -> 6
  | Star_size -> 7
  | Width_blowup -> 8
  | Unguarded_variable -> 9
  | Empty_relation -> 10
  | Quantifier_free -> 11
  | Output_blowup -> 12
  | Complement_blowup -> 13

let code_id c = Printf.sprintf "QL%03d" (code_number c)

let code_slug = function
  | Syntax_error -> "syntax-error"
  | Unused_variable -> "unused-variable-in-single-atom"
  | Disconnected -> "disconnected-query"
  | Diseq_degenerate -> "degenerate-disequality"
  | Duplicate_atom -> "duplicate-atom"
  | Negated_twin -> "negated-twin-always-empty"
  | Signature_mismatch -> "signature-mismatch"
  | Star_size -> "star-size-regime"
  | Width_blowup -> "width-blowup"
  | Unguarded_variable -> "unguarded-variable"
  | Empty_relation -> "empty-relation"
  | Quantifier_free -> "quantifier-free-exact"
  | Output_blowup -> "output-blowup"
  | Complement_blowup -> "complement-materialisation-cap"

let all_codes =
  [
    Syntax_error; Unused_variable; Disconnected; Diseq_degenerate;
    Duplicate_atom; Negated_twin; Signature_mismatch; Star_size;
    Width_blowup; Unguarded_variable; Empty_relation; Quantifier_free;
    Output_blowup; Complement_blowup;
  ]

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2 | Hint -> 3

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare (code_number a.code) (code_number b.code) in
    if c <> 0 then c
    else
      let start = function None -> max_int | Some s -> s.start in
      Stdlib.compare (start a.span, a.message) (start b.span, b.message)

let is_error d = d.severity = Error

let pp fmt d =
  (match d.span with
  | Some { start; stop } ->
      Format.fprintf fmt "%s %-7s [%d-%d]: %s" (code_id d.code)
        (severity_name d.severity) start stop d.message
  | None ->
      Format.fprintf fmt "%s %-7s %s" (code_id d.code)
        (severity_name d.severity) d.message);
  match d.theorem with
  | Some thm -> Format.fprintf fmt " (%s)" thm
  | None -> ()

let to_json d =
  Json.Obj
    [
      ("code", Json.String (code_id d.code));
      ("slug", Json.String (code_slug d.code));
      ("severity", Json.String (severity_name d.severity));
      ( "span",
        match d.span with
        | None -> Json.Null
        | Some { start; stop } ->
            Json.Obj [ ("start", Json.Int start); ("stop", Json.Int stop) ] );
      ("message", Json.String d.message);
      ( "theorem",
        match d.theorem with None -> Json.Null | Some t -> Json.String t );
    ]
