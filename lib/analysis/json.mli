(** A minimal JSON document tree, printer and parser — just enough for
    the machine-readable output of [acq lint --json] / [acq explain
    --json] and the [acqd] wire protocol, without pulling a JSON
    dependency into the core.

    Printing is deterministic (object fields keep insertion order,
    floats render with [%.6g], non-finite floats become [null]), so the
    output can be used as a golden file in CI.

    Parsing accepts standard JSON (RFC 8259) and is total: every
    failure is a {!error} carrying the byte offset of the offending
    character. [parse] composed with {!to_string} is the identity on
    trees whose floats survive the [%.6g] rendering (numbers without a
    [.] or exponent parse as [Int], all others as [Float]); nesting is
    capped at {!max_depth} so adversarial input cannot blow the stack. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit

(** Compact single-line rendering. *)
val to_string : t -> string

(** Indented multi-line rendering (two-space indent, stable layout). *)
val to_string_pretty : t -> string

(** {2 Parsing} *)

(** A positioned parse failure: [offset] is the byte offset of the
    offending character in the input (equal to the input length at an
    unexpected end of input), [msg] the bare description. *)
type error = { offset : int; msg : string }

val error_message : error -> string

(** Maximum accepted nesting depth of arrays/objects (deeper input is
    rejected with a parse error, not a [Stack_overflow]). *)
val max_depth : int

(** Parse one JSON document; trailing whitespace is allowed, any other
    trailing content is an error. Accepts the full RFC 8259 grammar
    (escapes including [\uXXXX] with surrogate pairs, exponents); a
    number without [.]/[e] in range parses as [Int], every other number
    as [Float]. *)
val parse : string -> (t, error) result

(** Convenience accessors for decoding envelopes: total, [None] on a
    type mismatch. [mem] looks a field up in an [Obj] (first match). *)
val mem : string -> t -> t option

val to_int : t -> int option

(** [Int]s widen to float here, so a field rendered [7] reads back as
    [7.0] when a float is expected. *)
val to_float : t -> float option

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
