(** A minimal JSON document tree and printer — just enough for the
    machine-readable output of [acq lint --json] / [acq explain --json]
    without pulling a JSON dependency into the core.

    Printing is deterministic (object fields keep insertion order,
    floats render with [%.6g], non-finite floats become [null]), so the
    output can be used as a golden file in CI. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit

(** Compact single-line rendering. *)
val to_string : t -> string

(** Indented multi-line rendering (two-space indent, stable layout). *)
val to_string_pretty : t -> string
