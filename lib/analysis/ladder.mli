(** The budget-aware ε-degradation ladder.

    The governed planner used to degrade along a fixed rung order only;
    with a {!Cost.t} at hand it instead walks a {e ladder}: first every
    applicable rung with an intact (ε, δ) guarantee, cheapest predicted
    cost first; then (when all of those tripped the budget) the
    cheapest guaranteed sampling rung again at doubled ε — a coarser
    answer whose δ guarantee still holds beats a guarantee-free lower
    bound; finally the partial-enumeration sweep. Each step carries the
    ε it runs at, so the caller can report the accuracy actually
    delivered ([eps_used]). *)

type step = {
  rung : Cost.rung;
  eps : float;    (** the accuracy this step runs at *)
  relaxed : bool; (** [eps] is coarser than the request *)
}

(** Relaxation steps appended after the guaranteed rungs (default 2:
    2ε then 4ε, capped at {!eps_cap}). *)
val default_max_relax : int

(** Relaxed ε never exceeds this (0.5: beyond it the estimate is
    hardly an estimate). *)
val eps_cap : float

(** [build ~eps ~delta cost] — ranked guaranteed rungs at [eps], then
    the relaxation steps, then [Partial]. Always non-empty and always
    ends with [Partial]. *)
val build : ?max_relax:int -> eps:float -> delta:float -> Cost.t -> step list

val pp_step : Format.formatter -> step -> unit
val to_json : step list -> Json.t
