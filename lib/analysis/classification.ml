type query_class = Cq | Dcq | Ecq_full

type regime =
  | Exact_empty
  | Fpras_ta
  | Fptras_tree_dp
  | Fptras_generic_join

type theorem = Thm5 | Thm13 | Thm16 | Obs10 | Footnote4

type star = { existential_core : int list; free_leaves : int list }
type empty_witness = { relation : string; pos_index : int; neg_index : int }

type t = {
  query_class : query_class;
  num_vars : int;
  num_free : int;
  arity : int;
  treewidth : int;
  fhw : float;
  exact_widths : bool;
  width_certificate : int list list;
  components : int list list;
  star_size : int;
  max_star : star option;
  quantifier_free : bool;
  diseq_free : bool;
  always_empty : empty_witness option;
  regime : regime;
}

let theorem c =
  match c.regime with
  | Exact_empty -> None
  | Fpras_ta -> Some Thm16
  | Fptras_tree_dp -> Some Thm5
  | Fptras_generic_join -> Some Thm13

let no_fpras c = c.query_class <> Cq && c.regime <> Exact_empty

let class_name = function Cq -> "CQ" | Dcq -> "DCQ" | Ecq_full -> "ECQ"

let regime_name = function
  | Exact_empty -> "exact-empty"
  | Fpras_ta -> "fpras-tree-automaton"
  | Fptras_tree_dp -> "fptras-tree-dp"
  | Fptras_generic_join -> "fptras-generic-join"

let theorem_name = function
  | Thm5 -> "Theorem 5"
  | Thm13 -> "Theorem 13"
  | Thm16 -> "Theorem 16"
  | Obs10 -> "Observation 10"
  | Footnote4 -> "footnote 4"

let describe c =
  match c.regime with
  | Exact_empty ->
      let rel =
        match c.always_empty with Some w -> w.relation | None -> "?"
      in
      Printf.sprintf
        "always empty: negated atom over %s has its positive twin — exact \
         count 0, no counting run needed"
        rel
  | Fpras_ta ->
      Printf.sprintf "CQ with fhw %.2f: Theorem 16 FPRAS (tree-automaton pipeline)"
        c.fhw
  | Fptras_tree_dp when c.query_class = Dcq ->
      Printf.sprintf
        "DCQ (no FPRAS, Observation 10); arity %d, tw %d: Theorem 5 FPTRAS \
         with the tree-DP engine"
        c.arity c.treewidth
  | Fptras_tree_dp ->
      Printf.sprintf
        "ECQ with negations (no FPRAS, Observation 10): Theorem 5 FPTRAS, \
         tw %d, arity %d"
        c.treewidth c.arity
  | Fptras_generic_join ->
      Printf.sprintf
        "DCQ (no FPRAS, Observation 10) of arity %d: Theorem 13 FPTRAS with \
         the generic-join engine (bounded adaptive width)"
        c.arity

let equal_invariants a b =
  a.query_class = b.query_class
  && a.num_vars = b.num_vars
  && a.num_free = b.num_free
  && a.arity = b.arity
  && a.treewidth = b.treewidth
  && Float.abs (a.fhw -. b.fhw) <= 1e-9
  && a.exact_widths = b.exact_widths
  && List.length a.components = List.length b.components
  && List.sort compare (List.map List.length a.components)
     = List.sort compare (List.map List.length b.components)
  && a.star_size = b.star_size
  && a.quantifier_free = b.quantifier_free
  && a.diseq_free = b.diseq_free
  && Option.is_some a.always_empty = Option.is_some b.always_empty
  && a.regime = b.regime

let pp ~var_name fmt c =
  let vars vs = String.concat ", " (List.map var_name vs) in
  Format.fprintf fmt "class:        %s (%d variables, %d free)@."
    (class_name c.query_class) c.num_vars c.num_free;
  Format.fprintf fmt "regime:       %s%s@." (regime_name c.regime)
    (match theorem c with
    | Some t -> Printf.sprintf " (%s)" (theorem_name t)
    | None -> "");
  if no_fpras c then
    Format.fprintf fmt "hardness:     no FPRAS unless NP = RP (%s)@."
      (theorem_name Obs10);
  (match c.always_empty with
  | Some w ->
      Format.fprintf fmt
        "empty:        atoms %d and %d over %s are positive/negated twins@."
        w.pos_index w.neg_index w.relation
  | None -> ());
  Format.fprintf fmt "treewidth:    %d%s@." c.treewidth
    (if c.exact_widths then "" else " (upper bound)");
  Format.fprintf fmt "fhw:          %.2f%s@." c.fhw
    (if c.exact_widths then "" else " (upper bound)");
  Format.fprintf fmt "arity:        %d@." c.arity;
  (match c.width_certificate with
  | [] -> ()
  | bags ->
      Format.fprintf fmt "bags:         %s@."
        (String.concat " | " (List.map (fun b -> "{" ^ vars b ^ "}") bags)));
  Format.fprintf fmt "star size:    %d%s@." c.star_size
    (match c.max_star with
    | Some s ->
        Printf.sprintf " (existential core {%s}, free leaves {%s})"
          (vars s.existential_core) (vars s.free_leaves)
    | None -> "");
  Format.fprintf fmt "components:   %d%s@." (List.length c.components)
    (if List.length c.components > 1 then " (cartesian product!)" else "");
  if c.quantifier_free && c.diseq_free then
    Format.fprintf fmt "note:         quantifier-free, diseq-free — exact #Hom DP applies (%s)@."
      (theorem_name Footnote4)

let to_json c =
  Json.Obj
    [
      ("class", Json.String (class_name c.query_class));
      ("regime", Json.String (regime_name c.regime));
      ( "theorem",
        match theorem c with
        | Some t -> Json.String (theorem_name t)
        | None -> Json.Null );
      ("no_fpras", Json.Bool (no_fpras c));
      ("num_vars", Json.Int c.num_vars);
      ("num_free", Json.Int c.num_free);
      ("arity", Json.Int c.arity);
      ("treewidth", Json.Int c.treewidth);
      ("fhw", Json.Float c.fhw);
      ("exact_widths", Json.Bool c.exact_widths);
      ( "width_certificate",
        Json.List
          (List.map
             (fun bag -> Json.List (List.map (fun v -> Json.Int v) bag))
             c.width_certificate) );
      ( "components",
        Json.List
          (List.map
             (fun comp -> Json.List (List.map (fun v -> Json.Int v) comp))
             c.components) );
      ("star_size", Json.Int c.star_size);
      ( "max_star",
        match c.max_star with
        | None -> Json.Null
        | Some s ->
            Json.Obj
              [
                ( "existential_core",
                  Json.List (List.map (fun v -> Json.Int v) s.existential_core)
                );
                ( "free_leaves",
                  Json.List (List.map (fun v -> Json.Int v) s.free_leaves) );
              ] );
      ("quantifier_free", Json.Bool c.quantifier_free);
      ("diseq_free", Json.Bool c.diseq_free);
      ( "always_empty",
        match c.always_empty with
        | None -> Json.Null
        | Some w ->
            Json.Obj
              [
                ("relation", Json.String w.relation);
                ("pos_index", Json.Int w.pos_index);
                ("neg_index", Json.Int w.neg_index);
              ] );
      ("plan", Json.String (describe c));
    ]
