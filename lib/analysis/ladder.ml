type step = { rung : Cost.rung; eps : float; relaxed : bool }

let default_max_relax = 2
let eps_cap = 0.5

let is_sampling = function
  | Cost.Fpras | Cost.Tree_dp | Cost.Generic_join -> true
  | Cost.Exact | Cost.Partial -> false

let build ?(max_relax = default_max_relax) ~eps ~delta cost =
  let ranked = Cost.rank ~eps ~delta cost in
  let base =
    List.filter_map
      (fun (a : Cost.alternative) ->
        if a.Cost.applicable && a.Cost.guaranteed && a.Cost.rung <> Cost.Partial
        then Some { rung = a.Cost.rung; eps; relaxed = false }
        else None)
      ranked
  in
  (* Relaxed steps reuse the cheapest guaranteed sampling rung at
     doubled ε: when every rung tripped the budget at the requested
     accuracy, a coarser estimate with an intact δ guarantee beats the
     guarantee-free partial sweep. The rung keeps its ordinal, so a
     relaxed attempt still draws its own seed split deterministically. *)
  let relaxed =
    match
      List.find_opt
        (fun (a : Cost.alternative) ->
          a.Cost.applicable && a.Cost.guaranteed && is_sampling a.Cost.rung)
        ranked
    with
    | None -> []
    | Some a ->
        List.filter_map
          (fun i ->
            let e = eps *. Float.pow 2.0 (float_of_int i) in
            if e <= eps_cap then Some { rung = a.Cost.rung; eps = e; relaxed = true }
            else None)
          (List.init max_relax (fun i -> i + 1))
  in
  base @ relaxed @ [ { rung = Cost.Partial; eps; relaxed = false } ]

let pp_step fmt s =
  Format.fprintf fmt "%s@eps=%.3g%s" (Cost.rung_name s.rung) s.eps
    (if s.relaxed then " (relaxed)" else "")

let to_json steps =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("rung", Json.String (Cost.rung_name s.rung));
             ("eps", Json.Float s.eps);
             ("relaxed", Json.Bool s.relaxed);
           ])
       steps)
