module Ecq = Ac_query.Ecq
module Hypergraph = Ac_hypergraph.Hypergraph
module Bitset = Ac_hypergraph.Bitset
module Widths = Ac_hypergraph.Widths
module Rat = Ac_lp.Rat
module Error = Ac_runtime.Error

type rung = Fpras | Exact | Tree_dp | Generic_join | Partial

let rung_name = function
  | Fpras -> "fpras"
  | Exact -> "exact"
  | Tree_dp -> "tree-dp"
  | Generic_join -> "generic-join"
  | Partial -> "partial"

type bound = {
  log2 : float;
  exact_lp : bool;
  degraded : Error.t option;
}

type alternative = {
  rung : rung;
  applicable : bool;
  guaranteed : bool;
  log2_probes : float;
  log2_probe_cost : float;
  log2_cost : float;
  note : string;
}

type t = {
  eps : float;
  delta : float;
  stats : Cardinality.t;
  query_bound : bound;
  component_bounds : bound list;
  bag_bounds : bound list;
  run_bound_log2 : float;
  static_choice : rung;
  is_cq : bool;
  always_empty : bool;
  treewidth : int;
  star_size : int;
  alternatives : alternative list;
}

(* ---------- the ACJR trial-count formulas ----------

   Mirrors of [Fpras.repetitions_for] (median batch of Theorem 16
   sketch repetitions) and [Edge_count.repetitions_for] (DLM median
   trials per subsampling level). They live below [lib/core]/[lib/dlm]
   in the dependency order, so the formulas are restated here;
   [test/test_cost.ml] pins them to the originals. *)

let fpras_repetitions ~delta =
  let delta = Float.min 0.49 (Float.max 1e-12 delta) in
  let m = int_of_float (ceil (1.25 *. Float.log (1.0 /. delta))) in
  max 3 ((2 * m) + 1)

let edge_count_repetitions ~delta =
  let m = int_of_float (ceil (2.5 *. Float.log (1.0 /. delta))) in
  (2 * max 2 m) + 1

let output_blowup_threshold = 1e7
let output_blowup_threshold_log2 = Float.log2 output_blowup_threshold

(* ---------- instantiated fractional-edge-cover bounds ---------- *)

let log2i n = Float.log2 (float_of_int (max 1 n))

type pred_atom = {
  positive : bool;
  symbol : string;
  vars : int array;
  varset : Bitset.t;
}

let pred_atoms ~capacity q =
  List.filter_map
    (function
      | Ecq.Atom (symbol, vars) ->
          Some
            {
              positive = true;
              symbol;
              vars;
              varset = Bitset.of_list ~capacity (Array.to_list vars);
            }
      | Ecq.Neg_atom (symbol, vars) ->
          Some
            {
              positive = false;
              symbol;
              vars;
              varset = Bitset.of_list ~capacity (Array.to_list vars);
            }
      | Ecq.Diseq _ -> None)
    (Ecq.atoms q)

(* log2 of an upper bound on |π_e(R)| — the atom's relation projected to
   the variables of edge [e] (a subset of the atom's variables).

   Positive atoms: at most [min(|R|, Π_v distinct(v))], where each
   variable contributes the smallest per-column distinct count among the
   positions it occupies. Negated atoms stand for the complement
   [U^arity \ R]: exactly [U^arity - |R|] when [e] spans all the atom's
   (pairwise-distinct) variables, at most [U^|e|] otherwise. An empty
   relation under a positive atom (or a full one under a negated atom)
   yields [neg_infinity]: the join is provably empty. *)
let atom_edge_log2 ~(stats : Cardinality.t) ~universe (a : pred_atom) e =
  let u_log2 = log2i universe in
  match Cardinality.find stats a.symbol with
  | None ->
      (* not in the catalog: QL006 territory; U^|e| stays sound *)
      float_of_int (Bitset.cardinal e) *. u_log2
  | Some s when s.Cardinality.arity <> Array.length a.vars ->
      (* arity mismatch (QL006): the catalog row does not describe this
         atom — price at U^|e|, which is sound regardless *)
      float_of_int (Bitset.cardinal e) *. u_log2
  | Some s ->
      if a.positive then begin
        if s.Cardinality.cardinality = 0 then Float.neg_infinity
        else begin
          let from_distinct = ref 0.0 in
          Bitset.iter
            (fun v ->
              let best = ref max_int in
              Array.iteri
                (fun j v' ->
                  if v' = v then
                    best := min !best s.Cardinality.distinct.(j))
                a.vars;
              from_distinct := !from_distinct +. log2i !best)
            e;
          Float.min (log2i s.Cardinality.cardinality) !from_distinct
        end
      end
      else begin
        let distinct_vars = Bitset.cardinal a.varset in
        let no_repeats = distinct_vars = Array.length a.vars in
        if no_repeats && Bitset.equal e a.varset then begin
          let complement =
            (float_of_int universe ** float_of_int s.Cardinality.arity)
            -. float_of_int s.Cardinality.cardinality
          in
          if complement <= 0.0 then Float.neg_infinity
          else Float.log2 complement
        end
        else float_of_int (Bitset.cardinal e) *. u_log2
      end

(* Weight-1 greedy set cover, the typed degradation target when the
   exact rational simplex overflows: any edge set covering every vertex
   is a (integral, hence fractional) edge cover, so the summed log2
   sizes remain a sound output bound. *)
let greedy_cover_log2 ~edge_sizes ~edges covered =
  let chosen = ref 0.0 in
  let remaining = ref covered in
  let arr = Array.of_list (List.combine edges edge_sizes) in
  while not (Bitset.is_empty !remaining) do
    let best = ref None in
    Array.iter
      (fun (e, size) ->
        let gain = Bitset.cardinal (Bitset.inter e !remaining) in
        if gain > 0 then
          match !best with
          | Some (_, bs, bg) when (bg, -.bs) >= (gain, -.size) -> ()
          | _ -> best := Some (e, size, gain))
      arr;
    match !best with
    | None ->
        (* cannot happen: every vertex of [covered] lies in some edge *)
        remaining := Bitset.diff !remaining !remaining
    | Some (e, size, _) ->
        chosen := !chosen +. size;
        remaining := Bitset.diff !remaining e
  done;
  !chosen

(* Instantiated output bound for the sub-query induced by vertex set
   [vs]: solve the fractional edge cover LP over the coverable vertices
   exactly, price each cover edge at the smallest matching atom
   projection, and charge [U] per vertex no hyperedge reaches (such a
   variable — disequality-only — ranges over the whole universe). *)
let bound_of_vertices ~stats ~universe ~atoms h vs =
  let u_log2 = log2i universe in
  let edges_all = Hypergraph.induced_edges h vs in
  let covered =
    List.fold_left Bitset.union
      (Bitset.create ~capacity:(Bitset.capacity vs))
      edges_all
  in
  let covered = Bitset.inter covered vs in
  let base = float_of_int (Bitset.cardinal (Bitset.diff vs covered)) *. u_log2 in
  if Bitset.is_empty covered then
    { log2 = base; exact_lp = true; degraded = None }
  else begin
    let edges = Hypergraph.induced_edges h covered in
    let edge_sizes =
      List.map
        (fun e ->
          List.fold_left
            (fun acc a ->
              if Bitset.equal (Bitset.inter a.varset covered) e then
                Float.min acc (atom_edge_log2 ~stats ~universe a e)
              else acc)
            Float.infinity atoms)
        edges
    in
    let weighted w =
      List.fold_left2
        (fun acc w size ->
          if Rat.sign w = 0 then acc else acc +. (Rat.to_float w *. size))
        0.0 (Array.to_list w) edge_sizes
    in
    match Widths.fcn_rational h covered with
    | Some (_, w) when Array.length w = List.length edges ->
        { log2 = base +. weighted w; exact_lp = true; degraded = None }
    | Some _ | None ->
        (* uncoverable vertices were removed above; treat defensively *)
        {
          log2 = base +. greedy_cover_log2 ~edge_sizes ~edges covered;
          exact_lp = false;
          degraded =
            Some (Error.Internal "edge-cover LP returned no certificate");
        }
    | exception Rat.Overflow ->
        {
          log2 = base +. greedy_cover_log2 ~edge_sizes ~edges covered;
          exact_lp = false;
          degraded =
            Some
              (Error.Numeric_overflow
                 "rational edge-cover LP overflowed; bound degraded to a \
                  greedy integral cover");
        }
  end

(* ---------- per-rung work predictions ---------- *)

let log2_inv_eps2 eps =
  let eps = Float.max 1e-9 (Float.min 1.0 eps) in
  -2.0 *. Float.log2 eps

let clamp0 x = if x < 0.0 then 0.0 else x

let rank ~eps ~delta t =
  let universe = t.stats.Cardinality.universe in
  let u_log2 = log2i universe in
  let star = float_of_int (min t.star_size 24) in
  let sampling_probes reps =
    Float.log2 (float_of_int reps) +. log2_inv_eps2 eps +. (2.0 *. star)
  in
  let mk rung ~applicable ~guaranteed ~probes ~probe_cost note =
    {
      rung;
      applicable;
      guaranteed;
      log2_probes = probes;
      log2_probe_cost = probe_cost;
      log2_cost =
        (if Float.is_finite probes || Float.is_finite probe_cost then
           probes +. probe_cost
         else Float.neg_infinity);
      note;
    }
  in
  let exact_alt =
    mk Exact ~applicable:true ~guaranteed:true ~probes:0.0
      ~probe_cost:
        (if t.always_empty then Float.neg_infinity
         else Float.max t.query_bound.log2 t.run_bound_log2)
      (if t.always_empty then "statically empty: exact count 0"
       else "join + projection, bounded by the instantiated cover bound")
  in
  let fpras_alt =
    mk Fpras ~applicable:t.is_cq ~guaranteed:true
      ~probes:
        (Float.log2 (float_of_int (fpras_repetitions ~delta))
        +. log2_inv_eps2 eps)
      ~probe_cost:(clamp0 t.run_bound_log2)
      (if t.is_cq then
         "Theorem 16 sketch pipeline; probe cost is the max instantiated \
          bag bound"
       else "requires a CQ (Observation 10)")
  in
  let ec_reps = edge_count_repetitions ~delta in
  let tree_alt =
    mk Tree_dp ~applicable:true ~guaranteed:true
      ~probes:(sampling_probes ec_reps)
      ~probe_cost:(float_of_int (t.treewidth + 1) *. u_log2)
      "Theorem 5 FPTRAS; DP table is |U|^(tw+1) per oracle probe"
  in
  let generic_alt =
    mk Generic_join ~applicable:true ~guaranteed:true
      ~probes:(sampling_probes ec_reps)
      ~probe_cost:(clamp0 t.query_bound.log2)
      "Theorem 13 FPTRAS; generic join runs within the instantiated \
       AGM bound"
  in
  let partial_alt =
    mk Partial ~applicable:true ~guaranteed:false ~probes:0.0
      ~probe_cost:(clamp0 t.query_bound.log2)
      "best-effort enumeration, lower bound only"
  in
  let priority a =
    if a.rung = t.static_choice then -1
    else
      match a.rung with
      | Exact -> 0
      | Fpras -> 1
      | Tree_dp -> 2
      | Generic_join -> 3
      | Partial -> 4
  in
  let order a b =
    match (a.applicable && a.guaranteed, b.applicable && b.guaranteed) with
    | true, false -> -1
    | false, true -> 1
    | _ ->
        let c = Float.compare a.log2_cost b.log2_cost in
        if c <> 0 then c else Stdlib.compare (priority a) (priority b)
  in
  List.sort order [ exact_alt; fpras_alt; tree_alt; generic_alt; partial_alt ]

let chosen t =
  match List.find_opt (fun a -> a.applicable && a.guaranteed) t.alternatives with
  | Some a -> a.rung
  | None -> Exact

let static_choice_of (c : Classification.t) =
  match c.Classification.regime with
  | Classification.Exact_empty -> Exact
  | Classification.Fpras_ta -> Fpras
  | Classification.Fptras_tree_dp -> Tree_dp
  | Classification.Fptras_generic_join -> Generic_join

let analyze ?(eps = 0.25) ?(delta = 0.1) ~stats q (c : Classification.t) =
  let h = Ecq.hypergraph q in
  let capacity = Hypergraph.num_vertices h in
  let universe = stats.Cardinality.universe in
  let atoms = pred_atoms ~capacity q in
  let bound_of vs = bound_of_vertices ~stats ~universe ~atoms h vs in
  let full = Bitset.full ~capacity in
  let query_bound =
    if c.Classification.always_empty <> None then
      { log2 = Float.neg_infinity; exact_lp = true; degraded = None }
    else bound_of full
  in
  let component_bounds =
    List.map
      (fun comp -> bound_of (Bitset.of_list ~capacity comp))
      c.Classification.components
  in
  let bag_bounds =
    List.map
      (fun bag -> bound_of (Bitset.of_list ~capacity bag))
      c.Classification.width_certificate
  in
  let run_bound_log2 =
    match bag_bounds with
    | [] ->
        (* no exact certificate: fall back to fhw times the largest
           relation, the Definition 41 shape of the run bound *)
        let max_card =
          List.fold_left
            (fun acc (s : Cardinality.relation_stats) ->
              max acc s.Cardinality.cardinality)
            1 stats.Cardinality.stats
        in
        c.Classification.fhw *. log2i max_card
    | bs -> List.fold_left (fun acc b -> Float.max acc b.log2) 0.0 bs
  in
  let t =
    {
      eps;
      delta;
      stats;
      query_bound;
      component_bounds;
      bag_bounds;
      run_bound_log2;
      static_choice = static_choice_of c;
      is_cq = c.Classification.query_class = Classification.Cq;
      always_empty = c.Classification.always_empty <> None;
      treewidth = c.Classification.treewidth;
      star_size = c.Classification.star_size;
      alternatives = [];
    }
  in
  { t with alternatives = rank ~eps ~delta t }

(* ---------- rendering ---------- *)

(* The bound as an answer count, for messages: 2^log2, +inf-safe. *)
let bound_value b = if Float.is_finite b.log2 then Float.pow 2.0 b.log2 else
    if b.log2 = Float.neg_infinity then 0.0 else Float.infinity

let bound_to_json b =
  Json.Obj
    [
      ("log2", if Float.is_finite b.log2 then Json.Float b.log2
               else if b.log2 = Float.neg_infinity then Json.Float (-1e9)
               else Json.Null);
      ("value", if Float.is_finite (bound_value b) then Json.Float (bound_value b) else Json.Null);
      ("exact_lp", Json.Bool b.exact_lp);
      ( "degraded",
        match b.degraded with
        | None -> Json.Null
        | Some e ->
            Json.Obj
              [
                ("class", Json.String (Error.class_name e));
                ("message", Json.String (Error.message e));
              ] );
    ]

let alternative_to_json a =
  Json.Obj
    [
      ("rung", Json.String (rung_name a.rung));
      ("applicable", Json.Bool a.applicable);
      ("guaranteed", Json.Bool a.guaranteed);
      ("log2_probes", Json.Float a.log2_probes);
      ( "log2_probe_cost",
        if Float.is_finite a.log2_probe_cost then Json.Float a.log2_probe_cost
        else Json.Float (-1e9) );
      ( "log2_cost",
        if Float.is_finite a.log2_cost then Json.Float a.log2_cost
        else Json.Float (-1e9) );
      ("note", Json.String a.note);
    ]

let to_json t =
  Json.Obj
    [
      ("eps", Json.Float t.eps);
      ("delta", Json.Float t.delta);
      ("nominal_stats", Json.Bool t.stats.Cardinality.nominal);
      ("query_bound", bound_to_json t.query_bound);
      ("component_bounds", Json.List (List.map bound_to_json t.component_bounds));
      ("bag_bounds", Json.List (List.map bound_to_json t.bag_bounds));
      ("run_bound_log2", Json.Float t.run_bound_log2);
      ("static_choice", Json.String (rung_name t.static_choice));
      ("chosen", Json.String (rung_name (chosen t)));
      ("alternatives", Json.List (List.map alternative_to_json t.alternatives));
      ("stats", Cardinality.to_json t.stats);
    ]

let pp fmt t =
  let b = t.query_bound in
  Format.fprintf fmt "bound:        %s answers (instantiated edge cover%s)@."
    (if b.log2 = Float.neg_infinity then "0"
     else Printf.sprintf "<= %.3g" (bound_value b))
    (if b.exact_lp then ", exact LP" else ", degraded to greedy cover");
  if t.stats.Cardinality.nominal then
    Format.fprintf fmt "stats:        nominal (no database given: 10^6 rows \
                        per relation assumed)@.";
  Format.fprintf fmt
    "@[<v 2>alternatives (eps %.3g, delta %.3g; cheapest guaranteed rung wins):@,"
    t.eps t.delta;
  Format.fprintf fmt "%-14s %-10s %-10s %-10s %s@," "rung" "log2cost"
    "probes" "guarantee" "note";
  List.iter
    (fun a ->
      Format.fprintf fmt "%-14s %-10s %-10s %-10s %s@,"
        (rung_name a.rung)
        (if Float.is_finite a.log2_cost then
           Printf.sprintf "%.1f" a.log2_cost
         else "0")
        (Printf.sprintf "%.1f" a.log2_probes)
        (if not a.applicable then "n/a"
         else if a.guaranteed then "yes"
         else "lower-bound")
        a.note)
    t.alternatives;
  Format.fprintf fmt "@]@.";
  Format.fprintf fmt "chosen:       %s%s@."
    (rung_name (chosen t))
    (if chosen t = t.static_choice then " (agrees with the static plan)"
     else Printf.sprintf " (static plan: %s)" (rung_name t.static_choice))
