(** The Figure 1 classification of a query, as a typed record.

    Where the planner used to carry a free-text [reason], this record
    names the governing theorem and the structural facts it rests on —
    query class, width measures, quantified star size — together with
    machine-readable witnesses (the extremal star, the connected
    components, the width certificate bags). {!describe} pretty-prints
    it back into the one-line plan reason, so plan output and
    [acq explain] can never disagree. *)

type query_class = Cq | Dcq | Ecq_full

(** The algorithmic regime Figure 1 assigns. *)
type regime =
  | Exact_empty          (** statically always empty: exact 0, no counting run *)
  | Fpras_ta             (** Theorem 16 FPRAS (tree-automaton pipeline) *)
  | Fptras_tree_dp       (** Theorem 5 FPTRAS (tree-decomposition DP engine) *)
  | Fptras_generic_join  (** Theorem 13 FPTRAS (generic-join engine) *)

type theorem = Thm5 | Thm13 | Thm16 | Obs10 | Footnote4

(** Witness for the quantified-star-size measure: one connected component
    of existential variables and the free variables attached to it. *)
type star = { existential_core : int list; free_leaves : int list }

(** Witness that the query is statically empty (QL005): atom indices of
    the positive atom and its negated twin. *)
type empty_witness = { relation : string; pos_index : int; neg_index : int }

type t = {
  query_class : query_class;
  num_vars : int;
  num_free : int;
  arity : int;          (** max atom arity = hyperedge size of [H(φ)] *)
  treewidth : int;      (** exact when [exact_widths] *)
  fhw : float;          (** exact when [exact_widths] *)
  exact_widths : bool;  (** widths are exact (≤ 14 variables) *)
  width_certificate : int list list;
      (** bags of the witnessing tree decomposition (exact case), else
          the bags of the heuristic decomposition *)
  components : int list list;
      (** connected components of the variables (atoms and disequalities
          both connect); > 1 component ⇒ cartesian product (QL002) *)
  star_size : int;      (** quantified star size bound; 0 without ∃-vars *)
  max_star : star option;  (** the star realising [star_size] *)
  quantifier_free : bool;
  diseq_free : bool;
  always_empty : empty_witness option;
  regime : regime;
}

(** Governing upper-bound theorem; [None] for [Exact_empty] (the count
    is 0 by §1.1 semantics alone). *)
val theorem : t -> theorem option

(** Observation 10 applies: no FPRAS unless NP = RP (any disequality or
    negation). *)
val no_fpras : t -> bool

val class_name : query_class -> string
val regime_name : regime -> string
val theorem_name : theorem -> string

(** The one-line plan reason, derived from the record — the only source
    of [Planner.decision.reason]. *)
val describe : t -> string

(** Classification is a function of the query's structure only, so it is
    invariant under variable renaming; [equal_invariants] compares every
    field that carries no variable-index witness. *)
val equal_invariants : t -> t -> bool

(** Multi-line rendering for [acq explain]; [var_name] maps variable
    indices to display names. *)
val pp : var_name:(int -> string) -> Format.formatter -> t -> unit

val to_json : t -> Json.t
