type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.6g" f in
    (* "1" would parse as an int downstream; keep floats recognisable *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let rec emit_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> emit buf j
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          emit_pretty buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit_pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 512 in
  emit_pretty buf 0 j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)
