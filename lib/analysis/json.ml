type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.6g" f in
    (* "1" would parse as an int downstream; keep floats recognisable *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let rec emit_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> emit buf j
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          emit_pretty buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit_pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 512 in
  emit_pretty buf 0 j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ---------- parsing ---------- *)

type error = { offset : int; msg : string }

let error_message e = Printf.sprintf "%s at offset %d" e.msg e.offset
let max_depth = 512

exception Err of error

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail ?offset msg =
    raise (Err { offset = (match offset with Some o -> o | None -> !pos); msg })
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail ~offset:n (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let start = !pos in
    let w = String.length word in
    if start + w <= n && String.sub text start w = word then begin
      pos := start + w;
      value
    end
    else fail ~offset:start (Printf.sprintf "invalid literal (expected %s)" word)
  in
  (* UTF-8-encode one code point into [buf]. *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    let start = !pos in
    if start + 4 > n then fail ~offset:n "truncated \\u escape";
    let v = ref 0 in
    for i = start to start + 3 do
      let d =
        match text.[i] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail ~offset:i "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d
    done;
    pos := start + 4;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail ~offset:n "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' -> (
            advance ();
            match peek () with
            | None -> fail ~offset:n "unterminated escape"
            | Some c ->
                advance ();
                (match c with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'n' -> Buffer.add_char buf '\n'
                | 'r' -> Buffer.add_char buf '\r'
                | 't' -> Buffer.add_char buf '\t'
                | 'u' ->
                    let cp = hex4 () in
                    let cp =
                      (* high surrogate: combine with the trailing low
                         surrogate when present *)
                      if cp >= 0xD800 && cp <= 0xDBFF
                         && !pos + 1 < n
                         && text.[!pos] = '\\'
                         && text.[!pos + 1] = 'u'
                      then begin
                        let save = !pos in
                        pos := !pos + 2;
                        let lo = hex4 () in
                        if lo >= 0xDC00 && lo <= 0xDFFF then
                          0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                        else begin
                          pos := save;
                          cp
                        end
                      end
                      else cp
                    in
                    add_code_point buf cp
                | c -> fail (Printf.sprintf "invalid escape \\%c" c));
                go ())
        | c when Char.code c < 0x20 ->
            fail "unescaped control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match text.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let s = String.sub text start (!pos - start) in
    if !is_float then Float (float_of_string s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> Float (float_of_string s)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting deeper than the accepted maximum";
    skip_ws ();
    match peek () with
    | None -> fail ~offset:n "expected a value, found end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing content after the document";
    v
  with
  | v -> Ok v
  | exception Err e -> Error e

(* ---------- accessors ---------- *)

let mem key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
