(** A full analysis report: classification + diagnostics, renderable as
    text or JSON (the [acq lint --json] schema, see [docs/analysis.md]).

    {!analyze} works on an already-built query (classification always
    present); {!analyze_text} parses first and turns parse failures into
    span-carrying diagnostics — QL000 for plain syntax errors, QL003
    when the text contains a contradictory disequality ([x != x],
    possibly via equality unification) — with no classification. *)

type t = {
  query : Ac_query.Ecq.t option;  (** [None] only when parsing failed *)
  classification : Classification.t option;
  diagnostics : Diagnostic.t list;  (** sorted: errors first *)
  cost : Cost.t option;
      (** the static cost analysis, instantiated from the database's
          catalog stats — present exactly when [analyze] got a [db].
          Stored in the report so the daemon's plan cache (keyed by the
          database fingerprint) invalidates it for free. *)
}

val analyze :
  ?db:Ac_relational.Structure.t ->
  ?spans:(int * int) array ->
  Ac_query.Ecq.t ->
  t

val analyze_text : ?db:Ac_relational.Structure.t -> string -> t

(** The classification; raises [Invalid_argument] on a parse-failure
    report (callers on the {!analyze} path may rely on its presence). *)
val classification_exn : t -> Classification.t

val errors : t -> Diagnostic.t list
val has_errors : t -> bool

(** [(errors, warnings, infos, hints)]. *)
val tally : t -> int * int * int * int

(** CI exit status: [0] clean of errors, [1] otherwise. *)
val exit_status : t -> int

(** Human rendering: one diagnostic per line, then a summary line. *)
val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
