module Ecq = Ac_query.Ecq
module Hypergraph = Ac_hypergraph.Hypergraph
module Tree_decomposition = Ac_hypergraph.Tree_decomposition
module Widths = Ac_hypergraph.Widths
module Bitset = Ac_hypergraph.Bitset
open Classification

let exact_width_limit = 14
let width_warn_threshold = 5
let fhw_warn_threshold = 3.0
let star_warn_threshold = 4

(* Union-find over variables; atoms and disequalities both connect. *)
let components q =
  let n = Ecq.num_vars q in
  let uf = Array.init n Fun.id in
  let rec find v = if uf.(v) = v then v else (uf.(v) <- find uf.(v); uf.(v)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then uf.(ra) <- rb
  in
  let link vs =
    Array.iteri (fun i v -> if i > 0 then union vs.(0) v) vs
  in
  List.iter
    (function
      | Ecq.Atom (_, vs) | Ecq.Neg_atom (_, vs) -> link vs
      | Ecq.Diseq (i, j) -> union i j)
    (Ecq.atoms q);
  let buckets = Hashtbl.create 8 in
  for v = n - 1 downto 0 do
    let r = find v in
    Hashtbl.replace buckets r (v :: (Option.value ~default:[] (Hashtbl.find_opt buckets r)))
  done;
  Hashtbl.fold (fun _ vs acc -> vs :: acc) buckets []
  |> List.sort compare

(* Quantified star size (Durand–Mengel style bound): group the
   existential variables into connected components (through atoms whose
   every link passes an existential variable), then count the free
   variables sharing an atom with each component. The worst star governs
   how many free variables one colour-coded trial must pin down. *)
let star q =
  let n = Ecq.num_vars q in
  let free = Ecq.num_free q in
  if n = free then (0, None)
  else begin
    let uf = Array.init n Fun.id in
    let rec find v = if uf.(v) = v then v else (uf.(v) <- find uf.(v); uf.(v)) in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then uf.(ra) <- rb
    in
    (* connect existential variables co-occurring in an atom *)
    List.iter
      (function
        | Ecq.Atom (_, vs) | Ecq.Neg_atom (_, vs) ->
            let ex = Array.to_list vs |> List.filter (fun v -> v >= free) in
            List.iteri (fun i v -> if i > 0 then union (List.hd ex) v) ex
        | Ecq.Diseq (i, j) -> if i >= free && j >= free then union i j)
      (Ecq.atoms q);
    (* free leaves attached to each existential component *)
    let attached : (int, int list) Hashtbl.t = Hashtbl.create 8 in
    let attach root v =
      let cur = Option.value ~default:[] (Hashtbl.find_opt attached root) in
      if not (List.mem v cur) then Hashtbl.replace attached root (v :: cur)
    in
    List.iter
      (function
        | Ecq.Atom (_, vs) | Ecq.Neg_atom (_, vs) ->
            let vs = Array.to_list vs in
            let roots =
              List.filter_map
                (fun v -> if v >= free then Some (find v) else None)
                vs
              |> List.sort_uniq compare
            in
            List.iter
              (fun root ->
                List.iter (fun v -> if v < free then attach root v) vs)
              roots
        | Ecq.Diseq (i, j) ->
            if i >= free && j < free then attach (find i) j;
            if j >= free && i < free then attach (find j) i)
      (Ecq.atoms q);
    let best = ref (0, None) in
    for v = free to n - 1 do
      if find v = v then begin
        let leaves =
          List.sort compare (Option.value ~default:[] (Hashtbl.find_opt attached v))
        in
        let core =
          List.init (n - free) (fun i -> i + free)
          |> List.filter (fun w -> find w = v)
        in
        if List.length leaves > fst !best then
          best :=
            ( List.length leaves,
              Some { existential_core = core; free_leaves = leaves } )
      end
    done;
    !best
  end

(* A negated atom whose positive twin (same symbol, same argument tuple)
   also occurs is unsatisfiable: the query is statically empty. *)
let empty_witness q =
  let atoms = Array.of_list (Ecq.atoms q) in
  let n = Array.length atoms in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       match atoms.(i) with
       | Ecq.Atom (name, vs) ->
           for j = 0 to n - 1 do
             match atoms.(j) with
             | Ecq.Neg_atom (name', vs') when name = name' && vs = vs' ->
                 found := Some { relation = name; pos_index = i; neg_index = j };
                 raise Exit
             | _ -> ()
           done
       | _ -> ()
     done
   with Exit -> ());
  !found

let classify q =
  let h = Ecq.hypergraph q in
  let exact_widths = Hypergraph.num_vertices h <= exact_width_limit in
  let treewidth, certificate =
    if exact_widths then
      let tw, d = Tree_decomposition.treewidth_exact h in
      (tw, d)
    else
      let d = Tree_decomposition.decompose h in
      (Tree_decomposition.width d, d)
  in
  let fhw =
    if exact_widths then fst (Widths.fhw_exact h) else Widths.fhw_upper h
  in
  let width_certificate =
    Array.to_list certificate.Tree_decomposition.bags
    |> List.map Bitset.to_list
  in
  let arity = Hypergraph.arity h in
  let query_class =
    if Ecq.is_cq q then Cq else if Ecq.is_dcq q then Dcq else Ecq_full
  in
  let star_size, max_star = star q in
  let always_empty = empty_witness q in
  let regime =
    match always_empty with
    | Some _ -> Exact_empty
    | None -> (
        match query_class with
        | Cq -> Fpras_ta
        | Dcq ->
            if arity <= 2 && treewidth <= 3 then Fptras_tree_dp
            else Fptras_generic_join
        | Ecq_full -> Fptras_tree_dp)
  in
  {
    query_class;
    num_vars = Ecq.num_vars q;
    num_free = Ecq.num_free q;
    arity;
    treewidth;
    fhw;
    exact_widths;
    width_certificate;
    components = components q;
    star_size;
    max_star;
    quantifier_free = Ecq.num_existential q = 0;
    diseq_free = Ecq.delta q = [];
    always_empty;
    regime;
  }
