(** Typed lint diagnostics with stable codes.

    Every finding of the static analyzer is a {!t}: a stable {!code}
    (QL000…), a {!severity}, an optional character {!span} into the
    textual query (available when the query came through
    [Ecq.parse_spans]), a human-readable message and the paper item that
    justifies the diagnostic. Codes never change meaning across
    releases — CI may match on them. *)

type severity = Error | Warning | Info | Hint

type code =
  | Syntax_error          (** QL000 — the query text does not parse *)
  | Unused_variable       (** QL001 — existential variable used once, in a single atom *)
  | Disconnected          (** QL002 — query splits into independent components (cartesian product) *)
  | Diseq_degenerate      (** QL003 — contradictory or duplicate disequality *)
  | Duplicate_atom        (** QL004 — duplicate/subsumed atom *)
  | Negated_twin          (** QL005 — negated atom whose positive twin also occurs: always empty *)
  | Signature_mismatch    (** QL006 — query signature not contained in the database's *)
  | Star_size             (** QL007 — quantified/dominated star size drives the FPTRAS cost *)
  | Width_blowup          (** QL008 — treewidth/fhw exceeds the exact-computation threshold *)
  | Unguarded_variable    (** QL009 — variable not guarded by any positive atom *)
  | Empty_relation        (** QL010 — positive atom over a relation empty in this database *)
  | Quantifier_free       (** QL011 — quantifier-free and disequality-free: exact counting is FPT *)
  | Output_blowup         (** QL012 — instantiated edge-cover bound predicts an output blow-up *)
  | Complement_blowup     (** QL013 — negated-atom complement exceeds the materialisation cap *)

(** Half-open character range [start, stop) into the query text. *)
type span = { start : int; stop : int }

type t = {
  code : code;
  severity : severity;
  span : span option;
  message : string;
  theorem : string option;
      (** the paper item the diagnostic cites, e.g. ["Observation 10"] *)
}

(** Stable identifier, ["QL000"] … ["QL013"]. *)
val code_id : code -> string

(** Stable kebab-case slug, e.g. ["disconnected-query"]. *)
val code_slug : code -> string

(** Every code, in QL-number order (the documented table). *)
val all_codes : code list

(** ["error"], ["warning"], ["info"], ["hint"]. *)
val severity_name : severity -> string

(** Errors sort first; [compare] orders by severity, then code, then
    span start — the order reports print in. *)
val compare : t -> t -> int

val is_error : t -> bool

(** One line: ["QL005 error [10-22]: …"]. *)
val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
