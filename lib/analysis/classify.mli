(** Computing the {!Classification} of a query.

    This is the single place in the system that reads Figure 1: the
    planner builds its decision from {!classify}'s output instead of
    re-deriving the regime, and [acq explain]/[acq lint] render the same
    record. Widths are exact for queries of ≤ {!exact_width_limit}
    variables (the subset DP), heuristic upper bounds beyond. *)

(** Variable-count ceiling for exact width computation (14, matching the
    historical planner threshold). *)
val exact_width_limit : int

(** Treewidth at or above which QL008 (width blow-up) fires. *)
val width_warn_threshold : int

(** fhw at or above which QL008 fires. *)
val fhw_warn_threshold : float

(** Quantified star size at or above which QL007 fires. *)
val star_warn_threshold : int

val classify : Ac_query.Ecq.t -> Classification.t
