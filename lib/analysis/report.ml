module Ecq = Ac_query.Ecq
module D = Diagnostic

type t = {
  query : Ecq.t option;
  classification : Classification.t option;
  diagnostics : D.t list;
  cost : Cost.t option;
}

let analyze ?db ?spans q =
  let c = Classify.classify q in
  let cost =
    match db with
    | Some db ->
        Some (Cost.analyze ~stats:(Cardinality.of_structure db) q c)
    | None -> None
  in
  {
    query = Some q;
    classification = Some c;
    diagnostics = Lints.run ?db ?cost ?spans q c;
    cost;
  }

(* A parse failure becomes one span-carrying diagnostic. The
   contradictory-disequality shape is semantic rather than syntactic, so
   it keeps its own stable code (QL003). *)
let of_parse_error (pe : Ecq.parse_error) =
  let contradictory =
    let has_sub needle hay =
      let ln = String.length needle and lh = String.length hay in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      go 0
    in
    has_sub "contradictory disequality" pe.Ecq.msg
    || has_sub "disequality between equal variables" pe.Ecq.msg
  in
  let span =
    if pe.Ecq.offset < 0 then None
    else
      Some
        {
          D.start = pe.Ecq.offset;
          stop = pe.Ecq.offset + max 1 (String.length pe.Ecq.token);
        }
  in
  if contradictory then
    {
      D.code = D.Diseq_degenerate;
      severity = D.Error;
      span;
      message = pe.Ecq.msg ^ " — the query is always empty";
      theorem = Some "Definition 1 semantics";
    }
  else
    {
      D.code = D.Syntax_error;
      severity = D.Error;
      span;
      message = Ecq.parse_error_message pe;
      theorem = None;
    }

let analyze_text ?db text =
  match Ecq.parse_spans text with
  | q, spans -> analyze ?db ~spans q
  | exception Ecq.Parse_error pe ->
      {
        query = None;
        classification = None;
        diagnostics = [ of_parse_error pe ];
        cost = None;
      }

let classification_exn t =
  match t.classification with
  | Some c -> c
  | None -> invalid_arg "Report.classification_exn: parse failed"

let errors t = List.filter D.is_error t.diagnostics
let has_errors t = errors t <> []

let tally t =
  List.fold_left
    (fun (e, w, i, h) (d : D.t) ->
      match d.D.severity with
      | D.Error -> (e + 1, w, i, h)
      | D.Warning -> (e, w + 1, i, h)
      | D.Info -> (e, w, i + 1, h)
      | D.Hint -> (e, w, i, h + 1))
    (0, 0, 0, 0) t.diagnostics

let exit_status t = if has_errors t then 1 else 0

let pp fmt t =
  List.iter (fun d -> Format.fprintf fmt "%a@." D.pp d) t.diagnostics;
  let e, w, i, h = tally t in
  if e + w + i + h = 0 then Format.fprintf fmt "clean@."
  else
    Format.fprintf fmt "%d error(s), %d warning(s), %d info(s), %d hint(s)@."
      e w i h

let to_json t =
  let e, w, i, h = tally t in
  Json.Obj
    [
      ( "query",
        match t.query with
        | Some q -> Json.String (Ecq.to_string q)
        | None -> Json.Null );
      ( "classification",
        match t.classification with
        | Some c -> Classification.to_json c
        | None -> Json.Null );
      ("diagnostics", Json.List (List.map D.to_json t.diagnostics));
      ( "cost",
        match t.cost with Some cost -> Cost.to_json cost | None -> Json.Null );
      ("errors", Json.Int e);
      ("warnings", Json.Int w);
      ("infos", Json.Int i);
      ("hints", Json.Int h);
    ]
