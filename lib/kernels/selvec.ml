module Column = Ac_relational.Column

type t = { mutable data : Column.t; mutable len : int }

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { data = Column.create capacity; len = 0 }

let length v = v.len

let clear v = v.len <- 0

let ensure v needed =
  let cap = Column.length v.data in
  if needed > cap then begin
    let cap' = ref (max cap 1) in
    while !cap' < needed do
      cap' := !cap' * 2
    done;
    let data = Column.create !cap' in
    Column.blit ~src:v.data ~src_pos:0 ~dst:data ~dst_pos:0 ~len:v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  Column.set v.data v.len x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Selvec.get: index out of bounds";
  Column.get v.data i

let iter f v =
  for i = 0 to v.len - 1 do
    f (Column.get v.data i)
  done

let to_array v = Array.init v.len (fun i -> Column.get v.data i)

let of_array a =
  let v = create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (push v) a;
  v

(* The columns backing [v.data] may be larger than [len]; expose only the
   live prefix so kernel loops can run over the raw column. *)
let unsafe_data v = v.data
