(** Growable selection vectors over [Bigarray] int storage.

    A selection vector is the batch layer's unit of currency: a dense
    list of row indices (or dictionary codes) selected by a kernel,
    passed to the next kernel without materializing tuples. Amortized
    O(1) [push]; storage doubles as needed and is never shrunk. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

(** Reset to empty without releasing storage — the idiom for reusing one
    vector across the levels of a join. *)
val clear : t -> unit

val push : t -> int -> unit

(** Bounds-checked read; [Invalid_argument] outside [0, length). *)
val get : t -> int -> int

val iter : (int -> unit) -> t -> unit
val to_array : t -> int array
val of_array : int array -> t

(** The backing column. Only indices [< length] are live; the tail is
    uninitialized garbage. For kernel inner loops. *)
val unsafe_data : t -> Ac_relational.Column.t
