(** Galloping search and leapfrog intersection over sorted column runs —
    the vectorized core of the columnar join path.

    A {e run} is a slice [\[lo, hi)] of a sorted {!Ac_relational.Column.t}
    (duplicates allowed — a run is typically one column of a sorted
    projection restricted to the rows matching the bindings so far).
    [intersect] enumerates the distinct values common to all runs in
    ascending order, handing each value the per-run sub-range holding it;
    that ascending order is what keeps columnar and trie enumeration
    bit-identical downstream. *)

module Column = Ac_relational.Column

(** [lower col ~lo ~hi x] — index of the first element [>= x] in
    [\[lo, hi)], or [hi]. Exponential probe from [lo], then binary
    search: O(log d) in the distance d actually moved. *)
val lower : Column.t -> lo:int -> hi:int -> int -> int

(** First element [> x]; same contract as {!lower}. *)
val upper : Column.t -> lo:int -> hi:int -> int -> int

(** [(lower, upper)] in one call. *)
val equal_range : Column.t -> lo:int -> hi:int -> int -> int * int

(** All fields are mutable so a caller can keep one cursor array per
    join level and rewrite the bounds — or repoint [col] at a reused
    scratch column — per search node instead of allocating. *)
type run = { mutable col : Column.t; mutable lo : int; mutable hi : int }

(** [intersect runs f] calls [f v bounds] for every value [v] present in
    all runs, in ascending order. [bounds] is a flat scratch array
    [\[lo0; hi0; lo1; hi1; …\]]: [bounds.(2i), bounds.(2i+1))] is the
    index range of [v] inside [runs.(i)]. The scratch is overwritten on
    the next value — copy what must outlive the callback. [f] may
    recurse into further [intersect] calls over {e other} run arrays
    (the nested-loop join does exactly this); [runs] itself is read
    once at entry and never mutated. No-op when [runs] is empty or any
    run is empty. *)
val intersect : run array -> (int -> int array -> unit) -> unit

(** {!intersect} with caller-owned scratch, for hot loops that run one
    intersection per search node: [pos] (length ≥ number of runs) holds
    the cursors, [bounds] (length ≥ 2 × number of runs) is the flat
    range scratch handed to [f]. Both are overwritten freely; neither is
    read on entry. [f] may recurse into further [intersect_into] calls
    as long as they use {e different} scratch arrays. *)
val intersect_into :
  pos:int array -> bounds:int array -> run array -> (int -> int array -> unit) -> unit

(** Distinct values common to all the given sorted arrays (duplicates
    tolerated), ascending. Convenience wrapper over {!intersect} for
    domain lists and tests. *)
val intersect_arrays : int array array -> int array
