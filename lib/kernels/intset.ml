(* Sets of universe elements as strictly-ascending int arrays — the
   domain representation flowing through the oracle → Hom → join path.
   Everything here is allocation-lean: results share input arrays when
   the operation is the identity, and no hash tables are involved. *)

let is_canonical a =
  let n = Array.length a in
  let ok = ref true in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

let canon a =
  if is_canonical a then a
  else begin
    let c = Array.copy a in
    Array.sort Int.compare c;
    (* dedup in place, then trim *)
    let w = ref 0 in
    Array.iteri
      (fun i x ->
        if i = 0 || x <> c.(!w - 1) then begin
          c.(!w) <- x;
          incr w
        end)
      c;
    if !w = Array.length c then c else Array.sub c 0 !w
  end

let mem a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = x

(* Count-then-fill merge scan; returns [a] or [b] itself when it equals
   the result (the dominant case for arc-consistent domains). *)
let inter a b =
  let na = Array.length a and nb = Array.length b in
  let count = ref 0 and i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin
      incr count;
      incr i;
      incr j
    end
  done;
  if !count = na then a
  else if !count = nb then b
  else begin
    let out = Array.make !count 0 in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    while !k < !count do
      let x = a.(!i) and y = b.(!j) in
      if x < y then incr i
      else if y < x then incr j
      else begin
        out.(!k) <- x;
        incr k;
        incr i;
        incr j
      end
    done;
    out
  end

let disjoint a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and hit = ref false in
  while (not !hit) && !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i else if y < x then incr j else hit := true
  done;
  not !hit

let remove a x =
  if not (mem a x) then a
  else begin
    let n = Array.length a in
    let out = Array.make (n - 1) 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) <> x then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    out
  end

let filter p a =
  let n = Array.length a in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if p a.(i) then incr count
  done;
  if !count = n then a
  else begin
    let out = Array.make !count 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if p a.(i) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    out
  end

let range n = Array.init n Fun.id
