module Column = Ac_relational.Column

(* Galloping (exponential) search: the join kernels advance cursors that
   usually move a short distance, so probe 1, 2, 4, … steps from [lo]
   before handing the bracketed range to plain binary search. *)

let lower col ~lo ~hi x =
  if lo >= hi || Column.unsafe_get col lo >= x then lo
  else begin
    let prev = ref lo and cur = ref (lo + 1) and step = ref 1 in
    while !cur < hi && Column.unsafe_get col !cur < x do
      prev := !cur;
      step := !step * 2;
      cur := !cur + !step
    done;
    Column.lower_bound col ~lo:(!prev + 1) ~hi:(min (!cur + 1) hi) x
  end

let upper col ~lo ~hi x =
  if lo >= hi || Column.unsafe_get col lo > x then lo
  else begin
    let prev = ref lo and cur = ref (lo + 1) and step = ref 1 in
    while !cur < hi && Column.unsafe_get col !cur <= x do
      prev := !cur;
      step := !step * 2;
      cur := !cur + !step
    done;
    Column.upper_bound col ~lo:(!prev + 1) ~hi:(min (!cur + 1) hi) x
  end

let equal_range col ~lo ~hi x =
  let l = lower col ~lo ~hi x in
  (l, upper col ~lo:l ~hi x)

(* Mutable bounds so callers can keep one cursor array per join level
   and rewrite [lo]/[hi] per search node instead of allocating. *)
type run = { mutable col : Column.t; mutable lo : int; mutable hi : int }

(* The two-run case dominates real joins (one run per already-visited
   occurrence of the variable, usually two): a bespoke two-pointer loop
   saves the generic version's per-value head scan. *)
let intersect2 scratch a b f =
  let pa = ref a.lo and pb = ref b.lo in
  while !pa < a.hi && !pb < b.hi do
    let va = Column.unsafe_get a.col !pa and vb = Column.unsafe_get b.col !pb in
    if va < vb then pa := lower a.col ~lo:(!pa + 1) ~hi:a.hi vb
    else if vb < va then pb := lower b.col ~lo:(!pb + 1) ~hi:b.hi va
    else begin
      let ea = upper a.col ~lo:!pa ~hi:a.hi va in
      let eb = upper b.col ~lo:!pb ~hi:b.hi va in
      scratch.(0) <- !pa;
      scratch.(1) <- ea;
      scratch.(2) <- !pb;
      scratch.(3) <- eb;
      f va scratch;
      pa := ea;
      pb := eb
    end
  done

let intersect_into ~pos ~bounds runs f =
  let k = Array.length runs in
  if k = 2 then intersect2 bounds runs.(0) runs.(1) f
  else if k > 0 && Array.for_all (fun r -> r.lo < r.hi) runs then begin
    (* cursor per run; [runs] itself is never mutated here, so the
       caller may reuse the same array across nested nodes *)
    for i = 0 to k - 1 do
      pos.(i) <- runs.(i).lo
    done;
    (* per-value bounds handed to [f] as a flat [lo0; hi0; lo1; …]
       scratch, overwritten on the next value — copy to keep *)
    let scratch = bounds in
    let exhausted = ref false in
    while not !exhausted do
      (* leapfrog: every cursor seeks the max of the current heads;
         they all land on it exactly when it is a common value *)
      let v = ref min_int in
      for i = 0 to k - 1 do
        let x = Column.unsafe_get runs.(i).col pos.(i) in
        if x > !v then v := x
      done;
      let all_match = ref true in
      for i = 0 to k - 1 do
        let r = runs.(i) in
        let p = lower r.col ~lo:pos.(i) ~hi:r.hi !v in
        pos.(i) <- p;
        if p >= r.hi then begin
          exhausted := true;
          all_match := false
        end
        else if Column.unsafe_get r.col p <> !v then all_match := false
      done;
      if (not !exhausted) && !all_match then begin
        for i = 0 to k - 1 do
          let r = runs.(i) in
          let e = upper r.col ~lo:pos.(i) ~hi:r.hi !v in
          scratch.(2 * i) <- pos.(i);
          scratch.((2 * i) + 1) <- e;
          pos.(i) <- e
        done;
        f !v scratch;
        for i = 0 to k - 1 do
          if pos.(i) >= runs.(i).hi then exhausted := true
        done
      end
    done
  end

let intersect runs f =
  let k = Array.length runs in
  intersect_into ~pos:(Array.make (max k 1) 0) ~bounds:(Array.make (2 * max k 1) 0)
    runs f

let intersect_arrays arrays =
  let runs =
    Array.map
      (fun a ->
        let col = Column.of_array a in
        { col; lo = 0; hi = Column.length col })
      arrays
  in
  let out = Selvec.create () in
  intersect runs (fun v _ -> Selvec.push out v);
  Selvec.to_array out
