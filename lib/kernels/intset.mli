(** Sets of universe elements as strictly-ascending int arrays.

    This is the canonical {e domain} representation on the hot decision
    path (colour oracle → [Hom] → [Generic_join]): ascending order is
    what the leapfrog kernels and the deterministic enumeration contract
    need, and array set operations beat the list/hashtable mix they
    replaced — no per-element boxing, results alias an input whenever
    the operation turns out to be the identity. Inputs other than
    {!canon}'s are assumed canonical (strictly ascending). *)

(** Strictly ascending (sorted, duplicate-free)? *)
val is_canonical : int array -> bool

(** Canonical form: [a] itself when already canonical (no copy),
    otherwise a sorted deduplicated copy — [a] is never mutated. *)
val canon : int array -> int array

(** Binary-search membership. *)
val mem : int array -> int -> bool

(** Ascending intersection; returns an input array unchanged when it
    equals the result. *)
val inter : int array -> int array -> int array

val disjoint : int array -> int array -> bool

(** [remove a x] — [a] without [x]; [a] itself when [x] is absent. *)
val remove : int array -> int -> int array

(** Order-preserving filter; [a] itself when everything survives. *)
val filter : (int -> bool) -> int array -> int array

(** [range n] = [[|0; …; n-1|]]. *)
val range : int -> int array
