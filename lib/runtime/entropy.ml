let counter = ref 0

let fresh_seed () =
  incr counter;
  let micros = Int64.of_float (Unix.gettimeofday () *. 1e6) in
  let mixed = Int64.add micros (Int64.of_int (!counter * 0x9E3779B9)) in
  Int64.to_int (Int64.logand mixed 0x3FFFFFFFL)
