(** Reproducible self-initialisation seeds.

    [Random.State.make_self_init] hides the seed it used, making
    budget-exceeded runs impossible to replay. {!fresh_seed} draws a
    seed from the clock (plus a process-local counter so rapid calls
    differ) that the caller can log and later feed back through
    [Random.State.make]. *)

val fresh_seed : unit -> int
