type t =
  | Parse of { source : string; msg : string }
  | Io of { file : string; msg : string }
  | Signature_mismatch of string
  | Budget of Budget.trip
  | Numeric_overflow of string
  | Fault of string
  | Overloaded of string
  | Internal of string
  | Deadline_exceeded of { deadline_ms : int; msg : string }
  | Retry_unsafe of { verb : string; msg : string }
  | Sealed_mutation of string
  | Complement_overflow of { arity : int; universe : int; cap : int }

exception E of t

let message = function
  | Parse { source; msg } -> Printf.sprintf "parse error in %s: %s" source msg
  | Io { file; msg } -> Printf.sprintf "%s: %s" file msg
  | Signature_mismatch msg -> "signature mismatch: " ^ msg
  | Budget tr -> Format.asprintf "%a" Budget.pp_trip tr
  | Numeric_overflow msg -> "numeric overflow: " ^ msg
  | Fault msg -> "injected fault: " ^ msg
  | Overloaded msg -> "overloaded: " ^ msg
  | Internal msg -> "internal error: " ^ msg
  | Deadline_exceeded { deadline_ms; msg } ->
      Printf.sprintf "deadline exceeded (%d ms): %s" deadline_ms msg
  | Retry_unsafe { verb; msg } ->
      Printf.sprintf "%s cannot be retried safely: %s" verb msg
  | Sealed_mutation msg -> "sealed mutation: " ^ msg
  | Complement_overflow { arity; universe; cap } ->
      Printf.sprintf
        "complement overflow: materializing U^%d over a universe of %d \
         exceeds the %d-tuple cap; use the lazy complement view instead"
        arity universe cap

let class_name = function
  | Parse _ -> "parse"
  | Io _ -> "io"
  | Signature_mismatch _ -> "signature"
  | Budget _ -> "budget"
  | Numeric_overflow _ -> "overflow"
  | Fault _ -> "fault"
  | Overloaded _ -> "overloaded"
  | Internal _ -> "internal"
  | Deadline_exceeded _ -> "deadline"
  | Retry_unsafe _ -> "retry"
  | Sealed_mutation _ -> "sealed"
  | Complement_overflow _ -> "complement"

let exit_code = function
  | Parse _ -> 10
  | Io _ -> 11
  | Signature_mismatch _ -> 12
  | Budget _ -> 13
  | Numeric_overflow _ -> 14
  | Fault _ -> 15
  | Internal _ -> 16
  | Overloaded _ -> 17
  | Deadline_exceeded _ -> 18
  | Retry_unsafe _ -> 19
  | Sealed_mutation _ -> 20
  | Complement_overflow _ -> 21

let of_exn = function
  | E e -> Some e
  | Budget.Budget_exceeded tr -> Some (Budget tr)
  | Failure msg -> Some (Internal msg)
  | Invalid_argument msg -> Some (Internal msg)
  | Sys_error msg -> Some (Io { file = "<sys>"; msg })
  | _ -> None

let guard ?source f =
  let reclass msg =
    match source with
    | Some s -> Parse { source = s; msg }
    | None -> Internal msg
  in
  match f () with
  | v -> Ok v
  | exception E e -> Error e
  | exception Budget.Budget_exceeded tr -> Error (Budget tr)
  | exception Failure msg -> Error (reclass msg)
  | exception Invalid_argument msg -> Error (reclass msg)

let raise_e e = raise (E e)
let pp fmt e = Format.pp_print_string fmt (message e)
