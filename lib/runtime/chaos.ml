type action = Fail of string | Delay_ms of int | Exhaust

type t = {
  plan : (int, action) Hashtbl.t;
  p_fail : float;
  p_delay : float;
  delay_ms : int;
  budget : Budget.t option;
  rng : Random.State.t;
  mutable count : int;
  mutable log : (int * string * string) list;
}

let create ?(plan = []) ?(p_fail = 0.0) ?(p_delay = 0.0) ?(delay_ms = 1)
    ?budget ~seed () =
  let table = Hashtbl.create 8 in
  List.iter (fun (i, a) -> Hashtbl.replace table i a) plan;
  {
    plan = table;
    p_fail;
    p_delay;
    delay_ms;
    budget;
    rng = Random.State.make [| seed; 0x5eed |];
    count = 0;
    log = [];
  }

let calls t = t.count
let history t = List.rev t.log

let describe = function
  | Fail msg -> "fail: " ^ msg
  | Delay_ms ms -> Printf.sprintf "delay %d ms" ms
  | Exhaust -> "exhaust budget"

let apply t site action =
  t.log <- (t.count, site, describe action) :: t.log;
  match action with
  | Fail msg ->
      Error.raise_e
        (Error.Fault (Printf.sprintf "%s (site %s, call %d)" msg site t.count))
  | Delay_ms ms -> Unix.sleepf (float_of_int ms /. 1000.0)
  | Exhaust -> (
      match t.budget with
      | Some b ->
          Budget.exhaust ~note:(Printf.sprintf "chaos exhaust at %s" site) b;
          Budget.check b
      | None ->
          Error.raise_e
            (Error.Fault
               (Printf.sprintf "chaos exhaust at %s (no budget attached)" site))
      )

let guard t site =
  t.count <- t.count + 1;
  (* draw both randoms unconditionally so the stream position only
     depends on the call count, never on the plan *)
  let r_fail = Random.State.float t.rng 1.0 in
  let r_delay = Random.State.float t.rng 1.0 in
  match Hashtbl.find_opt t.plan t.count with
  | Some action -> apply t site action
  | None ->
      if r_fail < t.p_fail then apply t site (Fail "random fault")
      else if r_delay < t.p_delay then apply t site (Delay_ms t.delay_ms)

let wrap t ?(site = "wrap") f x =
  guard t site;
  f x

let wrap_oracle t ?(site = "oracle") f x =
  guard t site;
  f x

(* ---------- wire-level fault plans ---------- *)

type wire_fault =
  | Truncate_frame of int
  | Delay_frame_ms of int
  | Drop_connection
  | Garbage_bytes of int
  | Duplicate_frame

let wire_fault_name = function
  | Truncate_frame n -> Printf.sprintf "truncate(%d)" n
  | Delay_frame_ms ms -> Printf.sprintf "delay(%dms)" ms
  | Drop_connection -> "drop"
  | Garbage_bytes n -> Printf.sprintf "garbage(%d)" n
  | Duplicate_frame -> "duplicate"

module Wire_plan = struct
  type t = {
    plan : (int, wire_fault) Hashtbl.t;
    p_fault : float;
    delay_ms : int;
    rng : Random.State.t;
    mutex : Mutex.t;
    mutable frames : int;
    mutable log : (int * wire_fault) list;
  }

  let create ?(faults = []) ?(p_fault = 0.0) ?(delay_ms = 5) ~seed () =
    let table = Hashtbl.create 8 in
    List.iter (fun (i, f) -> Hashtbl.replace table i f) faults;
    {
      plan = table;
      p_fault;
      delay_ms;
      rng = Random.State.make [| seed; 0x31173 |];
      mutex = Mutex.create ();
      frames = 0;
      log = [];
    }

  (* One decision per frame. As with [guard], every frame advances the
     random stream by a fixed number of draws, so the event sequence
     depends only on the seed and the frame count — never on the plan
     or on which faults actually fired. *)
  let next t =
    Mutex.lock t.mutex;
    t.frames <- t.frames + 1;
    let r_fault = Random.State.float t.rng 1.0 in
    let r_kind = Random.State.int t.rng 5 in
    let decision =
      match Hashtbl.find_opt t.plan t.frames with
      | Some f -> Some f
      | None ->
          if r_fault < t.p_fault then
            Some
              (match r_kind with
              | 0 -> Truncate_frame 3
              | 1 -> Delay_frame_ms t.delay_ms
              | 2 -> Drop_connection
              | 3 -> Garbage_bytes 16
              | _ -> Duplicate_frame)
          else None
    in
    (match decision with
    | Some f -> t.log <- (t.frames, f) :: t.log
    | None -> ());
    Mutex.unlock t.mutex;
    decision

  let frames t =
    Mutex.lock t.mutex;
    let n = t.frames in
    Mutex.unlock t.mutex;
    n

  let history t =
    Mutex.lock t.mutex;
    let l = List.rev t.log in
    Mutex.unlock t.mutex;
    l
end
