type action = Fail of string | Delay_ms of int | Exhaust

type t = {
  plan : (int, action) Hashtbl.t;
  p_fail : float;
  p_delay : float;
  delay_ms : int;
  budget : Budget.t option;
  rng : Random.State.t;
  mutable count : int;
  mutable log : (int * string * string) list;
}

let create ?(plan = []) ?(p_fail = 0.0) ?(p_delay = 0.0) ?(delay_ms = 1)
    ?budget ~seed () =
  let table = Hashtbl.create 8 in
  List.iter (fun (i, a) -> Hashtbl.replace table i a) plan;
  {
    plan = table;
    p_fail;
    p_delay;
    delay_ms;
    budget;
    rng = Random.State.make [| seed; 0x5eed |];
    count = 0;
    log = [];
  }

let calls t = t.count
let history t = List.rev t.log

let describe = function
  | Fail msg -> "fail: " ^ msg
  | Delay_ms ms -> Printf.sprintf "delay %d ms" ms
  | Exhaust -> "exhaust budget"

let apply t site action =
  t.log <- (t.count, site, describe action) :: t.log;
  match action with
  | Fail msg ->
      Error.raise_e
        (Error.Fault (Printf.sprintf "%s (site %s, call %d)" msg site t.count))
  | Delay_ms ms -> Unix.sleepf (float_of_int ms /. 1000.0)
  | Exhaust -> (
      match t.budget with
      | Some b ->
          Budget.exhaust ~note:(Printf.sprintf "chaos exhaust at %s" site) b;
          Budget.check b
      | None ->
          Error.raise_e
            (Error.Fault
               (Printf.sprintf "chaos exhaust at %s (no budget attached)" site))
      )

let guard t site =
  t.count <- t.count + 1;
  (* draw both randoms unconditionally so the stream position only
     depends on the call count, never on the plan *)
  let r_fail = Random.State.float t.rng 1.0 in
  let r_delay = Random.State.float t.rng 1.0 in
  match Hashtbl.find_opt t.plan t.count with
  | Some action -> apply t site action
  | None ->
      if r_fail < t.p_fail then apply t site (Fail "random fault")
      else if r_delay < t.p_delay then apply t site (Delay_ms t.delay_ms)

let wrap t ?(site = "wrap") f x =
  guard t site;
  f x

let wrap_oracle t ?(site = "oracle") f x =
  guard t site;
  f x
