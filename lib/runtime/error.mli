(** Typed errors for the public API.

    Every failure class the pipelines can hit maps to one constructor,
    one stable message shape and one CLI exit code (see
    [docs/robustness.md]); [Result]-returning entry points
    ([Planner.count_result], [Structure_io.load_result], …) return these
    instead of raising bare [Failure] strings. *)

type t =
  | Parse of { source : string; msg : string }
      (** malformed query text or database file; [source] names it *)
  | Io of { file : string; msg : string }
      (** filesystem-level failure, including the loader's size cap *)
  | Signature_mismatch of string
      (** query signature not contained in the database's *)
  | Budget of Budget.trip  (** a resource budget tripped *)
  | Numeric_overflow of string
      (** an estimate left the representable range (nan/infinite) *)
  | Fault of string  (** injected by {!Chaos} *)
  | Overloaded of string
      (** admission control refused the request: the server's bounded
          queue is full — retry later, the server is healthy *)
  | Internal of string  (** everything else — a bug if a user sees it *)
  | Deadline_exceeded of { deadline_ms : int; msg : string }
      (** the request's end-to-end deadline passed before (or instead
          of) an answer: shed at admission, or the client-side retry
          loop ran out of time *)
  | Retry_unsafe of { verb : string; msg : string }
      (** a transport fault hit a non-idempotent request (unseeded
          COUNT/SAMPLE): retrying could double-spend or change the
          answer, so the client refuses instead of guessing *)
  | Sealed_mutation of string
      (** a write ([Relation.add], [Structure.add_fact], …) reached a
          sealed — immutable, columnar — relation or structure; the
          build phase is over, so the mutation is a caller bug, never a
          silent hashtable write *)
  | Complement_overflow of { arity : int; universe : int; cap : int }
      (** materializing [U^arity \ R] would exceed [cap] tuples; use
          {!Ac_relational.Relation.complement_view} (lazy membership and
          iteration) instead of forcing the blow-up *)

exception E of t

val message : t -> string

(** Stable class slug: parse | io | signature | budget | overflow |
    fault | overloaded | internal | deadline | retry | sealed |
    complement. *)
val class_name : t -> string

(** CLI exit codes: 10 parse, 11 io, 12 signature, 13 budget,
    14 overflow, 15 fault, 16 internal, 17 overloaded, 18 deadline,
    19 retry, 20 sealed, 21 complement. *)
val exit_code : t -> int

(** Map an exception to its typed error; [None] for exceptions that
    should keep propagating (e.g. [Stack_overflow], [Sys.Break]). *)
val of_exn : exn -> t option

(** Run [f], catching {!E}, {!Budget.Budget_exceeded}, [Failure] and
    [Invalid_argument]. With [source], [Failure]/[Invalid_argument]
    become [Parse { source; _ }]; without, they become [Internal]. *)
val guard : ?source:string -> (unit -> 'a) -> ('a, t) result

val raise_e : t -> 'a
val pp : Format.formatter -> t -> unit
