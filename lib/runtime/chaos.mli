(** Deterministic fault injection.

    A {!t} is a seeded stream of chaos decisions consulted at
    instrumentation sites (one {!guard} call per site visit): it can
    raise a typed {!Error.Fault}, sleep to simulate a slow dependency,
    or trip an attached {!Budget.t} to simulate exhaustion mid-run.
    Faults are reproducible two ways: positionally via [plan] (exact
    call numbers, what the fallback-chain tests use) and statistically
    via [p_fail]/[p_delay] with a fixed [seed] (what the chaos suite's
    smoke tests use — same seed, same event stream).

    [wrap] turns any function — typically a hom-counting oracle — into
    a chaotic one that consults the stream before every call. *)

type action =
  | Fail of string  (** raise [Error.E (Fault _)] *)
  | Delay_ms of int  (** sleep that many milliseconds *)
  | Exhaust  (** {!Budget.exhaust} the attached budget, then check it *)

type t

(** [plan] maps 1-based {!guard}-call numbers to actions (takes
    precedence over the random stream). [p_fail]/[p_delay] are per-call
    probabilities; random delays last [delay_ms] (default 1). [budget]
    is what [Exhaust] trips; exhausting without one raises a [Fault]
    instead. *)
val create :
  ?plan:(int * action) list ->
  ?p_fail:float ->
  ?p_delay:float ->
  ?delay_ms:int ->
  ?budget:Budget.t ->
  seed:int ->
  unit ->
  t

(** Number of {!guard} calls so far. *)
val calls : t -> int

(** Injected events so far, oldest first: (call number, site, action
    description). *)
val history : t -> (int * string * string) list

(** Consult the stream once; [site] labels the instrumentation point in
    fault messages and {!history}. *)
val guard : t -> string -> unit

(** [wrap t ~site f] guards every application of [f]. *)
val wrap : t -> ?site:string -> ('a -> 'b) -> 'a -> 'b

(** {!wrap} specialised to decision oracles, for intent. *)
val wrap_oracle : t -> ?site:string -> ('a -> bool) -> 'a -> bool

(** {1 Wire-level faults}

    The connection-fault vocabulary of the chaos proxy
    ([Ac_server.Chaos_proxy]): what can happen to one response frame on
    its way back to the client. *)

type wire_fault =
  | Truncate_frame of int
      (** forward only the first [n] bytes, then drop the connection *)
  | Delay_frame_ms of int  (** hold the frame for [n] ms, then forward *)
  | Drop_connection  (** drop the connection instead of forwarding *)
  | Garbage_bytes of int
      (** replace the frame with [n] garbage bytes (the connection
          stays open — the peer must resynchronise) *)
  | Duplicate_frame  (** forward the frame twice *)

(** Stable short rendering: [truncate(3)], [delay(5ms)], [drop],
    [garbage(16)], [duplicate]. *)
val wire_fault_name : wire_fault -> string

(** A seeded per-frame fault schedule, the wire analogue of the
    call-site plan above: positional [faults] (1-based frame numbers)
    take precedence, then a per-frame probability draw. Same seed, same
    fault sequence — every proxy failure mode is replayable. Thread-safe
    (the proxy consults it from per-connection pump threads). *)
module Wire_plan : sig
  type t

  val create :
    ?faults:(int * wire_fault) list ->
    ?p_fault:float ->
    ?delay_ms:int ->
    seed:int ->
    unit ->
    t

  (** Decision for the next frame (advances the frame counter). *)
  val next : t -> wire_fault option

  (** Frames decided so far. *)
  val frames : t -> int

  (** Faults fired so far, oldest first, with their frame numbers. *)
  val history : t -> (int * wire_fault) list
end
