(** Deterministic fault injection.

    A {!t} is a seeded stream of chaos decisions consulted at
    instrumentation sites (one {!guard} call per site visit): it can
    raise a typed {!Error.Fault}, sleep to simulate a slow dependency,
    or trip an attached {!Budget.t} to simulate exhaustion mid-run.
    Faults are reproducible two ways: positionally via [plan] (exact
    call numbers, what the fallback-chain tests use) and statistically
    via [p_fail]/[p_delay] with a fixed [seed] (what the chaos suite's
    smoke tests use — same seed, same event stream).

    [wrap] turns any function — typically a hom-counting oracle — into
    a chaotic one that consults the stream before every call. *)

type action =
  | Fail of string  (** raise [Error.E (Fault _)] *)
  | Delay_ms of int  (** sleep that many milliseconds *)
  | Exhaust  (** {!Budget.exhaust} the attached budget, then check it *)

type t

(** [plan] maps 1-based {!guard}-call numbers to actions (takes
    precedence over the random stream). [p_fail]/[p_delay] are per-call
    probabilities; random delays last [delay_ms] (default 1). [budget]
    is what [Exhaust] trips; exhausting without one raises a [Fault]
    instead. *)
val create :
  ?plan:(int * action) list ->
  ?p_fail:float ->
  ?p_delay:float ->
  ?delay_ms:int ->
  ?budget:Budget.t ->
  seed:int ->
  unit ->
  t

(** Number of {!guard} calls so far. *)
val calls : t -> int

(** Injected events so far, oldest first: (call number, site, action
    description). *)
val history : t -> (int * string * string) list

(** Consult the stream once; [site] labels the instrumentation point in
    fault messages and {!history}. *)
val guard : t -> string -> unit

(** [wrap t ~site f] guards every application of [f]. *)
val wrap : t -> ?site:string -> ('a -> 'b) -> 'a -> 'b

(** {!wrap} specialised to decision oracles, for intent. *)
val wrap_oracle : t -> ?site:string -> ('a -> bool) -> 'a -> bool
