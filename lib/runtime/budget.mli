(** Execution budgets and cooperative cancellation.

    A {!t} bundles up to three limits — a wall-clock deadline, a
    work-tick ceiling and a live-heap watermark — plus a cooperative
    cancellation flag. Long-running loops call {!tick} once per unit of
    work; the expensive part of the check (clock read, [Gc.quick_stat])
    only runs every [check_every] ticks, keeping the overhead well under
    1% of the inner loop. When a limit trips, {!tick}/{!check} raise
    {!Budget_exceeded} carrying which limit fired and the progress made
    so far; the budget then stays tripped (sticky), so a cancelled
    computation cannot accidentally resume. *)

type limit =
  | Wall_clock  (** the deadline passed *)
  | Work        (** the work-tick ceiling was reached *)
  | Heap        (** [Gc.quick_stat] heap words crossed the watermark *)
  | Cancelled   (** {!cancel} was called *)

(** What tripped and how far the computation got. *)
type trip = {
  limit : limit;
  label : string;       (** the budget's label, for multi-budget traces *)
  elapsed_ms : float;   (** wall time since the budget was created *)
  ticks : int;          (** work ticks performed before the trip *)
  note : string;        (** human-readable detail *)
}

exception Budget_exceeded of trip

type t

(** Shared unlimited budget: {!tick} is a single increment-and-branch.
    Never {!cancel} or {!exhaust} it (both raise [Invalid_argument]);
    create a fresh budget instead. *)
val none : t

(** [create ()] with no limit set is an unarmed (but cancellable)
    budget. [deadline_ms] is relative to the call; [max_heap_mb] is
    compared against [Gc.quick_stat].heap_words; [check_every] (rounded
    up to a power of two, default 512) is the tick period of the full
    check. *)
val create :
  ?label:string ->
  ?deadline_ms:float ->
  ?max_ticks:int ->
  ?max_heap_mb:int ->
  ?check_every:int ->
  unit ->
  t

(** Some limit is set, or the budget was cancelled/tripped. *)
val limited : t -> bool

(** Count one unit of work; raises {!Budget_exceeded} on a (periodic)
    failed check. *)
val tick : t -> unit

(** Full check now, regardless of the tick period. *)
val check : t -> unit

(** Cooperative cancellation: the next {!tick}/{!check} raises with
    {!Cancelled}. Idempotent; no effect on an already-tripped budget. *)
val cancel : ?note:string -> t -> unit

(** Force the budget to trip with {!Work} on the next check — simulated
    exhaustion, used by {!Chaos}. *)
val exhaust : ?note:string -> t -> unit

(** [Some trip] once the budget has tripped. *)
val tripped : t -> trip option

val ticks : t -> int
val elapsed_ms : t -> float

(** Milliseconds until the deadline ([None] when no deadline is set);
    never negative. *)
val remaining_ms : t -> float option

(** [slice t] is a child budget over [fraction] (default [0.5]) of [t]'s
    remaining wall-clock time and work ticks, with [t]'s heap watermark.
    A tripped child does not poison the parent — that is the point: the
    planner runs each fallback rung under a slice. Slicing an unlimited
    budget returns it unchanged; slicing a tripped budget returns an
    immediately-tripping child. Report the child's work back into the
    parent with {!absorb}. *)
val slice : ?fraction:float -> ?label:string -> t -> t

(** [absorb t child] adds [child]'s ticks to [t]'s counter (no check, no
    raise). *)
val absorb : t -> t -> unit

(** [split ~into:n t] — [n] sibling sub-budgets for {e concurrent}
    execution: unlike {!slice}, every child keeps the parent's full
    remaining wall-clock deadline (the children run at the same time,
    not one after another) and its heap watermark, while the remaining
    work ticks are divided evenly. Children are independently
    cancellable and a tripped child never poisons the parent or its
    siblings — the parallel trial engine cancels the siblings
    explicitly on the first trip and {!absorb}s every child after the
    join. Splitting an unlimited budget returns fresh unarmed (but
    cancellable) children, so cancellation works even when no limit was
    requested. *)
val split : ?label:string -> into:int -> t -> t array

val now_ms : unit -> float
val limit_name : limit -> string
val pp_trip : Format.formatter -> trip -> unit
