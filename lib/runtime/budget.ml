type limit = Wall_clock | Work | Heap | Cancelled

type trip = {
  limit : limit;
  label : string;
  elapsed_ms : float;
  ticks : int;
  note : string;
}

exception Budget_exceeded of trip

type t = {
  label : string;
  start : float;
  deadline : float; (* absolute seconds; [infinity] when unset *)
  max_ticks : int; (* [max_int] when unset *)
  max_heap_words : int; (* [max_int] when unset *)
  mask : int; (* full check when [count land mask = 0] *)
  armed : bool; (* at least one limit is set *)
  mutable count : int;
  mutable forced : (limit * string) option; (* cancel/exhaust, pre-trip *)
  mutable trip : trip option; (* sticky after the first raise *)
}

let now () = Unix.gettimeofday ()
let now_ms () = now () *. 1000.0

let limit_name = function
  | Wall_clock -> "wall-clock"
  | Work -> "work-ticks"
  | Heap -> "heap"
  | Cancelled -> "cancelled"

let pp_trip fmt (tr : trip) =
  Format.fprintf fmt "budget %S exceeded (%s) after %.0f ms / %d ticks: %s"
    tr.label (limit_name tr.limit) tr.elapsed_ms tr.ticks tr.note

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let none =
  {
    label = "unlimited";
    start = 0.0;
    deadline = infinity;
    max_ticks = max_int;
    max_heap_words = max_int;
    mask = 4095;
    armed = false;
    count = 0;
    forced = None;
    trip = None;
  }

let create ?(label = "budget") ?deadline_ms ?max_ticks ?max_heap_mb
    ?(check_every = 512) () =
  let start = now () in
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms -> start +. (Float.max 0.0 ms /. 1000.0)
  in
  let max_ticks = match max_ticks with None -> max_int | Some n -> max 0 n in
  let max_heap_words =
    match max_heap_mb with
    | None -> max_int
    | Some mb -> max 1 mb * words_per_mb
  in
  {
    label;
    start;
    deadline;
    max_ticks;
    max_heap_words;
    mask = pow2_at_least (max 1 check_every) 1 - 1;
    armed =
      deadline < infinity || max_ticks < max_int || max_heap_words < max_int;
    count = 0;
    forced = None;
    trip = None;
  }

let limited t = t.armed || t.forced <> None || t.trip <> None
let ticks t = t.count
let elapsed_ms t = (now () -. t.start) *. 1000.0
let tripped t = t.trip

let remaining_ms t =
  if t.deadline = infinity then None
  else Some (Float.max 0.0 ((t.deadline -. now ()) *. 1000.0))

let stop t limit note =
  let tr =
    { limit; label = t.label; elapsed_ms = elapsed_ms t; ticks = t.count; note }
  in
  t.trip <- Some tr;
  raise (Budget_exceeded tr)

let check t =
  match t.trip with
  | Some tr -> raise (Budget_exceeded tr)
  | None -> (
      (match t.forced with
      | Some (limit, note) -> stop t limit note
      | None -> ());
      if t.armed then begin
        if t.count > t.max_ticks then
          stop t Work
            (Printf.sprintf "work-tick ceiling of %d reached" t.max_ticks);
        if now () > t.deadline then
          stop t Wall_clock
            (Printf.sprintf "deadline passed (budget was %.0f ms)"
               ((t.deadline -. t.start) *. 1000.0));
        if t.max_heap_words < max_int then begin
          let st = Gc.quick_stat () in
          if st.Gc.heap_words > t.max_heap_words then
            stop t Heap
              (Printf.sprintf "heap at %d MB crossed the %d MB watermark"
                 (st.Gc.heap_words / words_per_mb)
                 (t.max_heap_words / words_per_mb))
        end
      end)

let tick t =
  t.count <- t.count + 1;
  if
    (t.armed && t.count land t.mask = 0) || t.forced <> None || t.trip <> None
  then check t

let force t limit note =
  if t == none then
    invalid_arg "Budget: Budget.none is shared and cannot be cancelled";
  if t.forced = None && t.trip = None then t.forced <- Some (limit, note)

let cancel ?(note = "cancelled by caller") t = force t Cancelled note
let exhaust ?(note = "exhaustion injected") t = force t Work note

let slice ?(fraction = 0.5) ?label t =
  if not (limited t) then t
  else begin
    let label = match label with Some l -> l | None -> t.label ^ "/slice" in
    let n = now () in
    let deadline =
      if t.deadline = infinity then infinity
      else n +. (fraction *. Float.max 0.0 (t.deadline -. n))
    in
    let max_ticks =
      if t.max_ticks = max_int then max_int
      else
        Stdlib.max 0
          (int_of_float (fraction *. float_of_int (Stdlib.max 0 (t.max_ticks - t.count))))
    in
    let forced =
      match t.trip with
      | Some tr -> Some (tr.limit, tr.note)
      | None -> t.forced
    in
    {
      t with
      label;
      start = n;
      deadline;
      max_ticks;
      armed = true;
      count = 0;
      forced;
      trip = None;
    }
  end

let absorb t child = if t != child then t.count <- t.count + child.count

let split ?label ~into t =
  let n = max 1 into in
  let child_label i =
    match label with
    | Some l -> Printf.sprintf "%s/%d" l i
    | None -> Printf.sprintf "%s/split%d" t.label i
  in
  if not (limited t) then
    (* unarmed but cancellable children: first-trip cancellation must
       work even when the caller asked for no limits *)
    Array.init n (fun i -> create ~label:(child_label i) ())
  else begin
    let now_ = now () in
    let per_child_ticks =
      if t.max_ticks = max_int then max_int
      else Stdlib.max 1 (Stdlib.max 0 (t.max_ticks - t.count) / n)
    in
    let forced =
      match t.trip with
      | Some tr -> Some (tr.limit, tr.note)
      | None -> t.forced
    in
    Array.init n (fun i ->
        {
          t with
          label = child_label i;
          start = now_;
          (* absolute, shared: the children run concurrently *)
          deadline = t.deadline;
          max_ticks = per_child_ticks;
          armed = true;
          count = 0;
          forced;
          trip = None;
        })
  end
