(** Automatic algorithm selection following Figure 1, plus
    resource-governed execution.

    Given a query, {!plan} reads off the paper's classification — CQs get
    the Theorem 16 FPRAS; DCQs and ECQs get an FPTRAS (no FPRAS exists for
    them unless NP = RP, Observation 10), with the engine chosen by the
    regime: tree-decomposition DP in the bounded-arity/treewidth regime of
    Theorem 5, generic join in the unbounded-arity regime of Theorem 13.
    {!count} plans and runs.

    The widths that make these running times polynomial are only bounded
    for well-behaved queries; on an adversarial instance any pipeline can
    blow up combinatorially. {!count_governed} therefore runs the planned
    algorithm under a slice of an {!Ac_runtime.Budget.t} and, when the
    slice trips, degrades along a fallback chain

    {v planned → exact join → tree-DP FPTRAS → generic-join FPTRAS
       → partial enumeration v}

    (skipping the rung that equals the planned algorithm), returning the
    first completed estimate tagged with the rung that produced it and
    whether the (ε, δ) guarantee still holds. The final rung never
    raises: it enumerates answers until the leftover budget trips and
    reports the count found so far — a crude lower bound, but a bounded
    answer instead of a hang or a crash. *)

type algorithm =
  | Use_fpras                              (** Theorem 16 *)
  | Use_fptras of Colour_oracle.engine     (** Theorems 5 / 13 *)
  | Use_exact
      (** statically always empty (negated twin, QL005): exact count 0 *)

type query_class = Cq | Dcq | Ecq_full

type decision = {
  algorithm : algorithm;
  query_class : query_class;
  treewidth : int;     (** exact when [exact_widths] *)
  fhw : float;         (** exact when [exact_widths] *)
  exact_widths : bool; (** widths are exact for ≤ 14 variables *)
  reason : string;     (** pretty-printed from [classification] *)
  classification : Ac_analysis.Classification.t;
      (** the full static analysis the decision was read off from *)
}

(** Builds a decision from a classification — the only way decisions are
    made; {!plan} is [decision_of_classification ∘ Ac_analysis.Classify.classify]. *)
val decision_of_classification : Ac_analysis.Classification.t -> decision

val plan : Ac_query.Ecq.t -> decision

(** {!plan} with [Invalid_argument]/[Failure] mapped to typed errors. *)
val plan_result : Ac_query.Ecq.t -> (decision, Ac_runtime.Error.t) result

(** Plan, run the chosen scheme, return the estimate and the decision.
    [budget] is threaded into every inner loop (a trip raises
    [Ac_runtime.Budget.Budget_exceeded] — use {!count_governed} to
    degrade instead). When [rng] is omitted a seed is drawn from
    {!Ac_runtime.Entropy.fresh_seed}; [verbose] logs it on stderr so the
    run can be replayed exactly.

    With [exec], the chosen scheme's independent trials fan out over the
    engine's domains and {e all} randomness derives from the engine's
    seed ([rng] is bypassed): the Fpras pipeline runs a median batch of
    sketch repetitions sized by [delta], the Fptras pipelines hand
    per-trial streams to the edge-count layer. Results are bit-identical
    for any jobs count. *)
val count :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?verbose:bool ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  float * decision

(** {!count} with all failures (including budget trips) as typed errors.
    Also validates [Ecq.compatible_with] up front
    ([Error (Signature_mismatch _)]) and that the estimate is finite
    ([Error (Numeric_overflow _)]). *)
val count_result :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?verbose:bool ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  (float * decision, Ac_runtime.Error.t) result

(** {2 Governed execution} *)

(** A rung of the fallback chain. *)
type rung =
  | Fpras_rung     (** Theorem 16 sketch pipeline (CQs) *)
  | Exact_rung     (** exact join + projection *)
  | Tree_dp_rung   (** Theorem 5 FPTRAS, tree-DP engine *)
  | Generic_rung   (** Theorem 13 FPTRAS, generic-join engine *)
  | Partial_rung   (** best-effort partial enumeration, lower bound *)

val rung_name : rung -> string

(** A failed attempt at an earlier rung. *)
type attempt = { rung : rung; error : Ac_runtime.Error.t }

type governed = {
  estimate : float;
  rung : rung;        (** the rung that produced [estimate] *)
  guarantee : bool;
      (** [true]: the (ε, δ) guarantee (or better — exactness) holds;
          [false]: [estimate] is a best-effort lower bound *)
  degraded : bool;    (** some rung before [rung] failed *)
  eps_used : float;
      (** the ε the completing rung actually ran at — equals the
          requested ε unless a cost-driven ladder step relaxed it *)
  attempts : attempt list;  (** failed rungs, in the order tried *)
  decision : decision;      (** the original plan *)
}

(** The {!Ac_analysis.Cost.rung} mirror, mapped back onto the planner's
    chain rungs. *)
val rung_of_cost : Ac_analysis.Cost.rung -> rung

(** Run the planned algorithm under a slice of [budget] and degrade down
    the chain on [Budget_exceeded] (or any typed error). With
    [strict:true] the planned algorithm runs under the whole budget and
    its first failure is returned as [Error] — no degradation. [chaos],
    when given, is consulted once per rung ([Chaos.guard] with site
    ["rung:<name>"]) so fault-injection tests can force any rung to
    fire deterministically. [exec] parallelises each rung's independent
    trials as in {!count}; every rung derives its own engine seed
    (ordinal split), so a degraded retry does not replay the failed
    rung's random choices — and an estimate depends only on
    [(rung, seed, ε, δ)], never on the rung's position in the chain, so
    cost-driven reordering is estimate-preserving. [decision], when
    given (e.g. by [Api.run], which has already analysed the query),
    skips re-planning — and in particular re-computing the width
    measures.

    [cost], when given, replaces the static fallback order with the
    {!Ac_analysis.Ladder} schedule: every applicable rung whose (ε, δ)
    guarantee holds, cheapest predicted cost first, then the cheapest
    sampling rung again at relaxed ε (reported via [eps_used]), then
    the partial sweep. Ignored under [strict] (strict means: exactly
    the Figure-1 plan). *)
val count_governed :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?verbose:bool ->
  ?strict:bool ->
  ?chaos:Ac_runtime.Chaos.t ->
  ?decision:decision ->
  ?cost:Ac_analysis.Cost.t ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  (governed, Ac_runtime.Error.t) result
