module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Bitset = Ac_hypergraph.Bitset
module Nice = Ac_hypergraph.Nice_decomposition
module Generic_join = Ac_join.Generic_join
module Tree_automaton = Ac_automata.Tree_automaton
module Ltree = Ac_automata.Ltree
module Acjr = Ac_automata.Acjr
module Exact_ta = Ac_automata.Exact_ta
module Budget = Ac_runtime.Budget
module Engine = Ac_exec.Engine
module Trace = Ac_obs.Trace

(* A tuple is self-consistent when repeated variables of the scope carry
   equal values. *)
let self_consistent scope tuple =
  let first = Hashtbl.create 4 in
  let ok = ref true in
  Array.iteri
    (fun pos v ->
      match Hashtbl.find_opt first v with
      | None -> Hashtbl.replace first v pos
      | Some p0 -> if tuple.(pos) <> tuple.(p0) then ok := false)
    scope;
  !ok

let bag_solutions ?budget q db bag =
  if not (Ecq.is_cq q) then invalid_arg "Fpras.bag_solutions: CQ required";
  let u = Structure.universe_size db in
  let bag_vars = Array.of_list (Bitset.to_list bag) in
  let index_of = Hashtbl.create 8 in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) bag_vars;
  let empty_relation = ref false in
  let local_atoms =
    List.filter_map
      (function
        | Ecq.Atom (name, scope) ->
            let rel = Structure.relation db name in
            (* distinct scope variables inside the bag, with their first
               positions *)
            let seen = Hashtbl.create 4 in
            let inter = ref [] in
            Array.iteri
              (fun pos v ->
                if Hashtbl.mem index_of v && not (Hashtbl.mem seen v) then begin
                  Hashtbl.replace seen v pos;
                  inter := (v, pos) :: !inter
                end)
              scope;
            (match List.rev !inter with
            | [] ->
                (* disjoint scope: Definition 47 only needs one
                   self-consistent supporting tuple to exist *)
                let any = ref false in
                Relation.iter
                  (fun tuple -> if self_consistent scope tuple then any := true)
                  rel;
                if not !any then empty_relation := true;
                None
            | inter ->
                let positions = Array.of_list (List.map snd inter) in
                let vars = Array.of_list (List.map fst inter) in
                let projected =
                  Relation.create ~arity:(Array.length positions)
                in
                Relation.iter
                  (fun tuple ->
                    if self_consistent scope tuple then
                      Relation.add projected
                        (Array.map (fun p -> tuple.(p)) positions))
                  rel;
                if Relation.is_empty projected then empty_relation := true;
                Some
                  (Generic_join.atom
                     (Array.map (Hashtbl.find index_of) vars)
                     projected))
        | Ecq.Neg_atom _ | Ecq.Diseq _ ->
            invalid_arg "Fpras.bag_solutions: CQ required")
      (Ecq.atoms q)
  in
  if !empty_relation then None
  else
    Some
      (Generic_join.solutions ~num_vars:(Array.length bag_vars) ~universe_size:u
         ?budget local_atoms)

type build = {
  automaton : Tree_automaton.t;
  shape : Ltree.shape;
  num_states : int;
  num_symbols : int;
  num_nodes : int;
  max_bag_solutions : int;
}

(* Decoding data threaded to [sample_answer]: for every symbol, the bag's
   free variables and their values. *)
type decoder = (int * int array * int array) array
(* symbol -> (node, free vars, values) *)

let build_with_decoder ?(budget = Budget.none) q db =
  if not (Ecq.is_cq q) then invalid_arg "Fpras.build: CQ required";
  if not (Ecq.compatible_with q db) then invalid_arg "Fpras.build: incompatible db";
  let h = Ecq.hypergraph q in
  let nice = Nice.of_hypergraph h in
  let n_nodes = Nice.num_nodes nice in
  let l = Ecq.num_free q in
  (* solutions per node, memoised by bag *)
  let memo = Bitset.Table.create 16 in
  let zero = ref false in
  let sol_of_bag bag =
    match Bitset.Table.find_opt memo bag with
    | Some s -> s
    | None ->
        let s =
          match bag_solutions ~budget q db bag with
          | None ->
              zero := true;
              []
          | Some s -> s
        in
        Bitset.Table.replace memo bag s;
        s
  in
  let bag_vars = Array.map (fun b -> Array.of_list (Bitset.to_list b)) nice.Nice.bags in
  let sols = Array.map sol_of_bag nice.Nice.bags in
  if !zero || Structure.universe_size db = 0 then None
  else begin
    (* state and symbol dictionaries *)
    let state_ids : (int * int list, int) Hashtbl.t = Hashtbl.create 1024 in
    let symbol_ids : (int * int list, int) Hashtbl.t = Hashtbl.create 1024 in
    let symbol_info = ref [] in
    let num_states = ref 0 and num_symbols = ref 0 in
    let state_of node alpha =
      let key = (node, Array.to_list alpha) in
      match Hashtbl.find_opt state_ids key with
      | Some id -> id
      | None ->
          let id = !num_states in
          incr num_states;
          Hashtbl.replace state_ids key id;
          id
    in
    let free_projection node alpha =
      let vars = bag_vars.(node) in
      let fv = ref [] and fval = ref [] in
      Array.iteri
        (fun i v ->
          if v < l then begin
            fv := v :: !fv;
            fval := alpha.(i) :: !fval
          end)
        vars;
      (Array.of_list (List.rev !fv), Array.of_list (List.rev !fval))
    in
    let symbol_of node alpha =
      let fv, fval = free_projection node alpha in
      let key = (node, Array.to_list fval) in
      match Hashtbl.find_opt symbol_ids key with
      | Some id -> id
      | None ->
          let id = !num_symbols in
          incr num_symbols;
          Hashtbl.replace symbol_ids key id;
          symbol_info := (id, node, fv, fval) :: !symbol_info;
          id
    in
    (* enumerate states and symbols first *)
    Array.iteri
      (fun node alphas ->
        List.iter
          (fun alpha ->
            Budget.tick budget;
            ignore (state_of node alpha);
            ignore (symbol_of node alpha))
          alphas)
      sols;
    let max_bag_solutions =
      Array.fold_left (fun acc s -> max acc (List.length s)) 0 sols
    in
    let kids = Nice.children nice in
    let root = nice.Nice.root in
    let root_sols = sols.(root) in
    match root_sols with
    | [] -> None (* Sol(φ, D, ∅) empty: some atom unsatisfiable *)
    | root_alpha :: _ ->
        let initial = state_of root root_alpha in
        let automaton =
          Tree_automaton.create ~num_states:(max 1 !num_states)
            ~num_symbols:(max 1 !num_symbols) ~initial
        in
        (* index of child's solutions by projection, for Forget nodes *)
        let project_drop alpha pos =
          Array.init
            (Array.length alpha - 1)
            (fun i -> if i < pos then alpha.(i) else alpha.(i + 1))
        in
        let position_of vars v =
          let p = ref (-1) in
          Array.iteri (fun i u -> if u = v then p := i) vars;
          if !p < 0 then invalid_arg "Fpras.build: variable not in bag";
          !p
        in
        Array.iteri
          (fun node alphas ->
            let add_t alpha rhs =
              Budget.tick budget;
              Tree_automaton.add_transition automaton ~state:(state_of node alpha)
                ~symbol:(symbol_of node alpha) rhs
            in
            match (nice.Nice.kind.(node), kids.(node)) with
            | Nice.Leaf, [] ->
                List.iter (fun alpha -> add_t alpha Tree_automaton.Stop) alphas
            | Nice.Introduce v, [ c ] ->
                (* bag = child bag + v: project α down *)
                let pos = position_of bag_vars.(node) v in
                List.iter
                  (fun alpha ->
                    let down = project_drop alpha pos in
                    add_t alpha (Tree_automaton.One (state_of c down)))
                  alphas
            | Nice.Forget v, [ c ] ->
                (* child bag = bag + v: all consistent extensions *)
                let cpos = position_of bag_vars.(c) v in
                let buckets = Hashtbl.create 64 in
                List.iter
                  (fun alpha1 ->
                    let key = Array.to_list (project_drop alpha1 cpos) in
                    let b =
                      match Hashtbl.find_opt buckets key with
                      | Some b -> b
                      | None ->
                          let b = ref [] in
                          Hashtbl.replace buckets key b;
                          b
                    in
                    b := alpha1 :: !b)
                  sols.(c);
                List.iter
                  (fun alpha ->
                    match Hashtbl.find_opt buckets (Array.to_list alpha) with
                    | None -> ()
                    | Some b ->
                        List.iter
                          (fun alpha1 ->
                            add_t alpha (Tree_automaton.One (state_of c alpha1)))
                          !b)
                  alphas
            | Nice.Join, [ c1; c2 ] ->
                List.iter
                  (fun alpha ->
                    add_t alpha
                      (Tree_automaton.Two (state_of c1 alpha, state_of c2 alpha)))
                  alphas
            | _ -> invalid_arg "Fpras.build: decomposition is not nice")
          sols;
        (* shape with children in the same order as the transitions *)
        let rec shape_of node =
          Ltree.Shape (List.map shape_of kids.(node))
        in
        let shape = shape_of root in
        let decoder =
          let arr = Array.make !num_symbols (0, [||], [||]) in
          List.iter (fun (id, node, fv, fval) -> arr.(id) <- (node, fv, fval)) !symbol_info;
          arr
        in
        Some
          ( {
              automaton;
              shape;
              num_states = !num_states;
              num_symbols = !num_symbols;
              num_nodes = n_nodes;
              max_bag_solutions;
            },
            (decoder : decoder) )
  end

let build ?budget q db = Option.map fst (build_with_decoder ?budget q db)

(* [budget], when given, governs both the automaton construction and the
   sketch propagation (overriding the config's own budget). *)
let config_with_budget budget config =
  let config = match config with Some c -> c | None -> Acjr.default_config () in
  match budget with
  | None -> config
  | Some b -> { config with Acjr.budget = b }

(* Median repetitions for confidence 1 - delta: the single-sketch
   estimator is within the accuracy band with constant probability, so
   ~ln(1/δ) independent repetitions around the median amplify it. *)
let repetitions_for ~delta =
  let delta = Float.min 0.49 (Float.max 1e-12 delta) in
  let m = int_of_float (ceil (1.25 *. Float.log (1.0 /. delta))) in
  max 3 ((2 * m) + 1)

(* Phase span: [k] receives the span (None when [parent] is — one
   branch on the untraced path). The phase's tick delta on [budget] is
   attributed to the span so "which phase burned the budget" is
   answerable from the trace alone. *)
let phase ?budget parent name k =
  match parent with
  | None -> k None
  | Some _ ->
      let sp = Trace.child parent name in
      let ticks () = match budget with Some b -> Budget.ticks b | None -> 0 in
      let t0 = ticks () in
      Fun.protect
        ~finally:(fun () -> Trace.stop ~ticks:(ticks () - t0) sp)
        (fun () -> k sp)

let approx_count ?budget ?config ?exec ?repetitions q db =
  let parent = match exec with Some e -> Engine.span e | None -> None in
  match phase ?budget parent "fpras:build" (fun _ -> build ?budget q db) with
  | None -> 0.0
  | Some b -> (
      let config = config_with_budget budget config in
      match exec with
      | None -> Acjr.estimate_fixed_shape ~config b.automaton b.shape
      | Some exec ->
          (* Engine path: the automaton is built once (sequential — it is
             a deterministic construction) and shared read-only by the
             repetitions. A single sketch propagation is the legacy
             behaviour; [repetitions] defaults to the δ=0.05 batch. *)
          let repetitions =
            match repetitions with
            | Some r -> max 1 r
            | None -> repetitions_for ~delta:0.05
          in
          phase ?budget parent "fpras:median" (fun sp ->
              Acjr.estimate_median ?budget ~config
                ~exec:(Engine.with_span exec sp)
                ~repetitions b.automaton b.shape))

let exact_count_automaton ?budget q db =
  match build ?budget q db with
  | None -> 0
  | Some b -> Exact_ta.count_fixed_shape b.automaton b.shape

let sample_answer ?budget ?config q db =
  match build_with_decoder ?budget q db with
  | None -> None
  | Some (b, decoder) -> (
      match
        Acjr.sample_fixed_shape
          ~config:(config_with_budget budget config)
          b.automaton b.shape
      with
      | None -> None
      | Some tree ->
          let l = Ecq.num_free q in
          let answer = Array.make l (-1) in
          let rec walk (t : Ltree.t) =
            let _, fv, fval = decoder.(t.Ltree.label) in
            Array.iteri (fun i v -> answer.(v) <- fval.(i)) fv;
            List.iter walk t.Ltree.children
          in
          walk tree;
          if Array.exists (( = ) (-1)) answer then None else Some answer)
