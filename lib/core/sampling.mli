(** §6 extensions: approximately-uniform answer sampling and counting
    unions of queries.

    Sampling follows Jerrum–Valiant–Vazirani self-reducibility: free
    variables are pinned one at a time, each value chosen with probability
    proportional to the (approximate) count of answers extending the
    prefix; the pin is realised by restricting the corresponding class of
    the answer hypergraph, so the same [EdgeFree] oracle drives both
    counting and sampling. (For #CQ, {!Fpras.sample_answer} additionally
    exposes ACJR's native sampler.)

    Union counting is the classic Karp–Luby estimator over
    [Ans(φ₁) ∪ .. ∪ Ans(φ_m)] (all queries over the same free variables):
    draw a query proportionally to its answer count, draw one of its
    answers, weight by the inverse multiplicity.

    The sampling entry points come in three forms: {!make_sampler} /
    {!sample} are the internal raising variants (a tripped budget raises
    [Ac_runtime.Budget.Budget_exceeded]); {!sample_result} is the public
    result form; {!sample_many} fans independent draws out over an
    {!Ac_exec.Engine}. *)

(** [make_sampler ~eps ~delta q db] prepares a reusable sampler (the
    oracle and solver are built once); each call draws one
    approximately-uniform answer, or [None] when the (approximate) count
    is 0. Cost per draw: [ℓ · log |U|] counting calls (pinning by
    recursive halving). Raising variant — see {!sample_result}. *)
val make_sampler :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  unit ->
  int array option

(** One-shot {!make_sampler}. Raising variant — see {!sample_result}. *)
val sample :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int array option

(** {!sample} with all failures as typed errors — the public form. *)
val sample_result :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  (int array option, Ac_runtime.Error.t) result

(** [draws] independent JVV draws fanned out over [exec]'s domains: the
    oracle is built once and shared read-only, draw [i] runs entirely on
    stream [i] of the engine's seed, results come back in draw order —
    bit-identical for any jobs count. [budget] governs the batch through
    per-chunk sub-slices. *)
val sample_many :
  ?budget:Ac_runtime.Budget.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  exec:Ac_exec.Engine.t ->
  draws:int ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int array option array

(** The §6 alternative sampler: answers are the hyperedges of [H(φ, D)],
    so the Dell–Lapinskas–Meeks edge sampler
    ({!Ac_dlm.Edge_count.sample_edge}) over the colour-coded oracle draws
    an answer directly. *)
val sample_dlm :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int array option

(** Exactly-uniform sampling by full enumeration (testing baseline). *)
val sample_exact :
  ?rng:Random.State.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int array option

(** Exact [|⋃ Ans(φ_i, D)|] by enumeration (baseline). All queries must
    share the number of free variables. *)
val union_count_exact : Ac_query.Ecq.t list -> Ac_relational.Structure.t -> int

(** Karp–Luby estimate of [|⋃ Ans(φ_i, D)|] using per-query enumeration
    for the sampling pools ([rounds] draws, default 2000). *)
val union_count_karp_luby :
  ?rng:Random.State.t ->
  ?rounds:int ->
  Ac_query.Ecq.t list ->
  Ac_relational.Structure.t ->
  float

(** Fully approximate Karp–Luby union counting: per-query cardinalities
    from the FPTRAS, draws from the JVV samplers, membership through the
    counting oracle — no exact enumeration anywhere. [kl_rounds] draws
    (default 60; each costs one JVV sample plus one membership decision
    per query). *)
val union_count_approx :
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  ?kl_rounds:int ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t list ->
  Ac_relational.Structure.t ->
  float
