module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Chaos = Ac_runtime.Chaos
module Entropy = Ac_runtime.Entropy
module Engine = Ac_exec.Engine
module Report = Ac_analysis.Report
module Trace = Ac_obs.Trace

type method_ =
  | Auto
  | Fpras
  | Fptras of Colour_oracle.engine
  | Exact
  | Brute

let method_to_string = function
  | Auto -> "auto"
  | Fpras -> "fpras"
  | Fptras Colour_oracle.Tree_dp -> "fptras/tree-dp"
  | Fptras Colour_oracle.Generic -> "fptras/generic"
  | Fptras Colour_oracle.Direct -> "fptras/direct"
  | Exact -> "exact"
  | Brute -> "brute"

let method_name = method_to_string

(* The single method codec: [bin/acq], the wire protocol and the bench
   harness all parse through here, so the accepted spellings cannot
   drift apart. Every [method_to_string] output round-trips. *)
let method_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Some Auto
  | "fpras" -> Some Fpras
  | "fptras" | "fptras/tree-dp" | "tree-dp" | "tree_dp" ->
      Some (Fptras Colour_oracle.Tree_dp)
  | "fptras/generic" | "generic" | "generic-join" ->
      Some (Fptras Colour_oracle.Generic)
  | "fptras/direct" | "direct" -> Some (Fptras Colour_oracle.Direct)
  | "exact" -> Some Exact
  | "brute" -> Some Brute
  | _ -> None

type request = {
  query : Ecq.t;
  db : Structure.t;
  eps : float;
  delta : float;
  method_ : method_;
  seed : int option;
  jobs : int option;
  budget : Budget.t option;
  strict : bool;
  verbose : bool;
  chaos : Chaos.t option;
  trace : Trace.t option;
}

(* The builder: [Request.make] carries the documented defaults and the
   [with_*] setters replace one field each, so call sites name exactly
   the knobs they turn and pipe the rest through unchanged. The
   optional-argument [request] constructor below is a thin veneer over
   it, kept for existing callers. *)
module Request = struct
  let make query db =
    {
      query;
      db;
      eps = 0.25;
      delta = 0.1;
      method_ = Auto;
      seed = None;
      jobs = None;
      budget = None;
      strict = false;
      verbose = false;
      chaos = None;
      trace = None;
    }

  let with_eps eps r = { r with eps }
  let with_delta delta r = { r with delta }
  let with_method method_ r = { r with method_ }
  let with_seed seed r = { r with seed }
  let with_jobs jobs r = { r with jobs }
  let with_budget budget r = { r with budget }
  let with_strict strict r = { r with strict }
  let with_verbose verbose r = { r with verbose }
  let with_chaos chaos r = { r with chaos }
  let with_trace trace r = { r with trace }
end

let request ?(eps = 0.25) ?(delta = 0.1) ?(method_ = Auto) ?seed ?jobs ?budget
    ?(strict = false) ?(verbose = false) ?chaos ?trace query db =
  {
    (Request.make query db) with
    eps;
    delta;
    method_;
    seed;
    jobs;
    budget;
    strict;
    verbose;
    chaos;
    trace;
  }

type telemetry = {
  seed : int;
  jobs : int;
  ticks : int;
  elapsed_ms : float;
  trace : Trace.summary option;
}

type response = {
  estimate : float;
  exact : bool;
  decision : Planner.decision option;
  rung : Planner.rung option;
  guarantee : bool;
  degraded : bool;
  eps_used : float;
  attempts : Planner.attempt list;
  report : Report.t;
  telemetry : telemetry;
}

(* Seed resolution happens — and is logged — before any computation, so
   a run that later stalls or degrades can still be replayed. *)
let resolve_seed (r : request) =
  match r.seed with
  | Some s -> s
  | None ->
      let s = Entropy.fresh_seed () in
      if r.verbose then
        Printf.eprintf
          "api: method %s, self-init seed = %d (pass it back to replay)\n%!"
          (method_name r.method_) s;
      s

let resolve_jobs (r : request) =
  match r.jobs with Some j -> max 1 j | None -> Engine.default_jobs ()

let fpras_requires_cq =
  "the FPRAS (Theorem 16) requires a CQ: remove disequalities and negations, \
   or use the fptras method"

let mismatch = Error.Signature_mismatch "query signature is not contained in the database's"

(* Root span of a traced request: the whole call, tagged with the
   resolved execution envelope. [None] (the default) keeps the entire
   observability layer to a single branch per layer. *)
let open_root (r : request) ~seed ~jobs name =
  match r.trace with
  | None -> None
  | Some tr ->
      Some
        (Trace.root tr name
           ~tags:
             [
               ("method", method_to_string r.method_);
               ("seed", string_of_int seed);
               ("jobs", string_of_int jobs);
             ])

(* The static analysis as its own child span — planning cost is part of
   the attribution story. *)
let analyze_traced root (r : request) =
  match root with
  | None -> Report.analyze ~db:r.db r.query
  | Some _ ->
      let sp = Trace.child root "analyze" in
      Fun.protect
        ~finally:(fun () -> Trace.stop sp)
        (fun () -> Report.analyze ~db:r.db r.query)

(* Closing the root span with the final tick count before summarising
   gives the root the whole run's tick attribution. *)
let make_telemetry (r : request) ~seed ~jobs ~budget ~root () =
  Trace.stop ~ticks:(Budget.ticks budget) root;
  {
    seed;
    jobs;
    ticks = Budget.ticks budget;
    elapsed_ms = Budget.elapsed_ms budget;
    trace = Option.map Trace.summary r.trace;
  }

let run ?report r =
  let seed = resolve_seed r in
  let jobs = resolve_jobs r in
  if r.verbose && r.seed <> None then
    Printf.eprintf "api: method %s, seed = %d, jobs = %d\n%!"
      (method_name r.method_) seed jobs;
  let root = open_root r ~seed ~jobs "api:count" in
  let exec = Engine.with_span (Engine.make ~jobs ~seed ()) root in
  (* telemetry needs a tick counter even when the caller set no limit *)
  let budget =
    match r.budget with Some b -> b | None -> Budget.create ~label:"api" ()
  in
  let telemetry = make_telemetry r ~seed ~jobs ~budget ~root in
  (* The static analysis runs once, up front; the Auto path hands its
     classification to the planner (no re-derivation) and every response
     carries the full report. A caller that has already analysed this
     (query, db) pair — e.g. the server's plan cache — passes it in. *)
  let report =
    match report with Some rep -> rep | None -> analyze_traced root r
  in
  let finish ?decision ?rung ?(guarantee = true) ?(degraded = false)
      ?(eps_used = r.eps) ?(attempts = []) ~exact estimate =
    if not (Float.is_finite estimate) then
      Error
        (Error.Numeric_overflow
           (Printf.sprintf "estimate is %h (method %s)" estimate
              (method_name r.method_)))
    else
      Ok
        {
          estimate;
          exact;
          decision;
          rung;
          guarantee;
          degraded;
          eps_used;
          attempts;
          report;
          telemetry = telemetry ();
        }
  in
  if not (Ecq.compatible_with r.query r.db) then Error mismatch
  else
    match r.method_ with
    | Auto -> (
        let decision =
          Planner.decision_of_classification (Report.classification_exn report)
        in
        match
          Planner.count_governed ~budget ~exec ~verbose:r.verbose
            ~strict:r.strict ?chaos:r.chaos ~decision
            ?cost:report.Report.cost ~eps:r.eps ~delta:r.delta r.query r.db
        with
        | Error e -> Error e
        | Ok g ->
            finish ~decision:g.Planner.decision ~rung:g.Planner.rung
              ~guarantee:g.Planner.guarantee ~degraded:g.Planner.degraded
              ~eps_used:g.Planner.eps_used ~attempts:g.Planner.attempts
              ~exact:(g.Planner.rung = Planner.Exact_rung)
              g.Planner.estimate)
    | Fpras ->
        if not (Ecq.is_cq r.query) then
          Error (Error.Signature_mismatch fpras_requires_cq)
        else
          Result.bind
            (Error.guard (fun () ->
                 Fpras.approx_count ~budget ~exec
                   ~repetitions:(Fpras.repetitions_for ~delta:r.delta)
                   r.query r.db))
            (fun estimate -> finish ~exact:false estimate)
    | Fptras engine ->
        Result.bind
          (Error.guard (fun () ->
               Fptras.approx_count ~budget ~exec ~engine ~eps:r.eps
                 ~delta:r.delta r.query r.db))
          (fun fr -> finish ~exact:fr.Fptras.exact fr.Fptras.estimate)
    | Exact ->
        Result.bind
          (Error.guard (fun () -> Exact.by_join_projection ~budget r.query r.db))
          (fun n -> finish ~exact:true (float_of_int n))
    | Brute ->
        Result.bind
          (Error.guard (fun () -> Exact.brute_force ~budget r.query r.db))
          (fun n -> finish ~exact:true (float_of_int n))

type sample_response = {
  draws : int array option array;
  degraded : bool;
  report : Report.t;
  telemetry : telemetry;
}

let sample ?report ?(draws = 1) r =
  let seed = resolve_seed r in
  let jobs = resolve_jobs r in
  let root = open_root r ~seed ~jobs "api:sample" in
  let exec = Engine.with_span (Engine.make ~jobs ~seed ()) root in
  let budget =
    match r.budget with Some b -> b | None -> Budget.create ~label:"api" ()
  in
  let telemetry = make_telemetry r ~seed ~jobs ~budget ~root in
  let engine =
    match r.method_ with Fptras engine -> engine | _ -> Colour_oracle.Tree_dp
  in
  if not (Ecq.compatible_with r.query r.db) then Error mismatch
  else
    let report =
      match report with Some rep -> rep | None -> analyze_traced root r
    in
    Result.map
      (fun samples ->
        {
          draws = samples;
          degraded = Array.exists Option.is_none samples;
          report;
          telemetry = telemetry ();
        })
      (Error.guard (fun () ->
           Sampling.sample_many ~budget ~engine ~exec ~draws ~eps:r.eps
             ~delta:r.delta r.query r.db))
