(** Exact answer counting — the baselines every approximation is judged
    against, and the "exact counting wall" measured in experiment E3.

    - [brute_force]: all [|U|^{|vars|}] assignments (tiny instances).
    - [by_join_projection]: enumerate all solutions with the generic join
      (negated predicates materialised as complements), filter
      disequalities, project to the free variables, deduplicate. Cost is
      driven by the number of {e solutions}.
    - [by_free_enumeration]: for each of the [|U|^ℓ] free tuples decide
      extendability (cost driven by [|U|^ℓ]).

    All three compute [|Ans(φ, D)|] exactly; tests cross-check them.
    Every entry point takes an optional [budget] (cooperative
    cancellation: a tripped budget aborts the enumeration with
    [Ac_runtime.Budget.Budget_exceeded]). *)

val brute_force :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int

val by_join_projection :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int

val by_free_enumeration :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int

(** Best-effort count under a budget: enumerates distinct answers until
    the budget trips. Returns [(count, completed)] — when [completed]
    the count is exact; otherwise it is a lower bound (the planner's
    last-resort partial estimate). Never raises [Budget_exceeded]. *)
val partial_count :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int * bool

(** The paper's footnote-4 easiness result: a quantifier-free query
    without disequalities counts homomorphisms, which is
    fixed-parameter-exact for bounded treewidth (Dalmau–Jonsson,
    {!Ac_hom.Hom.count_dp}). [None] when the query has existential
    variables or disequalities (negated atoms are fine — they are
    positive atoms over the complement relations). *)
val by_hom_dp :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int option

(** The set of answers (projections), via join + projection. Each answer
    is an array of length [ℓ]. *)
val answers :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int array list

(** [is_answer φ db τ]: can the free-variable assignment [τ] be extended
    to a solution? *)
val is_answer :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int array ->
  bool
