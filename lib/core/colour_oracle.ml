module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Hom = Ac_hom.Hom
module Partite = Ac_dlm.Partite
module Generic_join = Ac_join.Generic_join
module Intset = Ac_kernels.Intset
module Budget = Ac_runtime.Budget
module Trace = Ac_obs.Trace

type engine = Tree_dp | Generic | Direct

(* Box-answer cache keyed by the parts themselves. The polymorphic hash
   only inspects a prefix of a nested array, and DLM boxes frequently
   share prefixes, so hash every element. *)
module Box_key = struct
  type t = int array array

  let equal (a : t) b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri (fun i p -> if !ok && p <> b.(i) then ok := false) a;
        !ok)

  let hash (parts : t) =
    let h = ref 0x9e3779b9 in
    Array.iter
      (fun p ->
        h := (!h * 31) + 0x85ebca6b;
        Array.iter (fun x -> h := (!h * 31) + x) p)
      parts;
    !h land max_int
end

module Box_cache = Hashtbl.Make (Box_key)

type t = {
  query : Ecq.t;
  universe_size : int;
  instance : Hom.instance;
  solver : Hom.prepared;
  delta : (int * int) list;
  engine : engine;
  full : int array; (* 0..universe-1, shared by every domain filter *)
  base_budget : int; (* colouring rounds per remaining disequality = base_budget · 4^{|Δ'|} *)
  probe_budget : int; (* witnesses enumerated before colouring; 0 disables the shortcut *)
  budget : Budget.t; (* cooperative cancellation: ticked per oracle call and per colouring round *)
  rng : Random.State.t;
  homs : int Atomic.t; (* atomic: probed concurrently from parallel trial domains *)
  oracles : int Atomic.t;
  span : Trace.span option; (* parent for per-call "oracle" spans; None = untraced *)
  cache : bool Box_cache.t; (* deterministic box verdicts; see [answer_in_box] *)
  cache_lock : Mutex.t;
}

let hom_calls t = Atomic.get t.homs
let oracle_calls t = Atomic.get t.oracles

let factorial n =
  let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
  go 1 n

let rounds_for ~delta ~ell ~num_diseq ~expected_oracle_calls =
  let t = float_of_int (max 1 expected_oracle_calls) in
  let lfact = float_of_int (factorial (max 1 (min ell 12))) in
  let budget = Float.log (2.0 *. t *. lfact /. delta) in
  let base = max 1 (int_of_float (ceil budget)) in
  base * int_of_float (Float.pow 4.0 (float_of_int num_diseq))

let default_base q db =
  let t = float_of_int (max 1 (100 * Structure.universe_size db)) in
  let lfact = float_of_int (factorial (max 1 (min (Ecq.num_free q) 12))) in
  max 1 (int_of_float (ceil (Float.log (2.0 *. t *. lfact /. 0.05))))

let budget_cap = 65536

let create ?rng ?rounds ?(probe_budget = 1024) ?(budget = Budget.none)
    ?(span = None) ~engine q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let base_budget =
    match rounds with None -> default_base q db | Some r -> max 1 r
  in
  let instance = Assoc.hom_instance q db in
  let strategy =
    match engine with
    | Tree_dp -> Hom.Decomposition
    | Generic | Direct -> Hom.Backtracking
  in
  {
    query = q;
    universe_size = Structure.universe_size db;
    full = Intset.range (Structure.universe_size db);
    instance;
    solver = Hom.prepare ~strategy ~budget instance;
    delta = Ecq.delta q;
    engine;
    base_budget;
    probe_budget = max 0 probe_budget;
    budget;
    rng;
    homs = Atomic.make 0;
    oracles = Atomic.make 0;
    span;
    cache = Box_cache.create 1024;
    cache_lock = Mutex.create ();
  }

let create_result ?rng ?rounds ?probe_budget ?budget ?span ~engine q db =
  Ac_runtime.Error.guard (fun () ->
      create ?rng ?rounds ?probe_budget ?budget ?span ~engine q db)

let space t =
  let l = Ecq.num_free t.query in
  if l = 0 then
    invalid_arg "Colour_oracle.space: Boolean query (no free variables)";
  Partite.space (Array.make l t.universe_size)

(* Base domains from the parts: free variable i is confined to V_i. *)
let base_domains t parts =
  let n = Ecq.num_vars t.query in
  let l = Ecq.num_free t.query in
  let domains = Array.make n None in
  for i = 0 to min l (Array.length parts) - 1 do
    (* Partite parts arrive sorted, so canon aliases without copying *)
    domains.(i) <- Some (Intset.canon parts.(i))
  done;
  domains

exception Unsatisfiable

(* Deterministic propagation: a disequality whose endpoint is pinned to a
   single value removes that value from the other endpoint's domain and
   disappears; a disequality whose endpoint domains are provably disjoint
   disappears. This is a deterministic refinement of the colour-coding —
   only the surviving disequalities need random colours, shrinking the
   4^{|Δ|} budget. Raises [Unsatisfiable] when a domain empties. *)
(* Owns [domains]: callers pass a fresh array ([base_domains] output)
   that is refined in place. *)
let propagate t domains delta =
  let delta = ref delta and progress = ref true in
  let singleton v =
    match domains.(v) with Some [| x |] -> Some x | _ -> None
  in
  let remove_value v x =
    let current = match domains.(v) with Some a -> a | None -> t.full in
    let filtered = Intset.remove current x in
    if filtered = [||] then raise Unsatisfiable;
    domains.(v) <- Some filtered
  in
  let disjoint i j =
    match (domains.(i), domains.(j)) with
    | Some a, Some b -> Intset.disjoint a b
    | _ -> false
  in
  while !progress do
    progress := false;
    delta :=
      List.filter
        (fun (i, j) ->
          match (singleton i, singleton j) with
          | Some x, Some y ->
              if x = y then raise Unsatisfiable;
              progress := true;
              false
          | Some x, None ->
              remove_value j x;
              progress := true;
              false
          | None, Some y ->
              remove_value i y;
              progress := true;
              false
          | None, None ->
              if disjoint i j then begin
                progress := true;
                false
              end
              else true)
        !delta
  done;
  (domains, !delta)

let decide t domains =
  Atomic.incr t.homs;
  Hom.decide t.solver ~domains ()

(* Direct engine: enumerate join solutions, accept the first satisfying
   all remaining disequalities. No colour-coding, no width guarantee. *)
let decide_direct t domains delta =
  Atomic.incr t.homs;
  if delta = [] then Hom.decide t.solver ~domains ()
  else begin
    let found = ref false in
    Hom.iter_solutions t.solver ~domains ~reuse:true
      ~diseqs:(Array.of_list delta)
      ~f:(fun _ ->
        found := true;
        false);
    !found
  end

(* [rng] defaults to the oracle's own state; parallel trial engines pass
   their per-trial stream instead, so probe outcomes depend only on the
   stream (everything else in [t] is read-only during a probe).

   Every path below except the colouring rounds is deterministic in
   [parts] alone — propagation, the probe shortcut and the engine
   decisions never touch [rng] — so those verdicts are cached per box.
   The DLM split revisits boxes heavily, and a cache hit provably
   returns the same verdict recomputation would (and consumes no
   randomness, exactly like the computation it replaces), so estimates
   are bit-identical with and without the cache, at any [--jobs]. *)
let answer_in_box_uncached ~rng t parts =
  if Array.exists (fun p -> Array.length p = 0) parts then (false, true)
  else begin
    let domains0 = base_domains t parts in
    match propagate t domains0 t.delta with
    | exception Unsatisfiable -> (false, true)
    | domains, remaining -> (
        match t.engine with
        | Direct -> (decide_direct t domains remaining, true)
        | Tree_dp | Generic ->
            if remaining = [] then (decide t domains, true)
            else begin
              (* Colour-free shortcut: colourings only restrict domains,
                 so one generic-join search with the remaining
                 disequalities pushed into it (violating subtrees pruned
                 as the second endpoint binds) settles the box exactly —
                 first surviving witness means an edge, exhaustion means
                 provably none. The colouring rounds below only run when
                 the probe is disabled ([probe_budget = 0], the ablation
                 knob) — they use the chosen engine, preserving the width
                 guarantees where they matter. *)
              let verdict = ref `Unknown in
              if t.probe_budget > 0 then begin
                Atomic.incr t.homs;
                let found = ref false in
                Hom.iter_solutions t.solver ~domains ~reuse:true
                  ~diseqs:(Array.of_list remaining)
                  ~f:(fun _ ->
                    found := true;
                    false);
                verdict := (if !found then `Edge else `Empty)
              end;
              match !verdict with
              | `Edge -> (true, true)
              | `Empty -> (false, true)
              | `Unknown ->
              let budget =
                let scaled =
                  float_of_int t.base_budget
                  *. Float.pow 4.0 (float_of_int (List.length remaining))
                in
                (* the paper's bound is exponential in ‖φ‖²; the hard cap
                   keeps single oracle calls bounded in practice and is an
                   explicit knob documented in DESIGN.md *)
                if scaled > float_of_int budget_cap then budget_cap
                else int_of_float scaled
              in
              let found = ref false in
              let round = ref 0 in
              while (not !found) && !round < budget do
                Budget.tick t.budget;
                incr round;
                let coloured = Array.copy domains in
                let dead = ref false in
                List.iter
                  (fun (i, j) ->
                    let f =
                      Array.init t.universe_size (fun _ -> Random.State.bool rng)
                    in
                    let keep v pred =
                      let current =
                        match coloured.(v) with Some a -> a | None -> t.full
                      in
                      let filtered = Intset.filter pred current in
                      if filtered = [||] then dead := true;
                      coloured.(v) <- Some filtered
                    in
                    keep i (fun w -> f.(w));
                    keep j (fun w -> not f.(w)))
                  remaining;
                if (not !dead) && decide t coloured then found := true
              done;
              (* one-sided Monte Carlo over [rng]: not a deterministic
                 fact about the box, so never cached *)
              (!found, false)
            end)
  end

let answer_in_box ~rng t parts =
  Budget.tick t.budget;
  Atomic.incr t.oracles;
  let cached =
    Mutex.lock t.cache_lock;
    let c = Box_cache.find_opt t.cache parts in
    Mutex.unlock t.cache_lock;
    c
  in
  match cached with
  | Some answer -> answer
  | None ->
      let answer, cacheable = answer_in_box_uncached ~rng t parts in
      if cacheable then begin
        (* keys are copied: callers may reuse their part buffers. A
           racing duplicate add is benign (same deterministic value). *)
        let key = Array.map Array.copy parts in
        Mutex.lock t.cache_lock;
        Box_cache.add t.cache key answer;
        Mutex.unlock t.cache_lock
      end;
      answer

(* Oracle-call spans sit at the bottom of the hierarchy (plan → rung →
   trial → oracle call). Untraced oracles ([span = None], the default)
   pay one branch per call; traced calls are recorded up to the
   collector's [max_spans] cap (a governed run can issue thousands). *)
let has_answer_in_box ?rng t parts =
  let rng = match rng with Some r -> r | None -> t.rng in
  match t.span with
  | None -> answer_in_box ~rng t parts
  | Some _ ->
      let sp = Trace.child t.span "oracle" in
      Fun.protect
        ~finally:(fun () -> Trace.stop sp)
        (fun () -> answer_in_box ~rng t parts)

let aligned_oracle t parts = not (has_answer_in_box t parts)
let seeded_oracle t ~rng parts = not (has_answer_in_box ~rng t parts)
