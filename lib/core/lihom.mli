(** Counting locally injective homomorphisms (Corollary 6).

    A homomorphism [h : G → G'] is locally injective when it is injective
    on every neighbourhood [N_G(v)]. The paper encodes the count as
    [|Ans(φ(G), D(G'))|] where [φ(G)] has one free variable per vertex of
    [G], an [E]-atom per edge, and a disequality for every pair of
    vertices with a common neighbour ([cn(G)]); Theorem 5 then yields an
    FPTRAS whenever [tw(G)] is bounded. *)

(** The encoding [φ(G)] (same as {!Ac_workload.Query_families.lihom}). *)
val query_of : Ac_workload.Graph.t -> Ac_query.Ecq.t

(** The encoding [D(G')]. *)
val database_of : Ac_workload.Graph.t -> Ac_relational.Structure.t

(** FPTRAS for #LIHom (Corollary 6); the trailing positional argument is
    the host graph [G']. Raising variant — see {!approx_count_result}. *)
val approx_count :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  pattern:Ac_workload.Graph.t ->
  Ac_workload.Graph.t ->
  Fptras.result

(** {!approx_count} with all failures as typed errors — the public
    form. *)
val approx_count_result :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  pattern:Ac_workload.Graph.t ->
  Ac_workload.Graph.t ->
  (Fptras.result, Ac_runtime.Error.t) result

(** Exact count through the query encoding (join + projection). *)
val exact_count : pattern:Ac_workload.Graph.t -> host:Ac_workload.Graph.t -> int

(** Exact count by direct graph brute force (cross-check baseline). *)
val exact_count_brute :
  pattern:Ac_workload.Graph.t -> host:Ac_workload.Graph.t -> int
