(** The Hamiltonian-path construction of Observation 10.

    The DCQ [φ(x₁..x_n) = ⋀ E(x_i, x_{i+1}) ∧ ⋀_{i<j} x_i ≠ x_j] has
    treewidth 1 and arity 2, yet its answers over [D(G)] are exactly the
    Hamiltonian paths of [G] — so no FPRAS exists for bounded-treewidth
    DCQs unless NP = RP. The FPTRAS of Theorem 5 still applies: its cost
    is exponential in [‖φ‖] (= in [n]) but polynomial in [‖D‖], which is
    what experiment E4 measures. *)

(** [query n] — Observation 10's query for [n]-vertex graphs ([n ≥ 2]). *)
val query : int -> Ac_query.Ecq.t

val database_of : Ac_workload.Graph.t -> Ac_relational.Structure.t

(** Ground truth by Held–Karp subset DP (counts each undirected
    Hamiltonian path once per direction, like the query's answers). *)
val exact_paths : Ac_workload.Graph.t -> int

(** Exact answer count through the query encoding. *)
val exact_via_query : Ac_workload.Graph.t -> int

(** FPTRAS on the Hamiltonian query. Raising variant — see
    {!approx_via_query_result}. *)
val approx_via_query :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  Ac_workload.Graph.t ->
  Fptras.result

(** {!approx_via_query} with all failures as typed errors — the public
    form. *)
val approx_via_query_result :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  eps:float ->
  delta:float ->
  Ac_workload.Graph.t ->
  (Fptras.result, Ac_runtime.Error.t) result
