module Graph = Ac_workload.Graph
module Query_families = Ac_workload.Query_families

let query = Query_families.hamiltonian

let database_of g = Graph.to_structure ~symbol:"E" g

let exact_paths = Graph.count_hamiltonian_paths

let exact_via_query g =
  Exact.by_join_projection (query (Graph.num_vertices g)) (database_of g)

let approx_via_query ?budget ?rng ?exec ?engine ?rounds ~eps ~delta g =
  Fptras.approx_count ?budget ?rng ?exec ?engine ?rounds ~eps ~delta
    (query (Graph.num_vertices g))
    (database_of g)

let approx_via_query_result ?budget ?rng ?exec ?engine ?rounds ~eps ~delta g =
  Ac_runtime.Error.guard (fun () ->
      approx_via_query ?budget ?rng ?exec ?engine ?rounds ~eps ~delta g)
