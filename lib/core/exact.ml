module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Tuple = Ac_relational.Tuple
module Hom = Ac_hom.Hom
module Budget = Ac_runtime.Budget

let brute_force ?(budget = Budget.none) q db =
  let n = Ecq.num_vars q in
  let u = Structure.universe_size db in
  let l = Ecq.num_free q in
  let assignment = Array.make n 0 in
  let seen = Tuple.Table.create 64 in
  let rec go i =
    if i = n then begin
      Budget.tick budget;
      if Ecq.satisfied_by q db assignment then
        Tuple.Table.replace seen (Array.sub assignment 0 l) ()
    end
    else
      for v = 0 to u - 1 do
        assignment.(i) <- v;
        go (i + 1)
      done
  in
  if u > 0 then go 0;
  Tuple.Table.length seen

let prepared_solver ?budget q db =
  Hom.prepare ~strategy:Hom.Backtracking ?budget (Assoc.hom_instance q db)

let by_hom_dp ?budget q db =
  if Ecq.num_existential q > 0 || Ecq.delta q <> [] then None
  else Some (Hom.count_dp ?budget (Assoc.hom_instance q db))

(* Enumerate solutions via the generic join over A(φ) → B(φ, D) (with
   complements for negated predicates), filter disequalities in the
   callback and collect distinct projections. *)
let answer_table ?budget q db =
  let solver = prepared_solver ?budget q db in
  let diseqs = Array.of_list (Ecq.delta q) in
  let l = Ecq.num_free q in
  let seen = Tuple.Table.create 256 in
  Hom.iter_solutions solver ~reuse:true ~diseqs ~f:(fun (sol : int array) ->
      Tuple.Table.replace seen (Array.sub sol 0 l) ();
      true);
  seen

let by_join_projection ?budget q db =
  Tuple.Table.length (answer_table ?budget q db)

let answers ?budget q db =
  Tuple.Table.fold (fun t () acc -> t :: acc) (answer_table ?budget q db) []

(* Best-effort count under a budget: enumerate distinct answers until the
   budget trips; the boolean is [true] when the enumeration completed (so
   the count is exact) and [false] when it was cut off (then the count is
   a lower bound — the planner's last-resort estimate). *)
let partial_count ?budget q db =
  let diseqs = Array.of_list (Ecq.delta q) in
  let l = Ecq.num_free q in
  let seen = Tuple.Table.create 256 in
  match
    let solver = prepared_solver ?budget q db in
    Hom.iter_solutions solver ~reuse:true ~diseqs ~f:(fun (sol : int array) ->
        Tuple.Table.replace seen (Array.sub sol 0 l) ();
        true)
  with
  | () -> (Tuple.Table.length seen, true)
  | exception Budget.Budget_exceeded _ -> (Tuple.Table.length seen, false)

(* Shared decision core: does [tau] (over the free variables) extend to a
   solution? *)
let is_answer_with q solver tau =
  let l = Ecq.num_free q in
  let diseqs = Array.of_list (Ecq.delta q) in
  let domains = Array.make (Ecq.num_vars q) None in
  for i = 0 to l - 1 do
    domains.(i) <- Some [| tau.(i) |]
  done;
  let found = ref false in
  Hom.iter_solutions solver ~domains ~reuse:true ~diseqs ~f:(fun _ ->
      found := true;
      false);
  !found

let is_answer ?budget q db tau =
  if Array.length tau <> Ecq.num_free q then
    invalid_arg "Exact.is_answer: wrong arity";
  is_answer_with q (prepared_solver ?budget q db) tau

let by_free_enumeration ?budget q db =
  let l = Ecq.num_free q in
  let u = Structure.universe_size db in
  let solver = prepared_solver ?budget q db in
  let tau = Array.make l 0 in
  let count = ref 0 in
  let decide () = if is_answer_with q solver tau then incr count in
  let rec go i =
    if i = l then decide ()
    else
      for v = 0 to u - 1 do
        tau.(i) <- v;
        go (i + 1)
      done
  in
  if l = 0 then decide () else if u > 0 then go 0;
  !count
