module Graph = Ac_workload.Graph
module Query_families = Ac_workload.Query_families

let query_of = Query_families.lihom

let database_of host =
  let s = Graph.to_structure ~symbol:"E" host in
  (* isolated pattern vertices are bound by a unary V covering the host *)
  for v = 0 to Graph.num_vertices host - 1 do
    Ac_relational.Structure.add_fact s "V" [| v |]
  done;
  s

let approx_count ?budget ?rng ?exec ?engine ?rounds ~eps ~delta ~pattern host =
  Fptras.approx_count ?budget ?rng ?exec ?engine ?rounds ~eps ~delta
    (query_of pattern) (database_of host)

let approx_count_result ?budget ?rng ?exec ?engine ?rounds ~eps ~delta ~pattern
    host =
  Ac_runtime.Error.guard (fun () ->
      approx_count ?budget ?rng ?exec ?engine ?rounds ~eps ~delta ~pattern host)

let exact_count ~pattern ~host =
  Exact.by_join_projection (query_of pattern) (database_of host)

let exact_count_brute ~pattern ~host =
  Graph.count_locally_injective_brute pattern host
