(** The [EdgeFree] oracle simulation of Lemma 22.

    The answer hypergraph [H(φ, D)] (Definition 24) has one vertex class
    [U_i(D)] per free variable and one hyperedge per answer. Lemma 30
    reduces [EdgeFree(H[V₁..V_ℓ])] (aligned parts) to homomorphism tests
    from [Â(φ)] to coloured targets; the implementation realises the hat
    structures' unary constraints as per-variable domains on the single
    [Hom] instance [A(φ) → B(φ, D)], which is the same set of constraints
    without materialising [B̂] for every colouring:

    - [P_i] (variable [x_i] confined to [S_i]) → free variable [i]'s
      domain is the part [V_i], existential domains are unrestricted;
    - [Rη]/[Bη] (colour classes) → for each disequality [η = {i, j}] and
      random colouring [f_η : U(D) → {r, b}], variable [i]'s domain keeps
      the [r]-coloured values and [j]'s the [b]-coloured ones.

    A query with any colouring admitting a homomorphism has an answer in
    the box (one-sided error): [rounds] random colourings give failure
    probability [(1 - 4^{-|Δ|})^rounds] per oracle call, matching the
    [Q = ⌈ln(2 T ℓ! / δ)⌉ · 4^{|Δ|}] budget in the proof of Lemma 22. *)

(** Which [Hom] engine backs the oracle. [Tree_dp] is Theorem 5's
    (bounded treewidth, Theorem 31); [Generic] is Theorem 13's stand-in
    (worst-case-optimal join, substitution for Theorem 36); [Direct]
    skips colour-coding entirely and checks disequalities inside the join
    — no width guarantee, used as an ablation baseline. *)
type engine = Tree_dp | Generic | Direct

type t

(** Statistics: homomorphism tests issued so far. *)
val hom_calls : t -> int

(** Oracle calls issued so far. *)
val oracle_calls : t -> int

(** [create ~rng ~rounds ~engine φ db]. [rounds] is the {e base}
    colouring budget: an oracle call whose propagation leaves [Δ']
    unresolved disequalities uses [rounds · 4^{|Δ'|}] random colourings
    (capped at 65536; the paper's budget is the [⌈ln(2Tℓ!/δ)⌉] factor of
    Lemma 22). Disequalities with a pinned endpoint or provably disjoint
    endpoint domains are resolved deterministically first, so most oracle
    calls near the leaves of the splitting enumeration pay no colouring
    rounds at all. Ignored by [Direct] and when [φ] has no
    disequalities. [probe_budget] (default 1024) enables the colour-free
    probe: the surviving disequalities are pushed into one generic-join
    search (see {!Ac_join.Generic_join.run}), whose first surviving
    witness — or exhaustion — settles the box {e exactly}, so no
    colouring rounds run at all; [0] disables the probe, leaving the
    pure Lemma 22 colouring (used by the A1 ablation). [budget], when given, is the
    cooperative-cancellation hook: it is ticked on every oracle call,
    every colouring round and (through {!Ac_hom.Hom}) every
    search/DP step, so a tripped budget aborts the oracle with
    [Ac_runtime.Budget.Budget_exceeded] mid-loop. [span], when given, is
    the parent under which every oracle call records an ["oracle"]
    tracing span (capped by the collector; one branch per call when
    absent) — the bottom level of the plan → rung → trial → oracle-call
    hierarchy. *)
val create :
  ?rng:Random.State.t ->
  ?rounds:int ->
  ?probe_budget:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?span:Ac_obs.Trace.span option ->
  engine:engine ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  t

(** {!create} wrapped in {!Ac_runtime.Error.guard}: the result form for
    public callers ([create] itself is the internal raising variant). *)
val create_result :
  ?rng:Random.State.t ->
  ?rounds:int ->
  ?probe_budget:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?span:Ac_obs.Trace.span option ->
  engine:engine ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  (t, Ac_runtime.Error.t) result

(** The paper's colouring budget [⌈ln(2 T ℓ! / δ)⌉ · 4^{|Δ|}]. *)
val rounds_for :
  delta:float -> ell:int -> num_diseq:int -> expected_oracle_calls:int -> int

(** The aligned [EdgeFree] oracle over the ℓ classes (class [i] =
    values of free variable [i]). *)
val aligned_oracle : t -> Ac_dlm.Partite.aligned_oracle

(** Same oracle with the probe's RNG passed per call
    ({!Ac_dlm.Edge_count.seeded_oracle}): the form the parallel trial
    engine needs, so each trial's colourings come from its own stream.
    The oracle value itself is safe to share across domains — the
    prepared solver and relations are read-only after {!create}, the
    call counters are atomic, and the baked [budget] is ticked from all
    domains (racy counts, but trips reach every domain). *)
val seeded_oracle : t -> Ac_dlm.Edge_count.seeded_oracle

(** The partite space of [H(φ, D)]: ℓ classes of size [|U(D)|]. Raises
    [Invalid_argument] for Boolean queries (ℓ = 0) — see
    {!Fptras.approx_count}, which handles them separately. *)
val space : t -> Ac_dlm.Partite.space

(** Decision with explicit free-variable domains — [false] iff edge-free.
    Exposed for the Boolean-query path and for tests. [rng] (default:
    the oracle's own state) supplies the colouring randomness for this
    one probe. *)
val has_answer_in_box : ?rng:Random.State.t -> t -> int array array -> bool
