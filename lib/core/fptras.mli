(** The FPTRAS for counting answers (Theorems 5 and 13 via Lemma 22).

    The pipeline is exactly the paper's: the answers of [(φ, D)] are the
    hyperedges of the ℓ-partite answer hypergraph [H(φ, D)]
    (Definition 24, Observation 25); the Dell–Lapinskas–Meeks edge-count
    layer ({!Ac_dlm.Edge_count}) approximates their number through the
    [EdgeFree] oracle, and the oracle is simulated by colour-coded
    homomorphism tests ({!Colour_oracle}, Lemmas 22/30).

    Engine choice = theorem choice:
    - [Tree_dp] (default): Theorem 5 — [Hom] solved by tree-decomposition
      DP, fixed-parameter tractable for bounded-treewidth bounded-arity
      ECQs.
    - [Generic]: Theorem 13 — [Hom] solved by the worst-case-optimal
      join, covering bounded adaptive width DCQs (DESIGN.md
      substitution 2).
    - [Direct]: ablation — disequalities checked inside the join, no
      colour-coding and no width guarantee. *)

type result = {
  estimate : float;
  exact : bool;        (** the edge-count layer answered exactly *)
  level : int;         (** subsampling level used by the estimator *)
  repetitions : int;   (** median repetitions the estimator ran *)
  oracle_calls : int;  (** [EdgeFree] oracle invocations *)
  hom_calls : int;     (** homomorphism tests behind them *)
}

(** [(ε, δ)]-approximation of [|Ans(φ, D)|]. Boolean queries (ℓ = 0) are
    answered by a single oracle decision (the count is 0 or 1).
    [rounds] overrides the colouring budget per oracle call;
    [probe_budget] the witness pre-pass (see {!Colour_oracle.create});
    [budget] is the cooperative-cancellation hook threaded into every
    oracle call — a tripped budget aborts with
    [Ac_runtime.Budget.Budget_exceeded].

    With [exec], the estimator's median repetitions fan out over the
    engine's domains ({!Ac_dlm.Edge_count.estimate_exec}) and {e all}
    randomness — colourings included — derives from the engine's seed
    ([rng] is ignored), so the result is bit-identical for any jobs
    count. Without it, [rng] drives everything sequentially, as
    before. *)
val approx_count :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?exec:Ac_exec.Engine.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  ?probe_budget:int ->
  eps:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  result

(** Exact count through the same oracle, by full splitting enumeration —
    demonstrates completeness of the oracle reduction (used by tests; cost
    grows linearly with the answer count). Randomised colourings make
    this "exact up to the one-sided colouring failure probability"; use
    [rounds] to push it down. *)
val exact_count_via_oracle :
  ?budget:Ac_runtime.Budget.t ->
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  result
