(** Unions of extended conjunctive queries (§6, Karp–Luby).

    A UCQ is a non-empty list of ECQs sharing the number of free
    variables; its answers are the union of the members' answer sets. *)

type t = private {
  disjuncts : Ac_query.Ecq.t list;
  num_free : int;
}

(** Raises [Invalid_argument] on an empty list or mismatched free-variable
    counts. *)
val make : Ac_query.Ecq.t list -> t

val disjuncts : t -> Ac_query.Ecq.t list
val num_free : t -> int

(** Parses [";"]-separated queries, e.g.
    ["ans(x) :- E(x, y); ans(x) :- R(x, y)"]. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit

(** Exact [|⋃ Ans(φ_i, D)|] by enumeration. *)
val exact_count : t -> Ac_relational.Structure.t -> int

(** Karp–Luby with the fully approximate pipeline (FPTRAS cardinalities,
    JVV draws, oracle membership). Raising variant — see
    {!approx_count_result}. *)
val approx_count :
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  ?kl_rounds:int ->
  eps:float ->
  delta:float ->
  t ->
  Ac_relational.Structure.t ->
  float

(** {!approx_count} with all failures as typed errors — the public
    form. *)
val approx_count_result :
  ?rng:Random.State.t ->
  ?engine:Colour_oracle.engine ->
  ?rounds:int ->
  ?kl_rounds:int ->
  eps:float ->
  delta:float ->
  t ->
  Ac_relational.Structure.t ->
  (float, Ac_runtime.Error.t) result

(** Is the tuple an answer of some disjunct? *)
val is_answer : t -> Ac_relational.Structure.t -> int array -> bool
