module Ecq = Ac_query.Ecq

type t = {
  disjuncts : Ecq.t list;
  num_free : int;
}

let make = function
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: rest as disjuncts ->
      let num_free = Ecq.num_free q in
      if not (List.for_all (fun q' -> Ecq.num_free q' = num_free) rest) then
        invalid_arg "Ucq.make: disjuncts must share their free variables";
      { disjuncts; num_free }

let disjuncts u = u.disjuncts
let num_free u = u.num_free

let parse text =
  let pieces =
    String.split_on_char ';' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  make (List.map Ecq.parse pieces)

let pp fmt u =
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i q ->
      if i > 0 then Format.fprintf fmt "@,∪ ";
      Ecq.pp fmt q)
    u.disjuncts;
  Format.pp_close_box fmt ()

let exact_count u db = Sampling.union_count_exact u.disjuncts db

let approx_count ?rng ?engine ?rounds ?kl_rounds ~eps ~delta u db =
  Sampling.union_count_approx ?rng ?engine ?rounds ?kl_rounds ~eps ~delta
    u.disjuncts db

let approx_count_result ?rng ?engine ?rounds ?kl_rounds ~eps ~delta u db =
  Ac_runtime.Error.guard (fun () ->
      approx_count ?rng ?engine ?rounds ?kl_rounds ~eps ~delta u db)

let is_answer u db tau = List.exists (fun q -> Exact.is_answer q db tau) u.disjuncts
