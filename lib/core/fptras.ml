module Ecq = Ac_query.Ecq
module Partite = Ac_dlm.Partite
module Edge_count = Ac_dlm.Edge_count
module Budget = Ac_runtime.Budget
module Engine = Ac_exec.Engine
module Trace = Ac_obs.Trace

type result = {
  estimate : float;
  exact : bool;
  level : int;
  repetitions : int;
  oracle_calls : int;
  hom_calls : int;
}

let boolean_result ?rng oracle =
  let found = Colour_oracle.has_answer_in_box ?rng oracle [||] in
  {
    estimate = (if found then 1.0 else 0.0);
    exact = true;
    level = 0;
    repetitions = 1;
    oracle_calls = Colour_oracle.oracle_calls oracle;
    hom_calls = Colour_oracle.hom_calls oracle;
  }

let of_edge_count oracle (r : Edge_count.result) =
  {
    estimate = r.Edge_count.value;
    exact = r.Edge_count.exact;
    level = r.Edge_count.level;
    repetitions = r.Edge_count.repetitions;
    oracle_calls = Colour_oracle.oracle_calls oracle;
    hom_calls = Colour_oracle.hom_calls oracle;
  }

let approx_count ?budget ?rng ?exec ?(engine = Colour_oracle.Tree_dp) ?rounds
    ?probe_budget ~eps ~delta q db =
  match exec with
  | None ->
      (* Sequential path: one global RNG drives the oracle and the
         estimator, exactly as before the engine existed. *)
      let rng =
        match rng with Some r -> r | None -> Random.State.make_self_init ()
      in
      let oracle =
        Colour_oracle.create ~rng ?rounds ?probe_budget ?budget ~engine q db
      in
      if Ecq.num_free q = 0 then boolean_result oracle
      else
        let space = Colour_oracle.space oracle in
        let aligned = Colour_oracle.aligned_oracle oracle in
        of_edge_count oracle (Edge_count.estimate ~rng ~epsilon:eps ~delta space aligned)
  | Some exec ->
      (* Engine path: the oracle's baked rng is never consulted — every
         probe receives the stream of the trial (or sequential phase)
         that issued it, so the estimate is bit-identical for any jobs
         count. [rng] is ignored here by construction: randomness must
         come from the engine's seed alone. *)
      let parent = Engine.span exec in
      let oracle =
        Colour_oracle.create
          ~rng:(Engine.state exec ~stream:0)
          ?rounds ?probe_budget ?budget ~span:parent ~engine q db
      in
      if Ecq.num_free q = 0 then
        boolean_result ~rng:(Engine.state exec ~stream:0) oracle
      else
        let space = Colour_oracle.space oracle in
        let seeded = Colour_oracle.seeded_oracle oracle in
        let estimate exec =
          Edge_count.estimate_exec ~exec ?budget ~epsilon:eps ~delta space
            seeded
        in
        of_edge_count oracle
          (match parent with
          | None -> estimate exec
          | Some _ ->
              (* Phase span for the DLM edge-count loop; its tick delta
                 answers "which phase burned the budget". Trials nest
                 under it via the re-spanned engine context. *)
              let sp = Trace.child parent "fptras:estimate" in
              let ticks () =
                match budget with Some b -> Budget.ticks b | None -> 0
              in
              let t0 = ticks () in
              Fun.protect
                ~finally:(fun () -> Trace.stop ~ticks:(ticks () - t0) sp)
                (fun () -> estimate (Engine.with_span exec sp)))

let exact_count_via_oracle ?budget ?rng ?(engine = Colour_oracle.Tree_dp)
    ?rounds q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let oracle = Colour_oracle.create ~rng ?rounds ?budget ~engine q db in
  if Ecq.num_free q = 0 then boolean_result oracle
  else begin
    let space = Colour_oracle.space oracle in
    let aligned = Colour_oracle.aligned_oracle oracle in
    let count = Edge_count.exact_count space aligned () in
    {
      estimate = float_of_int count;
      exact = true;
      level = 0;
      repetitions = 1;
      oracle_calls = Colour_oracle.oracle_calls oracle;
      hom_calls = Colour_oracle.hom_calls oracle;
    }
  end
