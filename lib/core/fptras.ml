module Ecq = Ac_query.Ecq
module Partite = Ac_dlm.Partite
module Edge_count = Ac_dlm.Edge_count
module Budget = Ac_runtime.Budget

type result = {
  estimate : float;
  exact : bool;
  level : int;
  oracle_calls : int;
  hom_calls : int;
}

let boolean_result oracle =
  let found = Colour_oracle.has_answer_in_box oracle [||] in
  {
    estimate = (if found then 1.0 else 0.0);
    exact = true;
    level = 0;
    oracle_calls = Colour_oracle.oracle_calls oracle;
    hom_calls = Colour_oracle.hom_calls oracle;
  }

let approx_count ?rng ?(engine = Colour_oracle.Tree_dp) ?rounds ?probe_budget
    ?budget ~epsilon ~delta q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let oracle =
    Colour_oracle.create ~rng ?rounds ?probe_budget ?budget ~engine q db
  in
  if Ecq.num_free q = 0 then boolean_result oracle
  else begin
    let space = Colour_oracle.space oracle in
    let aligned = Colour_oracle.aligned_oracle oracle in
    let r = Edge_count.estimate ~rng ~epsilon ~delta space aligned in
    {
      estimate = r.Edge_count.value;
      exact = r.Edge_count.exact;
      level = r.Edge_count.level;
      oracle_calls = Colour_oracle.oracle_calls oracle;
      hom_calls = Colour_oracle.hom_calls oracle;
    }
  end

let exact_count_via_oracle ?rng ?(engine = Colour_oracle.Tree_dp) ?rounds
    ?budget q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let oracle = Colour_oracle.create ~rng ?rounds ?budget ~engine q db in
  if Ecq.num_free q = 0 then boolean_result oracle
  else begin
    let space = Colour_oracle.space oracle in
    let aligned = Colour_oracle.aligned_oracle oracle in
    let count = Edge_count.exact_count space aligned () in
    {
      estimate = float_of_int count;
      exact = true;
      level = 0;
      oracle_calls = Colour_oracle.oracle_calls oracle;
      hom_calls = Colour_oracle.hom_calls oracle;
    }
  end
