(** The unified entry point.

    Everything the CLI (and any embedding application) needs is behind
    two calls: {!run} for counting and {!sample} for answer sampling.
    A {!request} names the query, the database, the accuracy targets
    and the execution envelope (method, seed, jobs, budget, strictness,
    fault injection); a {!response} carries the estimate together with
    everything needed to interpret and replay it (plan, rung,
    degradation trail, resolved seed, jobs, tick count, wall time).

    {b Determinism.} For a fixed [seed], estimates are bit-identical
    for {e any} [jobs] value: all randomness derives from per-trial
    SplitMix streams of the seed ({!Ac_exec.Seeds}) and trial results
    are combined in index order — [jobs] is purely a throughput knob.

    {b Errors.} No exception escapes {!run}/{!sample}; every failure is
    an [Ac_runtime.Error.t] ([Error.exit_code] gives the stable CLI
    exit code). The raising entry points of the inner layers
    ([Fpras.approx_count], [Fptras.approx_count], [Sampling.sample],
    …) remain available as documented internal variants. *)

type method_ =
  | Auto                              (** planner + governed fallback chain *)
  | Fpras                             (** Theorem 16 (CQs only) *)
  | Fptras of Colour_oracle.engine    (** Theorems 5 / 13 by engine *)
  | Exact                             (** exact join + projection *)
  | Brute                             (** brute-force enumeration *)

val method_name : method_ -> string

(** Canonical method spelling — the single codec shared by [bin/acq],
    the wire protocol and the bench harness. Every output of
    {!method_to_string} round-trips through {!method_of_string};
    [method_name] is the historical alias for {!method_to_string}. *)
val method_to_string : method_ -> string

(** Parse a method name (case-insensitive, surrounding whitespace
    ignored). Accepts the canonical spellings plus the short aliases
    ["fptras"], ["tree-dp"], ["generic"], ["direct"]; [None] for
    anything else. *)
val method_of_string : string -> method_ option

type request = {
  query : Ac_query.Ecq.t;
  db : Ac_relational.Structure.t;
  eps : float;            (** accuracy target (default 0.25) *)
  delta : float;          (** failure probability (default 0.1) *)
  method_ : method_;      (** default [Auto] *)
  seed : int option;      (** [None]: fresh seed, logged when [verbose] *)
  jobs : int option;      (** [None]: {!Ac_exec.Engine.default_jobs} *)
  budget : Ac_runtime.Budget.t option;
  strict : bool;          (** [Auto]: fail fast instead of degrading *)
  verbose : bool;         (** stderr diagnostics *)
  chaos : Ac_runtime.Chaos.t option;  (** fault injection (tests) *)
  trace : Ac_obs.Trace.t option;
      (** span collector; [None] (default) disables tracing — the whole
          observability layer then costs one branch per layer, and
          estimates are bit-identical either way *)
}

(** The request builder: [make query db] carries the documented
    defaults, each [with_*] setter replaces one field, and the record
    pipes through [|>] — call sites name exactly the knobs they turn:

    {[
      Api.Request.make query db
      |> Api.Request.with_eps 0.1
      |> Api.Request.with_seed (Some 42)
    ]}

    Behaviour is identical to the optional-argument {!request}
    constructor (which is now a veneer over this module and remains
    supported). *)
module Request : sig
  val make : Ac_query.Ecq.t -> Ac_relational.Structure.t -> request
  val with_eps : float -> request -> request
  val with_delta : float -> request -> request
  val with_method : method_ -> request -> request
  val with_seed : int option -> request -> request
  val with_jobs : int option -> request -> request
  val with_budget : Ac_runtime.Budget.t option -> request -> request
  val with_strict : bool -> request -> request
  val with_verbose : bool -> request -> request
  val with_chaos : Ac_runtime.Chaos.t option -> request -> request
  val with_trace : Ac_obs.Trace.t option -> request -> request
end

(** Request builder with the documented defaults; positional arguments
    are the query and the database. Thin veneer over {!Request};
    prefer the builder in new code. *)
val request :
  ?eps:float ->
  ?delta:float ->
  ?method_:method_ ->
  ?seed:int ->
  ?jobs:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?strict:bool ->
  ?verbose:bool ->
  ?chaos:Ac_runtime.Chaos.t ->
  ?trace:Ac_obs.Trace.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  request

type telemetry = {
  seed : int;        (** the seed actually used — pass back to replay *)
  jobs : int;        (** the jobs count actually used *)
  ticks : int;       (** budget work ticks at completion *)
  elapsed_ms : float;
  trace : Ac_obs.Trace.summary option;
      (** per-name span aggregates (counts, wall time, tick
          attribution — e.g. which ["rung:…"] burned the budget) when
          the request carried a collector; [None] otherwise *)
}

type response = {
  estimate : float;
  exact : bool;                        (** the value is an exact count *)
  decision : Planner.decision option;  (** the plan ([Auto] only) *)
  rung : Planner.rung option;          (** producing rung ([Auto] only) *)
  guarantee : bool;   (** the (ε, δ) guarantee (or exactness) holds *)
  degraded : bool;    (** a fallback rung produced the value *)
  eps_used : float;
      (** the ε the answer was computed at — the requested ε unless a
          budget-driven ladder step relaxed it ([Auto], costed path) *)
  attempts : Planner.attempt list;     (** failed rungs, in order *)
  report : Ac_analysis.Report.t;
      (** the static analysis (classification + lint diagnostics, with
          the database-aware checks, and the instantiated cost model —
          [report.cost] drives the [Auto] rung order); on the [Auto]
          path the plan is read off this report's classification *)
  telemetry : telemetry;
}

(** Count. The resolved seed is logged to stderr {e before} any
    computation starts (when [verbose] and self-initialised), so even a
    run that stalls can be replayed.

    [report], when given, must be the result of
    [Ac_analysis.Report.analyze ~db r.query] — callers that analyse
    once and serve many requests (the [acqd] plan cache) pass it to
    skip the static analysis, including the width computations; the
    response is identical either way. *)
val run :
  ?report:Ac_analysis.Report.t ->
  request ->
  (response, Ac_runtime.Error.t) result

(** The sampling counterpart of {!response} — estimate-free, but
    carrying the same interpretation context. *)
type sample_response = {
  draws : int array option array;
      (** draw [i] is [None] when the JVV walk failed to pin an answer *)
  degraded : bool;  (** some draw came back [None] *)
  report : Ac_analysis.Report.t;
  telemetry : telemetry;
}

(** Draw [draws] (default 1) approximately-uniform answers via the JVV
    sampler, fanned out over the request's jobs
    ({!Sampling.sample_many}); [method_] selects the oracle engine when
    it is [Fptras _] (otherwise the tree-DP engine). [report] plays the
    same role as in {!run}. *)
val sample :
  ?report:Ac_analysis.Report.t ->
  ?draws:int ->
  request ->
  (sample_response, Ac_runtime.Error.t) result
