(** The FPRAS for #CQ with bounded fractional hypertreewidth (Theorem 16).

    Pipeline, exactly as in §5.2:
    + a {e nice} tree decomposition of [H(φ)] (Lemma 43 /
      {!Ac_hypergraph.Nice_decomposition}); every bag's fractional edge
      cover number is at most that of the input decomposition
      (Observation 40), so bag solution sets stay polynomial for bounded
      fhw;
    + per-bag solution sets [Sol(φ, D, B_t)] (Definition 47) enumerated
      within the AGM bound by the generic join (Lemma 48 / Grohe–Marx);
    + the tree automaton of Lemma 52 whose accepted labelings of the
      decomposition's shape are in bijection with [Ans(φ, D)];
    + approximate counting of accepted labelings with the ACJR sketch
      engine (Lemma 51 / {!Ac_automata.Acjr}), or exact counting with the
      subset-construction DP for validation. *)

(** [Sol(φ, D, B)] (Definition 47): assignments over the sorted variable
    list of [bag], each the restriction of tuples consistent with every
    atom. [None] when some relation of [φ] is empty in [db] (then
    [Ans(φ, D) = ∅]). *)
val bag_solutions :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  Ac_hypergraph.Bitset.t ->
  int array list option

type build = {
  automaton : Ac_automata.Tree_automaton.t;
  shape : Ac_automata.Ltree.shape;
  num_states : int;
  num_symbols : int;
  num_nodes : int;
  max_bag_solutions : int;
}

(** Build the Lemma 52 automaton for a CQ. [None] when the answer count
    is trivially 0. Raises [Invalid_argument] on non-CQ input; a tripped
    [budget] aborts with [Ac_runtime.Budget.Budget_exceeded]. *)
val build :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  build option

(** Median repetitions giving confidence [1 - delta] for the sketch
    estimator ([max 3 (2⌈1.25 ln(1/δ)⌉ + 1)]). *)
val repetitions_for : delta:float -> int

(** Approximate [|Ans(φ, D)|] end to end (the Theorem 16 FPRAS).
    [budget] governs both the automaton construction and the sketch
    propagation (overriding [config]'s own budget field). Accuracy knobs
    live in [config] (sketch size ~ 1/ε²).

    With [exec], a median over [repetitions] independent sketch
    propagations (default: the δ=0.05 batch of {!repetitions_for}) is
    fanned out over the engine's domains via
    {!Ac_automata.Acjr.estimate_median}; [config]'s [rng] is overridden
    by per-trial streams, so the result is bit-identical for any jobs
    count. Without [exec], a single propagation runs sequentially under
    [config]'s own rng — the legacy cost. *)
val approx_count :
  ?budget:Ac_runtime.Budget.t ->
  ?config:Ac_automata.Acjr.config ->
  ?exec:Ac_exec.Engine.t ->
  ?repetitions:int ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  float

(** Exact count through the automaton (exponential in the number of
    states; validation on small instances — checks the Lemma 52
    bijection). *)
val exact_count_automaton :
  ?budget:Ac_runtime.Budget.t ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int

(** Approximately-uniform answer sampling via the automaton (the §6
    extension backed by ACJR's sampler): returns an answer tuple over the
    free variables. *)
val sample_answer :
  ?budget:Ac_runtime.Budget.t ->
  ?config:Ac_automata.Acjr.config ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  int array option
