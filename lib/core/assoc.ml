module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation

let negated_symbol name = "~" ^ name

let source q =
  let s = Structure.create ~universe_size:(Ecq.num_vars q) in
  List.iter
    (function
      | Ecq.Atom (name, vars) -> Structure.add_fact s name (Array.copy vars)
      | Ecq.Neg_atom (name, vars) ->
          Structure.add_fact s (negated_symbol name) (Array.copy vars)
      | Ecq.Diseq _ -> ())
    (Ecq.atoms q);
  s

let target q db =
  if not (Ecq.compatible_with q db) then
    invalid_arg "Assoc.target: sig(phi) is not contained in sig(D)";
  (* Seal the database and share its columnar relations with the target
     structure — a target per request used to copy every fact, which
     also threw away the relations' memoized sorted projections between
     requests. Negated symbols become lazy complement views
     (Definition 20): membership and iteration over [U^a \ R] without
     ever materializing it — the ν·|U|^a cost of Observation 21 is paid
     only by algorithms that actually enumerate the complement. *)
  let db = Structure.seal db in
  let u = Structure.universe_size db in
  let out = Structure.create ~universe_size:u in
  let add_positive = Hashtbl.create 8 and add_negative = Hashtbl.create 8 in
  List.iter
    (function
      | Ecq.Atom (name, _) -> Hashtbl.replace add_positive name ()
      | Ecq.Neg_atom (name, _) -> Hashtbl.replace add_negative name ()
      | Ecq.Diseq _ -> ())
    (Ecq.atoms q);
  Hashtbl.iter
    (fun name () -> Structure.install out name (Structure.relation db name))
    add_positive;
  Hashtbl.iter
    (fun name () ->
      let rel = Structure.relation db name in
      Structure.install out (negated_symbol name)
        (Relation.complement_view ~universe_size:u rel))
    add_negative;
  Structure.seal out

let hom_instance q db =
  { Ac_hom.Hom.source = source q; target = target q db }

type colouring = ((int * int) * bool array) list

let random_colouring ~rng q ~universe_size =
  List.map
    (fun eta ->
      (eta, Array.init universe_size (fun _ -> Random.State.bool rng)))
    (Ecq.delta q)

let hat_source q =
  let s = source q in
  let n = Ecq.num_vars q in
  for i = 0 to n - 1 do
    Structure.add_fact s (Printf.sprintf "P%d" i) [| i |]
  done;
  List.iter
    (fun (i, j) ->
      Structure.add_fact s (Printf.sprintf "R%d_%d" i j) [| i |];
      Structure.add_fact s (Printf.sprintf "B%d_%d" i j) [| j |])
    (Ecq.delta q);
  s

let hat_target q db ~parts colours =
  let u = Structure.universe_size db in
  let n = Ecq.num_vars q in
  let l = Ecq.num_free q in
  if Array.length parts <> l then invalid_arg "Assoc.hat_target: wrong part count";
  let b = target q db in
  let encode w i = (i * u) + w in
  let out = Structure.create ~universe_size:(n * u) in
  (* S_i: the permitted pair values of variable i *)
  let s_i =
    Array.init n (fun i ->
        if i < l then Array.to_list parts.(i) else List.init u Fun.id)
  in
  (* lifted relations: all placements of a B-fact into classes *)
  List.iter
    (fun name ->
      let rel = Structure.relation b name in
      let arity = Relation.arity rel in
      Structure.declare out name ~arity;
      let rec place tuple idx chosen =
        if idx = arity then
          Structure.add_fact out name
            (Array.of_list (List.rev_map (fun (w, i) -> encode w i) chosen))
        else
          for i = 0 to n - 1 do
            place tuple (idx + 1) ((tuple.(idx), i) :: chosen)
          done
      in
      Relation.iter (fun tuple -> place tuple 0 []) rel)
    (Structure.symbols b);
  (* P_i = S_i *)
  for i = 0 to n - 1 do
    Structure.declare out (Printf.sprintf "P%d" i) ~arity:1;
    List.iter
      (fun w -> Structure.add_fact out (Printf.sprintf "P%d" i) [| encode w i |])
      s_i.(i)
  done;
  (* Rη / Bη from the colouring, over the whole pair universe *)
  List.iter
    (fun ((i, j), f) ->
      let rname = Printf.sprintf "R%d_%d" i j
      and bname = Printf.sprintf "B%d_%d" i j in
      Structure.declare out rname ~arity:1;
      Structure.declare out bname ~arity:1;
      for cls = 0 to n - 1 do
        for w = 0 to u - 1 do
          if f.(w) then Structure.add_fact out rname [| encode w cls |]
          else Structure.add_fact out bname [| encode w cls |]
        done
      done)
    colours;
  Structure.seal out
