module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Chaos = Ac_runtime.Chaos
module Entropy = Ac_runtime.Entropy
module Classification = Ac_analysis.Classification
module Classify = Ac_analysis.Classify
module Cost = Ac_analysis.Cost
module Ladder = Ac_analysis.Ladder
module Engine = Ac_exec.Engine
module Trace = Ac_obs.Trace
module Metrics = Ac_obs.Metrics

type algorithm =
  | Use_fpras
  | Use_fptras of Colour_oracle.engine
  | Use_exact

type query_class = Cq | Dcq | Ecq_full

type decision = {
  algorithm : algorithm;
  query_class : query_class;
  treewidth : int;
  fhw : float;
  exact_widths : bool;
  reason : string;
  classification : Classification.t;
}

(* The decision is a pure function of the classification: the regime
   picks the algorithm, the reason is pretty-printed from the record.
   Nothing is re-derived here, so plan output, [acq explain] and
   [acq lint] can never disagree. *)
let decision_of_classification (c : Classification.t) =
  let query_class =
    match c.Classification.query_class with
    | Classification.Cq -> Cq
    | Classification.Dcq -> Dcq
    | Classification.Ecq_full -> Ecq_full
  in
  let algorithm =
    match c.Classification.regime with
    | Classification.Exact_empty -> Use_exact
    | Classification.Fpras_ta -> Use_fpras
    | Classification.Fptras_tree_dp -> Use_fptras Colour_oracle.Tree_dp
    | Classification.Fptras_generic_join -> Use_fptras Colour_oracle.Generic
  in
  {
    algorithm;
    query_class;
    treewidth = c.Classification.treewidth;
    fhw = c.Classification.fhw;
    exact_widths = c.Classification.exact_widths;
    reason = Classification.describe c;
    classification = c;
  }

let plan q = decision_of_classification (Classify.classify q)

let plan_result q = Error.guard (fun () -> plan q)

(* Self-init draws a seed explicitly so [verbose] can log it: a governed
   run that degrades on one machine must be replayable elsewhere. *)
let make_rng ?rng ~verbose () =
  match rng with
  | Some r -> r
  | None ->
      let seed = Entropy.fresh_seed () in
      if verbose then
        Printf.eprintf "planner: self-init rng seed = %d (pass it back to replay)\n%!" seed;
      Random.State.make [| seed |]

let mismatch_message q db =
  let bad =
    List.filter_map
      (fun (name, arity) ->
        if not (Structure.mem_symbol db name) then
          Some (Printf.sprintf "%s/%d missing from the database" name arity)
        else
          let a = Structure.arity_of db name in
          if a <> arity then
            Some
              (Printf.sprintf "%s has arity %d in the query but %d in the database"
                 name arity a)
          else None)
      (Ecq.signature q)
  in
  "query signature not contained in the database signature: "
  ^ String.concat "; " bad

(* With [exec], all randomness comes from the engine's seed: the Fpras
   rung runs a median batch of sketch repetitions, the Fptras rungs hand
   per-trial streams to the edge-count layer, and [rng] is bypassed.
   [delta] sizes the Fpras median batch. *)
let run_decision ~rng ?budget ?exec ~eps ~delta d q db =
  match d.algorithm with
  | Use_fpras -> (
      match exec with
      | None ->
          let config =
            { (Ac_automata.Acjr.default_config ()) with Ac_automata.Acjr.rng }
          in
          Fpras.approx_count ?budget ~config q db
      | Some exec ->
          Fpras.approx_count ?budget ~exec
            ~repetitions:(Fpras.repetitions_for ~delta) q db)
  | Use_fptras engine ->
      (Fptras.approx_count ?budget ~rng ?exec ~engine ~eps ~delta q db)
        .Fptras.estimate
  | Use_exact -> float_of_int (Exact.by_join_projection ?budget q db)

let count ?budget ?rng ?exec ?(verbose = false) ~eps ~delta q db =
  let rng = make_rng ?rng ~verbose:(verbose && exec = None) () in
  let d = plan q in
  if verbose then Printf.eprintf "planner: %s\n%!" d.reason;
  let value = run_decision ~rng ?budget ?exec ~eps ~delta d q db in
  (value, d)

let count_result ?budget ?rng ?exec ?verbose ~eps ~delta q db =
  if not (Ecq.compatible_with q db) then
    Error (Error.Signature_mismatch (mismatch_message q db))
  else
    match
      Error.guard (fun () -> count ?budget ?rng ?exec ?verbose ~eps ~delta q db)
    with
    | Ok (v, d) when not (Float.is_finite v) ->
        Error
          (Error.Numeric_overflow
             (Printf.sprintf "estimate is %h (plan: %s)" v d.reason))
    | other -> other

(* Governed execution *)

type rung = Fpras_rung | Exact_rung | Tree_dp_rung | Generic_rung | Partial_rung

let rung_name = function
  | Fpras_rung -> "fpras"
  | Exact_rung -> "exact"
  | Tree_dp_rung -> "tree-dp"
  | Generic_rung -> "generic-join"
  | Partial_rung -> "partial"

type attempt = { rung : rung; error : Error.t }

type governed = {
  estimate : float;
  rung : rung;
  guarantee : bool;
  degraded : bool;
  eps_used : float;
  attempts : attempt list;
  decision : decision;
}

let rung_of_cost = function
  | Cost.Fpras -> Fpras_rung
  | Cost.Exact -> Exact_rung
  | Cost.Tree_dp -> Tree_dp_rung
  | Cost.Generic_join -> Generic_rung
  | Cost.Partial -> Partial_rung

let planned_rung d =
  match d.algorithm with
  | Use_fpras -> Fpras_rung
  | Use_fptras Colour_oracle.Tree_dp -> Tree_dp_rung
  | Use_fptras (Colour_oracle.Generic | Colour_oracle.Direct) -> Generic_rung
  | Use_exact -> Exact_rung

(* Stable per-rung ordinal, used to derive an independent engine seed
   for each rung: a degraded retry must not replay the failed rung's
   random choices. *)
let rung_ordinal = function
  | Fpras_rung -> 0
  | Exact_rung -> 1
  | Tree_dp_rung -> 2
  | Generic_rung -> 3
  | Partial_rung -> 4

(* Returns (estimate, guarantee-held). Only [Partial_rung] can complete
   without the guarantee; every other rung either meets (ε, δ) — or
   better, exactness — or raises. *)
let run_rung ~rng ~budget ?exec ~eps ~delta rung q db =
  let exec = Option.map (fun e -> Engine.split e (rung_ordinal rung)) exec in
  match rung with
  | Fpras_rung -> (
      match exec with
      | None ->
          let config =
            { (Ac_automata.Acjr.default_config ()) with Ac_automata.Acjr.rng }
          in
          (Fpras.approx_count ~budget ~config q db, true)
      | Some exec ->
          ( Fpras.approx_count ~budget ~exec
              ~repetitions:(Fpras.repetitions_for ~delta) q db,
            true ))
  | Exact_rung -> (float_of_int (Exact.by_join_projection ~budget q db), true)
  | Tree_dp_rung ->
      ( (Fptras.approx_count ~budget ~rng ?exec ~engine:Colour_oracle.Tree_dp
           ~eps ~delta q db)
          .Fptras.estimate,
        true )
  | Generic_rung ->
      ( (Fptras.approx_count ~budget ~rng ?exec ~engine:Colour_oracle.Generic
           ~eps ~delta q db)
          .Fptras.estimate,
        true )
  | Partial_rung ->
      let n, completed = Exact.partial_count ~budget q db in
      (float_of_int n, completed)

(* Governed-execution metrics. Counters are get-or-created per attempt —
   a mutex-guarded table lookup, negligible next to running a rung. *)
let observe_attempt rung outcome =
  Metrics.incr
    (Metrics.counter Metrics.global "acq_rung_attempts_total"
       ~help:"Planner rung attempts by outcome"
       ~labels:[ ("rung", rung_name rung); ("outcome", outcome) ])

let observe_trip = function
  | Error.Budget trip ->
      Metrics.incr
        (Metrics.counter Metrics.global "acq_budget_trips_total"
           ~help:"Budget trips observed during governed execution"
           ~labels:[ ("limit", Budget.limit_name trip.Budget.limit) ])
  | _ -> ()

let observe_degradation () =
  Metrics.incr
    (Metrics.counter Metrics.global "acq_degradations_total"
       ~help:"Governed runs that completed on a fallback rung")

let count_governed ?budget ?rng ?exec ?(verbose = false) ?(strict = false)
    ?chaos ?decision ?cost ~eps ~delta q db =
  let budget = match budget with Some b -> b | None -> Budget.none in
  if not (Ecq.compatible_with q db) then
    Error (Error.Signature_mismatch (mismatch_message q db))
  else
    match
      match decision with Some d -> Ok d | None -> plan_result q
    with
    | Error err -> Error err
    | Ok d ->
        let rng = make_rng ?rng ~verbose:(verbose && exec = None) () in
        if verbose then Printf.eprintf "planner: %s\n%!" d.reason;
        let guard_rung r =
          match chaos with
          | Some c -> Chaos.guard c ("rung:" ^ rung_name r)
          | None -> ()
        in
        (* Per-rung tracing span, carrying the rung's tick delta on its
           budget slice: the per-rung attribution ("which rung burned
           the budget") surfaced in [telemetry.trace]. The engine is
           re-spanned so trials nest under the rung. One branch when the
           run is untraced. *)
        let parent = match exec with Some e -> Engine.span e | None -> None in
        let run_traced ~sub ~eps rung () =
          guard_rung rung;
          match parent with
          | None -> run_rung ~rng ~budget:sub ?exec ~eps ~delta rung q db
          | Some _ ->
              let sp = Trace.child parent ("rung:" ^ rung_name rung) in
              let ticks0 = Budget.ticks sub in
              let exec = Option.map (fun e -> Engine.with_span e sp) exec in
              Fun.protect
                ~finally:(fun () ->
                  Trace.stop ~ticks:(Budget.ticks sub - ticks0) sp)
                (fun () -> run_rung ~rng ~budget:sub ?exec ~eps ~delta rung q db)
        in
        let finish ~rung ~guarantee ~eps_used ~attempts estimate =
          if not (Float.is_finite estimate) then
            Error
              (Error.Numeric_overflow
                 (Printf.sprintf "rung %s produced %h" (rung_name rung)
                    estimate))
          else begin
            let attempts = List.rev attempts in
            if attempts <> [] then observe_degradation ();
            if verbose && attempts <> [] then
              Printf.eprintf "planner: degraded to rung %s after %d failure(s)\n%!"
                (rung_name rung) (List.length attempts);
            Ok
              {
                estimate;
                rung;
                guarantee;
                degraded = attempts <> [];
                eps_used;
                attempts;
                decision = d;
              }
          end
        in
        let planned = planned_rung d in
        if strict then
          (* Strict mode: the planned algorithm under the whole budget,
             first failure propagated — no degradation, no cost-driven
             reordering (the caller asked for the Figure-1 plan). *)
          match Error.guard (run_traced ~sub:budget ~eps planned) with
          | Error err as e ->
              observe_attempt planned "error";
              observe_trip err;
              e
          | Ok (v, guarantee) ->
              observe_attempt planned "ok";
              finish ~rung:planned ~guarantee ~eps_used:eps ~attempts:[] v
        else begin
          (* With a cost analysis at hand the chain is the ε-degradation
             ladder: guaranteed rungs cheapest-first, then the cheapest
             sampling rung at relaxed ε, then partial. Without one it is
             the static Figure-1 fallback order, all steps at the
             requested ε. *)
          let chain =
            match cost with
            | Some cost ->
                List.map
                  (fun (s : Ladder.step) ->
                    (rung_of_cost s.Ladder.rung, s.Ladder.eps))
                  (Ladder.build ~eps ~delta cost)
            | None ->
                List.map
                  (fun r -> (r, eps))
                  ((planned
                   :: List.filter
                        (fun r -> r <> planned)
                        [ Exact_rung; Tree_dp_rung; Generic_rung ])
                  @ [ Partial_rung ])
          in
          if verbose && cost <> None then
            Printf.eprintf "planner: costed chain: %s\n%!"
              (String.concat " -> "
                 (List.map
                    (fun (r, e) ->
                      if e > eps then
                        Printf.sprintf "%s@eps=%g" (rung_name r) e
                      else rung_name r)
                    chain));
          let rec go attempts = function
            | [] -> (
                (* Even the partial rung failed (e.g. an injected fault):
                   surface the most recent error. *)
                match attempts with
                | { error; _ } :: _ -> Error error
                | [] -> Error (Error.Internal "empty fallback chain"))
            | (rung, step_eps) :: rest ->
                (* Non-final rungs get half the remaining budget so a
                   runaway attempt cannot starve the fallbacks; the final
                   partial sweep gets everything left. If the parent has
                   already tripped, the slice trips immediately and the
                   rung falls through in O(1). *)
                let fraction = if rest = [] then 1.0 else 0.5 in
                let sub = Budget.slice ~fraction ~label:(rung_name rung) budget in
                let outcome = Error.guard (run_traced ~sub ~eps:step_eps rung) in
                if sub != budget then Budget.absorb budget sub;
                (match outcome with
                | Ok (v, guarantee) when Float.is_finite v ->
                    observe_attempt rung "ok";
                    finish ~rung ~guarantee ~eps_used:step_eps ~attempts v
                | Ok (v, _) ->
                    observe_attempt rung "error";
                    let error =
                      Error.Numeric_overflow
                        (Printf.sprintf "rung %s produced %h" (rung_name rung) v)
                    in
                    if verbose then
                      Printf.eprintf "planner: rung %s failed: %s\n%!"
                        (rung_name rung) (Error.message error);
                    go ({ rung; error } :: attempts) rest
                | Error error ->
                    observe_attempt rung "error";
                    observe_trip error;
                    if verbose then
                      Printf.eprintf "planner: rung %s failed: %s\n%!"
                        (rung_name rung) (Error.message error);
                    go ({ rung; error } :: attempts) rest)
          in
          go [] chain
        end
