module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Tuple = Ac_relational.Tuple
module Partite = Ac_dlm.Partite
module Edge_count = Ac_dlm.Edge_count
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Engine = Ac_exec.Engine

(* Estimate the number of answers inside the box given by [pins]:
   [pins.(i) = Some values] confines free variable [i]; the restricted
   space relabels each pinned class to [0 .. |values|-1], and the wrapper
   translates parts back before hitting the real oracle. [rng] drives
   both the estimator and the oracle's colouring probes, so a draw is a
   pure function of the RNG state handed to it. *)
let pinned_estimate ~rng ~eps ~delta oracle space pins =
  let sizes =
    Array.mapi
      (fun i size ->
        match pins.(i) with Some p -> Array.length p | None -> size)
      space.Partite.class_sizes
  in
  let space' = Partite.space sizes in
  let aligned' parts' =
    let parts =
      Array.mapi
        (fun i part ->
          match pins.(i) with
          | Some p -> Array.map (fun k -> p.(k)) part
          | None -> part)
        parts'
    in
    not (Colour_oracle.has_answer_in_box ~rng oracle parts)
  in
  (Edge_count.estimate ~rng ~epsilon:eps ~delta space' aligned').Edge_count.value

(* One JVV draw over a prepared oracle. Every random choice — the
   halving decisions, the counting estimates behind them and the oracle
   colourings — comes from [rng], so independent draws on disjoint RNG
   streams are independent trials for the parallel engine. *)
let draw_one ~rng ~budget ~eps ~delta oracle ~num_free ~universe_size =
  let l = num_free and u = universe_size in
  if l = 0 then
    if Colour_oracle.has_answer_in_box ~rng oracle [||] then Some [||] else None
  else begin
    let space = Colour_oracle.space oracle in
    let pins = Array.make l None in
    let estimate () = pinned_estimate ~rng ~eps ~delta oracle space pins in
    let ok = ref true in
    (* JVV: pin classes one by one, choosing by recursive halving so that
       each class costs O(log |U|) counting calls. *)
    for i = 0 to l - 1 do
      if !ok then begin
        let candidates = ref (Array.init u Fun.id) in
        while !ok && Array.length !candidates > 1 do
          Budget.tick budget;
          let n = Array.length !candidates in
          let left = Array.sub !candidates 0 (n / 2) in
          let right = Array.sub !candidates (n / 2) (n - (n / 2)) in
          pins.(i) <- Some left;
          let n_left = estimate () in
          pins.(i) <- Some right;
          let n_right = estimate () in
          let total = n_left +. n_right in
          if total <= 0.0 then ok := false
          else if Random.State.float rng total < n_left then begin
            candidates := left;
            pins.(i) <- Some left
          end
          else begin
            candidates := right;
            pins.(i) <- Some right
          end
        done;
        if !ok then begin
          match !candidates with
          | [| v |] -> pins.(i) <- Some [| v |]
          | _ -> ok := false
        end
      end
    done;
    if not !ok then None
    else begin
      let tau = Array.map (function Some [| v |] -> v | _ -> -1) pins in
      if Array.exists (( = ) (-1)) tau then None
      else begin
        (* final verification: the pinned box must contain an answer *)
        let parts = Array.map (fun v -> [| v |]) tau in
        if Colour_oracle.has_answer_in_box ~rng oracle parts then Some tau
        else None
      end
    end
  end

let make_sampler ?budget ?rng ?(engine = Colour_oracle.Tree_dp) ?rounds ~eps
    ~delta q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let checkpoint = match budget with None -> Budget.none | Some b -> b in
  let oracle = Colour_oracle.create ~rng ?rounds ?budget ~engine q db in
  let num_free = Ecq.num_free q and universe_size = Structure.universe_size db in
  fun () ->
    draw_one ~rng ~budget:checkpoint ~eps ~delta oracle ~num_free ~universe_size

let sample ?budget ?rng ?engine ?rounds ~eps ~delta q db =
  make_sampler ?budget ?rng ?engine ?rounds ~eps ~delta q db ()

let sample_result ?budget ?rng ?engine ?rounds ~eps ~delta q db =
  Error.guard (fun () -> sample ?budget ?rng ?engine ?rounds ~eps ~delta q db)

(* Independent draws fanned out over the engine: the oracle and solver
   are built once (read-only afterwards), draw [i] runs on stream [i],
   and the returned array is in draw order — bit-identical for any jobs
   count. *)
let sample_many ?budget ?(engine = Colour_oracle.Tree_dp) ?rounds ~exec ~draws
    ~eps ~delta q db =
  let oracle =
    Colour_oracle.create
      ~rng:(Engine.state exec ~stream:0)
      ?rounds ?budget ~span:(Engine.span exec) ~engine q db
  in
  let num_free = Ecq.num_free q and universe_size = Structure.universe_size db in
  Engine.run ?budget exec ~trials:draws (fun ~rng ~budget i ->
      ignore i;
      draw_one ~rng ~budget ~eps ~delta oracle ~num_free ~universe_size)

(* §6 first bullet: answers are the hyperedges of H(φ, D), so the
   DLM-style edge sampler applied to the colour-coded oracle samples an
   answer directly. *)
let sample_dlm ?budget ?rng ?(engine = Colour_oracle.Tree_dp) ?rounds ~eps
    ~delta q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let oracle = Colour_oracle.create ~rng ?rounds ?budget ~engine q db in
  if Ecq.num_free q = 0 then
    if Colour_oracle.has_answer_in_box oracle [||] then Some [||] else None
  else
    Edge_count.sample_edge ~rng ~epsilon:eps ~delta (Colour_oracle.space oracle)
      (Colour_oracle.aligned_oracle oracle)

let sample_exact ?rng q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  match Exact.answers q db with
  | [] -> None
  | answers ->
      let arr = Array.of_list answers in
      Some arr.(Random.State.int rng (Array.length arr))

let check_same_arity queries =
  match queries with
  | [] -> invalid_arg "Sampling: empty union"
  | q :: rest ->
      let l = Ecq.num_free q in
      if not (List.for_all (fun q' -> Ecq.num_free q' = l) rest) then
        invalid_arg "Sampling: union queries must share their free variables"

let union_count_exact queries db =
  check_same_arity queries;
  let seen = Tuple.Table.create 256 in
  List.iter
    (fun q -> List.iter (fun t -> Tuple.Table.replace seen t ()) (Exact.answers q db))
    queries;
  Tuple.Table.length seen

let union_count_karp_luby ?rng ?(rounds = 2000) queries db =
  check_same_arity queries;
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let pools =
    List.map
      (fun q ->
        let answers = Array.of_list (Exact.answers q db) in
        let table = Tuple.Table.create (max 16 (Array.length answers)) in
        Array.iter (fun t -> Tuple.Table.replace table t ()) answers;
        (answers, table))
      queries
    |> Array.of_list
  in
  let weights = Array.map (fun (a, _) -> float_of_int (Array.length a)) pools in
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then 0.0
  else begin
    let pick () =
      let x = Random.State.float rng total in
      let rec go i acc =
        if i = Array.length weights - 1 then i
        else
          let acc = acc +. weights.(i) in
          if x < acc then i else go (i + 1) acc
      in
      go 0 0.0
    in
    let acc = ref 0.0 in
    for _ = 1 to rounds do
      let i = pick () in
      let answers, _ = pools.(i) in
      let tau = answers.(Random.State.int rng (Array.length answers)) in
      let m =
        Array.fold_left
          (fun m (_, table) -> if Tuple.Table.mem table tau then m + 1 else m)
          0 pools
      in
      acc := !acc +. (1.0 /. float_of_int (max m 1))
    done;
    total *. !acc /. float_of_int rounds
  end

let union_count_approx ?rng ?(engine = Colour_oracle.Tree_dp) ?rounds
    ?(kl_rounds = 60) ~eps ~delta queries db =
  check_same_arity queries;
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let queries = Array.of_list queries in
  let oracles =
    Array.map (fun q -> Colour_oracle.create ~rng ?rounds ~engine q db) queries
  in
  let member j tau =
    if Array.length tau = 0 then
      Colour_oracle.has_answer_in_box oracles.(j) [||]
    else
      Colour_oracle.has_answer_in_box oracles.(j)
        (Array.map (fun v -> [| v |]) tau)
  in
  let counts =
    Array.map
      (fun q ->
        (Fptras.approx_count ~rng ~engine ?rounds ~eps ~delta q db)
          .Fptras.estimate)
      queries
  in
  let samplers =
    Array.map
      (fun q -> make_sampler ~rng ~engine ?rounds ~eps ~delta q db)
      queries
  in
  let total = Array.fold_left ( +. ) 0.0 counts in
  if total <= 0.0 then 0.0
  else begin
    let pick () =
      let x = Random.State.float rng total in
      let rec go i acc =
        if i = Array.length counts - 1 then i
        else
          let acc = acc +. counts.(i) in
          if x < acc then i else go (i + 1) acc
      in
      go 0 0.0
    in
    let acc = ref 0.0 and used = ref 0 in
    for _ = 1 to kl_rounds do
      let i = pick () in
      match samplers.(i) () with
      | None -> ()
      | Some tau ->
          incr used;
          let m = ref 0 in
          Array.iteri (fun j _ -> if member j tau then incr m) queries;
          (* the drawing query always contains its own sample *)
          acc := !acc +. (1.0 /. float_of_int (max !m 1))
    done;
    if !used = 0 then 0.0 else total *. !acc /. float_of_int !used
  end
