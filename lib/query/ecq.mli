(** Extended conjunctive queries (§1.1).

    An ECQ [φ(x_0, .., x_{ℓ-1}) = ∃ x_ℓ .. x_{ℓ+k-1}. ψ] is stored with
    variables numbered [0 .. num_vars - 1]; the first [num_free] are the
    free (output) variables. Atoms are positive predicates, negated
    predicates and disequalities. Equalities are assumed rewritten away, as
    in the paper.

    A CQ is an ECQ with no negated atoms and no disequalities; a DCQ may
    have disequalities but no negated atoms. *)

type atom =
  | Atom of string * int array       (** [R(y_1, .., y_j)] *)
  | Neg_atom of string * int array   (** [¬R(y_1, .., y_j)] *)
  | Diseq of int * int               (** [y_i ≠ y_j] *)

type t = private {
  num_free : int;
  num_vars : int;
  atoms : atom list;
  var_names : string array;
}

(** [make ~num_free ~num_vars atoms] validates and builds a query:
    variable indices must be in range, predicates non-nullary,
    disequalities between distinct variables, every variable must occur in
    at least one atom, and a relation symbol must be used with a single
    arity. Raises [Invalid_argument] otherwise. *)
val make : ?var_names:string array -> num_free:int -> num_vars:int -> atom list -> t

val num_free : t -> int
val num_vars : t -> int
val num_existential : t -> int
val atoms : t -> atom list

(** The paper's [‖φ‖]: |vars(φ)| plus the sum of the arities of all atoms
    (a disequality counts 2). *)
val size : t -> int

(** Positive and negated predicate count. *)
val num_predicates : t -> int

val num_negated : t -> int

(** Δ(φ): the set of disequality pairs [{i, j}], normalised [i < j]. *)
val delta : t -> (int * int) list

val is_cq : t -> bool
val is_dcq : t -> bool

(** Signature: relation symbol → arity, sorted by name. *)
val signature : t -> (string * int) list

(** [H(φ)] (Definition 3): one hyperedge per (possibly negated) predicate;
    no edges for disequalities. *)
val hypergraph : t -> Ac_hypergraph.Hypergraph.t

(** [compatible_with φ db]: [sig(φ) ⊆ sig(D)] with matching arities. *)
val compatible_with : t -> Ac_relational.Structure.t -> bool

(** [satisfied_by φ db assignment] — is the full assignment (length
    [num_vars]) a solution in the sense of Definition 1? *)
val satisfied_by : t -> Ac_relational.Structure.t -> int array -> bool

val var_name : t -> int -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Construction helpers} *)

(** Add disequalities [x_i ≠ x_j] for all given pairs. *)
val add_diseqs : t -> (int * int) list -> t

(** All-pairs disequalities over the free variables (used by the
    Hamiltonian-path construction of Observation 10). *)
val all_pairs_diseq_free : t -> t

(** Parses a textual query such as
    ["ans(x, y) :- E(x, y), E(y, z), !R(x, z), x != z"]. Variables on the
    left of [:-] are free; remaining variables are existential. [!R] (or
    [not R]) denotes a negated predicate and [x != y] a disequality.

    Equalities [x = y] are accepted and rewritten away by unifying the
    two variables (the paper's §1.1 preprocessing). At most one free
    variable may occur per equality class — equating two free variables
    would change the answer arity — otherwise parsing fails.

    Raises [Failure] on syntax errors. *)
val parse : string -> t

(** A positioned parse failure: [offset] is the character offset of the
    offending token in the input ([-1] when no position applies, e.g.
    validation failures), [token] the offending token's text ([""] at
    end of input), [msg] the bare description. *)
type parse_error = { offset : int; token : string; msg : string }

exception Parse_error of parse_error

(** Renders a {!parse_error} in the classic [Failure] style:
    ["Ecq.parse: <msg> at offset <n> (near <token>)"]. *)
val parse_error_message : parse_error -> string

(** Like {!parse} but raises {!Parse_error} (position-carrying) instead
    of [Failure], and additionally returns one character span
    [(start, stop)] per atom — aligned with {!atoms} order — so that
    diagnostics can point back into the source text. *)
val parse_spans : string -> t * (int * int) array

(** {!parse} with syntax errors as typed [Parse] errors ([source] is
    ["query"]). Never raises. *)
val parse_result : string -> (t, Ac_runtime.Error.t) result
