module Structure = Ac_relational.Structure
module Hypergraph = Ac_hypergraph.Hypergraph

type atom =
  | Atom of string * int array
  | Neg_atom of string * int array
  | Diseq of int * int

type t = {
  num_free : int;
  num_vars : int;
  atoms : atom list;
  var_names : string array;
}

let default_names num_vars = Array.init num_vars (fun i -> "x" ^ string_of_int i)

let make ?var_names ~num_free ~num_vars atoms =
  if num_free < 0 || num_vars < num_free then invalid_arg "Ecq.make: bad variable counts";
  if num_vars = 0 then invalid_arg "Ecq.make: a query needs at least one variable";
  let var_names =
    match var_names with
    | None -> default_names num_vars
    | Some names ->
        if Array.length names <> num_vars then invalid_arg "Ecq.make: var_names length";
        names
  in
  let occurs = Array.make num_vars false in
  let arities : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let check_var v =
    if v < 0 || v >= num_vars then invalid_arg "Ecq.make: variable out of range";
    occurs.(v) <- true
  in
  let check_pred name vars =
    if Array.length vars = 0 then invalid_arg "Ecq.make: nullary predicate";
    Array.iter check_var vars;
    match Hashtbl.find_opt arities name with
    | Some a ->
        if a <> Array.length vars then
          invalid_arg (Printf.sprintf "Ecq.make: %s used with two arities" name)
    | None -> Hashtbl.replace arities name (Array.length vars)
  in
  List.iter
    (function
      | Atom (name, vars) | Neg_atom (name, vars) -> check_pred name vars
      | Diseq (i, j) ->
          if i = j then invalid_arg "Ecq.make: disequality between equal variables";
          check_var i;
          check_var j)
    atoms;
  if not (Array.for_all Fun.id occurs) then
    invalid_arg "Ecq.make: every variable must occur in an atom";
  { num_free; num_vars; atoms; var_names }

let num_free q = q.num_free
let num_vars q = q.num_vars
let num_existential q = q.num_vars - q.num_free
let atoms q = q.atoms

let size q =
  q.num_vars
  + List.fold_left
      (fun acc -> function
        | Atom (_, vs) | Neg_atom (_, vs) -> acc + Array.length vs
        | Diseq _ -> acc + 2)
      0 q.atoms

let num_predicates q =
  List.length
    (List.filter (function Atom _ | Neg_atom _ -> true | Diseq _ -> false) q.atoms)

let num_negated q =
  List.length (List.filter (function Neg_atom _ -> true | _ -> false) q.atoms)

let delta q =
  List.filter_map
    (function
      | Diseq (i, j) -> Some (min i j, max i j)
      | Atom _ | Neg_atom _ -> None)
    q.atoms
  |> List.sort_uniq compare

let is_cq q =
  List.for_all (function Atom _ -> true | Neg_atom _ | Diseq _ -> false) q.atoms

let is_dcq q =
  List.for_all (function Atom _ | Diseq _ -> true | Neg_atom _ -> false) q.atoms

let signature q =
  let arities = Hashtbl.create 8 in
  List.iter
    (function
      | Atom (name, vs) | Neg_atom (name, vs) ->
          Hashtbl.replace arities name (Array.length vs)
      | Diseq _ -> ())
    q.atoms;
  Hashtbl.fold (fun name a acc -> (name, a) :: acc) arities []
  |> List.sort compare

let hypergraph q =
  let edges =
    List.filter_map
      (function
        | Atom (_, vs) | Neg_atom (_, vs) ->
            Some (List.sort_uniq compare (Array.to_list vs))
        | Diseq _ -> None)
      q.atoms
  in
  (* isolated variables (occurring only in disequalities) become singleton
     edges so that V(H) = vars(φ) stays covered by the decomposition *)
  let covered = Array.make q.num_vars false in
  List.iter (List.iter (fun v -> covered.(v) <- true)) edges;
  let singletons =
    List.init q.num_vars Fun.id
    |> List.filter_map (fun v -> if covered.(v) then None else Some [ v ])
  in
  Hypergraph.create ~num_vertices:q.num_vars (edges @ singletons)

let compatible_with q db =
  List.for_all
    (fun (name, arity) ->
      Structure.mem_symbol db name && Structure.arity_of db name = arity)
    (signature q)

let satisfied_by q db assignment =
  Array.length assignment = q.num_vars
  && List.for_all
       (function
         | Atom (name, vs) ->
             Structure.holds db name (Array.map (fun v -> assignment.(v)) vs)
         | Neg_atom (name, vs) ->
             not (Structure.holds db name (Array.map (fun v -> assignment.(v)) vs))
         | Diseq (i, j) -> assignment.(i) <> assignment.(j))
       q.atoms

let var_name q v = q.var_names.(v)

let pp fmt q =
  let pp_vars fmt vs =
    Format.pp_print_string fmt
      (String.concat ", " (Array.to_list (Array.map (fun v -> q.var_names.(v)) vs)))
  in
  let frees = Array.init q.num_free Fun.id in
  Format.fprintf fmt "ans(%a) :- " pp_vars frees;
  Format.pp_print_string fmt
    (String.concat ", "
       (List.map
          (function
            | Atom (name, vs) ->
                Format.asprintf "%s(%a)" name pp_vars vs
            | Neg_atom (name, vs) ->
                Format.asprintf "!%s(%a)" name pp_vars vs
            | Diseq (i, j) ->
                Printf.sprintf "%s != %s" q.var_names.(i) q.var_names.(j))
          q.atoms))

let to_string q = Format.asprintf "%a" pp q

let add_diseqs q pairs =
  let atoms = q.atoms @ List.map (fun (i, j) -> Diseq (i, j)) pairs in
  make ~var_names:q.var_names ~num_free:q.num_free ~num_vars:q.num_vars atoms

let all_pairs_diseq_free q =
  let pairs = ref [] in
  for i = 0 to q.num_free - 1 do
    for j = i + 1 to q.num_free - 1 do
      pairs := (i, j) :: !pairs
    done
  done;
  let existing = delta q in
  let fresh = List.filter (fun p -> not (List.mem p existing)) !pairs in
  add_diseqs q fresh

(* ------------------------------------------------------------------ *)
(* Parser for the textual form:
     ans(x, y) :- E(x, y), E(y, z), !R(x, z), x != z
   Tokens: identifiers, '(', ')', ',', ':-', '!', '!=', 'not'. Every
   token carries its character offsets so that errors can point at the
   offending token and atoms can carry source spans for `acq lint`. *)

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile
  | Bang
  | Neq
  | Equal

type parse_error = { offset : int; token : string; msg : string }

exception Parse_error of parse_error

let parse_error_message pe =
  if pe.offset < 0 then "Ecq.parse: " ^ pe.msg
  else if pe.token = "" then
    Printf.sprintf "Ecq.parse: %s at offset %d" pe.msg pe.offset
  else
    Printf.sprintf "Ecq.parse: %s at offset %d (near %S)" pe.msg pe.offset
      pe.token

let fail_at ~offset ~token msg = raise (Parse_error { offset; token; msg })

let token_text = function
  | Ident s -> s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Turnstile -> ":-"
  | Bang -> "!"
  | Neq -> "!="
  | Equal -> "="

(* [(token, start, stop)] with [stop] exclusive. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\'' || c = '='
  in
  let push t start stop = tokens := (t, start, stop) :: !tokens in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (push Lparen !i (!i + 1); incr i)
    else if c = ')' then (push Rparen !i (!i + 1); incr i)
    else if c = ',' then (push Comma !i (!i + 1); incr i)
    else if c = ':' && !i + 1 < n && input.[!i + 1] = '-' then begin
      push Turnstile !i (!i + 2);
      i := !i + 2
    end
    else if c = '!' && !i + 1 < n && input.[!i + 1] = '=' then begin
      push Neq !i (!i + 2);
      i := !i + 2
    end
    else if c = '!' then (push Bang !i (!i + 1); incr i)
    else if c = '=' then (push Equal !i (!i + 1); incr i)
    else if is_ident_char c && c <> '=' then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] && input.[!i] <> '=' do incr i done;
      push (Ident (String.sub input start (!i - start))) start !i
    end
    else
      fail_at ~offset:!i ~token:(String.make 1 c) "unexpected character"
  done;
  List.rev !tokens

let parse_spans input =
  let tokens = ref (tokenize input) in
  let eof = String.length input in
  let peek () = match !tokens with [] -> None | (t, _, _) :: _ -> Some t in
  let next_pos () =
    match !tokens with
    | [] -> fail_at ~offset:eof ~token:"" "unexpected end of input"
    | (t, s, e) :: rest ->
        tokens := rest;
        (t, s, e)
  in
  let expect t what =
    let got, s, _ = next_pos () in
    if got <> t then
      fail_at ~offset:s ~token:(token_text got) ("expected " ^ what)
  in
  let ident_pos what =
    match next_pos () with
    | Ident s, start, stop -> (s, start, stop)
    | got, s, _ ->
        fail_at ~offset:s ~token:(token_text got) ("expected " ^ what)
  in
  let var_ids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let var_of name =
    match Hashtbl.find_opt var_ids name with
    | Some v -> v
    | None ->
        let v = Hashtbl.length var_ids in
        Hashtbl.replace var_ids name v;
        v
  in
  (* head *)
  let head, head_start, _ = ident_pos "head predicate" in
  if String.lowercase_ascii head <> "ans" then
    fail_at ~offset:head_start ~token:head "head predicate must be named ans";
  expect Lparen "(";
  let rec head_vars acc =
    match next_pos () with
    | Ident v, start, stop -> (
        let acc = (var_of v, v, start, stop) :: acc in
        match next_pos () with
        | Comma, _, _ -> head_vars acc
        | Rparen, _, _ -> List.rev acc
        | got, s, _ -> fail_at ~offset:s ~token:(token_text got) "bad head")
    | Rparen, _, _ when acc = [] -> []
    | got, s, _ -> fail_at ~offset:s ~token:(token_text got) "bad head"
  in
  let frees =
    match peek () with
    | Some Rparen ->
        ignore (next_pos ());
        []
    | _ -> head_vars []
  in
  (* the head must list variables 0..ℓ-1 in order, which holds because
     var_of numbers them on first occurrence *)
  List.iteri
    (fun i (v, name, start, _) ->
      if v <> i then
        fail_at ~offset:start ~token:name "repeated variable in head")
    frees;
  expect Turnstile ":-";
  let parse_args () =
    expect Lparen "(";
    let rec go acc =
      match next_pos () with
      | Ident v, _, _ -> (
          let acc = var_of v :: acc in
          match next_pos () with
          | Comma, _, _ -> go acc
          | Rparen, _, stop -> (List.rev acc, stop)
          | got, s, _ ->
              fail_at ~offset:s ~token:(token_text got) "bad argument list")
      | got, s, _ ->
          fail_at ~offset:s ~token:(token_text got) "bad argument list"
    in
    go []
  in
  (* body items: atoms with their source spans, and equalities *)
  let rec body acc =
    let item =
      match next_pos () with
      | Bang, start, _ ->
          let name, _, _ = ident_pos "predicate after !" in
          let args, stop = parse_args () in
          `Atom (Neg_atom (name, Array.of_list args), start, stop)
      | Ident "not", start, _ ->
          let name, _, _ = ident_pos "predicate after not" in
          let args, stop = parse_args () in
          `Atom (Neg_atom (name, Array.of_list args), start, stop)
      | Ident name, start, _ -> (
          match peek () with
          | Some Lparen ->
              let args, stop = parse_args () in
              `Atom (Atom (name, Array.of_list args), start, stop)
          | Some Neq ->
              ignore (next_pos ());
              let rhs, _, stop = ident_pos "variable after !=" in
              `Atom (Diseq (var_of name, var_of rhs), start, stop)
          | Some Equal ->
              ignore (next_pos ());
              let rhs, _, stop = ident_pos "variable after =" in
              `Equality (var_of name, var_of rhs, start, stop)
          | _ ->
              let offset, token =
                match !tokens with
                | (t, s, _) :: _ -> (s, token_text t)
                | [] -> (eof, "")
              in
              fail_at ~offset ~token "expected (, != or = after identifier")
      | got, s, _ -> fail_at ~offset:s ~token:(token_text got) "expected atom"
    in
    let acc = item :: acc in
    match peek () with
    | Some Comma ->
        ignore (next_pos ());
        body acc
    | None -> List.rev acc
    | Some got ->
        let offset = match !tokens with (_, s, _) :: _ -> s | [] -> eof in
        fail_at ~offset ~token:(token_text got) "trailing tokens"
  in
  let items = body [] in
  let raw_atoms =
    List.filter_map
      (function `Atom (a, s, e) -> Some (a, s, e) | `Equality _ -> None)
      items
  in
  let equalities =
    List.filter_map
      (function `Equality (a, b, s, e) -> Some (a, b, s, e) | `Atom _ -> None)
      items
  in
  let num_raw = Hashtbl.length var_ids in
  let num_free = List.length frees in
  (* §1.1 preprocessing: rewrite equalities away by unifying variables
     (union-find); a class may contain at most one free variable, and a
     free variable is always its class's representative. *)
  let uf = Array.init num_raw Fun.id in
  let rec find v = if uf.(v) = v then v else (uf.(v) <- find uf.(v); uf.(v)) in
  List.iter
    (fun (a, b, start, stop) ->
      let ra = find a and rb = find b in
      if ra <> rb then
        if ra < num_free && rb < num_free then
          fail_at ~offset:start
            ~token:(String.sub input start (stop - start))
            "equality between two free variables"
        else if ra < num_free then uf.(rb) <- ra
        else if rb < num_free then uf.(ra) <- rb
        else uf.(ra) <- rb)
    equalities;
  (* compact renumbering: free variables keep their ids, surviving
     existential representatives follow *)
  let remap = Hashtbl.create 16 in
  for v = 0 to num_free - 1 do
    Hashtbl.replace remap (find v) v
  done;
  let next_id = ref num_free in
  for v = 0 to num_raw - 1 do
    let r = find v in
    if not (Hashtbl.mem remap r) then begin
      Hashtbl.replace remap r !next_id;
      incr next_id
    end
  done;
  let rename v = Hashtbl.find remap (find v) in
  let atoms_spanned =
    List.map
      (fun (atom, start, stop) ->
        let atom =
          match atom with
          | Atom (name, vs) -> Atom (name, Array.map rename vs)
          | Neg_atom (name, vs) -> Neg_atom (name, Array.map rename vs)
          | Diseq (i, j) -> Diseq (rename i, rename j)
        in
        (atom, start, stop))
      raw_atoms
  in
  (* a disequality whose sides were unified (x != x, directly or through
     equalities) is always false: reject with the offending span so the
     linter can report it as QL003 *)
  List.iter
    (function
      | Diseq (i, j), start, stop when i = j ->
          fail_at ~offset:start
            ~token:(String.sub input start (stop - start))
            "contradictory disequality: both sides denote the same variable"
      | _ -> ())
    atoms_spanned;
  let atoms = List.map (fun (a, _, _) -> a) atoms_spanned in
  let spans =
    Array.of_list (List.map (fun (_, s, e) -> (s, e)) atoms_spanned)
  in
  let num_vars = !next_id in
  let var_names = Array.make num_vars "" in
  Hashtbl.iter
    (fun name v ->
      let r = rename v in
      if var_names.(r) = "" || find v = v then var_names.(r) <- name)
    var_ids;
  match make ~var_names ~num_free ~num_vars atoms with
  | q -> (q, spans)
  | exception Invalid_argument msg -> fail_at ~offset:(-1) ~token:"" msg

let parse input =
  match parse_spans input with
  | q, _ -> q
  | exception Parse_error pe -> failwith (parse_error_message pe)

let parse_result input =
  match parse_spans input with
  | q, _ -> Ok q
  | exception Parse_error pe ->
      Error
        (Ac_runtime.Error.Parse { source = "query"; msg = parse_error_message pe })
  | exception (Failure msg | Invalid_argument msg) ->
      Error (Ac_runtime.Error.Parse { source = "query"; msg })
