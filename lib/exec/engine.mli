(** Chunked fan-out of independent estimation trials.

    Every approximation scheme in this repository — the Theorem 16
    FPRAS, the Theorem 5/13 FPTRASes, the ACJR sketches, the JVV
    samplers — reduces to running many {e independent} randomized trials
    and combining them (median, mean, pool). A {!t} describes how to run
    such a batch: a root [seed] and a [jobs] count. {!run} executes the
    batch, fanning contiguous index chunks out to the {!Pool} when
    [jobs > 1].

    {b Determinism.} Trial [i] draws all of its randomness from
    [Seeds.state ~seed ~stream:i] and results are combined in index
    order, so the outcome is bit-identical for {e any} [jobs] count —
    [jobs] is purely a throughput knob. Sequential phases of an
    estimator take their own streams via {!split}.

    {b Budgets.} The batch runs under per-chunk sub-slices of the given
    {!Ac_runtime.Budget.t} ({!Ac_runtime.Budget.split}): chunks tick
    their own slice once per trial, deep loops keep ticking whatever
    budget they were built over. The first chunk to fail — budget trip
    or any exception — cancels every sibling slice, the join waits for
    all workers (no stuck domains), ticks are absorbed back into the
    parent, and the error is re-raised with its backtrace; typed errors
    survive the join unchanged. When several chunks fail, the
    lowest-indexed non-cancellation failure wins, so error reporting is
    deterministic too. *)

type t

(** Default parallelism:
    [max 1 (Domain.recommended_domain_count () - 1)] — one domain is
    left to the caller/GC. *)
val default_jobs : unit -> int

(** [make ~seed ?jobs ()]. [jobs] defaults to {!default_jobs};
    [jobs <= 1] means fully sequential. *)
val make : ?jobs:int -> seed:int -> unit -> t

(** Sequential context ([jobs = 1]) — the zero-dependency special case;
    {!run} degenerates to a plain loop. *)
val sequential : seed:int -> t

val jobs : t -> int
val seed : t -> int

(** [split t i] — a context with the same [jobs] but the [i]-th derived
    seed, for handing independent randomness to a sub-phase or sub-rung
    without correlating its streams with the parent's. *)
val split : t -> int -> t

(** [state t ~stream] — the PRNG for stream [stream] of [t]'s seed
    (convenience for sequential phases). *)
val state : t -> stream:int -> Random.State.t

(** [with_span t sp] — the same context carrying tracing span [sp] as
    the parent for the per-trial spans {!run} opens (and, transitively,
    for the phase spans the estimators hang off {!span}). [None]
    (the default everywhere) disables trial tracing: {!run} pays a
    single branch per trial. {!split} preserves the span — sub-phases
    trace into the same parent unless re-spanned. *)
val with_span : t -> Ac_obs.Trace.span option -> t

val span : t -> Ac_obs.Trace.span option

(** [run t ?budget ~trials f] — [f ~rng ~budget i] for [i = 0 ..
    trials - 1], results in index order. [f] must take its randomness
    from [rng] only and may cooperate with the passed budget slice.
    Nested calls from inside a trial run sequentially (the pool never
    deadlocks on itself). *)
val run :
  ?budget:Ac_runtime.Budget.t ->
  t ->
  trials:int ->
  (rng:Random.State.t -> budget:Ac_runtime.Budget.t -> int -> 'a) ->
  'a array
