(** A lazily-created pool of worker domains.

    One process-wide pool serves every parallel section: domains are
    expensive (a few ms and a GC participant each), so they are spawned
    on first demand, kept parked on a condition variable between
    sections, and torn down by an [at_exit] hook. The pool only ever
    holds {e independent} tasks — workers never submit nested parallel
    work (nested sections run sequentially, see {!in_worker}) — so queue
    order cannot deadlock.

    The pool's capacity follows demand up to {!max_workers}; asking for
    more parallelism than the machine has domains is allowed (the
    runtime timeslices), it just stops paying off. *)

type t

(** The process-wide pool (created on first use). *)
val shared : unit -> t

(** Hard ceiling on worker domains ever spawned (the OCaml runtime caps
    total domains at 128; we stay well below). *)
val max_workers : int

(** [true] inside a pool worker — used to run nested parallel sections
    sequentially instead of deadlocking on a full pool. *)
val in_worker : unit -> bool

(** [run_tasks pool tasks] executes every task, using up to
    [Array.length tasks - 1] pool workers plus the calling domain, and
    returns when all have finished. Tasks must capture their own
    exceptions; an escaping exception kills a worker's usefulness for
    the section but is swallowed, never re-raised here. *)
val run_tasks : t -> (unit -> unit) array -> unit

(** Number of worker domains currently spawned (for tests/telemetry). *)
val spawned : t -> int
