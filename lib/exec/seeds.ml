(* SplitMix64 (Steele–Lea–Flood), on OCaml's 63-bit ints. The golden-gamma
   increment walks the state; the finaliser is the standard xor-shift
   multiply avalanche. Masking to 62 bits keeps results positive and
   identical on every 64-bit platform. *)

(* The reference 64-bit constants truncated to OCaml's 62-bit int range
   (top bits dropped, oddness preserved) — same avalanche structure. *)
let mask = (1 lsl 62) - 1
let golden = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land mask

let derive ~seed i = mix (seed + ((i + 1) * golden))

let state ~seed ~stream =
  let s = derive ~seed stream in
  Random.State.make [| mix s; mix (s + golden); mix (s + (2 * golden)) |]
