(** Deterministic seed-splitting (SplitMix64-style).

    Every estimation trial must draw its randomness from a stream that
    depends only on the root seed and the trial's {e index} — never on
    which domain ran it or how trials were chunked — so that an estimate
    is bit-identical for any [jobs] count. {!derive} hashes
    [(seed, index)] through the SplitMix64 finaliser (a bijective
    avalanche mix, so distinct indices cannot collide into correlated
    streams); {!state} builds a [Random.State.t] from three derived
    words. *)

(** [derive ~seed i] — the [i]-th child seed of [seed]. Total (any
    [int] index, negative included) and deterministic across runs,
    architectures and domain counts. *)
val derive : seed:int -> int -> int

(** [state ~seed ~stream] — a fresh PRNG for stream [stream] of [seed].
    Equal arguments give observationally equal states. *)
val state : seed:int -> stream:int -> Random.State.t
