type t = {
  mutex : Mutex.t;
  work : Condition.t; (* signalled when the queue gains a task *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
}

let max_workers = 32

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let worker_loop pool =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stopping && Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (* tasks wrap their own failures; a stray exception must not kill
         the domain mid-pool, so it is dropped here *)
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

let create () =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    workers = [];
    stopping = false;
  }

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let shared_pool = lazy (
  let pool = create () in
  at_exit (fun () -> shutdown pool);
  pool)

let shared () = Lazy.force shared_pool

let spawned pool =
  Mutex.lock pool.mutex;
  let n = List.length pool.workers in
  Mutex.unlock pool.mutex;
  n

(* Under [pool.mutex]: grow the pool towards [want] workers. *)
let ensure_workers pool want =
  let have = List.length pool.workers in
  let want = min want max_workers in
  for _ = have + 1 to want do
    pool.workers <- Domain.spawn (fun () -> worker_loop pool) :: pool.workers
  done

let run_tasks pool tasks =
  let n = Array.length tasks in
  if n = 1 then tasks.(0) ()
  else if n > 1 then begin
    (* completion latch: workers run tasks 1..n-1, the caller task 0 *)
    let remaining = ref (n - 1) in
    let done_ = Condition.create () in
    let wrap task () =
      (try task () with _ -> ());
      Mutex.lock pool.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast done_;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    ensure_workers pool (n - 1);
    for i = 1 to n - 1 do
      Queue.push (wrap tasks.(i)) pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    tasks.(0) ();
    Mutex.lock pool.mutex;
    while !remaining > 0 do
      Condition.wait done_ pool.mutex
    done;
    Mutex.unlock pool.mutex
  end
