module Budget = Ac_runtime.Budget
module Trace = Ac_obs.Trace
module Metrics = Ac_obs.Metrics

type t = { seed : int; jobs : int; span : Trace.span option }

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let make ?jobs ~seed () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  { seed; jobs; span = None }

let sequential ~seed = { seed; jobs = 1; span = None }
let jobs t = t.jobs
let seed t = t.seed
let split t i = { t with seed = Seeds.derive ~seed:t.seed i }
let state t ~stream = Seeds.state ~seed:t.seed ~stream
let with_span t span = { t with span }
let span t = t.span

let trials_total =
  lazy
    (Metrics.counter Metrics.global "acq_trials_total"
       ~help:"Independent estimation trials executed by the engine")

let trial_duration =
  lazy
    (Metrics.histogram Metrics.global "acq_trial_duration_ms"
       ~help:"Wall-clock duration of traced engine trials (milliseconds)")

(* One trial, with observability. Untraced ([t.span = None], the default)
   this is one branch and one atomic increment on top of [k]; traced it
   opens a per-trial span, attributes the trial's tick delta on [slice]
   to it and feeds the wall duration to the latency histogram. Nothing
   here touches [k]'s randomness — traced and untraced runs are
   bit-identical. *)
let observed_trial t ~slice i k =
  Metrics.incr (Lazy.force trials_total);
  match t.span with
  | None -> k ()
  | Some _ ->
      let sp = Trace.child ~tags:[ ("trial", string_of_int i) ] t.span "trial" in
      let ticks0 = Budget.ticks slice in
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          Trace.stop ~ticks:(Budget.ticks slice - ticks0) sp;
          Metrics.observe
            (Lazy.force trial_duration)
            ((Unix.gettimeofday () -. t0) *. 1000.0))
        k

let run_sequential ~budget t ~trials f =
  Array.init trials (fun i ->
      Budget.tick budget;
      observed_trial t ~slice:budget i (fun () ->
          f ~rng:(Seeds.state ~seed:t.seed ~stream:i) ~budget i))

(* Rank failures so the re-raised error is deterministic: a sibling
   cancelled by the first trip must never shadow the trip itself. *)
let is_cancellation = function
  | Budget.Budget_exceeded { limit = Budget.Cancelled; _ } -> true
  | _ -> false

let run ?(budget = Budget.none) t ~trials f =
  if trials <= 0 then [||]
  else begin
    let jobs = min t.jobs trials in
    if jobs <= 1 || Pool.in_worker () then run_sequential ~budget t ~trials f
    else begin
      let slices = Budget.split ~into:jobs budget in
      let results = Array.make trials None in
      let failures = Array.make jobs None in
      let cancel_siblings me =
        Array.iteri
          (fun c slice ->
            if c <> me && slice != budget then
              Budget.cancel ~note:"sibling trial chunk failed" slice)
          slices
      in
      (* contiguous chunks: chunk c owns [c*q + min c r, ...) — same
         index→trial mapping for every jobs count *)
      let q = trials / jobs and r = trials mod jobs in
      let chunk c =
        let lo = (c * q) + min c r in
        let hi = lo + q + (if c < r then 1 else 0) in
        (lo, hi)
      in
      let task c () =
        let lo, hi = chunk c in
        let slice = slices.(c) in
        try
          for i = lo to hi - 1 do
            Budget.tick slice;
            results.(i) <-
              Some
                (observed_trial t ~slice i (fun () ->
                     f ~rng:(Seeds.state ~seed:t.seed ~stream:i) ~budget:slice i))
          done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          failures.(c) <- Some (e, bt);
          cancel_siblings c
      in
      Pool.run_tasks (Pool.shared ()) (Array.init jobs task);
      (* every worker has joined: account the children's work, then
         surface the first real failure (cancellations only echo it) *)
      Array.iter
        (fun slice -> if slice != budget then Budget.absorb budget slice)
        slices;
      let first_failure =
        let pick best c =
          match (best, failures.(c)) with
          | None, f -> f
          | Some (e, _), Some ((e', _) as f) when is_cancellation e && not (is_cancellation e') ->
              Some f
          | best, _ -> best
        in
        List.fold_left pick None (List.init jobs Fun.id)
      in
      match first_failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.map
            (function
              | Some v -> v
              | None -> invalid_arg "Engine.run: missing trial result")
            results
    end
  end
