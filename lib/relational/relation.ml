module Error = Ac_runtime.Error

(* Sorted projection of a sealed relation: rows filtered by the equality
   pattern, projected to [positions], lex-sorted and deduplicated, with a
   CSR (offset-compressed) index over the first projected column. *)
type cols = {
  columns : Column.t array;
  rows : int;
  dict0 : Column.t;
  offsets0 : Column.t; (* length |dict0| + 1; row range of dict0.(k) *)
}

type sealed = {
  primary : cols; (* identity projection: the relation itself *)
  dicts : Column.t array; (* per-column sorted distinct values *)
  projections : (string, cols) Hashtbl.t; (* memo, keyed by permutation *)
  lock : Mutex.t; (* guards [projections] across server threads *)
}

type repr =
  | Building of unit Tuple.Table.t
  | Sealed of sealed
  | Complement of { base : t; universe_size : int }

and t = { arity : int; mutable repr : repr }

(* Phase transitions are idempotent and rare; one global lock is enough
   and keeps the sealed record free of transition state. *)
let seal_lock = Mutex.create ()

let create ~arity =
  if arity < 1 then invalid_arg "Relation.create: arity must be positive";
  { arity; repr = Building (Tuple.Table.create 64) }

let arity r = r.arity

let pow_saturating base exp =
  let rec go acc n =
    if n = 0 then acc
    else if acc > max_int / base then max_int
    else go (acc * base) (n - 1)
  in
  if base = 0 then if exp = 0 then 1 else 0 else go 1 exp

let cardinality r =
  match r.repr with
  | Building tbl -> Tuple.Table.length tbl
  | Sealed s -> s.primary.rows
  | Complement { base; universe_size } ->
      let total = pow_saturating universe_size r.arity in
      let b = match base.repr with
        | Sealed s -> s.primary.rows
        | Building tbl -> Tuple.Table.length tbl
        | Complement _ -> 0
      in
      if total = max_int then max_int else total - b

let is_sealed r =
  match r.repr with Building _ -> false | Sealed _ | Complement _ -> true

let is_complement r =
  match r.repr with Complement _ -> true | _ -> false

let complement_base r =
  match r.repr with
  | Complement { base; universe_size } -> Some (base, universe_size)
  | _ -> None

let add r tuple =
  if Array.length tuple <> r.arity then
    invalid_arg "Relation.add: tuple length does not match arity";
  match r.repr with
  | Building tbl ->
      if not (Tuple.Table.mem tbl tuple) then Tuple.Table.replace tbl tuple ()
  | Sealed _ | Complement _ ->
      Error.raise_e
        (Error.Sealed_mutation
           "Relation.add: relation is sealed; copy it to start a new build \
            phase")

(* --- sealing: builder table -> columnar --- *)

let sorted_tuples_of_table tbl =
  let n = Tuple.Table.length tbl in
  let rows = Array.make n [||] in
  let i = ref 0 in
  Tuple.Table.iter
    (fun t () ->
      rows.(!i) <- t;
      incr i)
    tbl;
  Array.sort Tuple.compare rows;
  rows

(* Lex-sorted, deduplicated rows -> columns + CSR over column 0. *)
let cols_of_sorted_rows ~arity rows =
  let n = Array.length rows in
  let columns = Array.init arity (fun _ -> Column.create n) in
  Array.iteri
    (fun i t -> Array.iteri (fun j v -> Column.set columns.(j) i v) t)
    rows;
  let distinct0 = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || rows.(i).(0) <> rows.(i - 1).(0) then incr distinct0
  done;
  let dict0 = Column.create !distinct0 in
  let offsets0 = Column.create (!distinct0 + 1) in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || rows.(i).(0) <> rows.(i - 1).(0) then begin
      Column.set dict0 !k rows.(i).(0);
      Column.set offsets0 !k i;
      incr k
    end
  done;
  Column.set offsets0 !distinct0 n;
  { columns; rows = n; dict0; offsets0 }

let dicts_of_cols ~arity primary =
  Array.init arity (fun j ->
      if j = 0 then primary.dict0
      else begin
        let n = primary.rows in
        let vals = Array.init n (Column.get primary.columns.(j)) in
        Array.sort Int.compare vals;
        let distinct = ref 0 in
        Array.iteri
          (fun i v -> if i = 0 || v <> vals.(i - 1) then incr distinct)
          vals;
        let d = Column.create !distinct in
        let k = ref 0 in
        Array.iteri
          (fun i v ->
            if i = 0 || v <> vals.(i - 1) then begin
              Column.set d !k v;
              incr k
            end)
          vals;
        d
      end)

let sealed_of_rows ~arity rows =
  let primary = cols_of_sorted_rows ~arity rows in
  {
    primary;
    dicts = dicts_of_cols ~arity primary;
    projections = Hashtbl.create 4;
    lock = Mutex.create ();
  }

let of_sorted ~arity rows =
  if arity < 1 then invalid_arg "Relation.of_sorted: arity must be positive";
  Array.iteri
    (fun i t ->
      if Array.length t <> arity then
        invalid_arg "Relation.of_sorted: tuple length does not match arity";
      if i > 0 && Tuple.compare rows.(i - 1) t >= 0 then
        invalid_arg
          "Relation.of_sorted: rows must be strictly ascending (lex-sorted, \
           deduplicated)")
    rows;
  { arity; repr = Sealed (sealed_of_rows ~arity rows) }

let seal r =
  Mutex.lock seal_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock seal_lock)
    (fun () ->
      match r.repr with
      | Sealed _ | Complement _ -> ()
      | Building tbl ->
          r.repr <- Sealed (sealed_of_rows ~arity:r.arity (sorted_tuples_of_table tbl)))

let sealed_exn r =
  match r.repr with
  | Sealed s -> s
  | Building _ -> invalid_arg "Relation: sealed columnar access on a builder"
  | Complement _ ->
      invalid_arg "Relation: sealed columnar access on a complement view"

let sealed_cols r =
  match r.repr with Sealed s -> Some s.primary | _ -> None

let dict r j = (sealed_exn r).dicts.(j)

(* --- membership --- *)

let mem_sealed s tuple =
  let lo = ref 0 and hi = ref s.primary.rows in
  let arity = Array.length s.primary.columns in
  let j = ref 0 in
  while !j < arity && !lo < !hi do
    let l, h = Column.equal_range s.primary.columns.(!j) ~lo:!lo ~hi:!hi tuple.(!j) in
    lo := l;
    hi := h;
    incr j
  done;
  !lo < !hi

let rec mem r tuple =
  match r.repr with
  | Building tbl -> Tuple.Table.mem tbl tuple
  | Sealed s -> mem_sealed s tuple
  | Complement { base; universe_size } ->
      Array.for_all (fun v -> v >= 0 && v < universe_size) tuple
      && not (mem base tuple)

(* --- canonical iteration: ascending lexicographic order in every phase,
   so enumeration sequences (and everything downstream: atom lists,
   candidate orders, fingerprints) are representation-independent --- *)

let iter_universal ~universe_size ~arity f =
  if universe_size > 0 then begin
    let cursor = Array.make arity 0 in
    let rec bump i =
      if i >= 0 then begin
        cursor.(i) <- cursor.(i) + 1;
        if cursor.(i) = universe_size then begin
          cursor.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    let total = pow_saturating universe_size arity in
    for _ = 1 to total do
      f (Array.copy cursor);
      bump (arity - 1)
    done
  end

let iter f r =
  match r.repr with
  | Building tbl -> Array.iter f (sorted_tuples_of_table tbl)
  | Sealed s ->
      let arity = Array.length s.primary.columns in
      for i = 0 to s.primary.rows - 1 do
        f (Array.init arity (fun j -> Column.get s.primary.columns.(j) i))
      done
  | Complement { base; universe_size } ->
      (* lazy: lexicographic sweep of U^arity, skipping base members —
         never materialized. Base membership is checked against the
         sorted rows via a cursor when the base is sealed. *)
      let skip = mem base in
      iter_universal ~universe_size ~arity:r.arity (fun t ->
          if not (skip t) then f t)

let fold f r init =
  let acc = ref init in
  iter (fun t -> acc := f t !acc) r;
  !acc

let to_list r = List.rev (fold (fun t acc -> t :: acc) r [])

let of_list ~arity tuples =
  let r = create ~arity in
  List.iter (add r) tuples;
  r

(* [copy] always thaws: the copy is a fresh builder seeded with the
   source's tuples, whatever phase the source is in. Sealed data is
   immutable, so copying is the only way to resume mutation. *)
let copy r =
  let out = create ~arity:r.arity in
  iter (fun t -> add out t) r;
  out

let is_empty r = cardinality r = 0

let universal ~universe_size ~arity =
  let r = create ~arity in
  iter_universal ~universe_size ~arity (add r);
  r

(* --- complements --- *)

let complement_view ~universe_size r =
  match r.repr with
  | Complement { base; universe_size = u } when u = universe_size ->
      (* the complement of a complement over the same universe is the
         base itself; sealed relations are immutable, so sharing is safe *)
      base
  | _ ->
      seal r;
      { arity = r.arity; repr = Complement { base = r; universe_size } }

let default_complement_cap = 20_000_000

let complement ?(cap = default_complement_cap) ~universe_size r =
  let cells = pow_saturating universe_size r.arity in
  if cells > cap then
    Error.raise_e
      (Error.Complement_overflow { arity = r.arity; universe = universe_size; cap });
  let view = complement_view ~universe_size r in
  let out = create ~arity:r.arity in
  iter (add out) view;
  seal out;
  out

(* --- sorted projections (the join kernels' index) --- *)

let projection_key ~positions ~equalities =
  let buf = Buffer.create 32 in
  Array.iter (fun p -> Buffer.add_string buf (string_of_int p ^ ",")) positions;
  Buffer.add_char buf '|';
  Array.iter
    (fun (p, q) ->
      Buffer.add_string buf (string_of_int p ^ "=" ^ string_of_int q ^ ","))
    equalities;
  Buffer.contents buf

let is_identity_projection r ~positions ~equalities =
  Array.length equalities = 0
  && Array.length positions = r.arity
  && Array.for_all Fun.id (Array.mapi (fun i p -> i = p) positions)

let build_projection s ~positions ~equalities =
  let keep i =
    Array.for_all
      (fun (p, q) ->
        Column.get s.primary.columns.(p) i = Column.get s.primary.columns.(q) i)
      equalities
  in
  let out = ref [] in
  for i = s.primary.rows - 1 downto 0 do
    if keep i then
      out := Array.map (fun p -> Column.get s.primary.columns.(p) i) positions :: !out
  done;
  let rows = Array.of_list !out in
  Array.sort Tuple.compare rows;
  (* deduplicate: projections of distinct rows can collide *)
  let dedup = ref [] in
  for i = Array.length rows - 1 downto 0 do
    if i = 0 || Tuple.compare rows.(i) rows.(i - 1) <> 0 then
      dedup := rows.(i) :: !dedup
  done;
  cols_of_sorted_rows ~arity:(Array.length positions) (Array.of_list !dedup)

let projection r ~positions ~equalities =
  let s = sealed_exn r in
  if is_identity_projection r ~positions ~equalities then s.primary
  else begin
    let key = projection_key ~positions ~equalities in
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () ->
        match Hashtbl.find_opt s.projections key with
        | Some p -> p
        | None ->
            let p = build_projection s ~positions ~equalities in
            Hashtbl.add s.projections key p;
            p)
  end

(* --- stats --- *)

let active_domain r =
  match r.repr with
  | Building tbl ->
      let seen = Hashtbl.create 64 in
      Tuple.Table.iter
        (fun t () -> Array.iter (fun v -> Hashtbl.replace seen v ()) t)
        tbl;
      Hashtbl.length seen
  | Sealed s ->
      (* distinct over the union of the per-column dictionaries: k-way
         merge of sorted runs, counting value changes *)
      let cursors = Array.map (fun _ -> ref 0) s.dicts in
      let count = ref 0 and last = ref min_int in
      let exception Done in
      (try
         while true do
           let best = ref max_int in
           Array.iteri
             (fun j c ->
               if !c < Column.length s.dicts.(j) then
                 best := min !best (Column.get s.dicts.(j) !c))
             cursors;
           if !best = max_int then raise Done;
           if !best <> !last then begin
             incr count;
             last := !best
           end;
           Array.iteri
             (fun j c ->
               if !c < Column.length s.dicts.(j)
                  && Column.get s.dicts.(j) !c = !best
               then incr c)
             cursors
         done
       with Done -> ());
      !count
  | Complement { universe_size; _ } ->
      (* dense view: every universe element occurs unless the view is
         empty (only used for catalog stats, never on complements) *)
      if cardinality r = 0 then 0 else universe_size

(* --- equality and printing --- *)

let equal a b =
  match (a.repr, b.repr) with
  | ( Complement { base = ba; universe_size = ua },
      Complement { base = bb; universe_size = ub } )
    when ua = ub && a.arity = b.arity ->
      (* same universe: complements agree iff the bases do *)
      let card_eq =
        (match (ba.repr, bb.repr) with
        | Sealed sa, Sealed sb -> sa.primary.rows = sb.primary.rows
        | _ -> true)
      in
      card_eq && fold (fun t acc -> acc && mem bb t) ba true
      && fold (fun t acc -> acc && mem ba t) bb true
  | _ ->
      a.arity = b.arity
      && cardinality a = cardinality b
      && fold (fun t acc -> acc && mem b t) a true

let pp fmt r =
  match r.repr with
  | Complement { universe_size; _ } when cardinality r > 10_000 ->
      Format.fprintf fmt "<complement view: U^%d \\ base, universe %d>" r.arity
        universe_size
  | _ ->
      let tuples = to_list r in
      Format.fprintf fmt "{%s}"
        (String.concat "; " (List.map Tuple.to_string tuples))
