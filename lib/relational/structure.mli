(** Relational structures (and databases — the paper's [D] is exactly a
    structure, §1.1 and §2.2).

    A structure has a universe [{0, .., universe_size - 1}] and named
    relations. [size] implements the paper's [‖A‖]
    ([|sig| + |U| + Σ_R |R^A|·ar(R)], §2.2).

    Structures are two-phase, like their relations: a mutable build
    phase ([declare]/[add_fact]/[install]) and an immutable sealed phase
    entered through {!seal}. Mutating a sealed structure raises the
    typed [Ac_runtime.Error.Sealed_mutation]; {!copy} thaws back into a
    fresh build phase. *)

type t

val create : universe_size:int -> t
val universe_size : t -> int

(** Freeze the structure and every relation in it into the columnar
    query phase. Idempotent; returns its argument for chaining. After
    sealing, [declare]/[add_fact]/[install] raise the typed
    [Ac_runtime.Error.Sealed_mutation] (stable exit code, see
    docs/robustness.md). *)
val seal : t -> t

val is_sealed : t -> bool

(** Relation symbols present, sorted by name. *)
val symbols : t -> string list

val mem_symbol : t -> string -> bool

(** [declare s name ~arity] creates an empty relation for [name]; a no-op
    when [name] already exists with the same arity, [Invalid_argument]
    when the arities disagree. *)
val declare : t -> string -> arity:int -> unit

(** [add_fact s name tuple] inserts the fact [name(tuple)], declaring the
    symbol with the tuple's length as arity if needed. Raises
    [Invalid_argument] if a component is outside the universe, and the
    typed [Ac_runtime.Error.Sealed_mutation] after {!seal}. *)
val add_fact : t -> string -> Tuple.t -> unit

(** [install s name rel] attaches an existing relation — typically a
    sealed relation shared from another structure, or a
    {!Relation.complement_view} — under [name]. Build-phase only;
    raises [Invalid_argument] on an arity conflict. *)
val install : t -> string -> Relation.t -> unit

val relation : t -> string -> Relation.t
val relation_opt : t -> string -> Relation.t option
val arity_of : t -> string -> int

(** Maximum arity over the signature; [0] for an empty signature. *)
val max_arity : t -> int

(** The paper's [‖A‖]. *)
val size : t -> int

val holds : t -> string -> Tuple.t -> bool

(** [copy s] always thaws: an unsealed structure of fresh builder
    relations holding the same facts — the only way to resume mutation
    after {!seal}. *)
val copy : t -> t

(** [induced s elements] — the substructure induced on the given universe
    elements (deduplicated): element [i] of the sorted list becomes the
    new universe element [i]; facts keep only tuples fully inside the
    subset. Empty relations are preserved as declarations. *)
val induced : t -> int list -> t
val equal : t -> t -> bool

(** Stable hex digest of the structure's contents: universe size,
    declared relations (name and arity, including empty ones) and every
    fact. Insertion-order- and representation-insensitive — two
    structures that are {!equal} have equal fingerprints, whether built
    tuple-at-a-time or sealed columnar — and stable across processes,
    so it can key caches and name catalog entries on the wire. *)
val fingerprint : t -> string
val pp : Format.formatter -> t -> unit

(** [of_facts ~universe_size facts] builds a structure from
    [(name, tuple)] pairs. *)
val of_facts : universe_size:int -> (string * Tuple.t) list -> t

(** [with_singletons s] returns a copy with a unary relation ["=v"]
    = [{v}] for every universe element [v] — the constant-implementation
    trick from §1.1. *)
val with_singletons : t -> t

(** Name of the singleton relation for universe element [v]. *)
val singleton_symbol : int -> string
