(** Plain-text serialisation of structures/databases.

    Format (one item per line, [#] comments and blank lines ignored):

    {v
    # people and friendships
    universe 6
    F 0 1
    F 1 0
    P 3
    v}

    The first non-comment line must be [universe <n>] (a duplicate
    declaration is rejected). A line [relation <name> <arity>] declares a
    (possibly empty) relation; any other line is a fact
    [<name> <v_1> .. <v_k>], implicitly declaring the symbol with the
    fact's length as arity. A fact whose length disagrees with the
    symbol's declared (or previously used) arity is rejected with a
    message naming both arities. *)

(** Raises [Failure] with a line-numbered message on malformed input.
    [name], when given, prefixes every message (the loaders pass the file
    path). [max_bytes] caps the accepted input size. *)
val of_string : ?name:string -> ?max_bytes:int -> string -> Structure.t

(** Raises [Failure] (prefixed with the file path) on malformed input or
    when the file exceeds [max_bytes]; the size check happens before the
    file is read into memory. *)
val load : ?max_bytes:int -> string -> Structure.t

(** {!load} with failures as typed errors: missing/unreadable file and a
    tripped size cap map to [Io], malformed content to [Parse] with the
    path as [source]. Never raises. *)
val load_result :
  ?max_bytes:int -> string -> (Structure.t, Ac_runtime.Error.t) result

(** A loaded structure together with its {!Structure.fingerprint} —
    computed once at load time so the server catalog and the result
    cache share one definition of identity. *)
type loaded = { db : Structure.t; fingerprint : string }

(** {!load_result}, plus the fingerprint. *)
val load_fingerprinted :
  ?max_bytes:int -> string -> (loaded, Ac_runtime.Error.t) result

(** Read a database from a channel until end of input (the CLI's
    [--db -]). [name] (default ["<stdin>"]) labels errors; an input
    larger than [max_bytes] is an [Io] error, an empty or truncated
    stream a [Parse] error like any other malformed text. Never
    raises. *)
val of_channel_result :
  ?name:string ->
  ?max_bytes:int ->
  in_channel ->
  (loaded, Ac_runtime.Error.t) result

val to_string : Structure.t -> string
val save : string -> Structure.t -> unit
