(** Flat integer columns backed by [Bigarray] — the storage primitive of
    sealed relations. A column is a C-layout [int] array outside the
    OCaml heap: scanning it never touches the GC, and slices of it are
    the operands of the join kernels (sorted-run intersection, range
    narrowing). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

(** Unchecked read — callers must have bracketed [i] inside the column
    (the kernels' inner loops already have). *)
val unsafe_get : t -> int -> int
val of_array : int array -> t
val to_array : t -> int array
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

(** [lower_bound c ~lo ~hi v] is the first index in [\[lo, hi)] holding a
    value [>= v] ([hi] when none). Requires [c] sorted on that range. *)
val lower_bound : t -> lo:int -> hi:int -> int -> int

(** First index in [\[lo, hi)] holding a value [> v]. *)
val upper_bound : t -> lo:int -> hi:int -> int -> int

(** [equal_range c ~lo ~hi v] is the half-open run of [v] inside
    [\[lo, hi)] — empty ([l, l]) when [v] does not occur. *)
val equal_range : t -> lo:int -> hi:int -> int -> int * int
