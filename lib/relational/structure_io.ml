let of_string ?name ?max_bytes text =
  let prefix = match name with None -> "" | Some n -> n ^ ": " in
  (match max_bytes with
  | Some cap when String.length text > cap ->
      failwith
        (Printf.sprintf "%sinput is %d bytes, over the %d-byte cap" prefix
           (String.length text) cap)
  | _ -> ());
  let lines = String.split_on_char '\n' text in
  let structure = ref None in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let fail msg = failwith (Printf.sprintf "%sline %d: %s" prefix lineno msg) in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun t -> t <> "")
      in
      match (tokens, !structure) with
      | [], _ -> ()
      | [ "universe"; n ], None -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> structure := Some (Structure.create ~universe_size:n)
          | _ -> fail "invalid universe size")
      | [ "universe"; _ ], Some _ -> fail "duplicate universe declaration"
      | [ "relation"; name; arity ], Some s -> (
          match int_of_string_opt arity with
          | Some a when a >= 1 -> (
              match Structure.declare s name ~arity:a with
              | () -> ()
              | exception Invalid_argument msg -> fail msg)
          | _ -> fail "invalid relation arity")
      | _, None -> fail "expected `universe <n>` first"
      | name :: args, Some s -> (
          let values =
            List.map
              (fun a ->
                match int_of_string_opt a with
                | Some v -> v
                | None -> fail (Printf.sprintf "invalid element %S" a))
              args
          in
          if values = [] then fail "facts need at least one element";
          if Structure.mem_symbol s name then begin
            let declared = Structure.arity_of s name in
            if declared <> List.length values then
              fail
                (Printf.sprintf
                   "fact for %s has %d elements but %s is used with arity %d"
                   name (List.length values) name declared)
          end;
          match Structure.add_fact s name (Array.of_list values) with
          | () -> ()
          | exception Invalid_argument msg -> fail msg))
    lines;
  match !structure with
  | Some s -> s
  | None -> failwith (prefix ^ "empty database file (missing `universe <n>`)")

let slurp ?max_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      match max_bytes with
      | Some cap when n > cap ->
          Error
            (Printf.sprintf "file is %d bytes, over the %d-byte load cap" n cap)
      | _ -> Ok (really_input_string ic n))

let load ?max_bytes path =
  match slurp ?max_bytes path with
  | Ok content -> Structure.seal (of_string ~name:path content)
  | Error msg -> failwith (path ^ ": " ^ msg)

let load_result ?max_bytes path =
  match slurp ?max_bytes path with
  | exception Sys_error msg ->
      (* [Sys_error] messages already start with the path; the [Io] error
         carries it separately, so drop the duplicate. *)
      let msg =
        let prefix = path ^ ": " in
        let n = String.length prefix in
        if String.length msg > n && String.sub msg 0 n = prefix then
          String.sub msg n (String.length msg - n)
        else msg
      in
      Error (Ac_runtime.Error.Io { file = path; msg })
  | Error msg -> Error (Ac_runtime.Error.Io { file = path; msg })
  | Ok content -> (
      (* [of_string] without [name] keeps the message a bare line-numbered
         description; the path travels in the error's [source] field.
         Loaded databases are query-only: seal into the columnar phase
         here, so every downstream join reads columns, never hashtables. *)
      match of_string content with
      | s -> Ok (Structure.seal s)
      | exception Failure msg ->
          Error (Ac_runtime.Error.Parse { source = path; msg }))

type loaded = { db : Structure.t; fingerprint : string }

let load_fingerprinted ?max_bytes path =
  Result.map
    (fun db -> { db; fingerprint = Structure.fingerprint db })
    (load_result ?max_bytes path)

let of_channel_result ?(name = "<stdin>") ?max_bytes ic =
  let read_all () =
    let cap = match max_bytes with Some c -> c | None -> max_int in
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 65536 in
    let rec go () =
      let n = input ic chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        if Buffer.length buf > cap then
          Error
            (Printf.sprintf "input is over the %d-byte cap" cap)
        else go ()
      end
      else Ok (Buffer.contents buf)
    in
    go ()
  in
  match read_all () with
  | exception Sys_error msg -> Error (Ac_runtime.Error.Io { file = name; msg })
  | Error msg -> Error (Ac_runtime.Error.Io { file = name; msg })
  | Ok content -> (
      match of_string content with
      | db ->
          let db = Structure.seal db in
          Ok { db; fingerprint = Structure.fingerprint db }
      | exception Failure msg ->
          Error (Ac_runtime.Error.Parse { source = name; msg }))

let to_string s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "universe %d\n" (Structure.universe_size s));
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s %d\n" name (Structure.arity_of s name)))
    (Structure.symbols s);
  List.iter
    (fun name ->
      Relation.iter
        (fun tuple ->
          Buffer.add_string buf name;
          Array.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int v)) tuple;
          Buffer.add_char buf '\n')
        (Structure.relation s name))
    (Structure.symbols s);
  Buffer.contents buf

let save path s =
  let oc = open_out path in
  output_string oc (to_string s);
  close_out oc
