(** Finite relations over an integer universe — a two-phase store.

    A relation starts in the {b builder} phase (a hash table of tuples;
    exactly the historical construction surface: [create], [add],
    duplicates ignored). {!seal} freezes it into the {b sealed} phase: a
    columnar representation — one lex-sorted, deduplicated
    [Bigarray]-backed {!Column.t} per attribute, per-column sorted
    dictionaries of the distinct values, and a CSR-style
    (offset-compressed) index over the first column. Sealed relations
    are immutable: {!add} raises the typed
    [Ac_runtime.Error.Sealed_mutation] instead of silently writing, and
    the join kernels ({!projection}) read the columns directly.

    Iteration order is {b canonical} (ascending lexicographic) in every
    phase, so enumeration sequences — and everything derived from them:
    fingerprints, atom orders, join candidate orders — are
    representation-independent. *)

type t

(** Sorted projection of a sealed relation (also the sealed relation
    itself, via the identity projection): [rows] lex-sorted deduplicated
    tuples as per-column arrays, plus dictionary + CSR offsets over the
    first projected column ([dict0.(k)]'s rows are
    [offsets0.(k), offsets0.(k+1))]). *)
type cols = {
  columns : Column.t array;
  rows : int;
  dict0 : Column.t;
  offsets0 : Column.t;
}

val create : arity:int -> t
val arity : t -> int

(** Builder/sealed: exact tuple count. Complement views:
    [universe_size^arity - |base|], saturating at [max_int]. *)
val cardinality : t -> int

(** [add rel tuple] inserts [tuple]; duplicates are ignored. Raises
    [Invalid_argument] if the tuple length differs from the arity, and
    the typed [Ac_runtime.Error.Sealed_mutation] (as [Error.E]) if the
    relation is sealed. *)
val add : t -> Tuple.t -> unit

(** Freeze into the columnar phase. Idempotent, thread-safe; a no-op on
    already-sealed relations and complement views. *)
val seal : t -> unit

(** [of_sorted ~arity rows] builds a {e sealed} relation directly from
    rows that are already lex-sorted and deduplicated — the O(n) fast
    path for callers that produce canonical order themselves (the live
    main+delta merge in [Ac_live]): no builder hashtable, no re-sort.
    The array is not retained. Raises [Invalid_argument] when a row has
    the wrong length or the order is not strictly ascending. *)
val of_sorted : arity:int -> Tuple.t array -> t

val is_sealed : t -> bool

val mem : t -> Tuple.t -> bool

(** Ascending lexicographic order in every phase. On a complement view
    this sweeps [U^arity] lazily (never materializing), skipping base
    tuples — callers iterating complements pay the universe cost. *)
val iter : (Tuple.t -> unit) -> t -> unit

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list

val of_list : arity:int -> Tuple.t list -> t

(** [copy r] always thaws: a fresh {e builder} holding [r]'s tuples,
    whatever phase [r] is in — the only way to resume mutation after
    {!seal}. *)
val copy : t -> t

val is_empty : t -> bool

(** [complement_view ~universe_size rel] is the lazy negated relation
    [U^arity \ rel] (Definition 20) as a view: membership and iteration
    without materialization. Seals [rel] (the base must be stable). The
    complement of a complement over the same universe is the shared
    base. *)
val complement_view : universe_size:int -> t -> t

(** Materialize [U^arity \ rel] as a sealed relation. Raises the typed
    [Ac_runtime.Error.Complement_overflow] (as [Error.E]) when
    [universe_size^arity] exceeds [cap] (default 2·10^7) — callers that
    only need membership or iteration should use {!complement_view}. *)
val complement : ?cap:int -> universe_size:int -> t -> t

val default_complement_cap : int

(** [universal ~universe_size ~arity] is [U^arity], materialized. *)
val universal : universe_size:int -> arity:int -> t

(** Enumerate [U^arity] in lexicographic order. *)
val iter_universal : universe_size:int -> arity:int -> (Tuple.t -> unit) -> unit

(** [true] for complement views. *)
val is_complement : t -> bool

(** The (sealed) base and universe of a complement view. *)
val complement_base : t -> (t * int) option

(** The sealed columnar payload; [None] for builders and complement
    views. *)
val sealed_cols : t -> cols option

(** [dict r j] — sorted distinct values of column [j]. Sealed only;
    raises [Invalid_argument] otherwise. *)
val dict : t -> int -> Column.t

(** [projection r ~positions ~equalities] — rows satisfying every
    [t.(p) = t.(q)] for [(p, q)] in [equalities], projected to
    [positions] (in the given order), lex-sorted and deduplicated. This
    is the join kernels' index: memoized on the sealed relation (thread-
    safe), so repeated prepares over a catalog-resident relation reuse
    the sort. Sealed only; raises [Invalid_argument] otherwise. The
    identity projection returns the primary columns without copying. *)
val projection : t -> positions:int array -> equalities:(int * int) array -> cols

(** Distinct universe elements appearing in any tuple component. *)
val active_domain : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
