type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let length (c : t) = Bigarray.Array1.dim c
let get (c : t) i = Bigarray.Array1.get c i
let set (c : t) i v = Bigarray.Array1.set c i v

(* No bounds check: the kernels' inner loops call this with indices
   already bracketed by a [lo, hi) run. *)
let unsafe_get (c : t) i = Bigarray.Array1.unsafe_get c i

let of_array a =
  let c = create (Array.length a) in
  Array.iteri (fun i v -> set c i v) a;
  c

let to_array c = Array.init (length c) (get c)

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  Bigarray.Array1.blit
    (Bigarray.Array1.sub src src_pos len)
    (Bigarray.Array1.sub dst dst_pos len)

(* First index in [lo, hi) whose value is >= v; [hi] when none. *)
let lower_bound (c : t) ~lo ~hi v =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if unsafe_get c mid < v then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index in [lo, hi) whose value is > v; [hi] when none. *)
let upper_bound (c : t) ~lo ~hi v =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if unsafe_get c mid <= v then lo := mid + 1 else hi := mid
  done;
  !lo

(* Both bounds of the run of [v] inside [lo, hi): an empty range
   (lo', lo') when [v] is absent. *)
let equal_range c ~lo ~hi v =
  let l = lower_bound c ~lo ~hi v in
  if l >= hi || get c l <> v then (l, l) else (l, upper_bound c ~lo:l ~hi v)
