module Error = Ac_runtime.Error

type t = {
  universe_size : int;
  relations : (string, Relation.t) Hashtbl.t;
  mutable sealed : bool;
}

let create ~universe_size =
  if universe_size < 0 then invalid_arg "Structure.create: negative universe";
  { universe_size; relations = Hashtbl.create 16; sealed = false }

let universe_size s = s.universe_size
let is_sealed s = s.sealed

let seal s =
  if not s.sealed then begin
    Hashtbl.iter (fun _ r -> Relation.seal r) s.relations;
    s.sealed <- true
  end;
  s

let guard_mutation s op =
  if s.sealed then
    Error.raise_e
      (Error.Sealed_mutation
         (op ^ ": structure is sealed; Structure.copy thaws it into a new \
              build phase"))

let symbols s =
  Hashtbl.fold (fun name _ acc -> name :: acc) s.relations []
  |> List.sort String.compare

let mem_symbol s name = Hashtbl.mem s.relations name

let declare s name ~arity =
  match Hashtbl.find_opt s.relations name with
  | Some r ->
      if Relation.arity r <> arity then
        invalid_arg
          (Printf.sprintf "Structure.declare: %s redeclared with arity %d (was %d)"
             name arity (Relation.arity r))
  | None ->
      guard_mutation s "Structure.declare";
      Hashtbl.replace s.relations name (Relation.create ~arity)

let relation s name =
  match Hashtbl.find_opt s.relations name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Structure.relation: unknown symbol %s" name)

let relation_opt s name = Hashtbl.find_opt s.relations name

let install s name rel =
  (match Hashtbl.find_opt s.relations name with
  | Some r when Relation.arity r <> Relation.arity rel ->
      invalid_arg
        (Printf.sprintf "Structure.install: %s installed with arity %d (was %d)"
           name (Relation.arity rel) (Relation.arity r))
  | _ -> ());
  guard_mutation s "Structure.install";
  Hashtbl.replace s.relations name rel

let add_fact s name tuple =
  guard_mutation s "Structure.add_fact";
  Array.iter
    (fun v ->
      if v < 0 || v >= s.universe_size then
        invalid_arg
          (Printf.sprintf "Structure.add_fact: element %d outside universe of size %d"
             v s.universe_size))
    tuple;
  declare s name ~arity:(Array.length tuple);
  Relation.add (relation s name) tuple

let arity_of s name = Relation.arity (relation s name)

let max_arity s =
  Hashtbl.fold (fun _ r acc -> max acc (Relation.arity r)) s.relations 0

let size s =
  let facts =
    Hashtbl.fold
      (fun _ r acc -> acc + (Relation.cardinality r * Relation.arity r))
      s.relations 0
  in
  Hashtbl.length s.relations + s.universe_size + facts

let holds s name tuple =
  match relation_opt s name with
  | Some r -> Relation.mem r tuple
  | None -> false

let induced s elements =
  let elements = List.sort_uniq Int.compare elements in
  List.iter
    (fun v ->
      if v < 0 || v >= s.universe_size then invalid_arg "Structure.induced")
    elements;
  let renumber = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace renumber v i) elements;
  let out = create ~universe_size:(List.length elements) in
  Hashtbl.iter
    (fun name rel ->
      declare out name ~arity:(Relation.arity rel);
      Relation.iter
        (fun tuple ->
          if Array.for_all (Hashtbl.mem renumber) tuple then
            add_fact out name (Array.map (Hashtbl.find renumber) tuple))
        rel)
    s.relations;
  out

(* [copy] thaws: an unsealed structure of fresh builder relations, the
   only way to resume mutation after [seal]. *)
let copy s =
  let relations = Hashtbl.create (Hashtbl.length s.relations) in
  Hashtbl.iter (fun name r -> Hashtbl.replace relations name (Relation.copy r)) s.relations;
  { universe_size = s.universe_size; relations; sealed = false }

let fingerprint s =
  (* canonical rendering: sorted symbols, sorted tuples — the digest can
     see neither insertion order nor the storage phase (builder and
     sealed forms of the same facts digest identically) *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "universe %d\n" s.universe_size);
  List.iter
    (fun name ->
      let rel = relation s name in
      Buffer.add_string buf
        (Printf.sprintf "relation %s %d\n" name (Relation.arity rel));
      Relation.iter
        (fun tuple ->
          Buffer.add_string buf name;
          Array.iter
            (fun v -> Buffer.add_string buf (" " ^ string_of_int v))
            tuple;
          Buffer.add_char buf '\n')
        rel)
    (symbols s);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let equal a b =
  a.universe_size = b.universe_size
  && symbols a = symbols b
  && List.for_all (fun name -> Relation.equal (relation a name) (relation b name)) (symbols a)

let pp fmt s =
  Format.fprintf fmt "@[<v>universe: %d@," s.universe_size;
  List.iter
    (fun name -> Format.fprintf fmt "%s: %a@," name Relation.pp (relation s name))
    (symbols s);
  Format.fprintf fmt "@]"

let of_facts ~universe_size facts =
  let s = create ~universe_size in
  List.iter (fun (name, tuple) -> add_fact s name tuple) facts;
  s

let singleton_symbol v = "=" ^ string_of_int v

let with_singletons s =
  let out = copy s in
  for v = 0 to s.universe_size - 1 do
    add_fact out (singleton_symbol v) [| v |]
  done;
  out
