(** Exact rational arithmetic on native integers.

    Values are kept reduced (gcd 1) with a positive denominator. Native
    [int] (63-bit) components suffice for the small width-measure LPs this
    library solves; arithmetic raises {!Overflow} when a product would
    overflow, rather than wrapping silently — callers that feed the LP
    external data (the cost analyzer instantiating edge covers with
    catalog cardinalities) catch it and degrade to a typed result
    instead of crashing. *)

type t

(** Raised when a product of numerators/denominators would exceed the
    native 63-bit integer range. *)
exception Overflow

val zero : t
val one : t
val of_int : int -> t

(** [make num den] = num/den, reduced. Raises [Division_by_zero]. *)
val make : int -> int -> t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Division_by_zero]. *)
val div : t -> t -> t

val neg : t -> t
val abs : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit
