type t = { num : int; den : int } (* den > 0, gcd(|num|, den) = 1 *)

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Guarded multiplication: native ints are 63-bit; the LPs solved here
   keep coefficients tiny, so an overflow is exceptional — but callers
   that instantiate LPs with external data (the cost analyzer) need to
   catch it and degrade, hence a dedicated exception rather than a
   generic [Failure]. *)
let mul_int a b =
  if a = 0 || b = 0 then 0
  else begin
    let c = a * b in
    if c / b <> a then raise Overflow;
    c
  end

let normalize num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (Stdlib.abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let make num den = normalize num den
let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den

let add a b =
  (* reduce via gcd of denominators to delay overflow *)
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  normalize (mul_int a.num db + mul_int b.num da) (mul_int a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  (* cross-reduce before multiplying *)
  let g1 = gcd (Stdlib.abs a.num) b.den in
  let g2 = gcd (Stdlib.abs b.num) a.den in
  normalize
    (mul_int (a.num / g1) (b.num / g2))
    (mul_int (a.den / g2) (b.den / g1))

let div a b =
  if b.num = 0 then raise Division_by_zero;
  mul a { num = b.den * (if b.num < 0 then -1 else 1); den = Stdlib.abs b.num }

let abs a = { a with num = Stdlib.abs a.num }
let sign a = Stdlib.compare a.num 0

let compare a b = sign (sub a b)
let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_float a = float_of_int a.num /. float_of_int a.den

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)
