module Relation = Ac_relational.Relation

type t =
  | Leaf of int (* number of tuples that end here *)
  | Node of { total : int; keys : int array; children : (int, t) Hashtbl.t }

let depth t =
  let rec go acc = function
    | Leaf _ -> acc
    | Node { keys; children; _ } ->
        if Array.length keys = 0 then acc
        else go (acc + 1) (Hashtbl.find children keys.(0))
  in
  go 0 t

let weight = function Leaf n -> n | Node { total; _ } -> total

let child t v =
  match t with
  | Leaf _ -> invalid_arg "Trie.child: at a leaf"
  | Node { children; _ } -> Hashtbl.find_opt children v

let keys = function
  | Leaf _ -> invalid_arg "Trie.keys: at a leaf"
  | Node { keys; _ } -> keys

let num_keys = function
  | Leaf _ -> invalid_arg "Trie.num_keys: at a leaf"
  | Node { keys; _ } -> Array.length keys

let mem_key t v =
  match t with
  | Leaf _ -> invalid_arg "Trie.mem_key: at a leaf"
  | Node { children; _ } -> Hashtbl.mem children v

(* Mutable shape used during construction, frozen into [t] with the key
   sets sorted ascending — enumeration over a trie must be canonical so
   the trie path and the columnar path visit candidates in the same
   order (estimates depend on that order through the bounded oracle). *)
type builder =
  | B_leaf of { mutable count : int }
  | B_node of { mutable total : int; children : (int, builder) Hashtbl.t }

let build ?(keep = fun _ -> true) relation ~positions =
  let levels = Array.length positions in
  let rec insert node tuple level =
    match node with
    | B_leaf l -> l.count <- l.count + 1
    | B_node n ->
        let key = tuple.(positions.(level)) in
        let sub =
          match Hashtbl.find_opt n.children key with
          | Some s -> s
          | None ->
              let s =
                if level + 1 = levels then B_leaf { count = 0 }
                else B_node { total = 0; children = Hashtbl.create 4 }
              in
              Hashtbl.replace n.children key s;
              s
        in
        n.total <- n.total + 1;
        insert sub tuple (level + 1)
  in
  let root =
    if levels = 0 then B_leaf { count = 0 }
    else B_node { total = 0; children = Hashtbl.create 16 }
  in
  Relation.iter (fun tuple -> if keep tuple then insert root tuple 0) relation;
  let rec freeze = function
    | B_leaf { count } -> Leaf count
    | B_node { total; children } ->
        let keys =
          Hashtbl.fold (fun k _ acc -> k :: acc) children []
          |> List.sort Int.compare |> Array.of_list
        in
        let frozen = Hashtbl.create (Array.length keys) in
        Array.iter
          (fun k -> Hashtbl.replace frozen k (freeze (Hashtbl.find children k)))
          keys;
        Node { total; keys; children = frozen }
  in
  freeze root
