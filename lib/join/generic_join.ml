module Relation = Ac_relational.Relation
module Budget = Ac_runtime.Budget

type atom = {
  scope : int array;
  relation : Relation.t;
}

let atom scope relation =
  if Array.length scope <> Relation.arity relation then
    invalid_arg "Generic_join.atom: scope length must equal relation arity";
  { scope; relation }

(* Per-atom preprocessed index: the distinct variables of the scope in
   global-order position, and a trie over their first-occurrence tuple
   positions (tuples violating repeated-variable equality are dropped at
   build time). *)
type indexed = {
  vars_in_order : int array;
  trie : Trie.t;
}

type prepared = {
  num_vars : int;
  universe_size : int;
  order : int array;
  indexed : indexed array;
  at_level : (int * int) list array; (* order position → (atom, level) *)
  budget : Budget.t; (* ticked once per search-tree node *)
}

let index_atom ~position a =
  let seen = Hashtbl.create 8 in
  let distinct = ref [] in
  Array.iteri
    (fun pos v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v pos;
        distinct := v :: !distinct
      end)
    a.scope;
  let distinct = List.rev !distinct in
  let sorted =
    List.sort (fun u v -> Int.compare position.(u) position.(v)) distinct
  in
  let positions = Array.of_list (List.map (Hashtbl.find seen) sorted) in
  let keep tuple =
    let ok = ref true in
    Array.iteri
      (fun pos v ->
        let first = Hashtbl.find seen v in
        if tuple.(pos) <> tuple.(first) then ok := false)
      a.scope;
    !ok
  in
  { vars_in_order = Array.of_list sorted; trie = Trie.build ~keep a.relation ~positions }

let validate ~num_vars atoms =
  List.iter
    (fun a ->
      Array.iter
        (fun v ->
          if v < 0 || v >= num_vars then
            invalid_arg "Generic_join: scope variable out of range")
        a.scope)
    atoms

let default_order ~num_vars atoms =
  let best = Array.make num_vars max_int in
  List.iter
    (fun a ->
      let c = Relation.cardinality a.relation in
      Array.iter (fun v -> if c < best.(v) then best.(v) <- c) a.scope)
    atoms;
  let vars = List.init num_vars Fun.id in
  let sorted =
    List.stable_sort (fun u v -> Int.compare best.(u) best.(v)) vars
  in
  Array.of_list sorted

let prepare ~num_vars ~universe_size ?(budget = Budget.none) ?order atoms =
  validate ~num_vars atoms;
  let order =
    match order with
    | Some o ->
        if Array.length o <> num_vars then invalid_arg "Generic_join: bad order";
        Array.copy o
    | None -> default_order ~num_vars atoms
  in
  let position = Array.make num_vars (-1) in
  Array.iteri (fun i v -> position.(v) <- i) order;
  if Array.exists (fun p -> p < 0) position then
    invalid_arg "Generic_join: order is not a permutation";
  let indexed = Array.of_list (List.map (index_atom ~position) atoms) in
  let at_level = Array.make num_vars [] in
  Array.iteri
    (fun ai idx ->
      Array.iteri
        (fun level v ->
          at_level.(position.(v)) <- (ai, level) :: at_level.(position.(v)))
        idx.vars_in_order)
    indexed;
  { num_vars; universe_size; order; indexed; at_level; budget }

let run ?domains p ~f =
  let nodes = Array.map (fun idx -> idx.trie) p.indexed in
  let assignment = Array.make p.num_vars (-1) in
  let domain_of v =
    match domains with
    | Some ds -> ds.(v)
    | None -> None
  in
  let stop = ref false in
  let rec assign i =
    Budget.tick p.budget;
    if !stop then ()
    else if i = p.num_vars then begin
      if not (f (Array.copy assignment)) then stop := true
    end
    else begin
      let v = p.order.(i) in
      let participants = p.at_level.(i) in
      match participants with
      | [] ->
          let values =
            match domain_of v with
            | Some l -> List.sort_uniq Int.compare l
            | None -> List.init p.universe_size Fun.id
          in
          List.iter
            (fun value ->
              if not !stop then begin
                assignment.(v) <- value;
                assign (i + 1)
              end)
            values;
          assignment.(v) <- -1
      | _ ->
          (* candidates: keys of the smallest participating trie, filtered
             by the others and by the domain *)
          let smallest =
            List.fold_left
              (fun (bai, bn) (ai, _) ->
                let n = Trie.num_keys nodes.(ai) in
                if n < bn then (ai, n) else (bai, bn))
              (-1, max_int) participants
            |> fst
          in
          let candidates =
            match domain_of v with
            | Some l ->
                List.sort_uniq Int.compare l
                |> List.filter (Trie.mem_key nodes.(smallest))
            | None -> Trie.keys nodes.(smallest)
          in
          let saved = List.map (fun (ai, _) -> (ai, nodes.(ai))) participants in
          List.iter
            (fun value ->
              if not !stop then begin
                let ok = ref true in
                List.iter
                  (fun (ai, _) ->
                    if !ok then
                      match Trie.child nodes.(ai) value with
                      | Some sub -> nodes.(ai) <- sub
                      | None -> ok := false)
                  participants;
                if !ok then begin
                  assignment.(v) <- value;
                  assign (i + 1)
                end;
                List.iter (fun (ai, node) -> nodes.(ai) <- node) saved
              end)
            candidates;
          assignment.(v) <- -1
    end
  in
  assign 0

let iter ~num_vars ~universe_size ?budget ?domains ?order atoms ~f =
  run ?domains (prepare ~num_vars ~universe_size ?budget ?order atoms) ~f

let find ~num_vars ~universe_size ?budget ?domains ?order atoms =
  let result = ref None in
  iter ~num_vars ~universe_size ?budget ?domains ?order atoms ~f:(fun a ->
      result := Some a;
      false);
  !result

let exists ~num_vars ~universe_size ?budget ?domains ?order atoms =
  Option.is_some (find ~num_vars ~universe_size ?budget ?domains ?order atoms)

let count ~num_vars ~universe_size ?budget ?domains ?order atoms =
  let n = ref 0 in
  iter ~num_vars ~universe_size ?budget ?domains ?order atoms ~f:(fun _ ->
      incr n;
      true);
  !n

let solutions ~num_vars ~universe_size ?budget ?domains ?order atoms =
  let acc = ref [] in
  iter ~num_vars ~universe_size ?budget ?domains ?order atoms ~f:(fun a ->
      acc := a :: !acc;
      true);
  List.rev !acc
