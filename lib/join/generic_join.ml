module Relation = Ac_relational.Relation
module Column = Ac_relational.Column
module Budget = Ac_runtime.Budget
module Gallop = Ac_kernels.Gallop
module Intset = Ac_kernels.Intset

type atom = {
  scope : int array;
  relation : Relation.t;
}

let atom scope relation =
  if Array.length scope <> Relation.arity relation then
    invalid_arg "Generic_join.atom: scope length must equal relation arity";
  { scope; relation }

type impl = Trie | Columnar

(* Process-wide default, settable so the bench harness and the
   differential tests can pit the two paths against each other. *)
let default_impl_ref = Atomic.make Columnar
let set_default_impl i = Atomic.set default_impl_ref i
let default_impl () = Atomic.get default_impl_ref

(* Per-atom preprocessed index over the first-occurrence positions of the
   scope's distinct variables (in global elimination order; tuples
   violating repeated-variable equality are dropped at build time):
   either a trie (the reference path) or a sorted columnar projection
   read by the leapfrog kernels. *)
type index = I_trie of Trie.t | I_cols of Relation.cols

type indexed = {
  vars_in_order : int array;
  index : index;
}

(* Complement views never get an index: materializing or even
   enumerating [U^k \ R] is exactly the blow-up the lazy views exist to
   avoid. They join as {e filter atoms}: once the last of their
   variables binds, one O(k log n) membership probe on the base decides
   the whole atom. Both impls do this identically, so enumeration
   order — and everything downstream of it — cannot diverge. *)
type filter = {
  f_scope : int array;
  f_relation : Relation.t;
}

type prepared = {
  num_vars : int;
  universe_size : int;
  impl : impl;
  order : int array;
  indexed : indexed array;
  at_level : (int * int) list array; (* order position → (atom, level) *)
  parts_at : (int * int) array array; (* at_level as arrays, for the kernels *)
  filters_at : filter list array; (* order position → filters now decidable *)
  start_filters : filter list; (* variable-free filters, checked once *)
  budget : Budget.t; (* ticked once per search-tree node *)
  pool : state list Atomic.t;
      (* recycled columnar run states: the oracle path runs thousands of
         tiny joins per second over one [prepared], and cursor-state
         allocation would dominate them *)
}

(* Per-run cursor state, so one [prepared] can serve concurrent runs
   (the parallel estimator shares prepares across trial domains). A
   state is owned by exactly one run at a time; columnar states return
   to the pool on normal completion (never after an exception — a
   half-unwound trie walk or cursor stack is not worth repairing). *)
and state =
  | S_trie of Trie.t array
  | S_cols of cols_state

and cols_state = {
  los : int array array; (* per atom: row-range stack, one slot per level *)
  his : int array array;
  with_dom : Gallop.run array array;
      (* per order position: leapfrog cursors for that level's
         participants, preceded by a slot for the domain run *)
  no_dom : Gallop.run array array;
      (* the same run records minus the domain slot — which array a run
         uses is decided per run in [sel]/[offs] *)
  domcols : Column.t option array;
      (* per order position: lazily-created scratch column the domain
         values are copied into (capacity = universe) *)
  sel : Gallop.run array array; (* per order position: chosen cursor array *)
  offs : int array; (* 1 when the domain slot is active at that level *)
  pos : int array array; (* per order position: leapfrog cursor scratch *)
  bounds : int array array; (* per order position: value-range scratch *)
}

let scope_index a =
  let seen = Hashtbl.create 8 in
  let distinct = ref [] in
  Array.iteri
    (fun pos v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v pos;
        distinct := v :: !distinct
      end)
    a.scope;
  (seen, List.rev !distinct)

let index_atom ~impl ~position a =
  let seen, distinct = scope_index a in
  let sorted =
    List.sort (fun u v -> Int.compare position.(u) position.(v)) distinct
  in
  let positions = Array.of_list (List.map (Hashtbl.find seen) sorted) in
  let index =
    match impl with
    | Trie ->
        let keep tuple =
          let ok = ref true in
          Array.iteri
            (fun pos v ->
              let first = Hashtbl.find seen v in
              if tuple.(pos) <> tuple.(first) then ok := false)
            a.scope;
          !ok
        in
        I_trie (Trie.build ~keep a.relation ~positions)
    | Columnar ->
        let equalities = ref [] in
        Array.iteri
          (fun pos v ->
            let first = Hashtbl.find seen v in
            if pos <> first then equalities := (pos, first) :: !equalities)
          a.scope;
        Relation.seal a.relation;
        I_cols
          (Relation.projection a.relation ~positions
             ~equalities:(Array.of_list (List.rev !equalities)))
  in
  { vars_in_order = Array.of_list sorted; index }

let validate ~num_vars atoms =
  List.iter
    (fun a ->
      Array.iter
        (fun v ->
          if v < 0 || v >= num_vars then
            invalid_arg "Generic_join: scope variable out of range")
        a.scope)
    atoms

let default_order ~num_vars atoms =
  let best = Array.make num_vars max_int in
  List.iter
    (fun a ->
      let c = Relation.cardinality a.relation in
      Array.iter (fun v -> if c < best.(v) then best.(v) <- c) a.scope)
    atoms;
  let vars = List.init num_vars Fun.id in
  let sorted =
    List.stable_sort (fun u v -> Int.compare best.(u) best.(v)) vars
  in
  Array.of_list sorted

let prepare ~num_vars ~universe_size ?(budget = Budget.none) ?impl ?order atoms
    =
  let impl = match impl with Some i -> i | None -> default_impl () in
  validate ~num_vars atoms;
  let order =
    match order with
    | Some o ->
        if Array.length o <> num_vars then invalid_arg "Generic_join: bad order";
        Array.copy o
    | None -> default_order ~num_vars atoms
  in
  let position = Array.make num_vars (-1) in
  Array.iteri (fun i v -> position.(v) <- i) order;
  if Array.exists (fun p -> p < 0) position then
    invalid_arg "Generic_join: order is not a permutation";
  let positive, complements =
    List.partition (fun a -> not (Relation.is_complement a.relation)) atoms
  in
  let indexed =
    Array.of_list (List.map (index_atom ~impl ~position) positive)
  in
  let at_level = Array.make num_vars [] in
  Array.iteri
    (fun ai idx ->
      Array.iteri
        (fun level v ->
          at_level.(position.(v)) <- (ai, level) :: at_level.(position.(v)))
        idx.vars_in_order)
    indexed;
  let filters_at = Array.make num_vars [] in
  let start_filters = ref [] in
  List.iter
    (fun a ->
      let flt = { f_scope = a.scope; f_relation = a.relation } in
      if Array.length a.scope = 0 then start_filters := flt :: !start_filters
      else begin
        let last =
          Array.fold_left (fun acc v -> max acc position.(v)) (-1) a.scope
        in
        filters_at.(last) <- flt :: filters_at.(last)
      end)
    complements;
  {
    num_vars;
    universe_size;
    impl;
    order;
    indexed;
    at_level;
    parts_at = Array.map Array.of_list at_level;
    filters_at;
    start_filters = !start_filters;
    budget;
    pool = Atomic.make [];
  }

let cols_of idx =
  match idx.index with
  | I_cols c -> c
  | I_trie _ -> invalid_arg "Generic_join: trie index in columnar run"

let filter_ok assignment flt =
  Relation.mem flt.f_relation
    (Array.map (fun v -> assignment.(v)) flt.f_scope)

let fresh_cols_state p =
  let acols = Array.map cols_of p.indexed in
  let depth idx = Array.length idx.vars_in_order in
  let los = Array.map (fun idx -> Array.make (depth idx + 1) 0) p.indexed in
  let his =
    Array.mapi
      (fun ai idx ->
        let a = Array.make (depth idx + 1) 0 in
        a.(0) <- acols.(ai).Relation.rows;
        a)
      p.indexed
  in
  let no_dom =
    Array.init p.num_vars (fun i ->
        Array.map
          (fun (ai, lvl) ->
            { Gallop.col = acols.(ai).Relation.columns.(lvl); lo = 0; hi = 0 })
          p.parts_at.(i))
  in
  let with_dom =
    (* slot 0 is the domain cursor; slots 1.. SHARE the no-dom records,
       so per-node bound rewrites are visible through either array *)
    Array.map
      (fun base ->
        Array.append [| { Gallop.col = Column.create 0; lo = 0; hi = 0 } |] base)
      no_dom
  in
  {
    los;
    his;
    with_dom;
    no_dom;
    domcols = Array.make p.num_vars None;
    sel = Array.copy no_dom;
    offs = Array.make p.num_vars 0;
    pos = Array.map (fun rs -> Array.make (max 1 (Array.length rs)) 0) with_dom;
    bounds =
      Array.map (fun rs -> Array.make (2 * max 1 (Array.length rs)) 0) with_dom;
  }

(* Treiber stack, CAS-retry via recursion. *)
let rec pool_take pool =
  match Atomic.get pool with
  | [] -> None
  | s :: rest as old ->
      if Atomic.compare_and_set pool old rest then Some s else pool_take pool

let rec pool_give pool s =
  let old = Atomic.get pool in
  if not (Atomic.compare_and_set pool old (s :: old)) then pool_give pool s

let run ?domains ?(reuse = false) ?(diseqs = [||]) p ~f =
  (* canonical per-variable domains (ascending, deduplicated): arrays
     already in canonical order are used as-is, without copying *)
  let domain_arr = Array.make p.num_vars None in
  (match domains with
  | None -> ()
  | Some ds ->
      Array.iteri
        (fun v d ->
          match d with
          | None -> ()
          | Some a as dom ->
              let c = Intset.canon a in
              domain_arr.(v) <- (if c == a then dom else Some c))
        ds);
  let state =
    match p.impl with
    | Trie ->
        S_trie
          (Array.map
             (fun idx ->
               match idx.index with
               | I_trie t -> t
               | I_cols _ -> invalid_arg "Generic_join: mixed index")
             p.indexed)
    | Columnar -> (
        match pool_take p.pool with
        | Some s -> s
        | None -> S_cols (fresh_cols_state p))
  in
  (match state with
  | S_trie _ -> ()
  | S_cols cs ->
      for i = 0 to p.num_vars - 1 do
        match domain_arr.(p.order.(i)) with
        | Some arr when Array.length p.parts_at.(i) > 0 ->
            let len = Array.length arr in
            let dcol =
              match cs.domcols.(i) with
              | Some c when Column.length c >= len -> c
              | _ ->
                  let c = Column.create (max p.universe_size len) in
                  cs.domcols.(i) <- Some c;
                  c
            in
            for k = 0 to len - 1 do
              Column.set dcol k arr.(k)
            done;
            let r0 = cs.with_dom.(i).(0) in
            r0.Gallop.col <- dcol;
            r0.Gallop.lo <- 0;
            r0.Gallop.hi <- len;
            cs.sel.(i) <- cs.with_dom.(i);
            cs.offs.(i) <- 1
        | _ ->
            cs.sel.(i) <- cs.no_dom.(i);
            cs.offs.(i) <- 0
      done);
  let assignment = Array.make p.num_vars (-1) in
  let stop = ref false in
  (* [descend]/[filters_pass] live in the [rec] group rather than inside
     [assign], so the hot path allocates no closures per search node
     (the oracle layer runs thousands of these joins per second) *)
  let rec filters_pass i =
    match p.filters_at.(i) with
    | [] -> true
    | fs -> List.for_all (fun flt -> filter_ok assignment flt) fs
  (* a pair (a, b) prunes at whichever endpoint binds second (the other
     still holds the [-1] sentinel before that, which can never collide
     with a candidate value) *)
  and diseqs_pass v value =
    let ok = ref true in
    for k = 0 to Array.length diseqs - 1 do
      let a, b = diseqs.(k) in
      if (a = v && assignment.(b) = value) || (b = v && assignment.(a) = value)
      then ok := false
    done;
    !ok
  and descend i v value =
    if diseqs_pass v value then begin
      assignment.(v) <- value;
      if filters_pass i then assign (i + 1)
    end
  and assign i =
    Budget.tick p.budget;
    if !stop then ()
    else if i = p.num_vars then begin
      let sol = if reuse then assignment else Array.copy assignment in
      if not (f sol) then stop := true
    end
    else begin
      let v = p.order.(i) in
      (match p.at_level.(i) with
      | [] -> (
          match domain_arr.(v) with
          | Some arr ->
              let n = Array.length arr in
              let k = ref 0 in
              while (not !stop) && !k < n do
                descend i v arr.(!k);
                incr k
              done
          | None ->
              let value = ref 0 in
              while (not !stop) && !value < p.universe_size do
                descend i v !value;
                incr value
              done)
      | participants -> (
          match state with
          | S_trie nodes ->
              (* candidates: keys of the smallest participating trie,
                 ascending, filtered by the others and by the domain *)
              let smallest =
                List.fold_left
                  (fun (bai, bn) (ai, _) ->
                    let n = Trie.num_keys nodes.(ai) in
                    if n < bn then (ai, n) else (bai, bn))
                  (-1, max_int) participants
                |> fst
              in
              let source, need_mem_check =
                match domain_arr.(v) with
                | Some arr -> (arr, true)
                | None -> (Trie.keys nodes.(smallest), false)
              in
              let saved =
                List.map (fun (ai, _) -> (ai, nodes.(ai))) participants
              in
              Array.iter
                (fun value ->
                  if
                    (not !stop)
                    && ((not need_mem_check)
                       || Trie.mem_key nodes.(smallest) value)
                  then begin
                    let ok = ref true in
                    List.iter
                      (fun (ai, _) ->
                        if !ok then
                          match Trie.child nodes.(ai) value with
                          | Some sub -> nodes.(ai) <- sub
                          | None -> ok := false)
                      participants;
                    if !ok then descend i v value;
                    List.iter (fun (ai, node) -> nodes.(ai) <- node) saved
                  end)
                source
          | S_cols cs ->
              (* leapfrog: every participant contributes its current
                 sorted run; common values arrive ascending, and their
                 per-run bounds become the child cursors *)
              let parts = p.parts_at.(i) in
              let nparts = Array.length parts in
              let runs = cs.sel.(i) and off = cs.offs.(i) in
              let los = cs.los and his = cs.his in
              for j = 0 to nparts - 1 do
                let ai, lvl = parts.(j) in
                let r = runs.(j + off) in
                r.Gallop.lo <- los.(ai).(lvl);
                r.Gallop.hi <- his.(ai).(lvl)
              done;
              Gallop.intersect_into ~pos:cs.pos.(i) ~bounds:cs.bounds.(i) runs
                (fun value bounds ->
                  if not !stop then begin
                    for j = 0 to nparts - 1 do
                      let ai, lvl = parts.(j) in
                      los.(ai).(lvl + 1) <- bounds.(2 * (j + off));
                      his.(ai).(lvl + 1) <- bounds.((2 * (j + off)) + 1)
                    done;
                    descend i v value
                  end)));
      assignment.(v) <- -1
    end
  in
  if List.for_all (filter_ok assignment) p.start_filters then assign 0;
  match state with
  | S_cols _ -> pool_give p.pool state
  | S_trie _ -> ()

let iter ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms ~f =
  run ?domains (prepare ~num_vars ~universe_size ?budget ?impl ?order atoms) ~f

let find ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms =
  let result = ref None in
  iter ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms
    ~f:(fun a ->
      result := Some a;
      false);
  !result

let exists ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms =
  Option.is_some
    (find ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms)

let count ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms =
  let n = ref 0 in
  iter ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms
    ~f:(fun _ ->
      incr n;
      true);
  !n

let solutions ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms =
  let acc = ref [] in
  iter ~num_vars ~universe_size ?budget ?domains ?impl ?order atoms
    ~f:(fun a ->
      acc := a :: !acc;
      true);
  List.rev !acc
