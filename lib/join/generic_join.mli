(** Worst-case-optimal generic join.

    Enumerates all assignments [α : {0..num_vars-1} → U] that satisfy every
    atom [R(scope)] (the tuple [α(scope)] is in the atom's relation), by
    the classic variable-at-a-time intersection of tries. With a variable
    order compatible with a fractional edge cover, the running time is
    within the AGM bound — this is the engine behind the paper's Lemma 48
    (enumerating [Sol(φ, D, B)]) and behind the [Hom] decision solvers.

    Variables contained in no atom range over their [domains] entry (or
    the full universe).

    When the same join is evaluated many times under different [domains]
    (the colour-coding oracle of Lemma 22 does exactly this), {!prepare}
    once and {!run} repeatedly: the tries and the variable order are
    built a single time. *)

type atom = {
  scope : int array;                    (** variable per position *)
  relation : Ac_relational.Relation.t;  (** arity = length of scope *)
}

val atom : int array -> Ac_relational.Relation.t -> atom

(** A compiled join: tries and variable order, reusable across runs. *)
type prepared

(** [prepare ~num_vars ~universe_size ?order atoms]. [order], when given,
    must be a permutation of the variables; the default order takes
    variables ascending by the smallest relation they appear in.
    [budget], when given, is ticked once per backtracking-search node on
    every later {!run}, so a tripped budget cancels the enumeration with
    [Ac_runtime.Budget.Budget_exceeded]. Raises [Invalid_argument] on
    malformed atoms. *)
val prepare :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?order:int array ->
  atom list ->
  prepared

(** [run prepared ?domains ~f] calls [f] on each satisfying assignment (a
    fresh array); [f] returning [false] stops the enumeration.
    [domains.(v)], when given, restricts variable [v] to the listed
    values. *)
val run : ?domains:int list option array -> prepared -> f:(int array -> bool) -> unit

(** {2 One-shot wrappers} *)

val iter :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int list option array ->
  ?order:int array ->
  atom list ->
  f:(int array -> bool) ->
  unit

val find :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int list option array ->
  ?order:int array ->
  atom list ->
  int array option

val exists :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int list option array ->
  ?order:int array ->
  atom list ->
  bool

val count :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int list option array ->
  ?order:int array ->
  atom list ->
  int

val solutions :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int list option array ->
  ?order:int array ->
  atom list ->
  int array list

(** A min-weight-first variable order: variables are taken in increasing
    order of the smallest relation they appear in (ties by index); a good
    default for decision queries. *)
val default_order : num_vars:int -> atom list -> int array
