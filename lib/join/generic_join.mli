(** Worst-case-optimal generic join.

    Enumerates all assignments [α : {0..num_vars-1} → U] that satisfy every
    atom [R(scope)] (the tuple [α(scope)] is in the atom's relation), by
    the classic variable-at-a-time intersection. With a variable order
    compatible with a fractional edge cover, the running time is within
    the AGM bound — this is the engine behind the paper's Lemma 48
    (enumerating [Sol(φ, D, B)]) and behind the [Hom] decision solvers.

    Two interchangeable implementations share the search skeleton:

    - {!Columnar} (the default) reads sealed relations' sorted columnar
      projections and intersects per-level runs with the galloping
      leapfrog kernels of [Ac_kernels] — batch-at-a-time, no per-tuple
      allocation. {!prepare} seals the atoms' relations.
    - {!Trie} builds hash tries per atom — the reference oracle the
      differential tests compare against. Leaves relation phases alone.

    Both paths enumerate candidates in ascending order at every level,
    so they produce {e identical} solution sequences — and therefore
    bit-identical estimates downstream, where bounded oracles make the
    order observable. [Ac_live] relies on this contract: a live
    (main+delta) database seals its merged view in the same ascending
    lexicographic order as a freshly-rebuilt sealed relation, so a
    join over the view and a join over a rebuild see the same
    candidate sequence — mutation then re-estimation stays
    bit-reproducible per seed.

    Atoms over {!Ac_relational.Relation.complement_view}s are never
    indexed (that would materialize the blow-up the views avoid): they
    join as filter atoms, decided by one membership probe when the last
    of their variables binds — identically in both implementations.

    Variables contained in no candidate-providing atom range over their
    [domains] entry (or the full universe).

    When the same join is evaluated many times under different [domains]
    (the colour-coding oracle of Lemma 22 does exactly this), {!prepare}
    once and {!run} repeatedly: indexes and the variable order are built
    a single time, and cursor state is per-run, so concurrent runs over
    one [prepared] are safe. *)

type atom = {
  scope : int array;                    (** variable per position *)
  relation : Ac_relational.Relation.t;  (** arity = length of scope *)
}

val atom : int array -> Ac_relational.Relation.t -> atom

(** Index implementation: columnar leapfrog kernels (production) or hash
    tries (reference oracle). *)
type impl = Trie | Columnar

(** Process-wide default used when {!prepare} gets no [?impl];
    initially {!Columnar}. *)
val set_default_impl : impl -> unit

val default_impl : unit -> impl

(** A compiled join: per-atom indexes and variable order, reusable
    across (concurrent) runs. *)
type prepared

(** [prepare ~num_vars ~universe_size ?impl ?order atoms]. [order], when
    given, must be a permutation of the variables; the default order
    takes variables ascending by the smallest relation they appear in.
    [budget], when given, is ticked once per backtracking-search node on
    every later {!run}, so a tripped budget cancels the enumeration with
    [Ac_runtime.Budget.Budget_exceeded]. With the {!Columnar} impl the
    atoms' relations are sealed here. Raises [Invalid_argument] on
    malformed atoms. *)
val prepare :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?impl:impl ->
  ?order:int array ->
  atom list ->
  prepared

(** [run prepared ?domains ~f] calls [f] on each satisfying assignment (a
    fresh array); [f] returning [false] stops the enumeration.
    [domains.(v)], when given, restricts variable [v] to the listed
    values, treated as a set. A strictly-ascending array (the
    [Ac_kernels.Intset] canonical form — what the oracle/[Hom] path
    always passes) is used as-is without copying, so don't mutate it
    during the run; anything else is canonicalized into a copy first.
    With [~reuse:true], [f] is handed the run's internal assignment
    array — valid only until [f] returns; callers that do not retain
    solutions (decision probes, semijoin scans) skip a copy per
    solution. [diseqs] pushes disequality pairs [(a, b)] (variable
    indices, [α(a) ≠ α(b)]) into the search: violating subtrees are
    pruned when the second endpoint binds, so [f] sees exactly the
    satisfying solutions, in unchanged (ascending, impl-independent)
    order — equivalent to filtering in [f], never slower. *)
val run :
  ?domains:int array option array ->
  ?reuse:bool ->
  ?diseqs:(int * int) array ->
  prepared ->
  f:(int array -> bool) ->
  unit

(** {2 One-shot wrappers} *)

val iter :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int array option array ->
  ?impl:impl ->
  ?order:int array ->
  atom list ->
  f:(int array -> bool) ->
  unit

val find :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int array option array ->
  ?impl:impl ->
  ?order:int array ->
  atom list ->
  int array option

val exists :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int array option array ->
  ?impl:impl ->
  ?order:int array ->
  atom list ->
  bool

val count :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int array option array ->
  ?impl:impl ->
  ?order:int array ->
  atom list ->
  int

val solutions :
  num_vars:int ->
  universe_size:int ->
  ?budget:Ac_runtime.Budget.t ->
  ?domains:int array option array ->
  ?impl:impl ->
  ?order:int array ->
  atom list ->
  int array list

(** A min-weight-first variable order: variables are taken in increasing
    order of the smallest relation they appear in (ties by index); a good
    default for decision queries. *)
val default_order : num_vars:int -> atom list -> int array
