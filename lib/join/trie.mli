(** Hash tries over relations — the {e reference} index behind the
    generic worst-case-optimal join (the columnar kernels in
    [Ac_kernels] are the production path; the trie stays as the oracle
    the differential tests compare against).

    A trie fixes an order of the (distinct) variables of an atom's scope
    and stores the relation's tuples level by level in that order.
    Repeated variables in a scope are checked during construction
    (tuples with unequal components at repeated positions are dropped)
    and collapsed to a single level. Key sets are sorted, so level
    enumeration is canonical (ascending) and matches the columnar
    path's order exactly. *)

type t

(** [build relation ~positions] indexes [relation] by the tuple positions
    [positions] (distinct, in the desired level order; must cover a subset
    of [0 .. arity-1]). Tuples are first filtered with [keep]. *)
val build : ?keep:(Ac_relational.Tuple.t -> bool) -> Ac_relational.Relation.t -> positions:int array -> t

(** Number of levels. *)
val depth : t -> int

(** [child t v] descends one level along value [v]. *)
val child : t -> int -> t option

(** Values available at the current level, ascending. The returned array
    is the trie's own — do not mutate. [Invalid_argument] below depth 1. *)
val keys : t -> int array

val num_keys : t -> int
val mem_key : t -> int -> bool

(** Number of tuples below this node. *)
val weight : t -> int
