module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Hypergraph = Ac_hypergraph.Hypergraph
module Bitset = Ac_hypergraph.Bitset
module Tree_decomposition = Ac_hypergraph.Tree_decomposition
module Generic_join = Ac_join.Generic_join
module Intset = Ac_kernels.Intset
module Budget = Ac_runtime.Budget

type instance = {
  source : Structure.t;
  target : Structure.t;
}

let fold_facts s f init =
  List.fold_left
    (fun acc name ->
      Relation.fold (fun tuple acc -> f name tuple acc) (Structure.relation s name) acc)
    init (Structure.symbols s)

let hypergraph source =
  let n = Structure.universe_size source in
  let edges =
    fold_facts source
      (fun _ tuple acc -> List.sort_uniq compare (Array.to_list tuple) :: acc)
      []
  in
  let covered = Array.make n false in
  List.iter (List.iter (fun v -> covered.(v) <- true)) edges;
  let singletons =
    List.init n Fun.id
    |> List.filter_map (fun v -> if covered.(v) then None else Some [ v ])
  in
  Hypergraph.create ~num_vertices:n (edges @ singletons)

let to_atoms { source; target } =
  fold_facts source
    (fun name tuple acc ->
      match Structure.relation_opt target name with
      | None ->
          invalid_arg
            (Printf.sprintf "Hom: symbol %s of the source is missing in the target" name)
      | Some rel -> Generic_join.atom (Array.copy tuple) rel :: acc)
    []

let restrict_domains ({ source; target } as inst) =
  let n = Structure.universe_size source in
  let m = Structure.universe_size target in
  let atoms = to_atoms inst in
  let domains = Array.make n None in
  let all = Intset.range m in
  let empty = ref false in
  List.iter
    (fun (a : Generic_join.atom) ->
      (* complement views are dense (almost every value has support), and
         computing their support would sweep U^arity — the join treats
         them as filter atoms instead, so restriction skips them *)
      if Relation.is_complement a.Generic_join.relation then ()
      else begin
      let seen = Hashtbl.create 4 in
      Array.iteri
        (fun pos v -> if not (Hashtbl.mem seen v) then Hashtbl.replace seen v pos)
        a.Generic_join.scope;
      Hashtbl.iter
        (fun v pos ->
          let support = Array.make m false in
          Relation.iter
            (fun tuple ->
              let ok = ref true in
              Array.iteri
                (fun p u ->
                  if tuple.(p) <> tuple.(Hashtbl.find seen u) then ok := false)
                a.Generic_join.scope;
              if !ok then support.(tuple.(pos)) <- true)
            a.Generic_join.relation;
          let current = match domains.(v) with None -> all | Some d -> d in
          let filtered = Intset.filter (fun x -> support.(x)) current in
          if filtered = [||] then empty := true;
          domains.(v) <- Some filtered)
        seen
      end)
    atoms;
  if !empty then None
  else Some (Array.map (function None -> all | Some d -> d) domains)

type strategy = Backtracking | Decomposition

(* A decomposition node compiled for the DP: the bag's variables (sorted),
   the prepared join over the facts assigned to this bag, and for each
   child the positions of the shared variables in both bags. *)
type dp_node = {
  vars : int array;
  join : Generic_join.prepared;
  children : (int * int array * int array) list;
      (* child id, positions of shared vars in this bag, in child bag *)
  mutable up : int array;
      (* positions (in this bag) of the vars shared with the parent;
         [||] at the root — the decision DP keys its tables on this
         projection, so bag solutions never need to be retained *)
}

type dp = {
  nodes : dp_node array;
  postorder : int array;
  root : int;
  fast_keys : bool;
      (* every shared-var projection encodes into one int (u^w fits) *)
  key_pool : (int, bool) Hashtbl.t array list Atomic.t;
      (* recycled per-node memo tables for the fast decision search:
         the oracle path decides thousands of times per second against
         one [dp], and a fresh 64-bucket table per bag per call would
         be most of the allocation; pooled tables are cleared (bucket
         arrays kept) between calls *)
}

type prepared = {
  instance : instance;
  strat : strategy;
  num_vars : int;
  universe_size : int;
  base_domains : int array array option; (* None: trivially unsatisfiable *)
  full_join : Generic_join.prepared;
  dp : dp option;
  budget : Budget.t;
}

(* Does [u^w] fit an OCaml int? Decides whether a shared-variable tuple
   can be semijoin-hashed as a single int instead of an allocated key. *)
let pow_fits u w =
  let u = max u 2 in
  let rec go acc i = i = 0 || (acc <= max_int / u && go (acc * u) (i - 1)) in
  go u (w - 1)

let build_dp ~budget ?impl inst atoms =
  let h = hypergraph inst.source in
  let d = Tree_decomposition.decompose h in
  let num_nodes = Tree_decomposition.num_nodes d in
  let capacity = Hypergraph.num_vertices h in
  (* assign each atom to the first bag containing its scope *)
  let assigned = Array.make num_nodes [] in
  List.iter
    (fun (a : Generic_join.atom) ->
      let scope_set =
        Bitset.of_list ~capacity (Array.to_list a.Generic_join.scope)
      in
      let node = ref (-1) in
      (try
         Array.iteri
           (fun i b ->
             if Bitset.subset scope_set b then begin
               node := i;
               raise Exit
             end)
           d.Tree_decomposition.bags
       with Exit -> ());
      if !node < 0 then invalid_arg "Hom: invalid decomposition";
      assigned.(!node) <- a :: assigned.(!node))
    atoms;
  let bag_vars = Array.map (fun b -> Array.of_list (Bitset.to_list b)) d.Tree_decomposition.bags in
  let kids = Tree_decomposition.children d in
  let universe_size = Structure.universe_size inst.target in
  let nodes =
    Array.init num_nodes (fun node ->
        let vars = bag_vars.(node) in
        let index_of = Hashtbl.create 8 in
        Array.iteri (fun i v -> Hashtbl.replace index_of v i) vars;
        let local_atoms =
          List.map
            (fun (a : Generic_join.atom) ->
              Generic_join.atom
                (Array.map (Hashtbl.find index_of) a.Generic_join.scope)
                a.Generic_join.relation)
            assigned.(node)
        in
        let join =
          Generic_join.prepare ~num_vars:(Array.length vars) ~universe_size
            ~budget ?impl local_atoms
        in
        let children =
          List.map
            (fun child ->
              let cvars = bag_vars.(child) in
              let shared =
                Array.to_list vars
                |> List.filter (fun v -> Array.exists (( = ) v) cvars)
              in
              let pos_in arr v =
                let p = ref (-1) in
                Array.iteri (fun i u -> if u = v then p := i) arr;
                !p
              in
              ( child,
                Array.of_list (List.map (pos_in vars) shared),
                Array.of_list (List.map (pos_in cvars) shared) ))
            kids.(node)
        in
        { vars; join; children; up = [||] })
  in
  (* a child's upward projection is [there] as seen from its parent *)
  Array.iter
    (fun n ->
      List.iter (fun (child, _, there) -> nodes.(child).up <- there) n.children)
    nodes;
  let fast_keys =
    Array.for_all
      (fun n ->
        List.for_all
          (fun (_, _, there) -> pow_fits universe_size (Array.length there))
          n.children)
      nodes
  in
  let root = Tree_decomposition.root d in
  let order = ref [] in
  let rec visit node =
    List.iter visit kids.(node);
    order := node :: !order
  in
  visit root;
  {
    nodes;
    postorder = Array.of_list (List.rev !order);
    root;
    fast_keys;
    key_pool = Atomic.make [];
  }

let prepare ~strategy ?(budget = Budget.none) ?impl inst =
  let atoms = to_atoms inst in
  let num_vars = Structure.universe_size inst.source in
  let universe_size = Structure.universe_size inst.target in
  let base_domains = restrict_domains inst in
  let full_join =
    Generic_join.prepare ~num_vars ~universe_size ~budget ?impl atoms
  in
  let dp =
    match strategy with
    | Backtracking -> None
    | Decomposition ->
        if num_vars = 0 then None else Some (build_dp ~budget ?impl inst atoms)
  in
  {
    instance = inst;
    strat = strategy;
    num_vars;
    universe_size;
    base_domains;
    full_join;
    dp;
    budget;
  }

let strategy p = p.strat

let merged_domains p domains =
  match p.base_domains with
  | None -> None
  | Some base ->
      let merged =
        match domains with
        | None -> base
        | Some ds ->
            Array.mapi
              (fun v d ->
                match ds.(v) with
                | None -> d
                | Some restriction -> Intset.inter d (Intset.canon restriction))
              base
      in
      if Array.exists (fun d -> d = [||]) merged then None else Some merged

let solve_backtracking p merged =
  let result = ref None in
  Generic_join.run
    ~domains:(Array.map Option.some merged)
    p.full_join
    ~f:(fun a ->
      result := Some a;
      false);
  !result

(* Decision DP over the tree decomposition. Fast path (every shared-var
   projection encodes into one int): each bag keeps only the set of
   upward projections of its surviving solutions, the semijoin against
   the children is an int-hashtable probe inside the join callback, and
   no solution array is ever copied out of the join — the root
   early-exits on its first surviving solution. The slow path (huge
   universes) keeps full solutions keyed by allocated projections. *)
(* Treiber stack, CAS-retry via recursion (concurrent trial engines
   decide against one shared [dp]). *)
let rec pool_take pool =
  match Atomic.get pool with
  | [] -> None
  | s :: rest as old ->
      if Atomic.compare_and_set pool old rest then Some s else pool_take pool

let rec pool_give pool s =
  let old = Atomic.get pool in
  if not (Atomic.compare_and_set pool old (s :: old)) then pool_give pool s

let decide_dp_fast ~budget ~universe dp merged =
  let num_nodes = Array.length dp.nodes in
  let memo =
    match pool_take dp.key_pool with
    | Some tables -> tables
    | None -> Array.init num_nodes (fun _ -> Hashtbl.create 64)
  in
  (* Top-down with memoization: [sat node key] — does the subtree rooted
     at [node] have a solution whose shared-with-parent projection
     decodes [key]? Each (node, key) pair is evaluated at most once (the
     bottom-up DP's worst case), but the search early-exits at every
     level: the root stops at its first satisfiable solution, and bags
     never enumerate outside the parent's surviving projections. *)
  let encode sol positions =
    let acc = ref 0 in
    for idx = 0 to Array.length positions - 1 do
      acc := (!acc * universe) + sol.(positions.(idx))
    done;
    !acc
  in
  let rec sat node key =
    match Hashtbl.find_opt memo.(node) key with
    | Some b -> b
    | None ->
        Budget.tick budget;
        let n = dp.nodes.(node) in
        let local = Array.map (fun v -> Some merged.(v)) n.vars in
        (* pin the shared positions to [key]'s digits (base [universe],
           most-significant first — the encoding order of [encode]) *)
        let k = ref key in
        for idx = Array.length n.up - 1 downto 0 do
          local.(n.up.(idx)) <- Some [| !k mod universe |];
          k := !k / universe
        done;
        let found = ref false in
        Generic_join.run ~reuse:true ~domains:local n.join ~f:(fun sol ->
            if
              List.for_all
                (fun (child, here, _) -> sat child (encode sol here))
                n.children
            then begin
              found := true;
              false
            end
            else true);
        Hashtbl.add memo.(node) key !found;
        !found
  in
  let answer = sat dp.root 0 (* root: [up = [||]], key 0, no pins *) in
  (* clear (keeping bucket arrays) and recycle; like the generic-join
     cursor pool, states are dropped on the exception path — a budget
     trip mid-search leaves tables in an unknown fill state worth GCing *)
  Array.iter Hashtbl.clear memo;
  pool_give dp.key_pool memo;
  answer

let decide_dp_exact ~budget dp merged =
  let num_nodes = Array.length dp.nodes in
  let solutions = Array.make num_nodes [] in
  let alive = ref true in
  Array.iter
    (fun node ->
      Budget.tick budget;
      if !alive then begin
        let n = dp.nodes.(node) in
        let local_domains = Array.map (fun v -> Some merged.(v)) n.vars in
        (* child projections hashed for the semijoin *)
        let child_tables =
          List.map
            (fun (child, here, there) ->
              let table = Hashtbl.create 64 in
              List.iter
                (fun sol ->
                  Hashtbl.replace table
                    (Array.to_list (Array.map (fun p -> sol.(p)) there))
                    ())
                solutions.(child);
              (here, table))
            n.children
        in
        let keep = ref [] in
        Generic_join.run ~domains:local_domains n.join ~f:(fun sol ->
            let ok =
              List.for_all
                (fun (here, table) ->
                  Hashtbl.mem table
                    (Array.to_list (Array.map (fun p -> sol.(p)) here)))
                child_tables
            in
            if ok then keep := sol :: !keep;
            true);
        solutions.(node) <- !keep;
        if !keep = [] then alive := false
      end)
    dp.postorder;
  !alive && solutions.(dp.root) <> []

let decide_dp ~budget ~universe dp merged =
  if dp.fast_keys then decide_dp_fast ~budget ~universe dp merged
  else decide_dp_exact ~budget dp merged

let decide p ?domains () =
  match merged_domains p domains with
  | None -> false
  | Some merged -> (
      match (p.strat, p.dp) with
      | Backtracking, _ | Decomposition, None ->
          Option.is_some (solve_backtracking p merged)
      | Decomposition, Some dp ->
          decide_dp ~budget:p.budget ~universe:p.universe_size dp merged)

let solve p ?domains () =
  match merged_domains p domains with
  | None -> None
  | Some merged -> solve_backtracking p merged

let iter_solutions ?domains ?reuse ?diseqs p ~f =
  match merged_domains p domains with
  | None -> ()
  | Some merged ->
      Generic_join.run ?reuse ?diseqs
        ~domains:(Array.map Option.some merged)
        p.full_join ~f

let decide_backtracking ?domains inst =
  decide (prepare ~strategy:Backtracking inst) ?domains ()

let decide_decomposition ?domains inst =
  decide (prepare ~strategy:Decomposition inst) ?domains ()

let find ?domains inst = solve (prepare ~strategy:Backtracking inst) ?domains ()

let is_homomorphism { source; target } h =
  Array.length h = Structure.universe_size source
  && Array.for_all (fun b -> b >= 0 && b < Structure.universe_size target) h
  && fold_facts source
       (fun name tuple acc ->
         acc && Structure.holds target name (Array.map (fun a -> h.(a)) tuple))
       true

let count_brute_force ({ source; target } as inst) =
  let n = Structure.universe_size source in
  let m = Structure.universe_size target in
  let h = Array.make (max n 1) 0 in
  let count = ref 0 in
  let rec go i =
    if i = n then begin
      if is_homomorphism inst h then incr count
    end
    else
      for b = 0 to m - 1 do
        h.(i) <- b;
        go (i + 1)
      done
  in
  if n = 0 then count := 1 else go 0;
  !count

(* First non-injective endomorphism, if any. *)
let non_injective_endomorphism s =
  let n = Structure.universe_size s in
  if n <= 1 then None
  else begin
    let p = prepare ~strategy:Backtracking { source = s; target = s } in
    let found = ref None in
    iter_solutions p ~f:(fun h ->
        let image = Hashtbl.create n in
        Array.iter (fun v -> Hashtbl.replace image v ()) h;
        if Hashtbl.length image < n then begin
          found := Some h;
          false
        end
        else true);
    !found
  end

let is_core s = non_injective_endomorphism s = None

let rec core s =
  match non_injective_endomorphism s with
  | None -> s
  | Some h ->
      let image =
        Array.to_list h |> List.sort_uniq Int.compare
      in
      core (Structure.induced s image)

module Nice = Ac_hypergraph.Nice_decomposition

(* Exact #Hom by DP over a nice tree decomposition of H(A) (Dalmau &
   Jonsson). Tables map bag assignments (over the bag's sorted variable
   list) to the number of extensions below the node. Constraints are
   enforced by filtering at every node whose bag contains an atom's whole
   scope — filtering is idempotent, so enforcing at several nodes is
   harmless; multiplicities arise only from forget-sums. *)
let count_dp ?(budget = Budget.none) ({ source; target = _ } as inst) =
  let n = Structure.universe_size source in
  if n = 0 then 1
  else begin
    match restrict_domains inst with
    | None -> 0
    | Some domains ->
        let atoms = to_atoms inst in
        let h = hypergraph source in
        let nice = Nice.of_hypergraph h in
        let bag_vars =
          Array.map (fun b -> Array.of_list (Bitset.to_list b)) nice.Nice.bags
        in
        (* atoms indexed by scope sets for the per-node filter *)
        let capacity = Hypergraph.num_vertices h in
        let atom_scopes =
          List.map
            (fun (a : Generic_join.atom) ->
              ( Bitset.of_list ~capacity (Array.to_list a.Generic_join.scope),
                a ))
            atoms
        in
        let satisfies_bag node (alpha : int array) =
          let vars = bag_vars.(node) in
          let value_of v =
            let p = ref (-1) in
            Array.iteri (fun i u -> if u = v then p := i) vars;
            alpha.(!p)
          in
          List.for_all
            (fun (scope_set, (a : Generic_join.atom)) ->
              (not (Bitset.subset scope_set nice.Nice.bags.(node)))
              || Ac_relational.Relation.mem a.Generic_join.relation
                   (Array.map value_of a.Generic_join.scope))
            atom_scopes
        in
        let tables :
            (int list, int) Hashtbl.t array =
          Array.make (Nice.num_nodes nice) (Hashtbl.create 1)
        in
        let kids = Nice.children nice in
        let bump table key count =
          Budget.tick budget;
          if count > 0 then
            Hashtbl.replace table key
              (count + Option.value ~default:0 (Hashtbl.find_opt table key))
        in
        Array.iter
          (fun node ->
            let table = Hashtbl.create 64 in
            (match (nice.Nice.kind.(node), kids.(node)) with
            | Nice.Leaf, [] -> Hashtbl.replace table [] 1
            | Nice.Introduce v, [ c ] ->
                (* position of v in this bag's sorted variable list *)
                let vars = bag_vars.(node) in
                let pos = ref 0 in
                Array.iteri (fun i u -> if u = v then pos := i) vars;
                Hashtbl.iter
                  (fun key count ->
                    let key = Array.of_list key in
                    Array.iter
                      (fun x ->
                        let alpha =
                          Array.init (Array.length vars) (fun i ->
                              if i < !pos then key.(i)
                              else if i = !pos then x
                              else key.(i - 1))
                        in
                        if satisfies_bag node alpha then
                          bump table (Array.to_list alpha) count)
                      domains.(v))
                  tables.(c)
            | Nice.Forget v, [ c ] ->
                let cvars = bag_vars.(c) in
                let pos = ref 0 in
                Array.iteri (fun i u -> if u = v then pos := i) cvars;
                Hashtbl.iter
                  (fun key count ->
                    let key = Array.of_list key in
                    let projected =
                      Array.to_list
                        (Array.init
                           (Array.length key - 1)
                           (fun i -> if i < !pos then key.(i) else key.(i + 1)))
                    in
                    bump table projected count)
                  tables.(c)
            | Nice.Join, [ c1; c2 ] ->
                Hashtbl.iter
                  (fun key count1 ->
                    match Hashtbl.find_opt tables.(c2) key with
                    | Some count2 -> bump table key (count1 * count2)
                    | None -> ())
                  tables.(c1)
            | _ -> invalid_arg "Hom.count_dp: decomposition is not nice");
            tables.(node) <- table)
          (Nice.postorder nice);
        Option.value ~default:0 (Hashtbl.find_opt tables.(nice.Nice.root) [])
  end
