module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Hypergraph = Ac_hypergraph.Hypergraph
module Bitset = Ac_hypergraph.Bitset
module Tree_decomposition = Ac_hypergraph.Tree_decomposition
module Generic_join = Ac_join.Generic_join
module Budget = Ac_runtime.Budget

type instance = {
  source : Structure.t;
  target : Structure.t;
}

let fold_facts s f init =
  List.fold_left
    (fun acc name ->
      Relation.fold (fun tuple acc -> f name tuple acc) (Structure.relation s name) acc)
    init (Structure.symbols s)

let hypergraph source =
  let n = Structure.universe_size source in
  let edges =
    fold_facts source
      (fun _ tuple acc -> List.sort_uniq compare (Array.to_list tuple) :: acc)
      []
  in
  let covered = Array.make n false in
  List.iter (List.iter (fun v -> covered.(v) <- true)) edges;
  let singletons =
    List.init n Fun.id
    |> List.filter_map (fun v -> if covered.(v) then None else Some [ v ])
  in
  Hypergraph.create ~num_vertices:n (edges @ singletons)

let to_atoms { source; target } =
  fold_facts source
    (fun name tuple acc ->
      match Structure.relation_opt target name with
      | None ->
          invalid_arg
            (Printf.sprintf "Hom: symbol %s of the source is missing in the target" name)
      | Some rel -> Generic_join.atom (Array.copy tuple) rel :: acc)
    []

let restrict_domains ({ source; target } as inst) =
  let n = Structure.universe_size source in
  let m = Structure.universe_size target in
  let atoms = to_atoms inst in
  let domains = Array.make n None in
  let all = List.init m Fun.id in
  let empty = ref false in
  List.iter
    (fun (a : Generic_join.atom) ->
      let seen = Hashtbl.create 4 in
      Array.iteri
        (fun pos v -> if not (Hashtbl.mem seen v) then Hashtbl.replace seen v pos)
        a.Generic_join.scope;
      Hashtbl.iter
        (fun v pos ->
          let support = Hashtbl.create 16 in
          Relation.iter
            (fun tuple ->
              let ok = ref true in
              Array.iteri
                (fun p u ->
                  if tuple.(p) <> tuple.(Hashtbl.find seen u) then ok := false)
                a.Generic_join.scope;
              if !ok then Hashtbl.replace support tuple.(pos) ())
            a.Generic_join.relation;
          let current = match domains.(v) with None -> all | Some l -> l in
          let filtered = List.filter (Hashtbl.mem support) current in
          if filtered = [] then empty := true;
          domains.(v) <- Some filtered)
        seen)
    atoms;
  if !empty then None
  else Some (Array.map (function None -> all | Some l -> l) domains)

type strategy = Backtracking | Decomposition

(* A decomposition node compiled for the DP: the bag's variables (sorted),
   the prepared join over the facts assigned to this bag, and for each
   child the positions of the shared variables in both bags. *)
type dp_node = {
  vars : int array;
  join : Generic_join.prepared;
  children : (int * int array * int array) list;
      (* child id, positions of shared vars in this bag, in child bag *)
}

type dp = {
  nodes : dp_node array;
  postorder : int array;
  root : int;
}

type prepared = {
  instance : instance;
  strat : strategy;
  num_vars : int;
  universe_size : int;
  base_domains : int list array option; (* None: trivially unsatisfiable *)
  full_join : Generic_join.prepared;
  dp : dp option;
  budget : Budget.t;
}

let build_dp ~budget inst atoms =
  let h = hypergraph inst.source in
  let d = Tree_decomposition.decompose h in
  let num_nodes = Tree_decomposition.num_nodes d in
  let capacity = Hypergraph.num_vertices h in
  (* assign each atom to the first bag containing its scope *)
  let assigned = Array.make num_nodes [] in
  List.iter
    (fun (a : Generic_join.atom) ->
      let scope_set =
        Bitset.of_list ~capacity (Array.to_list a.Generic_join.scope)
      in
      let node = ref (-1) in
      (try
         Array.iteri
           (fun i b ->
             if Bitset.subset scope_set b then begin
               node := i;
               raise Exit
             end)
           d.Tree_decomposition.bags
       with Exit -> ());
      if !node < 0 then invalid_arg "Hom: invalid decomposition";
      assigned.(!node) <- a :: assigned.(!node))
    atoms;
  let bag_vars = Array.map (fun b -> Array.of_list (Bitset.to_list b)) d.Tree_decomposition.bags in
  let kids = Tree_decomposition.children d in
  let universe_size = Structure.universe_size inst.target in
  let nodes =
    Array.init num_nodes (fun node ->
        let vars = bag_vars.(node) in
        let index_of = Hashtbl.create 8 in
        Array.iteri (fun i v -> Hashtbl.replace index_of v i) vars;
        let local_atoms =
          List.map
            (fun (a : Generic_join.atom) ->
              Generic_join.atom
                (Array.map (Hashtbl.find index_of) a.Generic_join.scope)
                a.Generic_join.relation)
            assigned.(node)
        in
        let join =
          Generic_join.prepare ~num_vars:(Array.length vars) ~universe_size
            ~budget local_atoms
        in
        let children =
          List.map
            (fun child ->
              let cvars = bag_vars.(child) in
              let shared =
                Array.to_list vars
                |> List.filter (fun v -> Array.exists (( = ) v) cvars)
              in
              let pos_in arr v =
                let p = ref (-1) in
                Array.iteri (fun i u -> if u = v then p := i) arr;
                !p
              in
              ( child,
                Array.of_list (List.map (pos_in vars) shared),
                Array.of_list (List.map (pos_in cvars) shared) ))
            kids.(node)
        in
        { vars; join; children })
  in
  let root = Tree_decomposition.root d in
  let order = ref [] in
  let rec visit node =
    List.iter visit kids.(node);
    order := node :: !order
  in
  visit root;
  { nodes; postorder = Array.of_list (List.rev !order); root }

let prepare ~strategy ?(budget = Budget.none) inst =
  let atoms = to_atoms inst in
  let num_vars = Structure.universe_size inst.source in
  let universe_size = Structure.universe_size inst.target in
  let base_domains = restrict_domains inst in
  let full_join = Generic_join.prepare ~num_vars ~universe_size ~budget atoms in
  let dp =
    match strategy with
    | Backtracking -> None
    | Decomposition ->
        if num_vars = 0 then None else Some (build_dp ~budget inst atoms)
  in
  {
    instance = inst;
    strat = strategy;
    num_vars;
    universe_size;
    base_domains;
    full_join;
    dp;
    budget;
  }

let strategy p = p.strat

let merged_domains p domains =
  match p.base_domains with
  | None -> None
  | Some base ->
      let merged =
        match domains with
        | None -> base
        | Some ds ->
            Array.mapi
              (fun v d ->
                match ds.(v) with
                | None -> d
                | Some restriction ->
                    let set = Hashtbl.create (List.length restriction) in
                    List.iter (fun x -> Hashtbl.replace set x ()) restriction;
                    List.filter (Hashtbl.mem set) d)
              base
      in
      if Array.exists (( = ) []) merged then None else Some merged

let solve_backtracking p merged =
  let result = ref None in
  Generic_join.run
    ~domains:(Array.map Option.some merged)
    p.full_join
    ~f:(fun a ->
      result := Some a;
      false);
  !result

let decide_dp ~budget dp merged =
  let num_nodes = Array.length dp.nodes in
  let solutions = Array.make num_nodes [] in
  let alive = ref true in
  Array.iter
    (fun node ->
      Budget.tick budget;
      if !alive then begin
        let n = dp.nodes.(node) in
        let local_domains = Array.map (fun v -> Some merged.(v)) n.vars in
        (* child projections hashed for the semijoin *)
        let child_tables =
          List.map
            (fun (child, here, there) ->
              let table = Hashtbl.create 64 in
              List.iter
                (fun sol ->
                  Hashtbl.replace table
                    (Array.to_list (Array.map (fun p -> sol.(p)) there))
                    ())
                solutions.(child);
              (here, table))
            n.children
        in
        let keep = ref [] in
        Generic_join.run ~domains:local_domains n.join ~f:(fun sol ->
            let ok =
              List.for_all
                (fun (here, table) ->
                  Hashtbl.mem table
                    (Array.to_list (Array.map (fun p -> sol.(p)) here)))
                child_tables
            in
            if ok then keep := sol :: !keep;
            true);
        solutions.(node) <- !keep;
        if !keep = [] then alive := false
      end)
    dp.postorder;
  !alive && solutions.(dp.root) <> []

let decide p ?domains () =
  match merged_domains p domains with
  | None -> false
  | Some merged -> (
      match (p.strat, p.dp) with
      | Backtracking, _ | Decomposition, None ->
          Option.is_some (solve_backtracking p merged)
      | Decomposition, Some dp -> decide_dp ~budget:p.budget dp merged)

let solve p ?domains () =
  match merged_domains p domains with
  | None -> None
  | Some merged -> solve_backtracking p merged

let iter_solutions ?domains p ~f =
  match merged_domains p domains with
  | None -> ()
  | Some merged ->
      Generic_join.run ~domains:(Array.map Option.some merged) p.full_join ~f

let decide_backtracking ?domains inst =
  decide (prepare ~strategy:Backtracking inst) ?domains ()

let decide_decomposition ?domains inst =
  decide (prepare ~strategy:Decomposition inst) ?domains ()

let find ?domains inst = solve (prepare ~strategy:Backtracking inst) ?domains ()

let is_homomorphism { source; target } h =
  Array.length h = Structure.universe_size source
  && Array.for_all (fun b -> b >= 0 && b < Structure.universe_size target) h
  && fold_facts source
       (fun name tuple acc ->
         acc && Structure.holds target name (Array.map (fun a -> h.(a)) tuple))
       true

let count_brute_force ({ source; target } as inst) =
  let n = Structure.universe_size source in
  let m = Structure.universe_size target in
  let h = Array.make (max n 1) 0 in
  let count = ref 0 in
  let rec go i =
    if i = n then begin
      if is_homomorphism inst h then incr count
    end
    else
      for b = 0 to m - 1 do
        h.(i) <- b;
        go (i + 1)
      done
  in
  if n = 0 then count := 1 else go 0;
  !count

(* First non-injective endomorphism, if any. *)
let non_injective_endomorphism s =
  let n = Structure.universe_size s in
  if n <= 1 then None
  else begin
    let p = prepare ~strategy:Backtracking { source = s; target = s } in
    let found = ref None in
    iter_solutions p ~f:(fun h ->
        let image = Hashtbl.create n in
        Array.iter (fun v -> Hashtbl.replace image v ()) h;
        if Hashtbl.length image < n then begin
          found := Some h;
          false
        end
        else true);
    !found
  end

let is_core s = non_injective_endomorphism s = None

let rec core s =
  match non_injective_endomorphism s with
  | None -> s
  | Some h ->
      let image =
        Array.to_list h |> List.sort_uniq Int.compare
      in
      core (Structure.induced s image)

module Nice = Ac_hypergraph.Nice_decomposition

(* Exact #Hom by DP over a nice tree decomposition of H(A) (Dalmau &
   Jonsson). Tables map bag assignments (over the bag's sorted variable
   list) to the number of extensions below the node. Constraints are
   enforced by filtering at every node whose bag contains an atom's whole
   scope — filtering is idempotent, so enforcing at several nodes is
   harmless; multiplicities arise only from forget-sums. *)
let count_dp ?(budget = Budget.none) ({ source; target = _ } as inst) =
  let n = Structure.universe_size source in
  if n = 0 then 1
  else begin
    match restrict_domains inst with
    | None -> 0
    | Some domains ->
        let atoms = to_atoms inst in
        let h = hypergraph source in
        let nice = Nice.of_hypergraph h in
        let bag_vars =
          Array.map (fun b -> Array.of_list (Bitset.to_list b)) nice.Nice.bags
        in
        (* atoms indexed by scope sets for the per-node filter *)
        let capacity = Hypergraph.num_vertices h in
        let atom_scopes =
          List.map
            (fun (a : Generic_join.atom) ->
              ( Bitset.of_list ~capacity (Array.to_list a.Generic_join.scope),
                a ))
            atoms
        in
        let satisfies_bag node (alpha : int array) =
          let vars = bag_vars.(node) in
          let value_of v =
            let p = ref (-1) in
            Array.iteri (fun i u -> if u = v then p := i) vars;
            alpha.(!p)
          in
          List.for_all
            (fun (scope_set, (a : Generic_join.atom)) ->
              (not (Bitset.subset scope_set nice.Nice.bags.(node)))
              || Ac_relational.Relation.mem a.Generic_join.relation
                   (Array.map value_of a.Generic_join.scope))
            atom_scopes
        in
        let tables :
            (int list, int) Hashtbl.t array =
          Array.make (Nice.num_nodes nice) (Hashtbl.create 1)
        in
        let kids = Nice.children nice in
        let bump table key count =
          Budget.tick budget;
          if count > 0 then
            Hashtbl.replace table key
              (count + Option.value ~default:0 (Hashtbl.find_opt table key))
        in
        Array.iter
          (fun node ->
            let table = Hashtbl.create 64 in
            (match (nice.Nice.kind.(node), kids.(node)) with
            | Nice.Leaf, [] -> Hashtbl.replace table [] 1
            | Nice.Introduce v, [ c ] ->
                (* position of v in this bag's sorted variable list *)
                let vars = bag_vars.(node) in
                let pos = ref 0 in
                Array.iteri (fun i u -> if u = v then pos := i) vars;
                Hashtbl.iter
                  (fun key count ->
                    let key = Array.of_list key in
                    List.iter
                      (fun x ->
                        let alpha =
                          Array.init (Array.length vars) (fun i ->
                              if i < !pos then key.(i)
                              else if i = !pos then x
                              else key.(i - 1))
                        in
                        if satisfies_bag node alpha then
                          bump table (Array.to_list alpha) count)
                      domains.(v))
                  tables.(c)
            | Nice.Forget v, [ c ] ->
                let cvars = bag_vars.(c) in
                let pos = ref 0 in
                Array.iteri (fun i u -> if u = v then pos := i) cvars;
                Hashtbl.iter
                  (fun key count ->
                    let key = Array.of_list key in
                    let projected =
                      Array.to_list
                        (Array.init
                           (Array.length key - 1)
                           (fun i -> if i < !pos then key.(i) else key.(i + 1)))
                    in
                    bump table projected count)
                  tables.(c)
            | Nice.Join, [ c1; c2 ] ->
                Hashtbl.iter
                  (fun key count1 ->
                    match Hashtbl.find_opt tables.(c2) key with
                    | Some count2 -> bump table key (count1 * count2)
                    | None -> ())
                  tables.(c1)
            | _ -> invalid_arg "Hom.count_dp: decomposition is not nice");
            tables.(node) <- table)
          (Nice.postorder nice);
        Option.value ~default:0 (Hashtbl.find_opt tables.(nice.Nice.root) [])
  end
