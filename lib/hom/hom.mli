(** The homomorphism decision problem [Hom] (§3).

    Given structures [A] and [B] with [sig(A) ⊆ sig(B)], decide whether a
    homomorphism [h : U(A) → U(B)] exists. Two solvers are provided:

    - [`Backtracking]: worst-case-optimal generic join over one atom per
      fact of [A] — the engine standing in for Marx's adaptive-width
      algorithm (Theorem 36, see DESIGN.md substitution 2);
    - [`Decomposition]: dynamic programming over a tree decomposition of
      [H(A)] with per-bag joins and semijoin filtering — the
      Dalmau–Kolaitis–Vardi style algorithm behind Theorem 31.

    Both accept optional per-variable [domains] (used by the colour-coding
    reduction to pin unary constraints cheaply). The colour-coding oracle
    issues thousands of decisions against one instance; {!prepare} once
    (tries, decomposition, arc-consistent base domains) and {!decide}
    per call. *)

type instance = {
  source : Ac_relational.Structure.t;  (** [A]; its universe elements are the CSP variables *)
  target : Ac_relational.Structure.t;  (** [B] *)
}

(** [H(A)] — one hyperedge per fact of [A] (plus singleton edges for
    isolated universe elements). *)
val hypergraph : Ac_relational.Structure.t -> Ac_hypergraph.Hypergraph.t

(** One generic-join atom per fact of [A], interpreted over [B]'s
    relations. Raises [Invalid_argument] if a symbol of [A] is missing
    from [B]. *)
val to_atoms : instance -> Ac_join.Generic_join.atom list

(** Arc-consistent unary domains: [domains.(a)] is the ascending array
    of values [b] such that every fact of [A] containing [a] has a
    supporting fact in [B] with [b] at [a]'s position ([Intset]
    canonical form). [None] when some domain is empty (no homomorphism
    exists). *)
val restrict_domains : instance -> int array array option

type strategy = Backtracking | Decomposition

type prepared

(** [budget], when given, is ticked by every later decision/enumeration
    (per generic-join search node, per DP table row), so a tripped
    budget cancels the computation with
    [Ac_runtime.Budget.Budget_exceeded]. *)
val prepare :
  strategy:strategy ->
  ?budget:Ac_runtime.Budget.t ->
  ?impl:Ac_join.Generic_join.impl ->
  instance ->
  prepared
val strategy : prepared -> strategy

(** [decide p ?domains ()] — is there a homomorphism mapping each
    variable inside its domain (intersected with the precomputed
    arc-consistent base domains)? *)
val decide : prepared -> ?domains:int array option array -> unit -> bool

(** First homomorphism found ([Backtracking] search order). *)
val solve : prepared -> ?domains:int array option array -> unit -> int array option

(** Enumerate all homomorphisms (backtracking order); [f] returning
    [false] stops. [diseqs] prunes disequality-violating assignments
    inside the search (see {!Ac_join.Generic_join.run}). *)
val iter_solutions :
  ?domains:int array option array ->
  ?reuse:bool ->
  ?diseqs:(int * int) array ->
  prepared ->
  f:(int array -> bool) ->
  unit

(** {2 One-shot wrappers} *)

val decide_backtracking : ?domains:int array option array -> instance -> bool
val decide_decomposition : ?domains:int array option array -> instance -> bool
val find : ?domains:int array option array -> instance -> int array option

(** Checks that [h] is a homomorphism. *)
val is_homomorphism : instance -> int array -> bool

(** Count all homomorphisms (exponential; testing baseline). *)
val count_brute_force : instance -> int

(** Exact homomorphism counting by dynamic programming over a nice tree
    decomposition of [H(A)] — Dalmau–Jonsson's fixed-parameter algorithm
    (the paper's footnote 4: counting answers to quantifier-free CQs is
    counting homomorphisms, easy for bounded treewidth). Polynomial in
    [‖B‖] for bounded [tw(A)]. [budget] is ticked per table row. *)
val count_dp : ?budget:Ac_runtime.Budget.t -> instance -> int

(** {2 Homomorphic cores}

    The core of [A] is a minimal structure hom-equivalent to [A] (unique
    up to isomorphism). Theorem 31's original statement applies to
    classes whose {e cores} have bounded treewidth; the core is computed
    by repeatedly finding a non-injective endomorphism and restricting to
    its image. Intended for small structures (query-side only). *)

(** [core a] — a core of [a]. *)
val core : Ac_relational.Structure.t -> Ac_relational.Structure.t

(** [is_core a] — no non-injective endomorphism exists. *)
val is_core : Ac_relational.Structure.t -> bool
