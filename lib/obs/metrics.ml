(* Process-wide kill switch: every update is gated on one Atomic.get so
   the instrumented hot paths cost a load and a branch when disabled —
   the knob the BENCH_obs overhead gate measures. *)
let switch = Atomic.make true
let set_enabled b = Atomic.set switch b
let enabled () = Atomic.get switch

(* Log-scale (powers of two) histogram bounds shared by every
   histogram: 2^-10 .. 2^20, covering sub-microsecond to ~17-minute
   millisecond durations; the final implicit bucket is +Inf. *)
let bucket_bounds =
  Array.init 31 (fun i -> Float.pow 2.0 (float_of_int (i - 10)))

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  bucket_counts : int Atomic.t array; (* length = |bucket_bounds| + 1 *)
  total : int Atomic.t;
  sum : float Atomic.t; (* CAS loop on the boxed float *)
}

type instrument = C of counter | G of gauge | H of histogram

type registered = {
  name : string;
  help : string;
  labels : (string * string) list; (* sorted by key *)
  instrument : instrument;
}

type t = {
  mutex : Mutex.t;
  table : (string, registered) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }
let global = create ()

let render_labels labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)

let key name labels = name ^ "{" ^ render_labels labels ^ "}"

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

(* Registration is get-or-create on (name, sorted labels): the same
   series handed out twice is the same instrument. Mismatched kinds or
   label keys under one family are registration bugs and raise. *)
let register t ~name ~help ~labels make =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let k = key name labels in
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table k with
    | Some r -> r
    | None ->
        let r = { name; help; labels; instrument = make () } in
        Hashtbl.replace t.table k r;
        r
  in
  Mutex.unlock t.mutex;
  r

let counter ?(help = "") ?(labels = []) t name =
  match (register t ~name ~help ~labels (fun () -> C (Atomic.make 0))).instrument with
  | C c -> c
  | i -> invalid_arg (Printf.sprintf "Metrics.counter: %s is a %s" name (kind_name i))

let gauge ?(help = "") ?(labels = []) t name =
  match (register t ~name ~help ~labels (fun () -> G (Atomic.make 0))).instrument with
  | G g -> g
  | i -> invalid_arg (Printf.sprintf "Metrics.gauge: %s is a %s" name (kind_name i))

let make_hist () =
  H
    {
      bucket_counts =
        Array.init (Array.length bucket_bounds + 1) (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum = Atomic.make 0.0;
    }

let histogram ?(help = "") ?(labels = []) t name =
  match (register t ~name ~help ~labels make_hist).instrument with
  | H h -> h
  | i ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %s is a %s" name (kind_name i))

let incr c = if Atomic.get switch then Atomic.incr c
let add c n = if Atomic.get switch then ignore (Atomic.fetch_and_add c n)
let counter_value (c : counter) = Atomic.get c

let set g v = if Atomic.get switch then Atomic.set g v
let incr_gauge g = if Atomic.get switch then Atomic.incr g
let decr_gauge g = if Atomic.get switch then Atomic.decr g
let gauge_value (g : gauge) = Atomic.get g

let rec add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then add_float a x

let bucket_index x =
  let n = Array.length bucket_bounds in
  let i = ref 0 in
  while !i < n && x > bucket_bounds.(!i) do
    i := !i + 1
  done;
  !i

let observe h x =
  if Atomic.get switch then begin
    Atomic.incr h.total;
    add_float h.sum x;
    Atomic.incr h.bucket_counts.(bucket_index x)
  end

(* ---------- snapshots ---------- *)

type hvalue = { counts : int array; count : int; sum : float }
type value = Counter of int | Gauge of int | Histogram of hvalue

type metric = {
  metric_name : string;
  metric_help : string;
  metric_labels : (string * string) list;
  value : value;
}

let read_instrument = function
  | C c -> Counter (Atomic.get c)
  | G g -> Gauge (Atomic.get g)
  | H h ->
      Histogram
        {
          counts = Array.map Atomic.get h.bucket_counts;
          count = Atomic.get h.total;
          sum = Atomic.get h.sum;
        }

let snapshot t =
  Mutex.lock t.mutex;
  let all = Hashtbl.fold (fun _ r acc -> r :: acc) t.table [] in
  Mutex.unlock t.mutex;
  all
  |> List.map (fun r ->
         {
           metric_name = r.name;
           metric_help = r.help;
           metric_labels = r.labels;
           value = read_instrument r.instrument;
         })
  |> List.sort (fun a b ->
         compare (a.metric_name, a.metric_labels) (b.metric_name, b.metric_labels))

(* ---------- Prometheus text exposition ---------- *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Integral floats render without an exponent or trailing dot ("42", not
   "42."); everything else with enough digits to round-trip. *)
let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let label_block labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

let to_prometheus t =
  let metrics = snapshot t in
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun m ->
      if m.metric_name <> !last_family then begin
        last_family := m.metric_name;
        if m.metric_help <> "" then
          Printf.bprintf buf "# HELP %s %s\n" m.metric_name
            (escape_help m.metric_help);
        let kind =
          match m.value with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        Printf.bprintf buf "# TYPE %s %s\n" m.metric_name kind
      end;
      match m.value with
      | Counter v ->
          Printf.bprintf buf "%s%s %d\n" m.metric_name
            (label_block m.metric_labels) v
      | Gauge v ->
          Printf.bprintf buf "%s%s %d\n" m.metric_name
            (label_block m.metric_labels) v
      | Histogram h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i c ->
              cumulative := !cumulative + c;
              let le =
                if i < Array.length bucket_bounds then
                  fmt_float bucket_bounds.(i)
                else "+Inf"
              in
              Printf.bprintf buf "%s_bucket%s %d\n" m.metric_name
                (label_block (m.metric_labels @ [ ("le", le) ]))
                !cumulative)
            h.counts;
          Printf.bprintf buf "%s_sum%s %s\n" m.metric_name
            (label_block m.metric_labels) (fmt_float h.sum);
          Printf.bprintf buf "%s_count%s %d\n" m.metric_name
            (label_block m.metric_labels) h.count)
    metrics;
  Buffer.contents buf

let reset t =
  Mutex.lock t.mutex;
  Hashtbl.iter
    (fun _ r ->
      match r.instrument with
      | C c | G c -> Atomic.set c 0
      | H h ->
          Array.iter (fun b -> Atomic.set b 0) h.bucket_counts;
          Atomic.set h.total 0;
          Atomic.set h.sum 0.0)
    t.table;
  Mutex.unlock t.mutex
