(** Process-wide metrics: counters, gauges and log-scale histograms.

    A {!t} is a registry; {!global} is the process-wide one every layer
    instruments (the [METRICS] wire verb and [acq stats --metrics]
    expose it). Instruments are identified by (name, sorted label set):
    registering the same series twice returns the same instrument, so
    call sites can re-register cheaply instead of threading handles.

    {b Domain safety.} Updates are lock-free ([Atomic]); registration
    takes the registry mutex. Histogram snapshots are only approximately
    consistent under concurrent updates (each bucket is read atomically,
    not the whole histogram) — exact for quiescent registries, which is
    what tests and exposition scrapes see.

    {b Kill switch.} {!set_enabled}[ false] turns every update into a
    single atomic load and branch — the "instrumentation compiled in but
    disabled" configuration benchmarked by [bench --obs]. Reads
    ({!snapshot}, [*_value]) are unaffected.

    {b Stability.} Metric names and label keys are a stable contract,
    documented in [docs/observability.md]. That includes the live
    mutable-database series ([acq_live_batches_total],
    [acq_live_replayed_batches_total], [acq_live_ops_total{op}],
    [acq_live_journal_appends_total], [acq_live_merge_*],
    [acq_recovery_batches_total]) registered lazily by [Ac_live] and
    [Ac_server] — lazily so that read-only deployments never export
    mutation series they cannot move. *)

type t
(** A registry. *)

val global : t
(** The process-wide registry. *)

val create : unit -> t
(** A private registry (tests). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {2 Instruments} *)

type counter
type gauge
type histogram

(** Get-or-create. Raises [Invalid_argument] when the series exists
    with a different kind. *)
val counter :
  ?help:string -> ?labels:(string * string) list -> t -> string -> counter

val gauge :
  ?help:string -> ?labels:(string * string) list -> t -> string -> gauge

val histogram :
  ?help:string -> ?labels:(string * string) list -> t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> int -> unit
val incr_gauge : gauge -> unit
val decr_gauge : gauge -> unit
val gauge_value : gauge -> int

val observe : histogram -> float -> unit

(** Shared histogram bucket upper bounds: powers of two from [2^-10] to
    [2^20]; an implicit [+Inf] bucket follows. *)
val bucket_bounds : float array

(** {2 Snapshots} *)

type hvalue = {
  counts : int array;  (** per-bucket (non-cumulative); length [|bucket_bounds| + 1] *)
  count : int;
  sum : float;
}

type value = Counter of int | Gauge of int | Histogram of hvalue

type metric = {
  metric_name : string;
  metric_help : string;
  metric_labels : (string * string) list;  (** sorted by key *)
  value : value;
}

(** All series, sorted by (name, labels) — deterministic. *)
val snapshot : t -> metric list

(** Prometheus text exposition format (version 0.0.4): [# HELP]/[# TYPE]
    per family, [_bucket{le=…}] cumulative counts, [_sum], [_count]. *)
val to_prometheus : t -> string

(** Zero every instrument (tests, bench). Registration survives. *)
val reset : t -> unit
