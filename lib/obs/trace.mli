(** Hierarchical tracing spans with monotone timestamps.

    A {!t} is a span collector; a {!span} is a handle into one. The
    hot-path contract is that {e all} span operations take the parent as
    a [span option] and are a single branch when it is [None] — code
    threads [span option] values (usually riding inside
    [Ac_exec.Engine.t]) and pays nothing measurable when tracing is off.

    {b Domain safety.} The collector is protected by a mutex; spans may
    be opened and stopped from any domain or thread. Timestamps are
    clamped monotone {e per collector} under that mutex, so in every
    export a span that was stopped before another span's stop carries
    the smaller stamp — child intervals nest inside their parents by
    construction (the parent's [stop] happens after the children's).

    {b Bit-transparency.} Nothing here touches any RNG or changes
    control flow of the traced computation: traced and untraced runs of
    a seeded estimator produce bit-identical results.

    {b Capacity.} A collector records at most [max_spans] spans
    (default 65536); further spans are counted in {!dropped} and their
    handles become no-ops, bounding memory on oracle-call-granularity
    traces. *)

type t
(** A span collector. *)

type span
(** A handle to one recorded span (carries its collector). *)

val create : ?max_spans:int -> unit -> t

(** Open a top-level span. *)
val root : ?tags:(string * string) list -> t -> string -> span

(** Open a child of [parent]; [None] parent → [None] child (one
    branch, no allocation — the disabled-tracing fast path). *)
val child : ?tags:(string * string) list -> span option -> string -> span option

(** Close the span, stamping its end and attributing [ticks] work ticks
    (default 0) to it — callers pass a [Budget.ticks] delta. Stopping
    [None], a dropped span, or an already-stopped span is a no-op. *)
val stop : ?ticks:int -> span option -> unit

(** {2 Inspection} *)

(** One finished (or snapshot-closed) span. [parent = -1] for roots;
    [stop_ms >= start_ms] always holds in anything returned by
    {!records}. *)
type record = {
  id : int;
  parent : int;
  name : string;
  tags : (string * string) list;
  start_ms : float;
  mutable stop_ms : float;
  mutable ticks : int;
}

(** Snapshot of all recorded spans in id (creation) order; spans still
    open are closed at the collector's last stamp. *)
val records : t -> record list

val span_count : t -> int
val dropped : t -> int

(** {2 Summary} *)

(** Per-span-name aggregate: ["rung:fpras"], ["trial"], … — the
    [agg_ticks] of the ["rung:*"] entries are the per-rung tick
    attribution carried in [Api.telemetry]. *)
type agg = { agg_name : string; count : int; total_ms : float; agg_ticks : int }

type summary = {
  spans : int;
  summary_dropped : int;
  wall_ms : float;          (** first stamp to last stamp *)
  aggs : agg list;          (** sorted by [agg_name] *)
}

val summary : t -> summary
val summary_aggs : summary -> agg list

(** {2 Export} *)

(** One JSON object per line:
    [{"id":…,"parent":…,"name":…,"start_ms":…,"dur_ms":…,"ticks":…,"tags":{…}}];
    [start_ms] is relative to the collector's creation. *)
val to_jsonl : t -> string

(** Chrome [trace_event] JSON (["X"] complete events, µs timestamps) —
    loadable at [chrome://tracing] / Perfetto. *)
val to_chrome : t -> string
