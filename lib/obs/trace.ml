type record = {
  id : int;
  parent : int;
  name : string;
  tags : (string * string) list;
  start_ms : float;
  mutable stop_ms : float; (* negative while the span is still open *)
  mutable ticks : int;
}

type t = {
  mutex : Mutex.t;
  mutable records : record option array;
  mutable length : int;
  max_spans : int;
  mutable dropped : int;
  (* Monotone stamp: raw clock readings can repeat or step backwards
     (NTP); clamping under the collector mutex makes every exported
     interval well-formed by construction. *)
  mutable last : float;
  t0 : float;
}

type span = { tr : t; id : int }

let default_max_spans = 65536

let create ?(max_spans = default_max_spans) () =
  let now = Unix.gettimeofday () *. 1000.0 in
  {
    mutex = Mutex.create ();
    records = Array.make 256 None;
    length = 0;
    max_spans = max 1 max_spans;
    dropped = 0;
    last = now;
    t0 = now;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stamp t =
  let raw = Unix.gettimeofday () *. 1000.0 in
  let v = if raw > t.last then raw else t.last in
  t.last <- v;
  v

(* -1 marks a span that was not recorded (collector at capacity): the
   handle stays valid, [stop] on it is a no-op. *)
let dropped_span tr = { tr; id = -1 }

let open_span tr ~parent ~tags name =
  locked tr (fun () ->
      if tr.length >= tr.max_spans then begin
        tr.dropped <- tr.dropped + 1;
        dropped_span tr
      end
      else begin
        if tr.length = Array.length tr.records then begin
          let bigger =
            Array.make (min tr.max_spans (2 * Array.length tr.records)) None
          in
          Array.blit tr.records 0 bigger 0 tr.length;
          tr.records <- bigger
        end;
        let id = tr.length in
        tr.records.(id) <-
          Some
            { id; parent; name; tags; start_ms = stamp tr; stop_ms = -1.0; ticks = 0 };
        tr.length <- tr.length + 1;
        { tr; id }
      end)

let root ?(tags = []) tr name = open_span tr ~parent:(-1) ~tags name

let child ?(tags = []) parent name =
  match parent with
  | None -> None
  | Some p -> Some (open_span p.tr ~parent:p.id ~tags name)

let stop ?(ticks = 0) span =
  match span with
  | None -> ()
  | Some { tr; id } ->
      if id >= 0 then
        locked tr (fun () ->
            match tr.records.(id) with
            | Some r when r.stop_ms < 0.0 ->
                r.stop_ms <- stamp tr;
                r.ticks <- r.ticks + ticks
            | Some _ | None -> ())

(* Snapshot with open spans closed at the last stamp, so exports and
   summaries always see well-formed intervals. *)
let snapshot t =
  locked t (fun () ->
      let out = ref [] in
      for i = t.length - 1 downto 0 do
        match t.records.(i) with
        | None -> ()
        | Some r ->
            let stop_ms = if r.stop_ms < 0.0 then t.last else r.stop_ms in
            out := { r with stop_ms } :: !out
      done;
      (!out, t.dropped, t.last -. t.t0))

let records t =
  let rs, _, _ = snapshot t in
  rs

let span_count t = locked t (fun () -> t.length)
let dropped t = locked t (fun () -> t.dropped)

(* ---------- summary ---------- *)

type agg = { agg_name : string; count : int; total_ms : float; agg_ticks : int }

type summary = {
  spans : int;
  summary_dropped : int;
  wall_ms : float;
  aggs : agg list;
}

let summary t =
  let rs, dropped, wall_ms = snapshot t in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let count, total, ticks =
        Option.value (Hashtbl.find_opt by_name r.name) ~default:(0, 0.0, 0)
      in
      Hashtbl.replace by_name r.name
        (count + 1, total +. (r.stop_ms -. r.start_ms), ticks + r.ticks))
    rs;
  let aggs =
    Hashtbl.fold
      (fun agg_name (count, total_ms, agg_ticks) acc ->
        { agg_name; count; total_ms; agg_ticks } :: acc)
      by_name []
    |> List.sort (fun a b -> compare a.agg_name b.agg_name)
  in
  { spans = List.length rs; summary_dropped = dropped; wall_ms; aggs }

(* ---------- export ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let tags_json tags =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
       tags)

let to_jsonl t =
  let rs, _, _ = snapshot t in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (r : record) ->
      Printf.bprintf buf
        "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"start_ms\":%.3f,\"dur_ms\":%.3f,\"ticks\":%d,\"tags\":{%s}}\n"
        r.id r.parent (escape r.name) (r.start_ms -. t.t0)
        (r.stop_ms -. r.start_ms) r.ticks (tags_json r.tags))
    rs;
  Buffer.contents buf

(* Chrome trace_event format: "X" (complete) events with microsecond
   timestamps, loadable at chrome://tracing and in Perfetto. *)
let to_chrome t =
  let rs, _, _ = snapshot t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let args =
        tags_json (("ticks", string_of_int r.ticks) :: r.tags)
      in
      Printf.bprintf buf
        "{\"name\":\"%s\",\"cat\":\"acq\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.1f,\"dur\":%.1f,\"args\":{%s}}"
        (escape r.name)
        ((r.start_ms -. t.t0) *. 1000.0)
        ((r.stop_ms -. r.start_ms) *. 1000.0)
        args)
    rs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let summary_aggs s = s.aggs
