(** The replayable mutation journal — newline-JSON, one line per
    applied batch, fsynced before the batch is acknowledged.

    Each line records the batch's journal sequence number (equal to the
    database version {e after} the batch), its idempotency key when the
    client supplied one, the rolling fingerprint after the batch, and
    the operations themselves. Recovery loads the persisted snapshot at
    its manifest version, then replays every line with [seq] greater
    than that version through [Live.Db.apply ~id], verifying the
    fingerprint chain line-by-line — a diverging fingerprint means the
    journal does not belong to this snapshot and recovery refuses.

    The trailing newline is the commit marker: a crash mid-append
    leaves an unterminated final line, which {!replay} silently drops
    (the batch was never acknowledged, so dropping it is correct).
    Unparseable content anywhere {e before} the tail is corruption and
    fails with a typed parse error. *)

type line = {
  seq : int;  (** db version after this batch *)
  id : string option;  (** client idempotency key (wire [batch_id]) *)
  fingerprint : string;  (** rolling fingerprint after this batch *)
  ops : Live.Db.op list;
}

(** Append one line durably: single write of the rendered line plus
    newline, then [fsync]; when the append creates the file, the
    containing directory is fsynced too (power-loss durability).
    Creates the file if absent. *)
val append : string -> line -> (unit, Ac_runtime.Error.t) result

(** Read every committed line in order. An absent file is an empty
    journal; a torn (unterminated) final line is dropped; any other
    undecodable line is a [Parse] error. *)
val replay : string -> (line list, Ac_runtime.Error.t) result

(** Truncate (or create) the journal to empty — when a freshly loaded
    file starts a new snapshot lineage. *)
val reset : string -> (unit, Ac_runtime.Error.t) result

(** [truncate path ~upto] atomically drops every line with
    [seq <= upto] — after a merge compaction persists a snapshot at
    version [upto], the compacted prefix is dead weight, but any batch
    appended concurrently (seq > [upto]) must survive. The caller must
    serialize against appends (e.g. [Live.Db.exclusively]). *)
val truncate : string -> upto:int -> (unit, Ac_runtime.Error.t) result

(** Best-effort [fsync] of a directory — makes file creations/renames
    inside it durable against power loss. Exposed for [Manifest]. *)
val fsync_dir : string -> unit
