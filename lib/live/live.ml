module R = Ac_relational.Relation
module Tuple = Ac_relational.Tuple
module Structure = Ac_relational.Structure
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Metrics = Ac_obs.Metrics

let m_merge_total =
  lazy
    (Metrics.counter Metrics.global "acq_live_merge_total"
       ~help:"Delta-into-main merge compactions performed")

let m_merge_rows =
  lazy
    (Metrics.counter Metrics.global "acq_live_merge_rows_total"
       ~help:"Delta rows (inserts + tombstones) compacted by merges")

let m_merge_duration =
  lazy
    (Metrics.histogram Metrics.global "acq_live_merge_duration_ms"
       ~help:"Merge compaction pause (milliseconds)")

(* Budget-governed scans poll every [tick_stride] rows: cheap enough to
   be invisible, frequent enough that a deadline interrupts a merge of
   any realistic size promptly. *)
let tick_stride = 256

module Relation = struct
  (* The main+delta layout. [main] is an immutable sealed relation (the
     columnar segment queries scan); [inserts] holds tuples present in
     the live set but not in main; [deletes] holds tombstones — tuples
     of main that the live set no longer contains. The invariants

       inserts ∩ main = ∅        deletes ⊆ main        inserts ∩ deletes = ∅

     make the live set exactly (main \ deletes) ∪ inserts and keep the
     view merge collision-free. *)
  type t = {
    arity : int;
    mutable main : R.t;
    inserts : unit Tuple.Table.t;
    deletes : unit Tuple.Table.t;
    mutable rev : int;  (* bumped on every delta change *)
    mutable view : (int * R.t) option;  (* memo keyed by [rev] *)
  }

  let of_sealed rel =
    R.seal rel;
    {
      arity = R.arity rel;
      main = rel;
      inserts = Tuple.Table.create 16;
      deletes = Tuple.Table.create 16;
      rev = 0;
      view = None;
    }

  let create ~arity = of_sealed (R.of_sorted ~arity [||])
  let arity t = t.arity
  let main_rows t = R.cardinality t.main

  let delta_rows t = Tuple.Table.length t.inserts + Tuple.Table.length t.deletes

  let cardinality t =
    R.cardinality t.main
    - Tuple.Table.length t.deletes
    + Tuple.Table.length t.inserts

  let mem t tuple =
    Tuple.Table.mem t.inserts tuple
    || (R.mem t.main tuple && not (Tuple.Table.mem t.deletes tuple))

  let touch t =
    t.rev <- t.rev + 1;
    t.view <- None

  (* Both mutators return whether the live set changed — a repeated
     insert or a delete of an absent tuple is a counted no-op, exactly
     like [Relation.add]'s duplicate rule. *)
  let insert t tuple =
    if Array.length tuple <> t.arity then
      invalid_arg "Live.Relation.insert: tuple length does not match arity";
    if Tuple.Table.mem t.deletes tuple then begin
      Tuple.Table.remove t.deletes tuple;
      touch t;
      true
    end
    else if R.mem t.main tuple || Tuple.Table.mem t.inserts tuple then false
    else begin
      Tuple.Table.replace t.inserts tuple ();
      touch t;
      true
    end

  let delete t tuple =
    if Array.length tuple <> t.arity then
      invalid_arg "Live.Relation.delete: tuple length does not match arity";
    if Tuple.Table.mem t.inserts tuple then begin
      Tuple.Table.remove t.inserts tuple;
      touch t;
      true
    end
    else if R.mem t.main tuple && not (Tuple.Table.mem t.deletes tuple) then begin
      Tuple.Table.replace t.deletes tuple ();
      touch t;
      true
    end
    else false

  let sorted_inserts t =
    let n = Tuple.Table.length t.inserts in
    let rows = Array.make n [||] in
    let i = ref 0 in
    Tuple.Table.iter
      (fun tuple () ->
        rows.(!i) <- tuple;
        incr i)
      t.inserts;
    Array.sort Tuple.compare rows;
    rows

  (* The pinned-order contract: the view enumerates in ascending
     lexicographic order — bit-identical to a freshly rebuilt sealed
     relation holding the same live set — by a linear merge of main's
     canonical iteration with the sorted insert run, dropping
     tombstones. The delta invariants guarantee the merge never sees
     equal keys, so no dedup pass is needed. *)
  let build_view ?budget t =
    let ins = sorted_inserts t in
    let ni = Array.length ins in
    let n_out = cardinality t in
    let out = Array.make n_out [||] in
    let k = ref 0 and ins_i = ref 0 in
    let tick =
      match budget with
      | None -> fun () -> ()
      | Some b ->
          fun () ->
            if !k land (tick_stride - 1) = 0 then begin
              Budget.tick b;
              Budget.check b
            end
    in
    let emit tuple =
      out.(!k) <- tuple;
      incr k;
      tick ()
    in
    R.iter
      (fun tuple ->
        while !ins_i < ni && Tuple.compare ins.(!ins_i) tuple < 0 do
          emit ins.(!ins_i);
          incr ins_i
        done;
        if not (Tuple.Table.mem t.deletes tuple) then emit tuple)
      t.main;
    while !ins_i < ni do
      emit ins.(!ins_i);
      incr ins_i
    done;
    R.of_sorted ~arity:t.arity out

  let view ?budget t =
    if delta_rows t = 0 then t.main
    else
      match t.view with
      | Some (rev, v) when rev = t.rev -> v
      | _ ->
          let v = build_view ?budget t in
          t.view <- Some (t.rev, v);
          v

  let merge ?budget t =
    let compacted = delta_rows t in
    if compacted > 0 then begin
      let v = view ?budget t in
      t.main <- v;
      Tuple.Table.reset t.inserts;
      Tuple.Table.reset t.deletes;
      t.view <- Some (t.rev, v)
    end;
    compacted
end

(* ---------- versioned databases ---------- *)

type op =
  | Insert of { rel : string; tuple : int array }
  | Delete of { rel : string; tuple : int array }

let op_rel = function Insert { rel; _ } | Delete { rel; _ } -> rel
let op_tuple = function Insert { tuple; _ } | Delete { tuple; _ } -> tuple

(* The canonical batch rendering the rolling fingerprint digests: the
   operations in application order, nothing else. Two batches roll the
   fingerprint identically iff they perform the same edits in the same
   order — which is exactly when replaying one for the other is
   sound. *)
let ops_to_string ops =
  let buf = Buffer.create 64 in
  List.iter
    (fun o ->
      Buffer.add_char buf (match o with Insert _ -> '+' | Delete _ -> '-');
      Buffer.add_string buf (op_rel o);
      Buffer.add_char buf '(';
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int v))
        (op_tuple o);
      Buffer.add_string buf ");")
    ops;
  Buffer.contents buf

let roll_fingerprint fp ops =
  Digest.to_hex (Digest.string (fp ^ "|" ^ ops_to_string ops))

type applied = {
  version : int;
  fingerprint : string;
  inserted : int;
  deleted : int;
  replayed : bool;
}

module Db = struct
  type nonrec op = op =
    | Insert of { rel : string; tuple : int array }
    | Delete of { rel : string; tuple : int array }

  type nonrec applied = applied = {
    version : int;
    fingerprint : string;
    inserted : int;
    deleted : int;
    replayed : bool;
  }

  type t = {
    universe_size : int;
    relations : (string, Relation.t) Hashtbl.t;
    mutable version : int;
    mutable fingerprint : string;
    mutable snapshot_memo : (int * Structure.t) option;
    batches : (string, applied) Hashtbl.t;  (* idempotency: batch id → result *)
    mutex : Mutex.t;
  }

  let of_structure ?(version = 0) ?fingerprint base =
    let base = Structure.seal base in
    let fingerprint =
      match fingerprint with
      | Some fp -> fp
      | None -> Structure.fingerprint base
    in
    let relations = Hashtbl.create 16 in
    List.iter
      (fun name ->
        Hashtbl.replace relations name
          (Relation.of_sealed (Structure.relation base name)))
      (Structure.symbols base);
    {
      universe_size = Structure.universe_size base;
      relations;
      version;
      fingerprint;
      (* at its creation version the snapshot IS the base — queries on
         an unmutated db share the original sealed columns at no cost *)
      snapshot_memo = Some (version, base);
      batches = Hashtbl.create 16;
      mutex = Mutex.create ();
    }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let universe_size t = t.universe_size
  let version t = locked t (fun () -> t.version)
  let fingerprint t = locked t (fun () -> t.fingerprint)

  let delta_rows t =
    locked t (fun () ->
        Hashtbl.fold (fun _ rl acc -> acc + Relation.delta_rows rl) t.relations 0)

  let main_rows t =
    locked t (fun () ->
        Hashtbl.fold (fun _ rl acc -> acc + Relation.main_rows rl) t.relations 0)

  (* Batches are atomic: every operation is validated against the
     universe and the (evolving) signature before any is applied, so a
     refused batch leaves the database untouched. *)
  let validate t ops =
    let declared = Hashtbl.create 4 in
    let arity_of rel =
      match Hashtbl.find_opt t.relations rel with
      | Some rl -> Some (Relation.arity rl)
      | None -> Hashtbl.find_opt declared rel
    in
    let rec go = function
      | [] -> Ok ()
      | o :: rest -> (
          let rel = op_rel o and tuple = op_tuple o in
          if Array.length tuple = 0 then
            Error
              (Printf.sprintf "operation on %s: empty tuple (arity must be \
                               positive)" rel)
          else
            match
              Array.find_opt
                (fun v -> v < 0 || v >= t.universe_size)
                tuple
            with
            | Some v ->
                Error
                  (Printf.sprintf
                     "operation on %s: element %d outside universe of size %d"
                     rel v t.universe_size)
            | None -> (
                match arity_of rel with
                | Some a when a <> Array.length tuple ->
                    Error
                      (Printf.sprintf
                         "operation on %s: tuple has length %d but the \
                          relation has arity %d"
                         rel (Array.length tuple) a)
                | Some _ -> go rest
                | None ->
                    (* first touch declares, like Structure.add_fact;
                       a delete of an unknown symbol is a no-op but
                       still pins the arity for the rest of the batch *)
                    Hashtbl.replace declared rel (Array.length tuple);
                    go rest))
    in
    go ops

  (* Each state change pushes its exact inverse onto [undo] (most
     recent first), so running the list front-to-back restores the
     relations to their pre-batch live set. *)
  let apply_op t counts undo o =
    let rel = op_rel o in
    let rl =
      match Hashtbl.find_opt t.relations rel with
      | Some rl -> Some rl
      | None -> (
          match o with
          | Insert { tuple; _ } ->
              let rl = Relation.create ~arity:(Array.length tuple) in
              Hashtbl.replace t.relations rel rl;
              undo := (fun () -> Hashtbl.remove t.relations rel) :: !undo;
              Some rl
          | Delete _ -> None (* deleting from an absent relation: no-op *))
    in
    match (o, rl) with
    | _, None -> ()
    | Insert { tuple; _ }, Some rl ->
        if Relation.insert rl tuple then begin
          counts := (fst !counts + 1, snd !counts);
          undo := (fun () -> ignore (Relation.delete rl tuple)) :: !undo
        end
    | Delete { tuple; _ }, Some rl ->
        if Relation.delete rl tuple then begin
          counts := (fst !counts, snd !counts + 1);
          undo := (fun () -> ignore (Relation.insert rl tuple)) :: !undo
        end

  let apply ?id ?(journal = fun _ -> Ok ()) t ops =
    locked t (fun () ->
        match Option.bind id (Hashtbl.find_opt t.batches) with
        | Some prior -> Ok { prior with replayed = true }
        | None -> (
            match validate t ops with
            | Error msg -> Error (Error.Parse { source = "mutation"; msg })
            | Ok () ->
                let counts = ref (0, 0) in
                let undo = ref [] in
                let prior_version = t.version
                and prior_fingerprint = t.fingerprint
                and prior_memo = t.snapshot_memo in
                List.iter (apply_op t counts undo) ops;
                t.version <- t.version + 1;
                t.fingerprint <- roll_fingerprint t.fingerprint ops;
                t.snapshot_memo <- None;
                let inserted, deleted = !counts in
                let result =
                  {
                    version = t.version;
                    fingerprint = t.fingerprint;
                    inserted;
                    deleted;
                    replayed = false;
                  }
                in
                (* [journal] runs inside the critical section, after the
                   state moved but before the idempotency record exists:
                   because the mutex spans both, journal entries are
                   written in version order, and a failed append rolls
                   the whole batch back — the db is applied-and-durable
                   or untouched, never applied-but-unjournaled (which
                   would leave an unrecoverable gap in the fingerprint
                   chain). *)
                match journal result with
                | Error e ->
                    List.iter (fun f -> f ()) !undo;
                    t.version <- prior_version;
                    t.fingerprint <- prior_fingerprint;
                    t.snapshot_memo <- prior_memo;
                    Error e
                | Ok () ->
                    Option.iter
                      (fun id -> Hashtbl.replace t.batches id result)
                      id;
                    Ok result))

  let record_batch t ~id result =
    locked t (fun () ->
        if not (Hashtbl.mem t.batches id) then
          Hashtbl.replace t.batches id result)

  let exclusively t f = locked t f

  let symbols_unlocked t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []
    |> List.sort String.compare

  let symbols t = locked t (fun () -> symbols_unlocked t)

  let snapshot_unlocked ?budget t =
    match t.snapshot_memo with
    | Some (v, s) when v = t.version -> s
    | _ ->
        let s = Structure.create ~universe_size:t.universe_size in
        List.iter
          (fun name ->
            let rl = Hashtbl.find t.relations name in
            Structure.install s name (Relation.view ?budget rl))
          (symbols_unlocked t);
        let s = Structure.seal s in
        t.snapshot_memo <- Some (t.version, s);
        s

  let snapshot ?budget t = locked t (fun () -> snapshot_unlocked ?budget t)

  let current ?budget t =
    locked t (fun () -> (t.version, t.fingerprint, snapshot_unlocked ?budget t))

  let needs_merge ?(threshold = 4096) ?(ratio = 0.25) t =
    threshold > 0
    &&
    locked t (fun () ->
        let delta, main =
          Hashtbl.fold
            (fun _ rl (d, m) ->
              (d + Relation.delta_rows rl, m + Relation.main_rows rl))
            t.relations (0, 0)
        in
        delta >= threshold && float_of_int delta >= (ratio *. float_of_int main))

  let merge ?budget t =
    locked t (fun () ->
        let t0 = Budget.now_ms () in
        let compacted =
          Hashtbl.fold
            (fun _ rl acc -> acc + Relation.merge ?budget rl)
            t.relations 0
        in
        if compacted > 0 then begin
          Metrics.incr (Lazy.force m_merge_total);
          Metrics.add (Lazy.force m_merge_rows) compacted;
          Metrics.observe (Lazy.force m_merge_duration) (Budget.now_ms () -. t0)
        end;
        compacted)
end
