module Json = Ac_analysis.Json
module Error = Ac_runtime.Error

type line = {
  seq : int;
  id : string option;
  fingerprint : string;
  ops : Live.Db.op list;
}

let op_to_json (o : Live.Db.op) =
  let verb, rel, tuple =
    match o with
    | Insert { rel; tuple } -> ("insert", rel, tuple)
    | Delete { rel; tuple } -> ("delete", rel, tuple)
  in
  Json.Obj
    [
      ("op", Json.String verb);
      ("rel", Json.String rel);
      ("tuple", Json.List (Array.to_list (Array.map (fun v -> Json.Int v) tuple)));
    ]

let op_of_json j =
  let ( let* ) = Option.bind in
  let* verb = Option.bind (Json.mem "op" j) Json.to_str in
  let* rel = Option.bind (Json.mem "rel" j) Json.to_str in
  let* elems = Option.bind (Json.mem "tuple" j) Json.to_list in
  let* values =
    List.fold_right
      (fun e acc ->
        match (Json.to_int e, acc) with
        | Some v, Some tl -> Some (v :: tl)
        | _ -> None)
      elems (Some [])
  in
  let tuple = Array.of_list values in
  match verb with
  | "insert" -> Some (Live.Db.Insert { rel; tuple })
  | "delete" -> Some (Live.Db.Delete { rel; tuple })
  | _ -> None

let line_to_json l =
  let fields =
    [ ("seq", Json.Int l.seq) ]
    @ (match l.id with Some id -> [ ("id", Json.String id) ] | None -> [])
    @ [
        ("fingerprint", Json.String l.fingerprint);
        ("ops", Json.List (List.map op_to_json l.ops));
      ]
  in
  Json.Obj fields

let line_of_json j =
  let ( let* ) = Option.bind in
  let* seq = Option.bind (Json.mem "seq" j) Json.to_int in
  let* fingerprint = Option.bind (Json.mem "fingerprint" j) Json.to_str in
  let id = Option.bind (Json.mem "id" j) Json.to_str in
  let* raw = Option.bind (Json.mem "ops" j) Json.to_list in
  let* ops =
    List.fold_right
      (fun o acc ->
        match (op_of_json o, acc) with
        | Some op, Some tl -> Some (op :: tl)
        | _ -> None)
      raw (Some [])
  in
  Some { seq; id; fingerprint; ops }

let io_error path exn =
  let msg =
    match exn with
    | Unix.Unix_error (e, _, _) -> Unix.error_message e
    | Sys_error m -> m
    | e -> Printexc.to_string e
  in
  Error.Io { file = path; msg }

(* Durability against power loss, not just process crashes, needs the
   {e directory} flushed too: file creation and renames live in the
   directory's data, and an unflushed directory can forget a file whose
   contents were fsynced. Best-effort — not every filesystem lets a
   directory fd be fsynced, and the file-level fsync already covers the
   process-crash case. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* One durable write per batch: open in append mode, write the whole
   line (payload + newline) with a single [write], fsync, close — and
   when the append created the file, fsync the directory so the new
   name itself survives power loss. The newline is the commit marker —
   replay treats an unterminated final line as a torn write and drops
   it. *)
let append path l =
  match
    let payload = Json.to_string (line_to_json l) ^ "\n" in
    let created = not (Sys.file_exists path) in
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let bytes = Bytes.of_string payload in
        let n = Unix.write fd bytes 0 (Bytes.length bytes) in
        if n <> Bytes.length bytes then
          raise (Sys_error "short write to journal");
        Unix.fsync fd);
    if created then fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception e -> Error (io_error path e)

let replay path =
  if not (Sys.file_exists path) then Ok []
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          really_input_string ic len)
    with
    | exception e -> Error (io_error path e)
    | contents ->
        (* A crash can tear only the final line (appends are
           sequential): a trailing fragment with no newline is dropped;
           anything unreadable before that is corruption. *)
        let terminated = String.length contents = 0
                         || contents.[String.length contents - 1] = '\n' in
        let raw_lines = String.split_on_char '\n' contents in
        let raw_lines =
          List.filteri
            (fun _ s -> String.trim s <> "")
            raw_lines
        in
        let n = List.length raw_lines in
        let rec decode i acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest -> (
              match Option.bind (Result.to_option (Json.parse s)) line_of_json with
              | Some l -> decode (i + 1) (l :: acc) rest
              | None when i = n - 1 && not terminated ->
                  (* torn tail: the batch was never acknowledged *)
                  Ok (List.rev acc)
              | None ->
                  Error
                    (Error.Parse
                       {
                         source = path;
                         msg =
                           Printf.sprintf
                             "journal line %d is not a valid mutation record"
                             (i + 1);
                       }))
        in
        decode 0 [] raw_lines

let reset path =
  match
    let created = not (Sys.file_exists path) in
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC; Unix.O_CREAT ] 0o644
    in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd);
    if created then fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception e -> Error (io_error path e)

(* Atomic rewrite keeping only lines above the compacted version:
   write the survivors to a temp file, fsync it, rename over the
   journal, fsync the directory — a crash at any instruction leaves
   either the old journal or the new one, both replayable. The caller
   must serialize against concurrent appends (the server holds the
   db's write lock, [Live.Db.exclusively]) or a batch appended between
   the read and the rename would be silently dropped. *)
let truncate path ~upto =
  match replay path with
  | Error _ as e -> e
  | Ok lines -> (
      let keep = List.filter (fun l -> l.seq > upto) lines in
      match
        let tmp = path ^ ".tmp" in
        let fd =
          Unix.openfile tmp
            [ Unix.O_WRONLY; Unix.O_TRUNC; Unix.O_CREAT ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let buf = Buffer.create 256 in
            List.iter
              (fun l ->
                Buffer.add_string buf (Json.to_string (line_to_json l));
                Buffer.add_char buf '\n')
              keep;
            let bytes = Buffer.to_bytes buf in
            let n = Unix.write fd bytes 0 (Bytes.length bytes) in
            if n <> Bytes.length bytes then
              raise (Sys_error "short write to journal");
            Unix.fsync fd);
        Unix.rename tmp path;
        fsync_dir (Filename.dirname path)
      with
      | () -> Ok ()
      | exception e -> Error (io_error path e))
