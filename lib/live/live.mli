(** Live mutable databases: main+delta relation storage and versioned,
    fingerprinted databases.

    The catalog's sealed columnar {!Ac_relational.Relation} never
    changes after {!Ac_relational.Structure.seal}. This module makes
    that immutable storage {e mutable} without giving up scan speed,
    using the classic main+delta columnar design: every relation is an
    immutable sealed {b main} segment plus a small mutable {b delta}
    side-table of inserts and delete tombstones. Queries run over a
    merged {b view} whose enumeration order is pinned to ascending
    lexicographic — bit-identical to a freshly rebuilt sealed relation
    holding the same live set — so [Generic_join] over a live view
    produces the same estimate, per seed, as a rebuild from scratch
    (the same contract docs/join.md pins for Trie vs Columnar).

    {!Db} wraps a named database: a set of live relations plus a
    {b monotone version counter} and a {b rolling fingerprint} that
    advance on every applied batch. [(fingerprint, version)] is the
    cache key component that makes plan/result caches invalidate
    precisely on mutation (see [Cache.db_key]); the rolling fingerprint
    chain is also what journal recovery verifies line-by-line (see
    {!Journal}).

    {b Domain safety.} {!Db} entry points are serialized by an internal
    mutex — safe to call from concurrent server workers. A bare
    {!Relation.t} is not synchronized; the server only touches
    relations through their [Db]. *)

module Relation : sig
  type t

  (** [of_sealed rel] wraps an existing relation as the main segment
      with an empty delta. Seals [rel] (idempotent). *)
  val of_sealed : Ac_relational.Relation.t -> t

  (** An empty live relation (empty sealed main, empty delta). *)
  val create : arity:int -> t

  val arity : t -> int

  (** Live-set membership: in the delta inserts, or in main and not
      tombstoned. *)
  val mem : t -> Ac_relational.Tuple.t -> bool

  (** Exact live-set count: [|main| - |tombstones| + |inserts|]. *)
  val cardinality : t -> int

  (** Rows in the sealed main segment only. *)
  val main_rows : t -> int

  (** Delta side-table size: inserts + tombstones. Zero means {!view}
      returns the main segment itself, at no cost. *)
  val delta_rows : t -> int

  (** [insert t tuple] adds [tuple] to the live set; returns whether the
      set changed (a duplicate insert is a counted no-op). Raises
      [Invalid_argument] on an arity mismatch. *)
  val insert : t -> Ac_relational.Tuple.t -> bool

  (** [delete t tuple] removes [tuple] from the live set; returns
      whether the set changed. *)
  val delete : t -> Ac_relational.Tuple.t -> bool

  (** The merged query view: a {e sealed} relation containing exactly
      the live set, enumerating in canonical ascending-lex order —
      bit-identical to rebuilding a sealed relation from the live
      tuples. Memoized until the next mutation; with an empty delta the
      main segment is returned directly. [budget] is ticked during the
      merge scan (roughly once per 256 rows). *)
  val view : ?budget:Ac_runtime.Budget.t -> t -> Ac_relational.Relation.t

  (** Compact the delta into the main segment (main becomes {!view},
      delta empties). Returns the number of delta rows compacted.
      Content-preserving: {!view} before and after are the same sealed
      relation. *)
  val merge : ?budget:Ac_runtime.Budget.t -> t -> int
end

module Db : sig
  type t

  type op =
    | Insert of { rel : string; tuple : int array }
    | Delete of { rel : string; tuple : int array }

  (** Result of an applied (or replayed) batch. [version] and
      [fingerprint] are the database's values {e after} the batch;
      [inserted]/[deleted] count operations that actually changed the
      live set; [replayed] is true when the batch id was already
      applied and the stored result was returned instead. *)
  type applied = {
    version : int;
    fingerprint : string;
    inserted : int;
    deleted : int;
    replayed : bool;
  }

  (** [of_structure base] wraps a (sealed — sealing is forced) structure
      as a live database at [version] (default [0]) with rolling
      fingerprint [fingerprint] (default [Structure.fingerprint base]).
      At its creation version {!snapshot} returns [base] itself, so an
      unmutated live db shares the original sealed columns. Recovery
      passes the persisted [version]/[fingerprint] to resume the chain. *)
  val of_structure :
    ?version:int -> ?fingerprint:string -> Ac_relational.Structure.t -> t

  val universe_size : t -> int

  (** Monotone: bumped by every applied batch (even an all-no-op one). *)
  val version : t -> int

  (** Rolling fingerprint: starts at the base structure's content
      fingerprint and digests each applied batch's canonical op
      rendering in order. Equal chains ⇔ same edit history. *)
  val fingerprint : t -> string

  (** Total delta rows across all relations. *)
  val delta_rows : t -> int

  (** Total main-segment rows across all relations. *)
  val main_rows : t -> int

  (** Sorted relation symbols (base relations plus any declared by
      inserts). *)
  val symbols : t -> string list

  (** [apply ?id t ops] applies one atomic batch. Every op is validated
      first (universe bounds, arity against the existing or
      batch-declared relation) — a refused batch ([Error (Parse _)])
      leaves the db untouched. Inserting into an unknown relation
      declares it with the tuple's arity; deleting from an unknown
      relation is a counted no-op. On success the version is bumped and
      the fingerprint rolled, {e always} — idempotency is by [id], not
      by content.

      [id] is the batch idempotency key (the wire [batch_id]): a batch
      whose [id] was already applied returns the originally stored
      result with [replayed = true] and changes nothing — this is what
      makes retried [LOAD_BATCH]es apply exactly once.

      [journal] (default: always [Ok ()]) is the durability hook. It
      runs {e inside} the db's critical section, after the batch has
      mutated the state (so it sees the post-batch version/fingerprint)
      but before the idempotency record is stored. Because the mutex
      spans the mutation and the hook, concurrent batches journal in
      version order. If the hook returns [Error], the batch is rolled
      back completely — relations, version, fingerprint and the
      idempotency table are as if the batch never happened — and the
      hook's error is returned: a batch is applied-and-journaled or
      neither. The hook must not call back into this database (the
      mutex is not reentrant). *)
  val apply :
    ?id:string ->
    ?journal:(applied -> (unit, Ac_runtime.Error.t) result) ->
    t ->
    op list ->
    (applied, Ac_runtime.Error.t) result

  (** [record_batch t ~id result] pre-registers an idempotency record
      without applying anything: a later {!apply} with the same [id]
      answers [{ result with replayed = true }]. No-op if [id] is
      already registered. Recovery uses this for journal lines already
      compacted into the loaded snapshot, so a client retry after a
      crash is still answered as a replay (the original change counts
      are not in the journal, so such replays report zero
      inserted/deleted). *)
  val record_batch : t -> id:string -> applied -> unit

  (** [exclusively t f] runs [f] while holding the db's internal mutex,
      serializing it against {!apply} (and its [journal] hook). The
      server uses this to truncate the journal after a merge
      compaction without racing a concurrent append. [f] must not call
      back into this database. *)
  val exclusively : t -> (unit -> 'a) -> 'a

  (** A sealed structure of the live views — what queries run against.
      Memoized per version; at the creation version it is the base
      structure itself. *)
  val snapshot : ?budget:Ac_runtime.Budget.t -> t -> Ac_relational.Structure.t

  (** [(version, fingerprint, snapshot)] read atomically under the db
      mutex — the consistent triple catalog entries are built from. *)
  val current :
    ?budget:Ac_runtime.Budget.t ->
    t ->
    int * string * Ac_relational.Structure.t

  (** Merge-policy predicate: total delta rows ≥ [threshold] (default
      [4096]; [threshold <= 0] disables merging) {e and} delta ≥
      [ratio] (default [0.25]) × total main rows. *)
  val needs_merge : ?threshold:int -> ?ratio:float -> t -> bool

  (** Compact every relation's delta ({!Relation.merge}). Returns total
      delta rows compacted. Does {e not} change the version or
      fingerprint — a merge is a physical reorganization, not an edit,
      so caches keyed on [(fingerprint, version)] stay valid. Updates
      the [acq_live_merge_*] metrics when any rows were compacted. *)
  val merge : ?budget:Ac_runtime.Budget.t -> t -> int
end

(** Canonical batch rendering digested by the rolling fingerprint —
    exposed for tests and for {!Journal} documentation. *)
val ops_to_string : Db.op list -> string

(** [roll_fingerprint fp ops] — the fingerprint after applying [ops] to
    a database whose rolling fingerprint is [fp]. *)
val roll_fingerprint : string -> Db.op list -> string
