type t = {
  id : int;
  label : int;
  children : t list;
}

(* Ids must stay unique when trees are built from several domains at
   once (parallel sketch trials) — the automaton's run-state memo keys
   on them, and a duplicated id would silently corrupt it. *)
let counter = Atomic.make 0

let node label children =
  if List.length children > 2 then invalid_arg "Ltree.node: more than 2 children";
  { id = Atomic.fetch_and_add counter 1 + 1; label; children }

let leaf label = node label []

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let rec equal a b =
  a.label = b.label
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children

let rec compare a b =
  let c = Int.compare a.label b.label in
  if c <> 0 then c
  else
    let c = Int.compare (List.length a.children) (List.length b.children) in
    if c <> 0 then c
    else
      List.fold_left2
        (fun acc x y -> if acc <> 0 then acc else compare x y)
        0 a.children b.children

let rec hash t =
  List.fold_left
    (fun acc c -> ((acc * 0x01000193) lxor hash c) land max_int)
    ((t.label + 0x9e3779b9) land max_int)
    t.children

type shape = Shape of shape list

let rec shape_of t = Shape (List.map shape_of t.children)

let rec shape_size (Shape kids) =
  1 + List.fold_left (fun acc s -> acc + shape_size s) 0 kids

let rec shapes_with_size n =
  if n <= 0 then []
  else if n = 1 then [ Shape [] ]
  else
    (* one child *)
    let unary = List.map (fun s -> Shape [ s ]) (shapes_with_size (n - 1)) in
    (* two children: split n-1 nodes *)
    let binary = ref [] in
    for left = 1 to n - 2 do
      List.iter
        (fun ls ->
          List.iter
            (fun rs -> binary := Shape [ ls; rs ] :: !binary)
            (shapes_with_size (n - 1 - left)))
        (shapes_with_size left)
    done;
    unary @ List.rev !binary

let rec labelings ~alphabet (Shape kids) =
  let child_choices =
    List.fold_right
      (fun kid acc ->
        let options = labelings ~alphabet kid in
        List.concat_map (fun rest -> List.map (fun o -> o :: rest) options) acc)
      kids [ [] ]
  in
  List.concat_map
    (fun children -> List.init alphabet (fun a -> node a children))
    child_choices

let rec pp fmt t =
  match t.children with
  | [] -> Format.fprintf fmt "%d" t.label
  | kids ->
      Format.fprintf fmt "%d(%a)" t.label
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           pp)
        kids
