(** Sketch-based randomized approximation of #TA over a fixed tree shape —
    the engine the paper imports from Arenas–Croquevielle–Jayaram–Riveros
    (Lemma 51, [5, Corollary 4.9]), reimplemented in its natural bottom-up
    form (see DESIGN.md substitution 3).

    For every shape node [u] and automaton state [s] the algorithm keeps
    (i) an estimate of [|L(u, s)|] — the number of labelings of the
    subtree at [u] admitting a run from [s] — and (ii) a bounded sketch of
    approximately-uniform samples from [L(u, s)]. Estimates for a node are
    assembled from its children with the Karp–Luby union estimator: the
    candidate sets reachable through different transitions overlap, and
    multiplicities are resolved with automaton membership tests (cheap:
    run-state sets are memoised per shared subtree).

    The pair (estimate, sketch) also yields an approximately-uniform
    sampler of accepted labelings, used by the §6 sampling extension. *)

type config = {
  sketch_size : int;    (** samples kept per (node, state) *)
  union_rounds : int;   (** Karp–Luby rounds per union estimate *)
  rng : Random.State.t;
  budget : Ac_runtime.Budget.t;
      (** cooperative cancellation: ticked per sketch cell, per
          Karp–Luby round and per pool draw; a tripped budget aborts
          the propagation with [Budget_exceeded] *)
}

val default_config : ?seed:int -> ?budget:Ac_runtime.Budget.t -> unit -> config

(** Estimate of the number of labelings of [shape] accepted by the
    automaton. *)
val estimate_fixed_shape : ?config:config -> Tree_automaton.t -> Ltree.shape -> float

(** Median over [repetitions] independent sketch propagations, each on
    its own deterministic RNG stream, fanned out over [exec]'s domains
    ({!Ac_exec.Engine}). The automaton is shared read-only across the
    trials (its run-state memo is domain-local); trial [i] draws all
    randomness from stream [i] of [exec]'s seed, so the median is
    bit-identical for any jobs count. [budget] governs the whole batch
    through per-chunk sub-slices; [config]'s own [rng]/[budget] fields
    are overridden per trial. *)
val estimate_median :
  ?budget:Ac_runtime.Budget.t ->
  ?config:config ->
  exec:Ac_exec.Engine.t ->
  repetitions:int ->
  Tree_automaton.t ->
  Ltree.shape ->
  float

(** Approximately-uniform sample of an accepted labeling ([None] when the
    estimate is 0). *)
val sample_fixed_shape :
  ?config:config -> Tree_automaton.t -> Ltree.shape -> Ltree.t option

(** Estimate and a sampler sharing the same sketches (cheaper when many
    samples are needed). *)
val estimator :
  ?config:config ->
  Tree_automaton.t ->
  Ltree.shape ->
  float * (unit -> Ltree.t option)

(** {2 The full N-slice}

    The paper's #TA (Definition 50) counts accepted inputs over {e all}
    trees with exactly [n] nodes. The sketches generalise by keying cells
    on [(state, subtree size)] instead of shape nodes: binary transitions
    union over all size splits (structurally disjoint), unary and leaf
    transitions over sizes [n-1] and [1]. *)

(** Estimate of [|L_n(A)|] (Definition 50's N-slice). *)
val estimate_slice : ?config:config -> Tree_automaton.t -> int -> float

(** Estimate plus an approximately-uniform sampler over the N-slice. *)
val slice_estimator :
  ?config:config ->
  Tree_automaton.t ->
  int ->
  float * (unit -> Ltree.t option)
