type rhs =
  | Stop
  | One of int
  | Two of int * int

module Iset = Set.Make (Int)

type t = {
  num_states : int;
  num_symbols : int;
  initial : int;
  by_symbol : (int, (int * rhs) list ref) Hashtbl.t; (* symbol → (state, rhs) *)
  seen : (int * int * rhs, unit) Hashtbl.t;
  mutable count : int;
  reach_memo : (int, Iset.t) Hashtbl.t Domain.DLS.key;
      (* Ltree id → run states. Domain-local: the parallel sketch trials
         share one (read-only) automaton across domains, and a plain
         shared hashtable would race on memoisation writes. Each domain
         memoises independently — the memo is semantics-free cache, so
         results stay bit-identical regardless of which domain ran a
         trial. *)
}

let create ~num_states ~num_symbols ~initial =
  if num_states <= 0 || num_symbols <= 0 then invalid_arg "Tree_automaton.create";
  if initial < 0 || initial >= num_states then
    invalid_arg "Tree_automaton.create: initial state out of range";
  {
    num_states;
    num_symbols;
    initial;
    by_symbol = Hashtbl.create 64;
    seen = Hashtbl.create 256;
    count = 0;
    reach_memo = Domain.DLS.new_key (fun () -> Hashtbl.create 1024);
  }

let num_states a = a.num_states
let num_symbols a = a.num_symbols
let initial a = a.initial

let check_state a s =
  if s < 0 || s >= a.num_states then invalid_arg "Tree_automaton: state out of range"

let add_transition a ~state ~symbol rhs =
  check_state a state;
  if symbol < 0 || symbol >= a.num_symbols then
    invalid_arg "Tree_automaton: symbol out of range";
  (match rhs with
  | Stop -> ()
  | One s -> check_state a s
  | Two (s1, s2) ->
      check_state a s1;
      check_state a s2);
  if not (Hashtbl.mem a.seen (state, symbol, rhs)) then begin
    Hashtbl.replace a.seen (state, symbol, rhs) ();
    let bucket =
      match Hashtbl.find_opt a.by_symbol symbol with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.replace a.by_symbol symbol b;
          b
    in
    bucket := (state, rhs) :: !bucket;
    a.count <- a.count + 1
  end

let transitions a ~state ~symbol =
  match Hashtbl.find_opt a.by_symbol symbol with
  | None -> []
  | Some b -> List.filter_map (fun (s, r) -> if s = state then Some r else None) !b

let num_transitions a = a.count

let iter_transitions a f =
  Hashtbl.iter
    (fun symbol bucket ->
      List.iter (fun (state, rhs) -> f ~state ~symbol rhs) !bucket)
    a.by_symbol

let rec reach a (tree : Ltree.t) =
  let memo = Domain.DLS.get a.reach_memo in
  match Hashtbl.find_opt memo tree.Ltree.id with
  | Some r -> r
  | None ->
      let result =
        let candidates =
          match Hashtbl.find_opt a.by_symbol tree.Ltree.label with
          | None -> []
          | Some b -> !b
        in
        match tree.Ltree.children with
        | [] ->
            List.fold_left
              (fun acc (s, r) -> match r with Stop -> Iset.add s acc | _ -> acc)
              Iset.empty candidates
        | [ c ] ->
            let rc = reach a c in
            List.fold_left
              (fun acc (s, r) ->
                match r with
                | One s1 when Iset.mem s1 rc -> Iset.add s acc
                | _ -> acc)
              Iset.empty candidates
        | [ c1; c2 ] ->
            let r1 = reach a c1 and r2 = reach a c2 in
            List.fold_left
              (fun acc (s, r) ->
                match r with
                | Two (s1, s2) when Iset.mem s1 r1 && Iset.mem s2 r2 ->
                    Iset.add s acc
                | _ -> acc)
              Iset.empty candidates
        | _ -> invalid_arg "Tree_automaton: tree node with more than 2 children"
      in
      Hashtbl.replace memo tree.Ltree.id result;
      result

let run_states a tree = Iset.elements (reach a tree)

let accepts_from a s tree = Iset.mem s (reach a tree)
let accepts a tree = accepts_from a a.initial tree
