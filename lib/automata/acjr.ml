module Iset = Set.Make (Int)
module Budget = Ac_runtime.Budget

type config = {
  sketch_size : int;
  union_rounds : int;
  rng : Random.State.t;
  budget : Budget.t;
}

let default_config ?seed ?(budget = Budget.none) () =
  let rng =
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  { sketch_size = 48; union_rounds = 48; rng; budget }

(* Shape nodes flattened in postorder (children get smaller ids). *)
type snode = { children : int list }

let flatten shape =
  let nodes = ref [] in
  let count = ref 0 in
  let rec go (Ltree.Shape kids) =
    let child_ids = List.map go kids in
    let id = !count in
    incr count;
    nodes := { children = child_ids } :: !nodes;
    id
  in
  let root = go shape in
  let arr = Array.of_list (List.rev !nodes) in
  (arr, root)

(* Per-state transitions grouped by symbol. In the Lemma 52 automata every
   state fires on exactly one symbol, so iterating a state's own groups is
   dramatically cheaper than scanning the whole alphabet. *)
let state_index a =
  let by_state = Array.make (Tree_automaton.num_states a) [] in
  Tree_automaton.iter_transitions a (fun ~state ~symbol rhs ->
      by_state.(state) <- (symbol, rhs) :: by_state.(state));
  Array.map
    (fun pairs ->
      let groups = Hashtbl.create 4 in
      List.iter
        (fun (symbol, rhs) ->
          let bucket =
            match Hashtbl.find_opt groups symbol with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.replace groups symbol b;
                b
          in
          bucket := rhs :: !bucket)
        pairs;
      Hashtbl.fold (fun symbol bucket acc -> (symbol, !bucket) :: acc) groups [])
    by_state

(* Bottom-up "possible" state sets: s is possible at a shape node if some
   transition of matching arity exists with possible children states. *)
let possible_sets a index nodes =
  let n = Array.length nodes in
  let possible = Array.make n Iset.empty in
  let states = Tree_automaton.num_states a in
  for u = 0 to n - 1 do
    let kids = nodes.(u).children in
    let ok = ref Iset.empty in
    for s = 0 to states - 1 do
      let fires =
        List.exists
          (fun (_, rhss) ->
            List.exists
              (fun rhs ->
                match (rhs, kids) with
                | Tree_automaton.Stop, [] -> true
                | Tree_automaton.One s1, [ c ] -> Iset.mem s1 possible.(c)
                | Tree_automaton.Two (s1, s2), [ c1; c2 ] ->
                    Iset.mem s1 possible.(c1) && Iset.mem s2 possible.(c2)
                | _ -> false)
              rhss)
          index.(s)
      in
      if fires then ok := Iset.add s !ok
    done;
    possible.(u) <- !ok
  done;
  possible

(* Top-down "needed" states, pruned by possibility. *)
let needed_sets a index nodes root possible =
  let n = Array.length nodes in
  let needed = Array.make n Iset.empty in
  let rec go u states =
    let states = Iset.inter states possible.(u) in
    let fresh = Iset.diff states needed.(u) in
    if not (Iset.is_empty fresh) then begin
      needed.(u) <- Iset.union needed.(u) fresh;
      match nodes.(u).children with
      | [] -> ()
      | [ c ] ->
          let next = ref Iset.empty in
          Iset.iter
            (fun s ->
              List.iter
                (fun (_, rhss) ->
                  List.iter
                    (function
                      | Tree_automaton.One s1 -> next := Iset.add s1 !next
                      | Tree_automaton.Stop | Tree_automaton.Two _ -> ())
                    rhss)
                index.(s))
            fresh;
          go c !next
      | [ c1; c2 ] ->
          let next1 = ref Iset.empty and next2 = ref Iset.empty in
          Iset.iter
            (fun s ->
              List.iter
                (fun (_, rhss) ->
                  List.iter
                    (function
                      | Tree_automaton.Two (s1, s2) ->
                          next1 := Iset.add s1 !next1;
                          next2 := Iset.add s2 !next2
                      | Tree_automaton.Stop | Tree_automaton.One _ -> ())
                    rhss)
                index.(s))
            fresh;
          go c1 !next1;
          go c2 !next2
      | _ -> invalid_arg "Acjr: shape with more than 2 children"
    end
  in
  go root (Iset.singleton (Tree_automaton.initial a));
  needed

(* A cell: estimate + approx-uniform sampler over L(node, state). *)
type cell = {
  est : float;
  draw : unit -> Ltree.t option;
}

let empty_cell = { est = 0.0; draw = (fun () -> None) }

(* A branch of a union: weight, a drawer of candidate child tuples, and a
   membership test. *)
type branch = {
  weight : float;
  draw_children : unit -> Ltree.t list option;
  member : Ltree.t list -> bool;
}

let pick_weighted rng weights total =
  let x = Random.State.float rng total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

(* Karp–Luby over overlapping branches: estimate |∪ branches| and sample
   approximately uniformly from the union. *)
let union_estimate config branches =
  match branches with
  | [] -> (0.0, fun () -> None)
  | [ b ] -> (b.weight, b.draw_children)
  | _ ->
      let arr = Array.of_list branches in
      let weights = Array.map (fun b -> b.weight) arr in
      let total = Array.fold_left ( +. ) 0.0 weights in
      if total <= 0.0 then (0.0, fun () -> None)
      else begin
        let multiplicity x =
          Array.fold_left (fun m b -> if b.member x then m + 1 else m) 0 arr
        in
        let acc = ref 0.0 and used = ref 0 in
        for _ = 1 to config.union_rounds do
          Budget.tick config.budget;
          let i = pick_weighted config.rng weights total in
          match arr.(i).draw_children () with
          | None -> ()
          | Some x ->
              incr used;
              let m = max (multiplicity x) 1 in
              acc := !acc +. (1.0 /. float_of_int m)
        done;
        let estimate =
          if !used = 0 then 0.0 else total *. !acc /. float_of_int !used
        in
        let rec draw attempts =
          if attempts > 64 then None
          else
            let i = pick_weighted config.rng weights total in
            match arr.(i).draw_children () with
            | None -> draw (attempts + 1)
            | Some x ->
                let m = max (multiplicity x) 1 in
                if Random.State.float config.rng 1.0 < 1.0 /. float_of_int m then
                  Some x
                else draw (attempts + 1)
        in
        (estimate, fun () -> draw 0)
      end

let pool_of config draw =
  let samples = ref [] and size = ref 0 in
  let misses = ref 0 in
  while !size < config.sketch_size && !misses < 4 * config.sketch_size do
    Budget.tick config.budget;
    match draw () with
    | Some x ->
        samples := x :: !samples;
        incr size
    | None -> incr misses
  done;
  Array.of_list !samples

let draw_from_pool rng pool () =
  if Array.length pool = 0 then None
  else Some pool.(Random.State.int rng (Array.length pool))

let process a config shape =
  let nodes, root = flatten shape in
  let index = state_index a in
  let possible = possible_sets a index nodes in
  let needed = needed_sets a index nodes root possible in
  let n = Array.length nodes in
  let cells : (int, cell) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 16) in
  let cell_of u s = Option.value ~default:empty_cell (Hashtbl.find_opt cells.(u) s) in
  (* shared leaves per symbol so run-state memoisation pays off *)
  let leaf_cache = Hashtbl.create 16 in
  let shared_leaf symbol =
    match Hashtbl.find_opt leaf_cache symbol with
    | Some l -> l
    | None ->
        let l = Ltree.leaf symbol in
        Hashtbl.replace leaf_cache symbol l;
        l
  in
  (* nodes are in postorder already *)
  for u = 0 to n - 1 do
    let kids = nodes.(u).children in
    Iset.iter
      (fun s ->
        Budget.tick config.budget;
        (* per fired symbol: a union over the transitions (s, symbol) *)
        let groups =
          List.filter_map
            (fun (symbol, rhss) ->
              let branches =
                List.filter_map
                  (fun rhs ->
                    match (rhs, kids) with
                    | Tree_automaton.Stop, [] ->
                        Some
                          {
                            weight = 1.0;
                            draw_children = (fun () -> Some []);
                            member = (fun _ -> true);
                          }
                    | Tree_automaton.One s1, [ c ] ->
                        let cc = cell_of c s1 in
                        if cc.est <= 0.0 then None
                        else
                          Some
                            {
                              weight = cc.est;
                              draw_children =
                                (fun () ->
                                  match cc.draw () with
                                  | Some x -> Some [ x ]
                                  | None -> None);
                              member =
                                (function
                                  | [ x ] -> Tree_automaton.accepts_from a s1 x
                                  | _ -> false);
                            }
                    | Tree_automaton.Two (s1, s2), [ c1; c2 ] ->
                        let cc1 = cell_of c1 s1 and cc2 = cell_of c2 s2 in
                        if cc1.est <= 0.0 || cc2.est <= 0.0 then None
                        else
                          Some
                            {
                              weight = cc1.est *. cc2.est;
                              draw_children =
                                (fun () ->
                                  match (cc1.draw (), cc2.draw ()) with
                                  | Some x1, Some x2 -> Some [ x1; x2 ]
                                  | _ -> None);
                              member =
                                (function
                                  | [ x1; x2 ] ->
                                      Tree_automaton.accepts_from a s1 x1
                                      && Tree_automaton.accepts_from a s2 x2
                                  | _ -> false);
                            }
                    | _ -> None)
                  rhss
              in
              match union_estimate config branches with
              | 0.0, _ -> None
              | est, draw -> Some (symbol, est, draw))
            index.(s)
        in
        if groups <> [] then begin
          let group_arr = Array.of_list groups in
          let weights = Array.map (fun (_, est, _) -> est) group_arr in
          let total = Array.fold_left ( +. ) 0.0 weights in
          if total > 0.0 then begin
            let draw_once () =
              let g = pick_weighted config.rng weights total in
              let symbol, _, draw = group_arr.(g) in
              match draw () with
              | None -> None
              | Some [] -> Some (shared_leaf symbol)
              | Some children -> Some (Ltree.node symbol children)
            in
            let rec retry attempts =
              if attempts > 16 then None
              else
                match draw_once () with
                | Some x -> Some x
                | None -> retry (attempts + 1)
            in
            (* a bounded pool makes repeated child sampling cheap *)
            let pool = pool_of config (fun () -> retry 0) in
            let draw =
              if Array.length pool = 0 then fun () -> None
              else draw_from_pool config.rng pool
            in
            Hashtbl.replace cells.(u) s { est = total; draw }
          end
        end)
      needed.(u)
  done;
  (cells, root)

let estimator ?config a shape =
  let config = match config with Some c -> c | None -> default_config () in
  let cells, root = process a config shape in
  let root_cell =
    Option.value ~default:empty_cell
      (Hashtbl.find_opt cells.(root) (Tree_automaton.initial a))
  in
  (root_cell.est, root_cell.draw)

let estimate_fixed_shape ?config a shape = fst (estimator ?config a shape)

(* The paper's confidence amplification: independent repetitions of the
   whole sketch propagation, combined by median. Each trial re-seeds the
   config from its own stream and ticks its chunk's budget slice, so the
   batch parallelises over domains without sharing any mutable sketch
   state (the automaton itself is read-only here; its run-state memo is
   domain-local). *)
let estimate_median ?budget ?config ~exec ~repetitions a shape =
  let base = match config with Some c -> c | None -> default_config () in
  if repetitions <= 1 then
    estimate_fixed_shape ~config:base a shape
  else begin
    let trials =
      Ac_exec.Engine.run ?budget exec ~trials:repetitions
        (fun ~rng ~budget i ->
          ignore i;
          estimate_fixed_shape ~config:{ base with rng; budget } a shape)
    in
    let sorted = Array.copy trials in
    Array.sort Float.compare sorted;
    let n = Array.length sorted in
    if n land 1 = 1 then sorted.(n / 2)
    else 0.5 *. (sorted.((n / 2) - 1) +. sorted.(n / 2))
  end

let sample_fixed_shape ?config a shape =
  let _, draw = estimator ?config a shape in
  draw ()

(* ------------------------------------------------------------------ *)
(* The full N-slice: cells keyed (state, subtree size). Branches of a
   union are per (transition, size split); splits are structurally
   disjoint, so multiplicities only arise across transitions sharing a
   split, which the membership test resolves with a size check plus a
   run check. *)

let slice_estimator ?config a n =
  let config = match config with Some c -> c | None -> default_config () in
  if n < 1 then (0.0, fun () -> None)
  else begin
    let index = state_index a in
    let states = Tree_automaton.num_states a in
    (* cells.(size - 1) : state -> cell *)
    let cells : (int, cell) Hashtbl.t array =
      Array.init n (fun _ -> Hashtbl.create 16)
    in
    let cell_of size s =
      if size < 1 || size > n then empty_cell
      else Option.value ~default:empty_cell (Hashtbl.find_opt cells.(size - 1) s)
    in
    let leaf_cache = Hashtbl.create 16 in
    let shared_leaf symbol =
      match Hashtbl.find_opt leaf_cache symbol with
      | Some l -> l
      | None ->
          let l = Ltree.leaf symbol in
          Hashtbl.replace leaf_cache symbol l;
          l
    in
    for size = 1 to n do
      for s = 0 to states - 1 do
        Budget.tick config.budget;
        let groups =
          List.filter_map
            (fun (symbol, rhss) ->
              let branches =
                List.concat_map
                  (fun rhs ->
                    match rhs with
                    | Tree_automaton.Stop ->
                        if size = 1 then
                          [
                            {
                              weight = 1.0;
                              draw_children = (fun () -> Some []);
                              member = (function [] -> true | _ -> false);
                            };
                          ]
                        else []
                    | Tree_automaton.One s1 ->
                        let cc = cell_of (size - 1) s1 in
                        if cc.est <= 0.0 then []
                        else
                          [
                            {
                              weight = cc.est;
                              draw_children =
                                (fun () ->
                                  match cc.draw () with
                                  | Some x -> Some [ x ]
                                  | None -> None);
                              member =
                                (function
                                  | [ x ] ->
                                      Ltree.size x = size - 1
                                      && Tree_automaton.accepts_from a s1 x
                                  | _ -> false);
                            };
                          ]
                    | Tree_automaton.Two (s1, s2) ->
                        List.filter_map
                          (fun n1 ->
                            let n2 = size - 1 - n1 in
                            if n2 < 1 then None
                            else begin
                              let cc1 = cell_of n1 s1 and cc2 = cell_of n2 s2 in
                              if cc1.est <= 0.0 || cc2.est <= 0.0 then None
                              else
                                Some
                                  {
                                    weight = cc1.est *. cc2.est;
                                    draw_children =
                                      (fun () ->
                                        match (cc1.draw (), cc2.draw ()) with
                                        | Some x1, Some x2 -> Some [ x1; x2 ]
                                        | _ -> None);
                                    member =
                                      (function
                                        | [ x1; x2 ] ->
                                            Ltree.size x1 = n1
                                            && Ltree.size x2 = n2
                                            && Tree_automaton.accepts_from a s1 x1
                                            && Tree_automaton.accepts_from a s2 x2
                                        | _ -> false);
                                  }
                            end)
                          (List.init (max 0 (size - 2)) (fun i -> i + 1)))
                  rhss
              in
              match union_estimate config branches with
              | 0.0, _ -> None
              | est, draw -> Some (symbol, est, draw))
            index.(s)
        in
        if groups <> [] then begin
          let group_arr = Array.of_list groups in
          let weights = Array.map (fun (_, est, _) -> est) group_arr in
          let total = Array.fold_left ( +. ) 0.0 weights in
          if total > 0.0 then begin
            let draw_once () =
              let g = pick_weighted config.rng weights total in
              let symbol, _, draw = group_arr.(g) in
              match draw () with
              | None -> None
              | Some [] -> Some (shared_leaf symbol)
              | Some children -> Some (Ltree.node symbol children)
            in
            let rec retry attempts =
              if attempts > 16 then None
              else
                match draw_once () with
                | Some x -> Some x
                | None -> retry (attempts + 1)
            in
            let pool = pool_of config (fun () -> retry 0) in
            let draw =
              if Array.length pool = 0 then fun () -> None
              else draw_from_pool config.rng pool
            in
            Hashtbl.replace cells.(size - 1) s { est = total; draw }
          end
        end
      done
    done;
    let root = cell_of n (Tree_automaton.initial a) in
    (root.est, root.draw)
  end

let estimate_slice ?config a n = fst (slice_estimator ?config a n)
