(* Experiment driver: regenerates every table of EXPERIMENTS.md.

     dune exec bin/experiments.exe                    # all experiments
     dune exec bin/experiments.exe -- e4 e6           # a subset
     dune exec bin/experiments.exe -- --list          # the registry
     dune exec bin/experiments.exe -- --lint-families # static analysis *)

open Cmdliner

(* One deterministic line per experiment family: id, family name, regime
   and diagnostic summary. CI diffs this output against a golden file,
   so it must stay stable (no timings, no randomness). *)
let lint_families fmt =
  let errors = ref 0 in
  List.iter
    (fun (id, name, q) ->
      let report = Ac_analysis.Report.analyze q in
      let c = Ac_analysis.Report.classification_exn report in
      let e, w, i, h = Ac_analysis.Report.tally report in
      errors := !errors + e;
      let codes =
        match report.Ac_analysis.Report.diagnostics with
        | [] -> "clean"
        | ds ->
            String.concat ","
              (List.map
                 (fun d ->
                   Ac_analysis.Diagnostic.code_id d.Ac_analysis.Diagnostic.code)
                 ds)
      in
      Format.fprintf fmt "%-4s %-20s %-22s tw=%d fhw=%.2f e=%d w=%d i=%d h=%d %s@."
        id name
        (Ac_analysis.Classification.regime_name
           c.Ac_analysis.Classification.regime)
        c.Ac_analysis.Classification.treewidth
        c.Ac_analysis.Classification.fhw e w i h codes)
    (Ac_experiments.Registry.families ());
  !errors

let run_ids list_only lint_only ids =
  let fmt = Format.std_formatter in
  if lint_only then begin
    let errors = lint_families fmt in
    Format.pp_print_flush fmt ();
    if errors > 0 then
      `Error (false, Printf.sprintf "%d lint error(s) in experiment families" errors)
    else `Ok ()
  end
  else if list_only then begin
    List.iter
      (fun e -> Format.fprintf fmt "%-4s %s@." e.Ac_experiments.Common.id e.claim)
      Ac_experiments.Registry.all;
    `Ok ()
  end
  else begin
    let selected =
      match ids with
      | [] -> Ok Ac_experiments.Registry.all
      | ids ->
          let rec resolve acc = function
            | [] -> Ok (List.rev acc)
            | id :: rest -> (
                match Ac_experiments.Registry.find id with
                | Some e -> resolve (e :: acc) rest
                | None -> Error id)
          in
          resolve [] ids
    in
    match selected with
    | Error id -> `Error (false, Printf.sprintf "unknown experiment %S" id)
    | Ok experiments ->
        List.iter
          (fun e ->
            Format.fprintf fmt "@.### %s — %s@." e.Ac_experiments.Common.id e.claim;
            e.run fmt)
          experiments;
        Format.pp_print_flush fmt ();
        `Ok ()
  end

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e8).")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List the experiment registry and exit.")

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint-families" ]
        ~doc:"Run the static analysis over every experiment's query \
              families and print one deterministic summary line each \
              (the CI golden output); non-zero exit on lint errors.")

let cmd =
  let doc = "Regenerate the paper-claim experiments (DESIGN.md §4)" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(ret (const run_ids $ list_flag $ lint_flag $ ids))

let () = exit (Cmd.eval cmd)
