(* acqd — the resident approximate-counting query service.

     acqd --socket /tmp/acqd.sock --load people=facts.txt
     acqd --tcp 127.0.0.1:7464 --load g=graph.txt --load h=other.txt
     acqd --socket /tmp/acqd.sock --queue 16 --result-cache 0 --verbose

   Clients speak newline-delimited JSON (docs/server.md); `acq count
   --connect ...` and `acq ping/stats --connect ...` are ready-made
   clients. SIGINT/SIGTERM drain the in-flight requests and exit 0. *)

open Cmdliner
module Server = Ac_server.Server
module Catalog = Ac_server.Catalog
module Client = Ac_server.Client
module Router = Ac_server.Router
module Partition = Ac_server.Partition
module Error = Ac_runtime.Error

let socket_term =
  let doc = "Listen on a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_term =
  let doc = "Listen on TCP at $(docv) (HOST:PORT)." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let load_term =
  let doc =
    "Preload a database into the catalog as $(docv); repeatable. Clients \
     select it with the USE verb (acq --use NAME)."
  in
  Arg.(value & opt_all string [] & info [ "load" ] ~docv:"NAME=FILE" ~doc)

let queue_term =
  let doc =
    "Admission bound: concurrent requests beyond this are refused with \
     the typed `overloaded' status (exit 17) instead of queueing \
     unboundedly."
  in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let plan_cache_term =
  let doc = "Plan-cache capacity (0 disables)." in
  Arg.(value & opt int 256 & info [ "plan-cache" ] ~docv:"N" ~doc)

let result_cache_term =
  let doc = "Result-cache capacity (0 disables)." in
  Arg.(value & opt int 1024 & info [ "result-cache" ] ~docv:"N" ~doc)

let timeout_term =
  let doc =
    "Default per-request wall-clock budget in milliseconds, applied when \
     a request names none."
  in
  Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let manifest_term =
  let doc =
    "Crash-recovery manifest: the catalog (name, path, fingerprint) is \
     snapshotted to $(docv) with an atomic rename after every load, and \
     replayed — fingerprints re-verified — on restart. STATS/HEALTH \
     then report recovered=true."
  in
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)

let merge_threshold_term =
  let doc =
    "Merge policy: compact a live database's insert/delete deltas back \
     into sealed columns once the delta reaches $(docv) rows (0 disables \
     merging)."
  in
  Arg.(value & opt int 4096 & info [ "merge-threshold" ] ~docv:"ROWS" ~doc)

let merge_ratio_term =
  let doc =
    "Merge policy: additionally require the delta to be at least $(docv) \
     of the main segment's rows, so small deltas on big databases stay \
     resident."
  in
  Arg.(value & opt float 0.25 & info [ "merge-ratio" ] ~docv:"FRACTION" ~doc)

let worker_term =
  let doc =
    "Fleet mode: a worker daemon at $(docv) (unix:PATH or tcp:HOST:PORT); \
     repeatable, one shard per worker in order. Every --load'ed (or \
     recovered) database is partitioned and shipped to the workers over \
     the LOAD verb; shardable COUNTs then scatter-gather across the \
     fleet, others run on the local full copy."
  in
  Arg.(value & opt_all string [] & info [ "worker" ] ~docv:"ADDR" ~doc)

let partition_term =
  let doc =
    "Fleet partition spec: STRATEGY[:COLUMN], strategy hash or range, \
     over the given fact column (default hash:0). The shard count is \
     the --worker count. Recorded in the manifest."
  in
  Arg.(value & opt string "hash:0" & info [ "partition" ] ~docv:"SPEC" ~doc)

let tenant_quota_term =
  let doc =
    "Bound the in-flight requests of any single tenant (the wire \
     `tenant' field) to $(docv), under the global --queue capacity; \
     excess is refused with the typed `overloaded' status."
  in
  Arg.(value & opt (some int) None & info [ "tenant-quota" ] ~docv:"N" ~doc)

let force_term =
  let doc =
    "Clean up a stale socket file (one no daemon answers on) instead of \
     refusing to start. Never steals a socket a live daemon holds."
  in
  Arg.(value & flag & info [ "force" ] ~doc)

let verbose_term =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty stderr diagnostics.")

let parse_load spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 ->
      Ok
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
  | _ -> Error (Printf.sprintf "--load %S: expected NAME=FILE" spec)

let run socket tcp loads queue plan_cache result_cache timeout_ms manifest
    merge_threshold merge_ratio workers partition tenant_quota force verbose =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "acqd: %s\n%!" m) fmt in
  let config =
    {
      Server.queue_capacity = queue;
      plan_cache_capacity = plan_cache;
      result_cache_capacity = result_cache;
      default_timeout_ms = timeout_ms;
      manifest;
      merge_threshold;
      merge_ratio;
      tenant_quota;
      verbose;
    }
  in
  let router_result =
    match workers with
    | [] -> Ok None
    | specs -> (
        match Partition.spec_of_string partition with
        | Error msg ->
            fail "--partition %s" msg;
            Error 124
        | Ok spec -> (
            let rec addrs acc = function
              | [] -> Ok (List.rev acc)
              | s :: rest -> (
                  match Client.address_of_string s with
                  | Ok a -> addrs (a :: acc) rest
                  | Error msg ->
                      fail "--worker %S: %s" s msg;
                      Error 124)
            in
            match addrs [] specs with
            | Error code -> Error code
            | Ok addresses ->
                Ok
                  (Some
                     (Router.create ~strategy:spec.Partition.strategy
                        ~column:spec.Partition.column addresses))))
  in
  match router_result with
  | Error code -> code
  | Ok router ->
  let server = Server.create ?router ~config () in
  (* crash recovery first: replay the manifest (if any), then let
     explicit --load flags override or extend what it restored *)
  let recovery =
    match Server.recover server with
    | Ok [] -> Ok ()
    | Ok names ->
        if verbose then
          Printf.eprintf "acqd: recovered %s from manifest\n%!"
            (String.concat ", " names);
        Ok ()
    | Error e ->
        fail "cannot recover catalog: [%s] %s" (Error.class_name e)
          (Error.message e);
        Error (Error.exit_code e)
  in
  (* load the catalog before binding: a daemon that cannot serve its
     databases should not be connectable *)
  let rec load_all = function
    | [] -> Ok ()
    | spec :: rest -> (
        match parse_load spec with
        | Error msg ->
            fail "%s" msg;
            Error 124
        | Ok (name, path) -> (
            match Server.load_db server ~name ~path with
            | Ok entry ->
                if verbose then
                  Printf.eprintf
                    "acqd: loaded %s from %s (universe %d, ‖D‖ = %d, %s)\n%!"
                    entry.Catalog.name path entry.Catalog.universe
                    entry.Catalog.size entry.Catalog.fingerprint;
                load_all rest
            | Error e ->
                fail "cannot load %s: [%s] %s" spec (Error.class_name e)
                  (Error.message e);
                Error (Error.exit_code e)))
  in
  match (recovery, load_all loads) with
  | Error code, _ | _, Error code -> code
  | Ok (), Ok () -> (
      (* fleet mode: cut every catalog entry (recovered or --load'ed)
         and ship the shards before binding — a router that cannot
         seed its fleet should not be connectable *)
      let distribution =
        match router with
        | None -> Ok ()
        | Some router ->
            let rec go = function
              | [] -> Ok ()
              | (e : Catalog.entry) :: rest -> (
                  match
                    Router.distribute router ~name:e.Catalog.name e.Catalog.db
                  with
                  | Ok sizes ->
                      if verbose then
                        Printf.eprintf
                          "acqd: distributed %s over %d workers (shard sizes \
                           %s)\n\
                           %!"
                          e.Catalog.name (Array.length sizes)
                          (String.concat ", "
                             (Array.to_list (Array.map string_of_int sizes)));
                      go rest
                  | Error err ->
                      fail "cannot distribute %s: [%s] %s" e.Catalog.name
                        (Error.class_name err) (Error.message err);
                      Error (Error.exit_code err))
            in
            go (Catalog.entries (Server.catalog server))
      in
      match distribution with
      | Error code -> code
      | Ok () ->
      let listeners =
        match socket with
        | None -> Ok []
        | Some path -> (
            match Server.listen_unix ~force ~path () with
            | Ok fd -> Ok [ fd ]
            | Error e ->
                fail "cannot listen on unix:%s: [%s] %s" path
                  (Error.class_name e) (Error.message e);
                Error (Error.exit_code e))
      in
      let listeners =
        match (listeners, tcp) with
        | Error _, _ | _, None -> listeners
        | Ok acc, Some spec -> (
            match Ac_server.Client.address_of_string ("tcp:" ^ spec) with
            | Ok (Ac_server.Client.Tcp (host, port)) ->
                Ok (Server.listen_tcp ~host ~port :: acc)
            | _ ->
                fail "--tcp %S: expected HOST:PORT" spec;
                Error 124)
      in
      match listeners with
      | Error code -> code
      | Ok [] ->
          fail "nothing to listen on (need --socket and/or --tcp)";
          124
      | Ok listeners ->
          let stop _ = Server.request_stop server in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          if verbose then begin
            (match socket with
            | Some path -> Printf.eprintf "acqd: listening on unix:%s\n%!" path
            | None -> ());
            match tcp with
            | Some spec -> Printf.eprintf "acqd: listening on tcp:%s\n%!" spec
            | None -> ()
          end;
          Server.serve server listeners;
          (match socket with
          | Some path -> ( try Sys.remove path with Sys_error _ -> ())
          | None -> ());
          if verbose then begin
            (* final scrape of the process-wide registry: what this
               daemon's life looked like, in the same exposition the
               METRICS verb serves *)
            Printf.eprintf "%s%!" (Ac_obs.Metrics.to_prometheus Ac_obs.Metrics.global);
            Printf.eprintf "acqd: drained, bye\n%!"
          end;
          0)

let () =
  let doc = "resident query service for approximate conjunctive-query counting" in
  let info = Cmd.info "acqd" ~doc in
  let term =
    Term.(
      const run $ socket_term $ tcp_term $ load_term $ queue_term
      $ plan_cache_term $ result_cache_term $ timeout_term $ manifest_term
      $ merge_threshold_term $ merge_ratio_term $ worker_term $ partition_term
      $ tenant_quota_term $ force_term $ verbose_term)
  in
  exit (Cmd.eval' (Cmd.v info term))
