(* acq — approximate conjunctive-query counting from the command line.

     acq count  --db facts.txt --query "ans(x) :- F(x,y), F(x,z), y != z"
     acq count  --db facts.txt --query "..." --method fpras
     acq count  --db facts.txt --query "..." --timeout-ms 500 --max-heap-mb 512
     acq sample --db facts.txt --query "..." --draws 5
     acq widths --query "..."
     acq generate --kind friends --size 100 --out facts.txt

   Databases use the plain-text format of Ac_relational.Structure_io.

   Exit codes (see docs/robustness.md): 0 success; 3 answered but
   degraded (a budget tripped and a fallback rung produced the value);
   10-16 typed error classes (Ac_runtime.Error.exit_code); 124/125 are
   cmdliner's. *)

open Cmdliner

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Structure_io = Ac_relational.Structure_io
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Planner = Approxcount.Planner
module Api = Approxcount.Api

let exit_degraded = 3

let report err =
  Printf.eprintf "acq: error [%s]: %s\n%!" (Error.class_name err)
    (Error.message err);
  Error.exit_code err

(* All-or-nothing: [Error.guard]ed body, typed-error exit code on failure. *)
let guarded f = match Error.guard f with Ok code -> code | Error e -> report e

let make_budget ~timeout_ms ~max_heap_mb =
  match (timeout_ms, max_heap_mb) with
  | None, None -> None
  | _ ->
      Some
        (Budget.create ~label:"cli"
           ?deadline_ms:(Option.map float_of_int timeout_ms)
           ?max_heap_mb ())

let query_term =
  let doc = "The query, e.g. \"ans(x) :- E(x, y), !R(y, y), x != y\"." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let db_term =
  let doc = "Database file (see Structure_io format)." in
  (* a plain string, not Arg.file: existence failures should flow through
     the typed Io error (exit 11), not cmdliner's 124 *)
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc)

let epsilon_term =
  Arg.(
    value & opt float 0.25
    & info [ "eps"; "epsilon" ] ~docv:"EPS" ~doc:"Accuracy target.")

let delta_term =
  Arg.(value & opt float 0.1 & info [ "delta" ] ~docv:"DELTA" ~doc:"Failure probability.")

let seed_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"RNG seed; omitted, a fresh seed is drawn (logged with --verbose).")

let timeout_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Wall-clock budget in milliseconds (cooperative: loops poll it).")

let max_heap_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-heap-mb" ] ~docv:"MB"
        ~doc:"Live-heap watermark in megabytes (checked via Gc.quick_stat).")

let max_db_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-db-mb" ] ~docv:"MB"
        ~doc:"Refuse database files larger than this (checked before reading).")

let strict_term =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Fail fast with a typed error instead of degrading along the \
              fallback chain when a budget trips (--method auto).")

let verbose_term =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty stderr diagnostics.")

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for independent trials; 0 (default) picks \
           one per available core, 1 is fully sequential. Estimates \
           are bit-identical for any value — jobs only changes \
           throughput.")

let engine_term =
  (* note: must not be named [conv] — Arg.( ) would shadow it *)
  let engine_conv =
    Arg.enum
      [
        ("tree-dp", Approxcount.Colour_oracle.Tree_dp);
        ("generic", Approxcount.Colour_oracle.Generic);
        ("direct", Approxcount.Colour_oracle.Direct);
      ]
  in
  Arg.(
    value
    & opt engine_conv Approxcount.Colour_oracle.Tree_dp
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Hom engine for the FPTRAS: tree-dp (Theorem 5), generic (Theorem 13) or direct (ablation).")

let method_term =
  Arg.(
    value
    & opt
        (enum
           [ ("auto", `Auto); ("exact", `Exact); ("fptras", `Fptras);
             ("fpras", `Fpras); ("brute", `Brute) ])
        `Auto
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"auto (planner + governed fallback), exact (join+project), fptras (Theorems 5/13), fpras (Theorem 16, CQs only), brute.")

let with_input ?max_db_mb query_text db_path f =
  match Ecq.parse_result query_text with
  | Error e -> report e
  | Ok query -> (
      let max_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_db_mb in
      match Structure_io.load_result ?max_bytes db_path with
      | Error e -> report e
      | Ok db ->
          if not (Ecq.compatible_with query db) then
            report
              (Error.Signature_mismatch
                 "query signature is not contained in the database's")
          else f query db)

let count_cmd =
  let run query_text db_path method_ engine eps delta seed jobs timeout_ms
      max_heap_mb max_db_mb strict verbose =
    with_input ?max_db_mb query_text db_path (fun query db ->
        let budget = make_budget ~timeout_ms ~max_heap_mb in
        let method_ =
          match method_ with
          | `Auto -> Api.Auto
          | `Exact -> Api.Exact
          | `Brute -> Api.Brute
          | `Fptras -> Api.Fptras engine
          | `Fpras -> Api.Fpras
        in
        let jobs = if jobs <= 0 then None else Some jobs in
        let r =
          Api.request ~eps ~delta ~method_ ?seed ?jobs ?budget ~strict ~verbose
            query db
        in
        match Api.run r with
        | Error e -> report e
        | Ok resp ->
            if resp.Api.exact then Printf.printf "%.0f\n" resp.Api.estimate
            else Printf.printf "%.1f\n" resp.Api.estimate;
            (match resp.Api.decision with
            | Some d -> Printf.eprintf "plan: %s\n%!" d.Planner.reason
            | None -> ());
            if verbose then begin
              let t = resp.Api.telemetry in
              Printf.eprintf
                "acq: seed %d, jobs %d, %d ticks, %.1f ms (replay with --seed %d --jobs %d)\n%!"
                t.Api.seed t.Api.jobs t.Api.ticks t.Api.elapsed_ms t.Api.seed
                t.Api.jobs
            end;
            if resp.Api.degraded then begin
              let failed =
                resp.Api.attempts
                |> List.map (fun (a : Planner.attempt) ->
                       Printf.sprintf "%s (%s)"
                         (Planner.rung_name a.Planner.rung)
                         (Error.message a.Planner.error))
                |> String.concat "; "
              in
              let rung =
                match resp.Api.rung with
                | Some r -> Planner.rung_name r
                | None -> "?"
              in
              Printf.eprintf
                "acq: degraded answer from rung %s — %s; failed rungs: %s\n%!"
                rung
                (if resp.Api.guarantee then "(eps,delta) guarantee holds"
                 else "lower bound only, no guarantee")
                failed;
              exit_degraded
            end
            else begin
              (match (verbose, resp.Api.rung) with
              | true, Some rung ->
                  Printf.eprintf "acq: rung %s, guarantee %b\n%!"
                    (Planner.rung_name rung) resp.Api.guarantee
              | _ -> ());
              0
            end)
  in
  let doc = "Count the answers of a query in a database." in
  Cmd.v (Cmd.info "count" ~doc)
    Term.(
      const run $ query_term $ db_term $ method_term $ engine_term
      $ epsilon_term $ delta_term $ seed_term $ jobs_term $ timeout_term
      $ max_heap_term $ max_db_term $ strict_term $ verbose_term)

let sample_cmd =
  let draws_term =
    Arg.(value & opt int 1 & info [ "draws" ] ~docv:"N" ~doc:"Number of samples.")
  in
  let run query_text db_path engine eps delta seed jobs draws timeout_ms
      max_heap_mb max_db_mb verbose =
    with_input ?max_db_mb query_text db_path (fun query db ->
        let budget = make_budget ~timeout_ms ~max_heap_mb in
        let jobs = if jobs <= 0 then None else Some jobs in
        let r =
          Api.request ~eps ~delta ~method_:(Api.Fptras engine) ?seed ?jobs
            ?budget ~verbose query db
        in
        match Api.sample ~draws r with
        | Error e -> report e
        | Ok (samples, t) ->
            Array.iter
              (function
                | None -> print_endline "(no sample)"
                | Some tau ->
                    print_endline
                      (String.concat " "
                         (Array.to_list (Array.map string_of_int tau))))
              samples;
            if verbose then
              Printf.eprintf
                "acq: seed %d, jobs %d, %d ticks, %.1f ms (replay with --seed %d --jobs %d)\n%!"
                t.Api.seed t.Api.jobs t.Api.ticks t.Api.elapsed_ms t.Api.seed
                t.Api.jobs;
            0)
  in
  let doc = "Draw approximately-uniform answers (§6 JVV sampling)." in
  Cmd.v (Cmd.info "sample" ~doc)
    Term.(
      const run $ query_term $ db_term $ engine_term $ epsilon_term
      $ delta_term $ seed_term $ jobs_term $ draws_term $ timeout_term
      $ max_heap_term $ max_db_term $ verbose_term)

let widths_cmd =
  let run query_text =
    match Ecq.parse_result query_text with
    | Error e -> report e
    | Ok query ->
        let h = Ecq.hypergraph query in
        let small = Ac_hypergraph.Hypergraph.num_vertices h <= 14 in
        let tw =
          if small then fst (Ac_hypergraph.Tree_decomposition.treewidth_exact h)
          else
            Ac_hypergraph.Tree_decomposition.width
              (Ac_hypergraph.Tree_decomposition.decompose h)
        in
        let fhw =
          if small then fst (Ac_hypergraph.Widths.fhw_exact h)
          else Ac_hypergraph.Widths.fhw_upper h
        in
        Printf.printf "variables:            %d (%d free)\n" (Ecq.num_vars query)
          (Ecq.num_free query);
        Printf.printf "size ‖φ‖:             %d\n" (Ecq.size query);
        Printf.printf "class:                %s\n"
          (if Ecq.is_cq query then "CQ"
           else if Ecq.is_dcq query then "DCQ"
           else "ECQ");
        Printf.printf "treewidth:            %d%s\n" tw (if small then "" else " (upper bound)");
        Printf.printf "fractional htw:       %.2f%s\n" fhw
          (if small then "" else " (upper bound)");
        Printf.printf "guarantee:            %s\n"
          (if Ecq.is_cq query then "FPRAS (Theorem 16, bounded fhw)"
           else if Ecq.is_dcq query then
             "FPTRAS (Theorem 13, bounded adaptive width); no FPRAS (Obs. 10)"
           else "FPTRAS (Theorem 5, bounded tw & arity); no FPRAS (Obs. 10)");
        0
  in
  let doc = "Width measures and the paper's guarantee for a query." in
  Cmd.v (Cmd.info "widths" ~doc) Term.(const run $ query_term)

(* ---------- lint & explain ---------- *)

let db_opt_term =
  let doc =
    "Optional database file: enables the database-aware checks (QL006 \
     signature mismatch, QL010 empty relation)."
  in
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc)

let json_term =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the report as JSON (stable schema, see docs/analysis.md).")

(* Load the optional database, hand the (possibly absent) structure to
   [f]; Io/parse failures use the typed exit codes like every other
   subcommand. *)
let with_optional_db ?max_db_mb db_path f =
  match db_path with
  | None -> f None
  | Some path -> (
      let max_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_db_mb in
      match Structure_io.load_result ?max_bytes path with
      | Error e -> report e
      | Ok db -> f (Some db))

let lint_cmd =
  let run query_text db_path max_db_mb json =
    with_optional_db ?max_db_mb db_path (fun db ->
        let report_ = Ac_analysis.Report.analyze_text ?db query_text in
        if json then
          print_endline
            (Ac_analysis.Json.to_string_pretty
               (Ac_analysis.Report.to_json report_))
        else Format.printf "%a%!" Ac_analysis.Report.pp report_;
        Ac_analysis.Report.exit_status report_)
  in
  let doc =
    "Statically analyse a query: stable-coded diagnostics (QL000-QL011) \
     plus the Figure 1 classification. Exit 0 when free of errors, 1 \
     otherwise."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ query_term $ db_opt_term $ max_db_term $ json_term)

let explain_cmd =
  let run query_text json =
    let report_ = Ac_analysis.Report.analyze_text query_text in
    match report_.Ac_analysis.Report.classification with
    | None ->
        (* parse failed: surface the diagnostics and fail like lint *)
        Format.printf "%a%!" Ac_analysis.Report.pp report_;
        Ac_analysis.Report.exit_status report_
    | Some c ->
        if json then
          print_endline
            (Ac_analysis.Json.to_string_pretty
               (Ac_analysis.Classification.to_json c))
        else begin
          let q = Option.get report_.Ac_analysis.Report.query in
          Format.printf "%a"
            (Ac_analysis.Classification.pp ~var_name:(Ecq.var_name q))
            c;
          let d = Planner.decision_of_classification c in
          Format.printf "plan:         %s@." d.Planner.reason
        end;
        0
  in
  let doc =
    "Explain the planner's decision for a query: the Figure 1 \
     classification with its structural witnesses, and the plan it \
     induces."
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ query_term $ json_term)

let generate_cmd =
  let kind_term =
    Arg.(
      value
      & opt (enum [ ("friends", `Friends); ("graph", `Graph); ("relation", `Relation) ]) `Friends
      & info [ "kind" ] ~docv:"KIND" ~doc:"friends | graph | relation.")
  in
  let size_term =
    Arg.(value & opt int 50 & info [ "size" ] ~docv:"N" ~doc:"Universe size.")
  in
  let out_term =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run kind size out seed =
    guarded (fun () ->
        let rng = Random.State.make [| Option.value seed ~default:42 |] in
        let db =
          match kind with
          | `Friends -> Ac_workload.Dbgen.friends_database ~rng ~n:size ~avg_degree:6.0
          | `Graph ->
              Ac_workload.Graph.to_structure
                (Ac_workload.Graph.random_gnp ~rng size 0.3)
          | `Relation ->
              Ac_workload.Dbgen.random_structure ~rng ~universe_size:size
                [ ("R", 2, 4 * size) ]
        in
        Structure_io.save out db;
        Printf.printf "wrote %s (universe %d, ‖D‖ = %d)\n" out
          (Structure.universe_size db) (Structure.size db);
        0)
  in
  let doc = "Generate a random database file." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ kind_term $ size_term $ out_term $ seed_term)

let () =
  let doc = "approximately counting answers to conjunctive queries" in
  let info = Cmd.info "acq" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ count_cmd; sample_cmd; widths_cmd; lint_cmd; explain_cmd;
            generate_cmd ]))
