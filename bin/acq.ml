(* acq — approximate conjunctive-query counting from the command line.

     acq count  --db facts.txt --query "ans(x) :- F(x,y), F(x,z), y != z"
     acq count  --db facts.txt --query "..." --method fpras
     acq count  --db facts.txt --query "..." --timeout-ms 500 --max-heap-mb 512
     acq count  --db - --query "..."             # database from stdin
     acq count  --connect /run/acqd.sock --use people --query "..."
     acq sample --db facts.txt --query "..." --draws 5
     acq widths --query "..."
     acq generate --kind friends --size 100 --out facts.txt
     acq ping   --connect /run/acqd.sock
     acq stats  --connect /run/acqd.sock

   Databases use the plain-text format of Ac_relational.Structure_io;
   [--db -] reads the same format from stdin. With [--connect ADDR]
   (unix:PATH, tcp:HOST:PORT or a bare socket path) count/sample are
   executed by a resident acqd daemon over the wire protocol of
   docs/server.md — same estimates, same exit codes.

   Exit codes (see docs/robustness.md): 0 success; 3 answered but
   degraded (a budget tripped and a fallback rung produced the value);
   10-17 typed error classes (Ac_runtime.Error.exit_code); 124/125 are
   cmdliner's. *)

open Cmdliner

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Structure_io = Ac_relational.Structure_io
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Planner = Approxcount.Planner
module Api = Approxcount.Api
module Wire = Ac_server.Wire
module Client = Ac_server.Client
module Retry_policy = Ac_server.Retry_policy
module Trace = Ac_obs.Trace

let exit_degraded = 3

let report err =
  Printf.eprintf "acq: error [%s]: %s\n%!" (Error.class_name err)
    (Error.message err);
  Error.exit_code err

(* All-or-nothing: [Error.guard]ed body, typed-error exit code on failure. *)
let guarded f = match Error.guard f with Ok code -> code | Error e -> report e

let make_budget ~timeout_ms ~max_heap_mb =
  match (timeout_ms, max_heap_mb) with
  | None, None -> None
  | _ ->
      Some
        (Budget.create ~label:"cli"
           ?deadline_ms:(Option.map float_of_int timeout_ms)
           ?max_heap_mb ())

let query_term =
  let doc = "The query, e.g. \"ans(x) :- E(x, y), !R(y, y), x != y\"." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let epsilon_term =
  Arg.(
    value & opt float 0.25
    & info [ "eps"; "epsilon" ] ~docv:"EPS" ~doc:"Accuracy target.")

let delta_term =
  Arg.(value & opt float 0.1 & info [ "delta" ] ~docv:"DELTA" ~doc:"Failure probability.")

let seed_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"RNG seed; omitted, a fresh seed is drawn (logged with --verbose).")

let timeout_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Wall-clock budget in milliseconds (cooperative: loops poll it).")

let max_heap_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-heap-mb" ] ~docv:"MB"
        ~doc:"Live-heap watermark in megabytes (checked via Gc.quick_stat).")

let max_db_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-db-mb" ] ~docv:"MB"
        ~doc:"Refuse database files larger than this (checked before reading).")

let strict_term =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Fail fast with a typed error instead of degrading along the \
              fallback chain when a budget trips (--method auto).")

let verbose_term =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty stderr diagnostics.")

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for independent trials; 0 (default) picks \
           one per available core, 1 is fully sequential. Estimates \
           are bit-identical for any value — jobs only changes \
           throughput.")

let engine_term =
  (* note: must not be named [conv] — Arg.( ) would shadow it *)
  let engine_conv =
    Arg.enum
      [
        ("tree-dp", Approxcount.Colour_oracle.Tree_dp);
        ("generic", Approxcount.Colour_oracle.Generic);
        ("direct", Approxcount.Colour_oracle.Direct);
      ]
  in
  Arg.(
    value
    & opt engine_conv Approxcount.Colour_oracle.Tree_dp
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Hom engine for the FPTRAS: tree-dp (Theorem 5), generic (Theorem 13) or direct (ablation).")

let method_term =
  (* parses through the shared [Api.method_of_string] codec, so the
     CLI, the wire protocol and the bench harness accept exactly the
     same spellings *)
  let method_conv =
    let parse s =
      match Api.method_of_string s with
      | Some m -> Ok m
      | None -> Error (`Msg (Printf.sprintf "unknown method %S" s))
    in
    let print ppf m = Format.pp_print_string ppf (Api.method_to_string m) in
    Arg.conv ~docv:"METHOD" (parse, print)
  in
  Arg.(
    value & opt method_conv Api.Auto
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"auto (planner + governed fallback), exact (join+project), fptras (Theorems 5/13; --engine picks the hom engine), fpras (Theorem 16, CQs only), brute.")

(* [--method fptras] (or tree-dp, the default engine) still combines
   with [--engine]: the explicit engine spellings generic/direct win
   over the flag only because they already name one. *)
let resolve_engine method_ engine =
  match method_ with
  | Api.Fptras Approxcount.Colour_oracle.Tree_dp -> Api.Fptras engine
  | m -> m

(* [--db -] is the standard input; everything else is a file path. *)
let load_db ?max_db_mb db_path =
  let max_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_db_mb in
  if db_path = "-" then
    Result.map
      (fun (l : Structure_io.loaded) -> l.Structure_io.db)
      (Structure_io.of_channel_result ?max_bytes stdin)
  else Structure_io.load_result ?max_bytes db_path

let with_input ?max_db_mb query_text db_path f =
  match Ecq.parse_result query_text with
  | Error e -> report e
  | Ok query -> (
      match load_db ?max_db_mb db_path with
      | Error e -> report e
      | Ok db ->
          if not (Ecq.compatible_with query db) then
            report
              (Error.Signature_mismatch
                 "query signature is not contained in the database's")
          else f query db)

(* ---------- tracing (--trace) ---------- *)

let trace_term =
  let doc =
    "Record a span trace of the run (plan, rungs, trials, oracle \
     calls) and write it to $(docv) ($(b,-) for stdout). With \
     --connect the daemon traces the request and the per-span-name \
     summary is written instead of the full span list."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_term =
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace file format: jsonl (one span object per line) or \
           chrome (trace_event JSON for chrome://tracing / Perfetto). \
           Local runs only.")

let write_out ~path text =
  if path = "-" then print_string text
  else
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc text)

let write_trace ~path ~fmt tr =
  write_out ~path
    (match fmt with `Jsonl -> Trace.to_jsonl tr | `Chrome -> Trace.to_chrome tr)

(* ---------- the daemon client (--connect) ---------- *)

let connect_term =
  let doc =
    "Run the request on a resident acqd daemon at $(docv) (unix:PATH, \
     tcp:HOST:PORT, or a bare socket path) instead of in-process."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR" ~doc)

let use_term =
  let doc =
    "With --connect: name a database of the daemon's catalog instead of \
     shipping one with --db."
  in
  Arg.(value & opt (some string) None & info [ "use" ] ~docv:"NAME" ~doc)

(* Resolve how a remote request names its database: a catalog name
   beats an inline copy of the (file or stdin) database text. *)
let remote_db_ref ~use_name ~db_path =
  match (use_name, db_path) with
  | Some name, _ -> Ok (Wire.Named name)
  | None, Some "-" -> (
      match In_channel.input_all stdin with
      | text -> Ok (Wire.Inline text)
      | exception Sys_error msg -> Error (Error.Io { file = "<stdin>"; msg }))
  | None, Some path -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | text -> Ok (Wire.Inline text)
      | exception Sys_error msg -> Error (Error.Io { file = path; msg }))
  | None, None ->
      Error
        (Error.Io
           { file = "<db>"; msg = "--connect needs --use NAME or --db FILE" })

let with_connection addr f =
  match Client.address_of_string addr with
  | Error msg -> report (Error.Io { file = addr; msg })
  | Ok address -> (
      match Client.connect address with
      | Error e -> report e
      | Ok conn ->
          Fun.protect ~finally:(fun () -> Client.close conn) (fun () -> f conn))

let retries_term =
  let doc =
    "With --connect: transport-fault retries (reconnect + resend under \
     capped jittered backoff). Only idempotent requests — service verbs \
     and seeded COUNT/SAMPLE — are ever retried; 0 disables."
  in
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)

let deadline_term =
  let doc =
    "With --connect: end-to-end deadline in milliseconds. Carried on the \
     wire so the daemon sheds the request (exit 18) once it cannot be \
     answered in time; also bounds the retry loop."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let tenant_term =
  let doc =
    "With --connect: accounting identity carried on the wire; the daemon \
     bounds each tenant's in-flight requests under --tenant-quota \
     (excess is refused with the typed `overloaded' status)."
  in
  Arg.(value & opt (some string) None & info [ "tenant" ] ~docv:"NAME" ~doc)

(* Remote requests go through the one client surface under a retrying
   policy: reconnects and retries are safe exactly when the request is
   idempotent, which the client enforces. [--retries 0] degenerates to
   the plain single-attempt client. *)
let with_retrying addr ~retries ~deadline_ms f =
  match Client.address_of_string addr with
  | Error msg -> report (Error.Io { file = addr; msg })
  | Ok address ->
      let policy =
        if retries <= 0 then { Retry_policy.none with deadline_ms }
        else
          { Retry_policy.default with attempts = retries + 1; deadline_ms }
      in
      let client = Client.create ~policy address in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () -> f client)

let report_refused ~error_class ~message code =
  Printf.eprintf "acq: error [%s]: %s\n%!" error_class message;
  code

let print_remote_telemetry ~verbose (o : Wire.outcome) =
  if verbose then
    Printf.eprintf
      "acq: seed %d, jobs %d, %d ticks, %.1f ms, cache plan=%s result=%s \
       (replay with --seed %d)\n\
       %!"
      o.Wire.seed o.Wire.jobs o.Wire.ticks o.Wire.elapsed_ms o.Wire.plan_cache
      o.Wire.result_cache o.Wire.seed

let remote_count client ~verbose ~hex ?trace_file params =
  match Client.call client (Wire.Count params) with
  | Error e -> report e
  | Ok (Wire.Refused { code; error_class; message }) ->
      report_refused ~error_class ~message code
  | Ok (Wire.Counted o) ->
      if hex then Printf.printf "%h\n" o.Wire.estimate
      else if o.Wire.exact then Printf.printf "%.0f\n" o.Wire.estimate
      else Printf.printf "%.1f\n" o.Wire.estimate;
      (match (trace_file, o.Wire.trace) with
      | Some path, Some s ->
          write_out ~path
            (Ac_analysis.Json.to_string_pretty (Wire.trace_summary_json s)
            ^ "\n")
      | Some _, None ->
          (* e.g. a result-cache replay: no work, no spans *)
          Printf.eprintf "acq: no trace in the response\n%!"
      | None, _ -> ());
      print_remote_telemetry ~verbose o;
      if o.Wire.degraded then begin
        let failed =
          o.Wire.attempts
          |> List.map (fun (a : Wire.attempt) ->
                 Printf.sprintf "%s (%s)" a.Wire.rung a.Wire.error_message)
          |> String.concat "; "
        in
        Printf.eprintf
          "acq: degraded answer from rung %s — %s; failed rungs: %s\n%!"
          (Option.value o.Wire.rung ~default:"?")
          (if o.Wire.guarantee then "(eps,delta) guarantee holds"
           else "lower bound only, no guarantee")
          failed;
        exit_degraded
      end
      else 0
  | Ok _ -> report (Error.Internal "unexpected response to COUNT")

let remote_sample client ~verbose params ~draws =
  match Client.call client (Wire.Sample { params; draws }) with
  | Error e -> report e
  | Ok (Wire.Refused { code; error_class; message }) ->
      report_refused ~error_class ~message code
  | Ok (Wire.Sampled { samples; seed; jobs; ticks; elapsed_ms; trace = _ }) ->
      Array.iter
        (function
          | None -> print_endline "(no sample)"
          | Some tau ->
              print_endline
                (String.concat " "
                   (Array.to_list (Array.map string_of_int tau))))
        samples;
      if verbose then
        Printf.eprintf "acq: seed %d, jobs %d, %d ticks, %.1f ms\n%!" seed jobs
          ticks elapsed_ms;
      0
  | Ok _ -> report (Error.Internal "unexpected response to SAMPLE")

(* count/sample: [--db] is only required without [--connect --use], so
   the remotable variants take it as an option and check at run time. *)
let db_remotable_term =
  let doc = "Database file (Structure_io format), or - for stdin." in
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc)

let require_db = function
  | Some path -> Ok path
  | None -> Error (Error.Io { file = "<db>"; msg = "--db is required" })

let hex_term =
  let doc =
    "Print the estimate bit-exactly (hexadecimal floating point, OCaml \
     %h) — for comparing replays across processes and restarts."
  in
  Arg.(value & flag & info [ "hex" ] ~doc)

let count_cmd =
  let local query_text db_path ~method_ ~eps ~delta ~seed ~jobs ~timeout_ms
      ~max_heap_mb ~max_db_mb ~strict ~verbose ~hex ~trace_file ~trace_fmt =
    with_input ?max_db_mb query_text db_path (fun query db ->
        let budget = make_budget ~timeout_ms ~max_heap_mb in
        let tracer = Option.map (fun _ -> Trace.create ()) trace_file in
        let r =
          Api.Request.make query db
          |> Api.Request.with_eps eps
          |> Api.Request.with_delta delta
          |> Api.Request.with_method method_
          |> Api.Request.with_seed seed
          |> Api.Request.with_jobs jobs
          |> Api.Request.with_budget budget
          |> Api.Request.with_strict strict
          |> Api.Request.with_verbose verbose
          |> Api.Request.with_trace tracer
        in
        let outcome = Api.run r in
        (* the trace is written even when the run failed — the spans up
           to the failure are exactly what one wants to look at then *)
        (match (trace_file, tracer) with
        | Some path, Some tr -> write_trace ~path ~fmt:trace_fmt tr
        | _ -> ());
        match outcome with
        | Error e -> report e
        | Ok resp ->
            if hex then Printf.printf "%h\n" resp.Api.estimate
            else if resp.Api.exact then Printf.printf "%.0f\n" resp.Api.estimate
            else Printf.printf "%.1f\n" resp.Api.estimate;
            (match resp.Api.decision with
            | Some d -> Printf.eprintf "plan: %s\n%!" d.Planner.reason
            | None -> ());
            if verbose then begin
              let t = resp.Api.telemetry in
              Printf.eprintf
                "acq: seed %d, jobs %d, %d ticks, %.1f ms (replay with --seed %d --jobs %d)\n%!"
                t.Api.seed t.Api.jobs t.Api.ticks t.Api.elapsed_ms t.Api.seed
                t.Api.jobs
            end;
            if resp.Api.degraded then begin
              let failed =
                resp.Api.attempts
                |> List.map (fun (a : Planner.attempt) ->
                       Printf.sprintf "%s (%s)"
                         (Planner.rung_name a.Planner.rung)
                         (Error.message a.Planner.error))
                |> String.concat "; "
              in
              let rung =
                match resp.Api.rung with
                | Some r -> Planner.rung_name r
                | None -> "?"
              in
              Printf.eprintf
                "acq: degraded answer from rung %s — %s; failed rungs: %s\n%!"
                rung
                (if resp.Api.guarantee then "(eps,delta) guarantee holds"
                 else "lower bound only, no guarantee")
                failed;
              exit_degraded
            end
            else begin
              (match (verbose, resp.Api.rung) with
              | true, Some rung ->
                  Printf.eprintf "acq: rung %s, guarantee %b\n%!"
                    (Planner.rung_name rung) resp.Api.guarantee
              | _ -> ());
              0
            end)
  in
  let run query_text db_path connect use_name method_ engine eps delta seed
      jobs timeout_ms deadline_ms retries tenant max_heap_mb max_db_mb strict
      verbose hex trace_file trace_fmt =
    let method_ = resolve_engine method_ engine in
    let jobs = if jobs <= 0 then None else Some jobs in
    match connect with
    | Some addr -> (
        match remote_db_ref ~use_name ~db_path with
        | Error e -> report e
        | Ok db ->
            let params =
              Wire.params ~eps ~delta ~method_ ?seed ?jobs ?timeout_ms
                ?deadline_ms ?max_heap_mb ?tenant ~strict
                ~trace:(trace_file <> None) ~db query_text
            in
            with_retrying addr ~retries ~deadline_ms (fun client ->
                remote_count client ~verbose ~hex ?trace_file params))
    | None -> (
        match require_db db_path with
        | Error e -> report e
        | Ok db_path ->
            local query_text db_path ~method_ ~eps ~delta ~seed ~jobs
              ~timeout_ms ~max_heap_mb ~max_db_mb ~strict ~verbose ~hex
              ~trace_file ~trace_fmt)
  in
  let doc = "Count the answers of a query in a database." in
  Cmd.v (Cmd.info "count" ~doc)
    Term.(
      const run $ query_term $ db_remotable_term $ connect_term $ use_term
      $ method_term $ engine_term $ epsilon_term $ delta_term $ seed_term
      $ jobs_term $ timeout_term $ deadline_term $ retries_term $ tenant_term
      $ max_heap_term $ max_db_term $ strict_term $ verbose_term $ hex_term
      $ trace_term $ trace_format_term)

let sample_cmd =
  let draws_term =
    Arg.(value & opt int 1 & info [ "draws" ] ~docv:"N" ~doc:"Number of samples.")
  in
  let local query_text db_path ~engine ~eps ~delta ~seed ~jobs ~draws
      ~timeout_ms ~max_heap_mb ~max_db_mb ~verbose =
    with_input ?max_db_mb query_text db_path (fun query db ->
        let budget = make_budget ~timeout_ms ~max_heap_mb in
        let r =
          Api.Request.make query db
          |> Api.Request.with_eps eps
          |> Api.Request.with_delta delta
          |> Api.Request.with_method (Api.Fptras engine)
          |> Api.Request.with_seed seed
          |> Api.Request.with_jobs jobs
          |> Api.Request.with_budget budget
          |> Api.Request.with_verbose verbose
        in
        match Api.sample ~draws r with
        | Error e -> report e
        | Ok s ->
            Array.iter
              (function
                | None -> print_endline "(no sample)"
                | Some tau ->
                    print_endline
                      (String.concat " "
                         (Array.to_list (Array.map string_of_int tau))))
              s.Api.draws;
            let t = s.Api.telemetry in
            if verbose then
              Printf.eprintf
                "acq: seed %d, jobs %d, %d ticks, %.1f ms (replay with --seed %d --jobs %d)\n%!"
                t.Api.seed t.Api.jobs t.Api.ticks t.Api.elapsed_ms t.Api.seed
                t.Api.jobs;
            if s.Api.degraded then begin
              Printf.eprintf
                "acq: some draws failed (the JVV walk could not pin an answer)\n%!";
              exit_degraded
            end
            else 0)
  in
  let run query_text db_path connect use_name engine eps delta seed jobs draws
      timeout_ms deadline_ms retries tenant max_heap_mb max_db_mb verbose =
    let jobs = if jobs <= 0 then None else Some jobs in
    match connect with
    | Some addr -> (
        match remote_db_ref ~use_name ~db_path with
        | Error e -> report e
        | Ok db ->
            let params =
              Wire.params ~eps ~delta ~method_:(Api.Fptras engine) ?seed ?jobs
                ?timeout_ms ?deadline_ms ?max_heap_mb ?tenant ~db query_text
            in
            with_retrying addr ~retries ~deadline_ms (fun client ->
                remote_sample client ~verbose params ~draws))
    | None -> (
        match require_db db_path with
        | Error e -> report e
        | Ok db_path ->
            local query_text db_path ~engine ~eps ~delta ~seed ~jobs ~draws
              ~timeout_ms ~max_heap_mb ~max_db_mb ~verbose)
  in
  let doc = "Draw approximately-uniform answers (§6 JVV sampling)." in
  Cmd.v (Cmd.info "sample" ~doc)
    Term.(
      const run $ query_term $ db_remotable_term $ connect_term $ use_term
      $ engine_term $ epsilon_term $ delta_term $ seed_term $ jobs_term
      $ draws_term $ timeout_term $ deadline_term $ retries_term $ tenant_term
      $ max_heap_term $ max_db_term $ verbose_term)

let widths_cmd =
  let run query_text =
    match Ecq.parse_result query_text with
    | Error e -> report e
    | Ok query ->
        let h = Ecq.hypergraph query in
        let small = Ac_hypergraph.Hypergraph.num_vertices h <= 14 in
        let tw =
          if small then fst (Ac_hypergraph.Tree_decomposition.treewidth_exact h)
          else
            Ac_hypergraph.Tree_decomposition.width
              (Ac_hypergraph.Tree_decomposition.decompose h)
        in
        let fhw =
          if small then fst (Ac_hypergraph.Widths.fhw_exact h)
          else Ac_hypergraph.Widths.fhw_upper h
        in
        Printf.printf "variables:            %d (%d free)\n" (Ecq.num_vars query)
          (Ecq.num_free query);
        Printf.printf "size ‖φ‖:             %d\n" (Ecq.size query);
        Printf.printf "class:                %s\n"
          (if Ecq.is_cq query then "CQ"
           else if Ecq.is_dcq query then "DCQ"
           else "ECQ");
        Printf.printf "treewidth:            %d%s\n" tw (if small then "" else " (upper bound)");
        Printf.printf "fractional htw:       %.2f%s\n" fhw
          (if small then "" else " (upper bound)");
        Printf.printf "guarantee:            %s\n"
          (if Ecq.is_cq query then "FPRAS (Theorem 16, bounded fhw)"
           else if Ecq.is_dcq query then
             "FPTRAS (Theorem 13, bounded adaptive width); no FPRAS (Obs. 10)"
           else "FPTRAS (Theorem 5, bounded tw & arity); no FPRAS (Obs. 10)");
        0
  in
  let doc = "Width measures and the paper's guarantee for a query." in
  Cmd.v (Cmd.info "widths" ~doc) Term.(const run $ query_term)

(* ---------- lint & explain ---------- *)

let db_opt_term =
  let doc =
    "Optional database file (or - for stdin): enables the database-aware \
     checks (QL006 signature mismatch, QL010 empty relation, QL012 output \
     blow-up, QL013 complement cap)."
  in
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc)

let json_term =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the report as JSON (stable schema, see docs/analysis.md).")

(* Load the optional database, hand the (possibly absent) structure to
   [f]; Io/parse failures use the typed exit codes like every other
   subcommand. *)
let with_optional_db ?max_db_mb db_path f =
  match db_path with
  | None -> f None
  | Some path -> (
      match load_db ?max_db_mb path with
      | Error e -> report e
      | Ok db -> f (Some db))

let lint_cmd =
  let run query_text db_path max_db_mb json =
    with_optional_db ?max_db_mb db_path (fun db ->
        let report_ = Ac_analysis.Report.analyze_text ?db query_text in
        if json then
          print_endline
            (Ac_analysis.Json.to_string_pretty
               (Ac_analysis.Report.to_json report_))
        else Format.printf "%a%!" Ac_analysis.Report.pp report_;
        Ac_analysis.Report.exit_status report_)
  in
  let doc =
    "Statically analyse a query: stable-coded diagnostics (QL000-QL013) \
     plus the Figure 1 classification. Exit 0 when free of errors, 1 \
     otherwise."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ query_term $ db_opt_term $ max_db_term $ json_term)

let explain_cmd =
  let cost_term =
    Arg.(
      value & flag
      & info [ "cost" ]
          ~doc:
            "Also print the static cost analysis: the stats-instantiated \
             fractional-edge-cover output bound and the costed rung \
             alternatives. Uses the catalog statistics of $(b,--db) when \
             given, nominal statistics otherwise.")
  in
  let run query_text db_path max_db_mb cost json =
    with_optional_db ?max_db_mb db_path (fun db ->
        let report_ = Ac_analysis.Report.analyze_text ?db query_text in
        match report_.Ac_analysis.Report.classification with
        | None ->
            (* parse failed: surface the diagnostics and fail like lint *)
            Format.printf "%a%!" Ac_analysis.Report.pp report_;
            Ac_analysis.Report.exit_status report_
        | Some c ->
            let q = Option.get report_.Ac_analysis.Report.query in
            let cost_analysis =
              if not cost then None
              else
                match report_.Ac_analysis.Report.cost with
                | Some _ as some -> some  (* instantiated from --db *)
                | None ->
                    Some
                      (Ac_analysis.Cost.analyze
                         ~stats:(Ac_analysis.Cardinality.nominal
                                   (Ecq.signature q))
                         q c)
            in
            if json then
              let cjson = Ac_analysis.Classification.to_json c in
              print_endline
                (Ac_analysis.Json.to_string_pretty
                   (match cost_analysis with
                   | None -> cjson
                   | Some cost ->
                       Ac_analysis.Json.Obj
                         [
                           ("classification", cjson);
                           ("cost", Ac_analysis.Cost.to_json cost);
                         ]))
            else begin
              Format.printf "%a"
                (Ac_analysis.Classification.pp ~var_name:(Ecq.var_name q))
                c;
              let d = Planner.decision_of_classification c in
              Format.printf "plan:         %s@." d.Planner.reason;
              match cost_analysis with
              | None -> ()
              | Some cost -> Format.printf "%a" Ac_analysis.Cost.pp cost
            end;
            0)
  in
  let doc =
    "Explain the planner's decision for a query: the Figure 1 \
     classification with its structural witnesses, and the plan it \
     induces. With $(b,--cost), also the instantiated output bound and \
     the costed rung ladder."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ query_term $ db_opt_term $ max_db_term $ cost_term
      $ json_term)

let generate_cmd =
  let kind_term =
    Arg.(
      value
      & opt (enum [ ("friends", `Friends); ("graph", `Graph); ("relation", `Relation) ]) `Friends
      & info [ "kind" ] ~docv:"KIND" ~doc:"friends | graph | relation.")
  in
  let size_term =
    Arg.(value & opt int 50 & info [ "size" ] ~docv:"N" ~doc:"Universe size.")
  in
  let out_term =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Output file ($(b,-) for stdout, for piping into --db -).")
  in
  let run kind size out seed =
    guarded (fun () ->
        let rng = Random.State.make [| Option.value seed ~default:42 |] in
        let db =
          match kind with
          | `Friends -> Ac_workload.Dbgen.friends_database ~rng ~n:size ~avg_degree:6.0
          | `Graph ->
              Ac_workload.Graph.to_structure
                (Ac_workload.Graph.random_gnp ~rng size 0.3)
          | `Relation ->
              Ac_workload.Dbgen.random_structure ~rng ~universe_size:size
                [ ("R", 2, 4 * size) ]
        in
        if out = "-" then print_string (Structure_io.to_string db)
        else Structure_io.save out db;
        (* status goes to stderr so `--out -` / `--out /dev/stdout`
           leave a clean database stream on stdout *)
        Printf.eprintf "wrote %s (universe %d, ‖D‖ = %d)\n"
          (if out = "-" then "<stdout>" else out)
          (Structure.universe_size db) (Structure.size db);
        0)
  in
  let doc = "Generate a random database file." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ kind_term $ size_term $ out_term $ seed_term)

(* ---------- daemon service verbs ---------- *)

let connect_req_term =
  let doc = "The acqd daemon's address (unix:PATH, tcp:HOST:PORT or a \
             bare socket path)."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR" ~doc)

let ping_cmd =
  let run addr =
    with_connection addr (fun conn ->
        match Client.call conn Wire.Ping with
        | Error e -> report e
        | Ok Wire.Pong ->
            print_endline "pong";
            0
        | Ok (Wire.Refused { code; error_class; message }) ->
            report_refused ~error_class ~message code
        | Ok _ -> report (Error.Internal "unexpected response to PING"))
  in
  let doc = "Check that an acqd daemon answers." in
  Cmd.v (Cmd.info "ping" ~doc) Term.(const run $ connect_req_term)

let health_cmd =
  let run addr =
    with_connection addr (fun conn ->
        match Client.call conn Wire.Health with
        | Error e -> report e
        | Ok (Wire.Health_reply h) ->
            print_endline
              (Ac_analysis.Json.to_string_pretty
                 (Ac_analysis.Json.Obj
                    [
                      ("ready", Ac_analysis.Json.Bool h.Wire.ready);
                      ("live", Ac_analysis.Json.Bool h.Wire.live);
                      ("draining", Ac_analysis.Json.Bool h.Wire.draining);
                      ("in_flight", Ac_analysis.Json.Int h.Wire.in_flight);
                      ( "queue_capacity",
                        Ac_analysis.Json.Int h.Wire.queue_capacity );
                      ( "catalog_entries",
                        Ac_analysis.Json.Int h.Wire.catalog_entries );
                      ("recovered", Ac_analysis.Json.Bool h.Wire.recovered);
                      ("uptime_ms", Ac_analysis.Json.Float h.Wire.uptime_ms);
                    ]));
            (* probe semantics: exit 0 iff the daemon would serve a
               request arriving now — scriptable as a readiness gate *)
            if h.Wire.ready && h.Wire.live then 0 else 1
        | Ok (Wire.Refused { code; error_class; message }) ->
            report_refused ~error_class ~message code
        | Ok _ -> report (Error.Internal "unexpected response to HEALTH"))
  in
  let doc =
    "Probe an acqd daemon's health: readiness/liveness, queue depth, \
     catalog size and the crash-recovery flag. Exit 0 when ready."
  in
  Cmd.v (Cmd.info "health" ~doc) Term.(const run $ connect_req_term)

let stats_cmd =
  let metrics_term =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Fetch the daemon's metrics registry (the METRICS verb: \
             counters, gauges, latency histograms) instead of the \
             stats document.")
  in
  let prometheus_term =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "With --metrics: print the Prometheus text exposition \
             instead of JSON.")
  in
  let run addr metrics prometheus =
    with_connection addr (fun conn ->
        if metrics then begin
          let format =
            if prometheus then Wire.Metrics_prometheus else Wire.Metrics_json
          in
          match Client.call conn (Wire.Metrics_req { format }) with
          | Error e -> report e
          | Ok (Wire.Metrics_reply { payload = Ac_analysis.Json.String s; _ })
            ->
              print_string s;
              0
          | Ok (Wire.Metrics_reply { payload; _ }) ->
              print_endline (Ac_analysis.Json.to_string_pretty payload);
              0
          | Ok (Wire.Refused { code; error_class; message }) ->
              report_refused ~error_class ~message code
          | Ok _ -> report (Error.Internal "unexpected response to METRICS")
        end
        else
          match Client.call conn Wire.Stats with
          | Error e -> report e
          | Ok (Wire.Stats_reply j) ->
              print_endline (Ac_analysis.Json.to_string_pretty j);
              0
          | Ok (Wire.Refused { code; error_class; message }) ->
              report_refused ~error_class ~message code
          | Ok _ -> report (Error.Internal "unexpected response to STATS"))
  in
  let doc =
    "Print an acqd daemon's statistics (uptime, per-verb counters, \
     catalog, cache hit/miss/eviction counts, scheduler load) as JSON, \
     or with --metrics the process-wide metrics registry."
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const run $ connect_req_term $ metrics_term $ prometheus_term)

(* ---------- mutation verbs: INSERT / DELETE / LOAD_BATCH ---------- *)

let use_req_term =
  let doc =
    "The catalog database to mutate (mutations always target a named \
     database; inline databases are per-request)."
  in
  Arg.(required & opt (some string) None & info [ "use" ] ~docv:"NAME" ~doc)

let rel_req_term =
  let doc = "The relation the tuples belong to." in
  Arg.(required & opt (some string) None & info [ "rel" ] ~docv:"NAME" ~doc)

let batch_id_term =
  let doc =
    "Idempotency key: the daemon applies each batch id at most once and \
     answers a retry with the stored result (replayed=true). Omitted, a \
     fresh unique id is generated, so transport-level retries are still \
     exactly-once."
  in
  Arg.(value & opt (some string) None & info [ "batch-id" ] ~docv:"ID" ~doc)

let tuples_pos_term =
  let doc = "Tuples as comma-separated components, e.g. 1,2 7,9." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"TUPLE" ~doc)

let parse_tuple spec =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | part :: rest -> (
        match int_of_string_opt (String.trim part) with
        | Some v -> go (v :: acc) rest
        | None ->
            Error
              (Error.Parse
                 {
                   source = "<tuple>";
                   msg =
                     Printf.sprintf "%S: expected comma-separated integers"
                       spec;
                 }))
  in
  go [] (String.split_on_char ',' spec)

let parse_tuples specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match parse_tuple s with
        | Ok t -> go (t :: acc) rest
        | Error _ as e -> e)
  in
  go [] specs

(* A fresh idempotency key per invocation: pid + wall clock + payload,
   digested. Deliberately no RNG — a collision could only happen by
   replaying the identical payload, which is exactly what the key is
   for. *)
let fresh_batch_id payload =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d|%.9f|%s" (Unix.getpid ()) (Unix.gettimeofday ())
          payload))

let print_mutated ~name ~db_version ~fingerprint ~inserted ~deleted ~replayed =
  print_endline
    (Ac_analysis.Json.to_string_pretty
       (Ac_analysis.Json.Obj
          [
            ("name", Ac_analysis.Json.String name);
            ("version", Ac_analysis.Json.Int db_version);
            ("fingerprint", Ac_analysis.Json.String fingerprint);
            ("inserted", Ac_analysis.Json.Int inserted);
            ("deleted", Ac_analysis.Json.Int deleted);
            ("replayed", Ac_analysis.Json.Bool replayed);
          ]));
  0

(* Mutations ride the durable client: with a batch id they are
   idempotent on the wire, so reconnect + resend is safe and the
   daemon's dedupe table turns a double delivery into a replay. *)
let run_mutation addr ~retries ~deadline_ms ~verb req =
  with_retrying addr ~retries ~deadline_ms (fun client ->
      match Client.call client req with
      | Error e -> report e
      | Ok
          (Wire.Mutated
             { name; db_version; fingerprint; inserted; deleted; replayed }) ->
          print_mutated ~name ~db_version ~fingerprint ~inserted ~deleted
            ~replayed
      | Ok (Wire.Refused { code; error_class; message }) ->
          report_refused ~error_class ~message code
      | Ok _ -> report (Error.Internal ("unexpected response to " ^ verb)))

let insert_cmd =
  let run addr use rel specs batch_id retries deadline_ms =
    match parse_tuples specs with
    | Error e -> report e
    | Ok tuples ->
        let batch_id =
          Some
            (Option.value batch_id
               ~default:
                 (fresh_batch_id
                    (String.concat "|" ("insert" :: use :: rel :: specs))))
        in
        run_mutation addr ~retries ~deadline_ms ~verb:"INSERT"
          (Wire.Insert { db = Wire.Named use; rel; tuples; batch_id })
  in
  let doc =
    "Insert tuples into a relation of a daemon's live database. The \
     batch applies atomically under one version bump; the reply carries \
     the new version and rolling fingerprint."
  in
  Cmd.v (Cmd.info "insert" ~doc)
    Term.(
      const run $ connect_req_term $ use_req_term $ rel_req_term
      $ tuples_pos_term $ batch_id_term $ retries_term $ deadline_term)

let delete_cmd =
  let run addr use rel specs batch_id retries deadline_ms =
    match parse_tuples specs with
    | Error e -> report e
    | Ok tuples ->
        let batch_id =
          Some
            (Option.value batch_id
               ~default:
                 (fresh_batch_id
                    (String.concat "|" ("delete" :: use :: rel :: specs))))
        in
        run_mutation addr ~retries ~deadline_ms ~verb:"DELETE"
          (Wire.Delete { db = Wire.Named use; rel; tuples; batch_id })
  in
  let doc =
    "Delete tuples from a relation of a daemon's live database \
     (tombstones until the next merge; deleting an absent tuple is a \
     no-op counted as 0)."
  in
  Cmd.v (Cmd.info "delete" ~doc)
    Term.(
      const run $ connect_req_term $ use_req_term $ rel_req_term
      $ tuples_pos_term $ batch_id_term $ retries_term $ deadline_term)

let parse_op_line ~file lineno line =
  let open Ac_analysis.Json in
  match parse line with
  | Error e ->
      Error
        (Error.Parse
           {
             source = file;
             msg = Printf.sprintf "line %d: %s" lineno (error_message e);
           })
  | Ok j -> (
      let ( let* ) = Option.bind in
      let decoded =
        let* dir = Option.bind (mem "op" j) to_str in
        let* insert =
          match dir with
          | "insert" -> Some true
          | "delete" -> Some false
          | _ -> None
        in
        let* rel = Option.bind (mem "rel" j) to_str in
        let* items = Option.bind (mem "tuple" j) to_list in
        let* comps =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* v = to_int item in
              Some (v :: acc))
            (Some []) items
        in
        Some { Wire.insert; rel; tuple = Array.of_list (List.rev comps) }
      in
      match decoded with
      | Some op -> Ok op
      | None ->
          Error
            (Error.Parse
               {
                 source = file;
                 msg =
                   Printf.sprintf
                     "line %d: expected \
                      {\"op\":\"insert\"|\"delete\",\"rel\":NAME,\"tuple\":[INT,...]}"
                     lineno;
               }))

let load_batch_cmd =
  let file_term =
    let doc =
      "Operations as newline-delimited JSON, one \
       {\"op\":\"insert\"|\"delete\",\"rel\":NAME,\"tuple\":[INT,...]} \
       per line ($(b,-) for stdin). The whole batch applies atomically: \
       one version bump, or a typed refusal and no change."
    in
    Arg.(
      required & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)
  in
  let run addr use file batch_id retries deadline_ms =
    let text_r =
      if file = "-" then
        match In_channel.input_all stdin with
        | text -> Ok text
        | exception Sys_error msg -> Error (Error.Io { file = "<stdin>"; msg })
      else
        match In_channel.with_open_bin file In_channel.input_all with
        | text -> Ok text
        | exception Sys_error msg -> Error (Error.Io { file; msg })
    in
    match text_r with
    | Error e -> report e
    | Ok text -> (
        let numbered =
          String.split_on_char '\n' text
          |> List.mapi (fun i l -> (i + 1, l))
          |> List.filter (fun (_, l) -> String.trim l <> "")
        in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (n, l) :: rest -> (
              match parse_op_line ~file n l with
              | Ok op -> go (op :: acc) rest
              | Error _ as e -> e)
        in
        match go [] numbered with
        | Error e -> report e
        | Ok [] ->
            report
              (Error.Parse { source = file; msg = "no operations in the batch" })
        | Ok ops ->
            let batch_id =
              Some
                (Option.value batch_id
                   ~default:
                     (fresh_batch_id
                        (String.concat "|" [ "load_batch"; use; text ])))
            in
            run_mutation addr ~retries ~deadline_ms ~verb:"LOAD_BATCH"
              (Wire.Load_batch { db = Wire.Named use; ops; batch_id }))
  in
  let doc =
    "Stream a mixed batch of inserts and deletes into a daemon's live \
     database from a newline-JSON file. Atomic, idempotent under \
     --batch-id, journaled before the reply."
  in
  Cmd.v (Cmd.info "load-batch" ~doc)
    Term.(
      const run $ connect_req_term $ use_req_term $ file_term $ batch_id_term
      $ retries_term $ deadline_term)

let () =
  let doc = "approximately counting answers to conjunctive queries" in
  let info = Cmd.info "acq" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ count_cmd; sample_cmd; widths_cmd; lint_cmd; explain_cmd;
            generate_cmd; ping_cmd; health_cmd; stats_cmd; insert_cmd;
            delete_cmd; load_batch_cmd ]))
