(* Quickstart: the paper's running example, equation (1).

     φ(x) = ∃y ∃z. F(x,y) ∧ F(x,z) ∧ y ≠ z

   counts the people with at least two friends. We build a small database,
   parse the query from text, count exactly, and run the Theorem 5 FPTRAS.

   Run with: dune exec examples/quickstart.exe *)

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure

let () =
  (* A database over people 0..5; F is the (symmetric) friendship relation. *)
  let db = Structure.create ~universe_size:6 in
  let befriend a b =
    Structure.add_fact db "F" [| a; b |];
    Structure.add_fact db "F" [| b; a |]
  in
  befriend 0 1;
  befriend 0 2;
  befriend 1 2;
  befriend 3 4;
  (* person 5 is lonely *)

  (* The query, in the textual syntax of Ecq.parse. *)
  let q = Ecq.parse "ans(x) :- F(x, y), F(x, z), y != z" in
  Format.printf "query: %a@." Ecq.pp q;
  Format.printf "‖φ‖ = %d, free = %d, existential = %d@." (Ecq.size q)
    (Ecq.num_free q) (Ecq.num_existential q);

  (* Exact counting (three interchangeable baselines). *)
  let exact = Approxcount.Exact.by_join_projection q db in
  Format.printf "exact |Ans(φ, D)| = %d@." exact;

  (* The FPTRAS of Theorem 5: colour-coded Hom oracles + the DLM
     edge-count layer. On an instance this small it returns the exact
     count. *)
  let rng = Random.State.make [| 42 |] in
  let r = Approxcount.Fptras.approx_count ~rng ~eps:0.1 ~delta:0.05 q db in
  Format.printf "FPTRAS estimate = %.1f (exact path: %b, oracle calls %d, hom calls %d)@."
    r.Approxcount.Fptras.estimate r.exact r.oracle_calls r.hom_calls;

  (* The same count through the unified Api facade: result-typed,
     seeded (replayable) and parallelisable with ~jobs. *)
  (match Approxcount.Api.(run (request ~eps:0.1 ~delta:0.05 ~seed:42 q db)) with
  | Ok resp ->
      Format.printf "Api estimate   = %.1f (seed %d, jobs %d, %d ticks)@."
        resp.Approxcount.Api.estimate resp.telemetry.seed resp.telemetry.jobs
        resp.telemetry.ticks
  | Error e -> Format.printf "Api failed: %s@." (Ac_runtime.Error.message e));

  (* The same request, traced: the span summary says where the time
     (and the budget's work ticks) went — plan, rungs, trials. *)
  let tracer = Ac_obs.Trace.create () in
  (match
     Approxcount.Api.(
       run (request ~eps:0.1 ~delta:0.05 ~seed:42 ~trace:tracer q db))
   with
  | Ok resp -> (
      match resp.Approxcount.Api.telemetry.Approxcount.Api.trace with
      | Some s ->
          Format.printf "trace: %d spans in %.1f ms@." s.Ac_obs.Trace.spans
            s.Ac_obs.Trace.wall_ms;
          List.iter
            (fun a ->
              Format.printf "  %-16s x%-3d %6.1f ms %6d ticks@."
                a.Ac_obs.Trace.agg_name a.Ac_obs.Trace.count
                a.Ac_obs.Trace.total_ms a.Ac_obs.Trace.agg_ticks)
            (Ac_obs.Trace.summary_aggs s)
      | None -> ())
  | Error e -> Format.printf "traced Api failed: %s@." (Ac_runtime.Error.message e));

  (* Draw approximately-uniform answers: Api.sample returns a response
     record like Api.run — draws plus the same telemetry envelope. *)
  (match Approxcount.Api.(sample ~draws:3 (request ~seed:42 q db)) with
  | Ok s ->
      Array.iter
        (function
          | Some tau -> Format.printf "sampled answer: x = %d@." tau.(0)
          | None -> Format.printf "sampled answer: (walk failed)@.")
        s.Approxcount.Api.draws
  | Error e -> Format.printf "sample failed: %s@." (Ac_runtime.Error.message e));

  (* Who are they? Enumerate the answers. *)
  let answers = Approxcount.Exact.answers q db |> List.map (fun t -> t.(0)) in
  Format.printf "people with ≥ 2 friends: %s@."
    (String.concat ", " (List.map string_of_int (List.sort compare answers)))
