(* Frequency assignment via locally injective homomorphisms (Corollary 6).

   Locally injective homomorphisms model interference-free frequency
   assignments (Fiala–Kratochvíl): map a requirement pattern G into a
   frequency-compatibility graph G' such that adjacent pattern vertices
   get compatible frequencies and no two neighbours of a transmitter share
   a frequency.

   The pattern here is a transmitter chain (a path, treewidth 1), the host
   a random compatibility graph; we count assignments exactly and with the
   Corollary 6 FPTRAS, and show the encoding query.

   Run with: dune exec examples/frequency_assignment.exe *)

module G = Ac_workload.Graph
module Lihom = Approxcount.Lihom

let () =
  let rng = Random.State.make [| 7 |] in
  (* pattern: a chain of 4 transmitters; host: 12 frequencies with random
     compatibility *)
  let pattern = G.path 4 in
  let host = G.random_gnp ~rng 12 0.5 in
  Format.printf "pattern: chain of %d transmitters (treewidth 1)@."
    (G.num_vertices pattern);
  Format.printf "host: %d frequencies, %d compatible pairs@."
    (G.num_vertices host) (G.num_edges host);

  let q = Lihom.query_of pattern in
  Format.printf "@.encoding query (Corollary 6):@.  %a@." Ac_query.Ecq.pp q;
  Format.printf "  disequalities (common-neighbour pairs cn(G)): %d@."
    (List.length (Ac_query.Ecq.delta q));

  let exact = Lihom.exact_count ~pattern ~host in
  let brute = Lihom.exact_count_brute ~pattern ~host in
  Format.printf "@.exact #LIHom (query encoding) = %d (graph brute force: %d)@."
    exact brute;

  (match Lihom.approx_count_result ~rng ~eps:0.2 ~delta:0.1 ~pattern host with
  | Error e -> Format.printf "FPTRAS failed: %s@." (Ac_runtime.Error.message e)
  | Ok r ->
      Format.printf "FPTRAS estimate = %.1f (%s; %d hom calls)@."
        r.Approxcount.Fptras.estimate
        (if r.exact then "exact path" else Printf.sprintf "level %d" r.level)
        r.hom_calls);

  (* a bigger host where brute force is hopeless but the FPTRAS is fine *)
  let host2 = G.random_gnp ~rng 40 0.3 in
  let exact2 = Lihom.exact_count ~pattern ~host:host2 in
  match Lihom.approx_count_result ~rng ~eps:0.3 ~delta:0.1 ~pattern host2 with
  | Error e -> Format.printf "FPTRAS failed: %s@." (Ac_runtime.Error.message e)
  | Ok r2 ->
      Format.printf "@.40-frequency host: exact=%d fptras=%.1f (%s)@." exact2
        r2.Approxcount.Fptras.estimate
        (if r2.exact then "exact path" else Printf.sprintf "level %d" r2.level)
