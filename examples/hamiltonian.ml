(* Observation 10: why bounded-treewidth DCQs admit no FPRAS.

   The query φ(x₁..x_n) = ⋀ E(x_i, x_{i+1}) ∧ ⋀_{i<j} x_i ≠ x_j has
   treewidth 1 (the hypergraph ignores disequalities!) yet its answers are
   exactly the Hamiltonian paths of the database graph. Counting them is
   #P-hard, so any approximation scheme must pay a super-polynomial price
   somewhere — the FPTRAS of Theorem 5 pays it in ‖φ‖ (the 4^{|Δ|} colour
   budget), never in ‖D‖.

   This example shows: the encoding, the count agreement against a
   Held–Karp DP, and how the FPTRAS cost explodes with n while staying
   modest in the database size.

   Run with: dune exec examples/hamiltonian.exe *)

module G = Ac_workload.Graph
module Hardness = Approxcount.Hardness

let () =
  let rng = Random.State.make [| 99 |] in
  Format.printf "query for n = 4:@.  %a@." Ac_query.Ecq.pp (Hardness.query 4);
  let tw =
    fst
      (Ac_hypergraph.Tree_decomposition.treewidth_exact
         (Ac_query.Ecq.hypergraph (Hardness.query 4)))
  in
  Format.printf "treewidth of H(φ): %d  (disequalities add no hyperedges)@.@." tw;

  Format.printf "%-4s %-8s %-10s %-12s %-10s@." "n" "|Δ(φ)|" "DP count" "query count"
    "hom calls";
  List.iter
    (fun n ->
      let g = G.random_gnp ~rng n 0.6 in
      let dp = Hardness.exact_paths g in
      let via_query = Hardness.exact_via_query g in
      match
        Hardness.approx_via_query_result
          ~rng:(Random.State.make [| n |])
          ~engine:Approxcount.Colour_oracle.Direct ~eps:0.3 ~delta:0.2 g
      with
      | Error e -> Format.printf "%-4d failed: %s@." n (Ac_runtime.Error.message e)
      | Ok r ->
          Format.printf "%-4d %-8d %-10d %-12d %-10d@." n
            (n * (n - 1) / 2)
            dp via_query r.Approxcount.Fptras.hom_calls;
          assert (dp = via_query);
          assert (int_of_float r.Approxcount.Fptras.estimate = dp))
    [ 3; 4; 5; 6 ];

  Format.printf
    "@.The hom-call column grows explosively with n (the query), while for@.";
  Format.printf
    "fixed n it grows only polynomially with the graph — exactly the FPT@.";
  Format.printf "shape the paper proves, and why no FPRAS can exist (NP = RP).@."
