(* A tour of the planner: for each query, read off the paper's Figure 1
   classification, dispatch to the right scheme, and compare against the
   exact count. Also demonstrates the UCQ extension (§6) and the
   Structure_io text format the `acq` CLI uses.

   Run with: dune exec examples/planner_tour.exe *)

module Ecq = Ac_query.Ecq
module Structure_io = Ac_relational.Structure_io
module Planner = Approxcount.Planner
module Ucq = Approxcount.Ucq

let database_text =
  {|# a small social network (text format of Structure_io / the acq CLI)
universe 20
relation F 2
relation E 2
F 0 1
F 1 0
F 0 2
F 2 0
F 1 2
F 2 1
F 3 4
F 4 3
F 4 5
F 5 4
F 6 0
F 0 6
E 0 1
E 1 2
E 2 3
E 3 0
E 2 0
E 4 5
|}

let queries =
  [
    "ans(x, y) :- E(x, z), E(z, y)";                    (* CQ  → FPRAS *)
    "ans(x) :- F(x, y), F(x, z), y != z";               (* DCQ → FPTRAS *)
    "ans(x, y) :- F(x, z), F(z, y), !F(x, y), x != y";  (* ECQ → FPTRAS *)
  ]

let () =
  let db = Structure_io.of_string database_text in
  let rng = Random.State.make [| 2022 |] in
  List.iter
    (fun text ->
      let q = Ecq.parse text in
      let exact = Approxcount.Exact.by_join_projection q db in
      Format.printf "@.%s@." text;
      match Planner.count_result ~rng ~eps:0.2 ~delta:0.1 q db with
      | Error e ->
          Format.printf "  failed:   %s@." (Ac_runtime.Error.message e)
      | Ok (estimate, decision) ->
          Format.printf "  plan:     %s@." decision.Planner.reason;
          Format.printf "  widths:   tw %d, fhw %.2f%s@." decision.treewidth
            decision.fhw
            (if decision.exact_widths then "" else " (bounds)");
          Format.printf "  exact:    %d@." exact;
          Format.printf "  estimate: %.1f@." estimate)
    queries;

  (* §6: a union of two queries, counted with the fully approximate
     Karp–Luby pipeline *)
  let u =
    Ucq.parse "ans(x) :- F(x, y), F(x, z), y != z; ans(x) :- E(x, y)"
  in
  Format.printf "@.union: %a@." Ucq.pp u;
  Format.printf "  exact:    %d@." (Ucq.exact_count u db);
  match Ucq.approx_count_result ~rng ~kl_rounds:120 ~eps:0.25 ~delta:0.1 u db with
  | Ok est -> Format.printf "  karp-luby (FPTRAS + JVV): %.1f@." est
  | Error e -> Format.printf "  karp-luby failed: %s@." (Ac_runtime.Error.message e)
