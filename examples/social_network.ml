(* Social-network analytics with extended conjunctive queries.

   A random friendship network (the workload motivating the paper's
   equation (1)) is queried with a CQ, a DCQ and an ECQ:

   - popular(x)      = ∃y z.  F(x,y) ∧ F(x,z) ∧ y ≠ z     (≥ 2 friends)
   - triad-open(x,y) = ∃z.    F(x,z) ∧ F(z,y) ∧ ¬F(x,y) ∧ x ≠ y
                       ("friend of a friend but not a friend")
   - reach3(x, y)    = ∃a b.  F(x,a) ∧ F(a,b) ∧ F(b,y)     (3-step reach)

   Each is counted exactly and with the Theorem 5 FPTRAS, and the answer
   sets are sampled with the §6 JVV sampler.

   Run with: dune exec examples/social_network.exe *)

module Ecq = Ac_query.Ecq
module Dbgen = Ac_workload.Dbgen

let run_query ?engine rng name q db =
  let exact = Approxcount.Exact.by_join_projection q db in
  let t0 = Unix.gettimeofday () in
  let r = Approxcount.Fptras.approx_count ?engine ~rng ~eps:0.25 ~delta:0.1 q db in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%-12s exact=%6d  fptras=%8.1f  (%s, %d oracle / %d hom calls, %.2fs)@."
    name exact r.Approxcount.Fptras.estimate
    (if r.exact then "exact path" else Printf.sprintf "level %d" r.level)
    r.oracle_calls r.hom_calls dt

let () =
  let rng = Random.State.make [| 2026 |] in
  let n = 150 in
  let db = Dbgen.friends_database ~rng ~n ~avg_degree:6.0 in
  Format.printf "social network: %d people, %d friendship facts@." n
    (Ac_relational.Relation.cardinality (Ac_relational.Structure.relation db "F"));

  let popular = Ecq.parse "ans(x) :- F(x, y), F(x, z), y != z" in
  let triad =
    Ecq.parse "ans(x, y) :- F(x, z), F(z, y), !F(x, y), x != y"
  in
  let reach3 = Ecq.parse "ans(x, y) :- F(x, a), F(a, b), F(b, y)" in

  run_query rng "popular" popular db;
  run_query rng "triad-open" triad db;
  (* reach3 is a pure CQ: use the generic-join engine (Theorem 13's),
     which is much faster per oracle call on long joins *)
  run_query ~engine:Approxcount.Colour_oracle.Generic rng "reach3" reach3 db;

  (* §6: sample a few answers of the triad query approximately uniformly *)
  Format.printf "@.sampled open triads:@.";
  for _ = 1 to 5 do
    match
      Approxcount.Sampling.sample_result ~rng ~eps:0.4 ~delta:0.2 triad db
    with
    | Ok (Some [| x; y |]) ->
        Format.printf "  %d -?- %d (friend of a friend)@." x y
    | Ok _ -> Format.printf "  (no sample)@."
    | Error e -> Format.printf "  (failed: %s)@." (Ac_runtime.Error.message e)
  done;

  (* §6: union of queries — people who are popular OR lonely-adjacent *)
  let q1 = Ecq.parse "ans(x) :- F(x, y), F(x, z), y != z" in
  let q2 = Ecq.parse "ans(x) :- F(x, y)" in
  let union_exact = Approxcount.Sampling.union_count_exact [ q1; q2 ] db in
  let union_kl =
    Approxcount.Sampling.union_count_karp_luby ~rng ~rounds:3000 [ q1; q2 ] db
  in
  Format.printf "@.|Ans(popular) ∪ Ans(has-friend)| exact=%d karp-luby=%.1f@."
    union_exact union_kl
