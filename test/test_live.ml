(* The live mutable-database subsystem (Ac_live + server wiring):

   - main+delta relations: insert/delete/tombstone semantics, and the
     pinned-order contract — the merged view enumerates exactly like a
     relation rebuilt from scratch, so estimates stay bit-identical
     per seed across any mutation history (checked at jobs 1, 2, 4);
   - merge compaction is content-preserving (qcheck property);
   - versioning: monotone counter, rolling fingerprint chain,
     batch-id replay (exactly-once);
   - the delta journal: append/replay round-trip, torn-tail drop,
     mid-file corruption refusal;
   - catalog entries rematerialize after mutation with honest
     main+delta statistics;
   - version-precise cache invalidation over the wire: hit → mutate →
     miss → hit, with exact result-cache counters, also under
     concurrent writers. *)

module Api = Approxcount.Api
module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Error = Ac_runtime.Error
module Json = Ac_analysis.Json
module Live = Ac_live.Live
module Journal = Ac_live.Journal
module Wire = Ac_server.Wire
module Cache = Ac_server.Cache
module Catalog = Ac_server.Catalog
module Server = Ac_server.Server
module Metrics = Ac_obs.Metrics

(* ---------- a mutation stream and its from-scratch reference ---------- *)

(* The reference model: per relation, its arity and current fact set.
   Mirrors Live.Db semantics op by op; [rebuild] turns it into a fresh
   sealed structure — what a database reloaded from a dump would be. *)
type model = (string, int * (int array, unit) Hashtbl.t) Hashtbl.t

let model_apply (model : model) = function
  | Live.Db.Insert { rel; tuple } ->
      let _, set =
        match Hashtbl.find_opt model rel with
        | Some entry -> entry
        | None ->
            let entry = (Array.length tuple, Hashtbl.create 64) in
            Hashtbl.replace model rel entry;
            entry
      in
      Hashtbl.replace set tuple ()
  | Live.Db.Delete { rel; tuple } -> (
      match Hashtbl.find_opt model rel with
      | Some (_, set) -> Hashtbl.remove set tuple
      | None -> ())

let rebuild ~universe_size (model : model) =
  let s = Structure.create ~universe_size in
  Hashtbl.iter
    (fun rel (arity, set) ->
      Structure.declare s rel ~arity;
      Hashtbl.iter (fun tuple () -> Structure.add_fact s rel tuple) set)
    model;
  Structure.seal s

let random_edge rng n =
  [| Random.State.int rng n; Random.State.int rng n |]

(* ~2/3 inserts; half of the deletes target a currently-live tuple so
   tombstones actually exercise the merge path. *)
let random_op rng ~universe_size (model : model) =
  let tuple = random_edge rng universe_size in
  if Random.State.int rng 3 < 2 then Live.Db.Insert { rel = "E"; tuple }
  else
    let existing =
      match Hashtbl.find_opt model "E" with
      | Some (_, set) when Hashtbl.length set > 0 && Random.State.bool rng ->
          let picked = ref None and target = Random.State.int rng (Hashtbl.length set) in
          let i = ref 0 in
          Hashtbl.iter
            (fun t () ->
              if !i = target then picked := Some t;
              incr i)
            set;
          !picked
      | _ -> None
    in
    Live.Db.Delete
      { rel = "E"; tuple = Option.value existing ~default:tuple }

let seed_base rng ~universe_size ~edges (model : model) =
  for _ = 1 to edges do
    model_apply model
      (Live.Db.Insert { rel = "E"; tuple = random_edge rng universe_size })
  done;
  rebuild ~universe_size model

let apply_ok live ?id ops =
  match Live.Db.apply ?id live ops with
  | Ok applied -> applied
  | Error e -> Alcotest.failf "apply refused: %s" (Error.message e)

let estimate_on db ~seed ~jobs query_text =
  let query = Result.get_ok (Ecq.parse_result query_text) in
  match Api.run (Api.request ~seed ~jobs query db) with
  | Ok r -> r.Api.estimate
  | Error e -> Alcotest.failf "estimate failed: %s" (Error.message e)

(* ---------- main+delta relation semantics ---------- *)

let test_relation_semantics () =
  let r =
    Live.Relation.of_sealed
      (Relation.of_list ~arity:2 [ [| 1; 2 |]; [| 3; 4 |] ])
  in
  Alcotest.(check int) "initial cardinality" 2 (Live.Relation.cardinality r);
  Alcotest.(check bool) "insert new" true (Live.Relation.insert r [| 5; 6 |]);
  Alcotest.(check bool) "insert duplicate of main is a no-op" false
    (Live.Relation.insert r [| 1; 2 |]);
  Alcotest.(check bool) "insert duplicate of delta is a no-op" false
    (Live.Relation.insert r [| 5; 6 |]);
  Alcotest.(check bool) "delete main row tombstones" true
    (Live.Relation.delete r [| 3; 4 |]);
  Alcotest.(check bool) "tombstoned row is gone" false
    (Live.Relation.mem r [| 3; 4 |]);
  Alcotest.(check bool) "delete absent row is a no-op" false
    (Live.Relation.delete r [| 9; 9 |]);
  Alcotest.(check int) "cardinality tracks" 2 (Live.Relation.cardinality r);
  (* delete of a delta insert cancels it instead of tombstoning *)
  Alcotest.(check bool) "delete delta insert" true
    (Live.Relation.delete r [| 5; 6 |]);
  (* re-inserting a tombstoned main row cancels the tombstone *)
  Alcotest.(check bool) "re-insert tombstoned" true
    (Live.Relation.insert r [| 3; 4 |]);
  Alcotest.(check (list (array int)))
    "view is the live set in ascending-lex order"
    [ [| 1; 2 |]; [| 3; 4 |] ]
    (Relation.to_list (Live.Relation.view r))

let test_view_matches_rebuild_and_merge () =
  let rng = Random.State.make [| 4711 |] in
  let live = Live.Relation.create ~arity:2 in
  let set = Hashtbl.create 64 in
  for _ = 1 to 300 do
    let tuple = random_edge rng 12 in
    if Random.State.int rng 3 < 2 then begin
      ignore (Live.Relation.insert live tuple);
      Hashtbl.replace set tuple ()
    end
    else begin
      ignore (Live.Relation.delete live tuple);
      Hashtbl.remove set tuple
    end
  done;
  let expected =
    Hashtbl.fold (fun t () acc -> t :: acc) set []
    |> List.sort compare
  in
  Alcotest.(check (list (array int)))
    "view = sorted live set" expected
    (Relation.to_list (Live.Relation.view live));
  let before = Relation.to_list (Live.Relation.view live) in
  let compacted = Live.Relation.merge live in
  Alcotest.(check bool) "something was compacted" true (compacted > 0);
  Alcotest.(check int) "delta empty after merge" 0
    (Live.Relation.delta_rows live);
  Alcotest.(check (list (array int)))
    "merge preserves the view" before
    (Relation.to_list (Live.Relation.view live))

(* merge is content-preserving for arbitrary op interleavings *)
let prop_merge_preserves_view =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 120)
        (triple bool (int_range 0 7) (int_range 0 7)))
  in
  QCheck2.Test.make ~count:200 ~name:"merge preserves the live view" gen
    (fun ops ->
      let a = Live.Relation.create ~arity:2
      and b = Live.Relation.create ~arity:2 in
      List.iter
        (fun (ins, x, y) ->
          let t = [| x; y |] in
          if ins then begin
            ignore (Live.Relation.insert a t);
            ignore (Live.Relation.insert b t)
          end
          else begin
            ignore (Live.Relation.delete a t);
            ignore (Live.Relation.delete b t)
          end)
        ops;
      ignore (Live.Relation.merge b);
      Relation.to_list (Live.Relation.view a)
      = Relation.to_list (Live.Relation.view b)
      && Live.Relation.cardinality a = Live.Relation.cardinality b
      && Live.Relation.delta_rows b = 0)

(* ---------- versions, fingerprints, exactly-once ---------- *)

let test_db_versioning_and_replay () =
  let model : model = Hashtbl.create 4 in
  let rng = Random.State.make [| 11 |] in
  let base = seed_base rng ~universe_size:10 ~edges:30 model in
  let live = Live.Db.of_structure base in
  Alcotest.(check int) "starts at version 0" 0 (Live.Db.version live);
  Alcotest.(check string) "starts at the content fingerprint"
    (Structure.fingerprint base)
    (Live.Db.fingerprint live);
  let fp0 = Live.Db.fingerprint live in
  let ops = [ Live.Db.Insert { rel = "E"; tuple = [| 0; 1 |] } ] in
  let a1 = apply_ok live ~id:"batch-1" ops in
  Alcotest.(check int) "version bumped" 1 a1.Live.Db.version;
  Alcotest.(check string) "fingerprint rolls deterministically"
    (Live.roll_fingerprint fp0 ops)
    a1.Live.Db.fingerprint;
  Alcotest.(check bool) "not a replay" false a1.Live.Db.replayed;
  (* the same batch id again: stored result, nothing changes *)
  let a2 = apply_ok live ~id:"batch-1" ops in
  Alcotest.(check bool) "replayed" true a2.Live.Db.replayed;
  Alcotest.(check int) "replay does not bump" 1 a2.Live.Db.version;
  Alcotest.(check string) "replay returns the stored fingerprint"
    a1.Live.Db.fingerprint a2.Live.Db.fingerprint;
  Alcotest.(check int) "db still at version 1" 1 (Live.Db.version live);
  (* a refused batch leaves everything untouched *)
  (match
     Live.Db.apply live
       [ Live.Db.Insert { rel = "E"; tuple = [| 999; 0 |] } ]
   with
  | Error (Error.Parse _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e)
  | Ok _ -> Alcotest.fail "out-of-universe insert must be refused");
  Alcotest.(check int) "refused batch does not bump" 1 (Live.Db.version live)

(* ---------- the differential harness (ISSUE satellite 2) ---------- *)

let test_live_vs_rebuild_bit_identical () =
  let universe_size = 24 in
  let rng = Random.State.make [| 907 |] in
  let model : model = Hashtbl.create 4 in
  let base = seed_base rng ~universe_size ~edges:90 model in
  let live = Live.Db.of_structure base in
  let queries =
    [ "ans(x,y) :- E(x,y), x != y"; "ans(x,y) :- E(x,y), !E(y,x)" ]
  in
  for round = 1 to 6 do
    let ops =
      List.init 12 (fun _ -> random_op rng ~universe_size model)
    in
    List.iter (model_apply model) ops;
    ignore (apply_ok live ops);
    if round mod 3 = 0 then begin
      let snapshot = Live.Db.snapshot live in
      let rebuilt = rebuild ~universe_size model in
      Alcotest.(check string)
        (Printf.sprintf "round %d: snapshot = rebuild (fingerprint)" round)
        (Structure.fingerprint rebuilt)
        (Structure.fingerprint snapshot);
      List.iter
        (fun query ->
          List.iter
            (fun jobs ->
              let seed = 5000 + (100 * round) + jobs in
              let on_live = estimate_on snapshot ~seed ~jobs query
              and on_rebuilt = estimate_on rebuilt ~seed ~jobs query in
              Alcotest.(check bool)
                (Printf.sprintf
                   "round %d, jobs %d: live estimate bits = rebuild (%s)"
                   round jobs query)
                true
                (Int64.bits_of_float on_live
                = Int64.bits_of_float on_rebuilt))
            [ 1; 2; 4 ])
        queries
    end
  done;
  (* …and the same holds after compacting everything *)
  ignore (Live.Db.merge live);
  let rebuilt = rebuild ~universe_size model in
  let seed = 99 in
  List.iter
    (fun query ->
      Alcotest.(check bool)
        (Printf.sprintf "post-merge estimate bits = rebuild (%s)" query)
        true
        (Int64.bits_of_float
           (estimate_on (Live.Db.snapshot live) ~seed ~jobs:2 query)
        = Int64.bits_of_float (estimate_on rebuilt ~seed ~jobs:2 query)))
    queries

(* ---------- the delta journal ---------- *)

let temp_journal () =
  let path = Filename.temp_file "acq_live_journal" ".jsonl" in
  Sys.remove path;
  path

let sample_lines =
  [
    {
      Journal.seq = 1;
      id = Some "b1";
      fingerprint = "f1";
      ops = [ Live.Db.Insert { rel = "E"; tuple = [| 1; 2 |] } ];
    };
    {
      Journal.seq = 2;
      id = None;
      fingerprint = "f2";
      ops =
        [
          Live.Db.Delete { rel = "E"; tuple = [| 1; 2 |] };
          Live.Db.Insert { rel = "F"; tuple = [| 0; 0; 3 |] };
        ];
    };
  ]

let test_journal_roundtrip () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "absent journal replays empty" true
        (Journal.replay path = Ok []);
      List.iter
        (fun l -> Result.get_ok (Journal.append path l))
        sample_lines;
      (match Journal.replay path with
      | Ok lines ->
          Alcotest.(check bool) "lines round-trip" true (lines = sample_lines)
      | Error e -> Alcotest.failf "replay failed: %s" (Error.message e));
      Result.get_ok (Journal.reset path);
      Alcotest.(check bool) "reset empties" true (Journal.replay path = Ok []))

let test_journal_torn_tail_and_corruption () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      List.iter
        (fun l -> Result.get_ok (Journal.append path l))
        sample_lines;
      (* a crash mid-append leaves a torn, unterminated tail: dropped *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"seq\":3,\"fingerprint\":\"f3\",\"ops\":[{\"op\"";
      close_out oc;
      (match Journal.replay path with
      | Ok lines ->
          Alcotest.(check int) "torn tail dropped, committed lines kept" 2
            (List.length lines)
      | Error e -> Alcotest.failf "torn tail must not refuse: %s" (Error.message e));
      (* garbage in the middle is corruption, not a torn write: refuse *)
      let oc = open_out path in
      output_string oc "not json at all\n";
      close_out oc;
      List.iter
        (fun l -> Result.get_ok (Journal.append path l))
        sample_lines;
      match Journal.replay path with
      | Error (Error.Parse _) -> ()
      | Error e -> Alcotest.failf "wrong class: %s" (Error.class_name e)
      | Ok _ -> Alcotest.fail "mid-file corruption must refuse")

let test_journal_truncate () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let line seq =
        {
          Journal.seq;
          id = Some (Printf.sprintf "b%d" seq);
          fingerprint = Printf.sprintf "f%d" seq;
          ops = [ Live.Db.Insert { rel = "E"; tuple = [| seq; seq |] } ];
        }
      in
      List.iter
        (fun l -> Result.get_ok (Journal.append path l))
        [ line 1; line 2; line 3 ];
      (* a merge compacted versions <= 2: their lines are dead weight,
         but a batch journaled past the compacted version must survive *)
      Result.get_ok (Journal.truncate path ~upto:2);
      (match Journal.replay path with
      | Ok [ l ] ->
          Alcotest.(check int) "the un-compacted line survives" 3 l.Journal.seq
      | Ok lines ->
          Alcotest.failf "kept %d lines, wanted exactly seq 3"
            (List.length lines)
      | Error e -> Alcotest.failf "replay failed: %s" (Error.message e));
      Result.get_ok (Journal.truncate path ~upto:3);
      Alcotest.(check bool) "truncating past the last line empties" true
        (Journal.replay path = Ok []))

(* ---------- apply/journal atomicity ---------- *)

(* A failed journal hook must roll the whole batch back — relations
   (including a freshly declared one), version, fingerprint, and the
   idempotency table. An applied-but-unjournaled batch would leave a
   gap in the fingerprint chain that every later recovery trips
   over. *)
let test_apply_journal_rollback () =
  let s = Structure.create ~universe_size:8 in
  Structure.declare s "E" ~arity:2;
  Structure.add_fact s "E" [| 0; 1 |];
  Structure.add_fact s "E" [| 1; 2 |];
  let base = Structure.seal s in
  let live = Live.Db.of_structure base in
  let v0 = Live.Db.version live and f0 = Live.Db.fingerprint live in
  let ops =
    [
      Live.Db.Insert { rel = "E"; tuple = [| 3; 4 |] };
      Live.Db.Delete { rel = "E"; tuple = [| 0; 1 |] };
      Live.Db.Insert { rel = "N"; tuple = [| 1; 2; 3 |] };
    ]
  in
  let seen = ref None in
  (match
     Live.Db.apply ~id:"atomic-1"
       ~journal:(fun applied ->
         seen := Some applied;
         Error (Error.Io { file = "journal"; msg = "disk full" }))
       live ops
   with
  | Error (Error.Io { msg; _ }) ->
      Alcotest.(check string) "the hook's error surfaces" "disk full" msg
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e)
  | Ok _ -> Alcotest.fail "a failed journal hook must refuse the batch");
  (* the hook ran inside the critical section, seeing the post-batch
     version/fingerprint… *)
  (match !seen with
  | Some applied ->
      Alcotest.(check int) "hook saw the post-batch version" (v0 + 1)
        applied.Live.Db.version
  | None -> Alcotest.fail "journal hook never ran");
  (* …but the failure rolled everything back *)
  Alcotest.(check int) "version rolled back" v0 (Live.Db.version live);
  Alcotest.(check string) "fingerprint rolled back" f0
    (Live.Db.fingerprint live);
  Alcotest.(check int) "delta rolled back" 0 (Live.Db.delta_rows live);
  Alcotest.(check (list string)) "declared relation rolled back" [ "E" ]
    (Live.Db.symbols live);
  Alcotest.(check string) "snapshot is the untouched base"
    (Structure.fingerprint base)
    (Structure.fingerprint (Live.Db.snapshot live));
  (* the batch id was NOT registered: a retry applies for real instead
     of being answered replayed=true for a batch that never journaled *)
  match Live.Db.apply ~id:"atomic-1" live ops with
  | Ok applied ->
      Alcotest.(check bool) "retry applies fresh, not as a replay" false
        applied.Live.Db.replayed;
      Alcotest.(check int) "retry lands at the next version" (v0 + 1)
        applied.Live.Db.version
  | Error e -> Alcotest.failf "retry refused: %s" (Error.message e)

let test_record_batch_replays () =
  let live = Live.Db.of_structure (rebuild ~universe_size:4 (Hashtbl.create 1)) in
  let recorded =
    {
      Live.Db.version = 5;
      fingerprint = "ff";
      inserted = 0;
      deleted = 0;
      replayed = false;
    }
  in
  Live.Db.record_batch live ~id:"compacted-1" recorded;
  (* registering again must not overwrite the first record *)
  Live.Db.record_batch live ~id:"compacted-1"
    { recorded with Live.Db.version = 9 };
  (match
     Live.Db.apply ~id:"compacted-1" live
       [ Live.Db.Insert { rel = "E"; tuple = [| 1; 1 |] } ]
   with
  | Ok applied ->
      Alcotest.(check bool) "pre-registered id replays" true
        applied.Live.Db.replayed;
      Alcotest.(check int) "…at the recorded version" 5
        applied.Live.Db.version;
      Alcotest.(check string) "…and fingerprint" "ff"
        applied.Live.Db.fingerprint
  | Error e -> Alcotest.failf "apply refused: %s" (Error.message e));
  Alcotest.(check int) "nothing was applied" 0 (Live.Db.version live)

(* ---------- catalog statistics after mutation (satellite 1) ---------- *)

let test_catalog_stats_track_mutation () =
  let model : model = Hashtbl.create 4 in
  let rng = Random.State.make [| 23 |] in
  let base = seed_base rng ~universe_size:16 ~edges:40 model in
  let catalog = Catalog.create () in
  let e0 = Catalog.add catalog ~name:"g" base in
  Alcotest.(check int) "entry starts at version 0" 0 e0.Catalog.version;
  let live = Option.get (Catalog.live_find catalog "g") in
  (* two fresh edges into E, a brand-new relation N *)
  let stats_of_rel entry symbol =
    List.find
      (fun (s : Catalog.relation_stats) -> s.Catalog.symbol = symbol)
      entry.Catalog.relations
  in
  let e_cardinality = (stats_of_rel e0 "E").Catalog.cardinality in
  ignore
    (apply_ok live
       [
         Live.Db.Insert { rel = "E"; tuple = [| 15; 14 |] };
         Live.Db.Insert { rel = "E"; tuple = [| 14; 15 |] };
         Live.Db.Insert { rel = "N"; tuple = [| 1; 2; 3 |] };
       ]);
  let e1 = Option.get (Catalog.find catalog "g") in
  Alcotest.(check int) "entry rematerialized at version 1" 1
    e1.Catalog.version;
  Alcotest.(check bool) "fingerprint moved" true
    (e1.Catalog.fingerprint <> e0.Catalog.fingerprint);
  (* ‖A‖ = #relations + universe + Σ arity·cardinality: two fresh
     arity-2 rows (+4), one new relation (+1) with one arity-3 row (+3) *)
  Alcotest.(check int) "size counts main+delta" (e0.Catalog.size + 8)
    e1.Catalog.size;
  Alcotest.(check int) "E stats recomputed over main+delta"
    (e_cardinality + 2)
    (stats_of_rel e1 "E").Catalog.cardinality;
  Alcotest.(check int) "declared relation appears with its stats" 1
    (stats_of_rel e1 "N").Catalog.cardinality;
  Alcotest.(check int) "…at the declared arity" 3
    (stats_of_rel e1 "N").Catalog.arity;
  (* same version queried again: the memoized entry comes back *)
  let e1' = Option.get (Catalog.find catalog "g") in
  Alcotest.(check bool) "entry memoized per version" true (e1 == e1')

(* ---------- an in-process daemon over socketpair ---------- *)

type client = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  thread : Thread.t;
}

let connect server =
  let client_fd, server_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let thread =
    Thread.create (fun () -> Server.serve_connection server server_fd) ()
  in
  {
    fd = client_fd;
    ic = Unix.in_channel_of_descr client_fd;
    oc = Unix.out_channel_of_descr client_fd;
    thread;
  }

let call client req =
  Wire.write_json client.oc (Wire.request_to_json req);
  match Wire.read_json client.ic with
  | Wire.Msg j -> (
      match Wire.response_of_json j with
      | Ok r -> r
      | Error msg -> Alcotest.failf "bad response: %s" msg)
  | Wire.Eof -> Alcotest.fail "server hung up"
  | Wire.Bad msg -> Alcotest.failf "unparseable response: %s" msg

let disconnect client =
  (try Unix.shutdown client.fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  Thread.join client.thread;
  try Unix.close client.fd with Unix.Unix_error _ -> ()

let expect_counted = function
  | Wire.Counted o -> o
  | Wire.Refused { error_class; message; _ } ->
      Alcotest.failf "refused [%s]: %s" error_class message
  | _ -> Alcotest.fail "expected a COUNT response"

type mutated = {
  mu_version : int;
  mu_inserted : int;
  mu_replayed : bool;
}

let expect_mutated = function
  | Wire.Mutated { db_version; inserted; replayed; _ } ->
      { mu_version = db_version; mu_inserted = inserted; mu_replayed = replayed }
  | Wire.Refused { error_class; message; _ } ->
      Alcotest.failf "refused [%s]: %s" error_class message
  | _ -> Alcotest.fail "expected a MUTATE response"

let cache_counter server name field =
  match
    Option.bind (Json.mem name (Server.stats_json server)) (Json.mem field)
  with
  | Some (Json.Int v) -> v
  | _ -> Alcotest.failf "stats_json lacks %s.%s" name field

let with_live_server f =
  let model : model = Hashtbl.create 4 in
  let rng = Random.State.make [| 2022 |] in
  let base = seed_base rng ~universe_size:24 ~edges:110 model in
  let server = Server.create () in
  ignore (Catalog.add (Server.catalog server) ~name:"g" base);
  let client = connect server in
  Fun.protect
    ~finally:(fun () -> disconnect client)
    (fun () -> f server client)

(* ---------- version-precise invalidation (satellite 3) ---------- *)

let test_cache_invalidation_is_version_precise () =
  with_live_server (fun server client ->
      ignore (call client (Wire.Use "g"));
      let query = "ans(x,y) :- E(x,y), x != y" in
      let params = Wire.params ~seed:41 ~db:Wire.Session query in
      let cold = expect_counted (call client (Wire.Count params)) in
      Alcotest.(check string) "cold misses" "miss" cold.Wire.result_cache;
      let hot = expect_counted (call client (Wire.Count params)) in
      Alcotest.(check string) "same version hits" "hit" hot.Wire.result_cache;
      Alcotest.(check int) "a hit does no work" 0 hot.Wire.ticks;
      (* one INSERT: version 0 → 1, fingerprint rolls *)
      let m =
        expect_mutated
          (call client
             (Wire.Insert
                {
                  db = Wire.Session;
                  rel = "E";
                  tuples = [ [| 23; 22 |] ];
                  batch_id = Some "inv-1";
                }))
      in
      Alcotest.(check int) "version bumped over the wire" 1 m.mu_version;
      Alcotest.(check int) "one row inserted" 1 m.mu_inserted;
      (* the same request now misses — the old entry is unreachable,
         not merely stale *)
      let after = expect_counted (call client (Wire.Count params)) in
      Alcotest.(check string) "mutation invalidates" "miss"
        after.Wire.result_cache;
      Alcotest.(check bool) "post-mutation answer recomputed" true
        (after.Wire.ticks > 0);
      Alcotest.(check string) "…and the plan too (db-aware lints)" "miss"
        after.Wire.plan_cache;
      (* same version again: hits again — invalidation is precise, not
         a flush-on-write *)
      let again = expect_counted (call client (Wire.Count params)) in
      Alcotest.(check string) "new version hits at its own key" "hit"
        again.Wire.result_cache;
      Alcotest.(check int) "exact result-cache counters: 2 hits" 2
        (cache_counter server "result_cache" "hits");
      Alcotest.(check int) "exact result-cache counters: 2 misses" 2
        (cache_counter server "result_cache" "misses");
      (* replaying the batch id does not bump the version again, so
         cached entries for version 1 survive the retry *)
      let replay =
        expect_mutated
          (call client
             (Wire.Insert
                {
                  db = Wire.Session;
                  rel = "E";
                  tuples = [ [| 23; 22 |] ];
                  batch_id = Some "inv-1";
                }))
      in
      Alcotest.(check bool) "retry replays" true replay.mu_replayed;
      Alcotest.(check int) "retry leaves the version alone" 1
        replay.mu_version;
      let still = expect_counted (call client (Wire.Count params)) in
      Alcotest.(check string) "cache survives an idempotent retry" "hit"
        still.Wire.result_cache)

let test_db_key_distinctness () =
  let keys =
    [
      Cache.db_key ~fingerprint:"abc" ~version:0;
      Cache.db_key ~fingerprint:"abc" ~version:1;
      Cache.db_key ~fingerprint:"abd" ~version:1;
    ]
  in
  Alcotest.(check int) "distinct (fingerprint, version) → distinct keys" 3
    (List.length (List.sort_uniq compare keys))

(* ---------- counters stay exact under concurrent writers ---------- *)

let test_counters_under_concurrent_writers () =
  with_live_server (fun server client ->
      ignore (call client (Wire.Use "g"));
      let n_writers = 3 and batches_each = 8 in
      let m_batches =
        Metrics.counter Metrics.global "acq_live_batches_total"
      in
      let batches0 = Metrics.counter_value m_batches in
      let failures = Atomic.make 0 in
      let writer wi =
        let c = connect server in
        Fun.protect ~finally:(fun () -> disconnect c) (fun () ->
            for b = 0 to batches_each - 1 do
              let m =
                expect_mutated
                  (call c
                     (Wire.Insert
                        {
                          db = Wire.Named "g";
                          rel = "W";
                          tuples = [ [| wi; b |] ];
                          batch_id = Some (Printf.sprintf "w%d-%d" wi b);
                        }))
              in
              if m.mu_replayed then Atomic.incr failures
            done)
      in
      let reader ri =
        let c = connect server in
        Fun.protect ~finally:(fun () -> disconnect c) (fun () ->
            for r = 0 to 5 do
              let o =
                expect_counted
                  (call c
                     (Wire.Count
                        (Wire.params
                           ~seed:(1000 + (10 * ri) + r)
                           ~db:(Wire.Named "g") "ans(x,y) :- E(x,y)")))
              in
              (* values legitimately drift as writers land; the answers
                 must stay well-formed and every lookup accounted *)
              if Float.is_nan o.Wire.estimate then Atomic.incr failures
            done)
      in
      let threads =
        List.init n_writers (fun wi -> Thread.create writer wi)
        @ List.init 2 (fun ri -> Thread.create reader ri)
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "no replays, no NaNs" 0 (Atomic.get failures);
      let live = Option.get (Catalog.live_find (Server.catalog server) "g") in
      Alcotest.(check int)
        "every batch bumped the version exactly once"
        (n_writers * batches_each)
        (Live.Db.version live);
      Alcotest.(check int) "acq_live_batches_total is exact"
        (n_writers * batches_each)
        (Metrics.counter_value m_batches - batches0);
      let hits = cache_counter server "result_cache" "hits"
      and misses = cache_counter server "result_cache" "misses" in
      Alcotest.(check int)
        "every seeded COUNT was a result-cache hit or miss" (2 * 6)
        (hits + misses);
      (* the catalog view converged: entry version = live version *)
      let entry = Option.get (Catalog.find (Server.catalog server) "g") in
      Alcotest.(check int) "entry converged to the final version"
        (Live.Db.version live) entry.Catalog.version)

(* ---------- mutation refusals ---------- *)

let test_mutation_refusals () =
  with_live_server (fun _server client ->
      (* inline databases cannot be mutated *)
      (match
         call client
           (Wire.Insert
              {
                db = Wire.Inline "universe 2\nE 0 1\n";
                rel = "E";
                tuples = [ [| 0; 0 |] ];
                batch_id = None;
              })
       with
      | Wire.Refused { error_class; _ } ->
          Alcotest.(check string) "inline refused as parse" "parse"
            error_class
      | _ -> Alcotest.fail "inline mutation must be refused");
      (* no session database selected *)
      (match
         call client
           (Wire.Insert
              {
                db = Wire.Session;
                rel = "E";
                tuples = [ [| 0; 0 |] ];
                batch_id = None;
              })
       with
      | Wire.Refused { error_class; _ } ->
          Alcotest.(check string) "no USE refused as io" "io" error_class
      | _ -> Alcotest.fail "mutation without USE must be refused");
      (* unknown named database *)
      (match
         call client
           (Wire.Delete
              {
                db = Wire.Named "nope";
                rel = "E";
                tuples = [ [| 0; 0 |] ];
                batch_id = None;
              })
       with
      | Wire.Refused { error_class; _ } ->
          Alcotest.(check string) "unknown db refused as io" "io" error_class
      | _ -> Alcotest.fail "unknown database must be refused");
      (* an invalid op inside a batch refuses atomically *)
      ignore (call client (Wire.Use "g"));
      match
        call client
          (Wire.Load_batch
             {
               db = Wire.Session;
               ops =
                 [
                   { Wire.insert = true; rel = "E"; tuple = [| 0; 1 |] };
                   { Wire.insert = true; rel = "E"; tuple = [| 999; 1 |] };
                 ];
               batch_id = None;
             })
      with
      | Wire.Refused { error_class; _ } ->
          Alcotest.(check string) "atomic refusal" "parse" error_class
      | _ -> Alcotest.fail "out-of-universe batch must be refused")

(* ---------- wire round-trips for the new verbs ---------- *)

let test_wire_mutation_roundtrip () =
  let roundtrip req =
    match Wire.request_of_json (Wire.request_to_json req) with
    | Ok req' -> req' = req
    | Error msg -> Alcotest.failf "request did not round-trip: %s" msg
  in
  List.iter
    (fun req ->
      Alcotest.(check bool) "mutation request round-trips" true
        (roundtrip req))
    [
      Wire.Insert
        {
          db = Wire.Named "g";
          rel = "E";
          tuples = [ [| 1; 2 |]; [| 3; 4 |] ];
          batch_id = Some "b";
        };
      Wire.Delete
        { db = Wire.Session; rel = "E"; tuples = [ [| 1; 2 |] ]; batch_id = None };
      Wire.Load_batch
        {
          db = Wire.Named "g";
          ops =
            [
              { Wire.insert = true; rel = "E"; tuple = [| 1; 2 |] };
              { Wire.insert = false; rel = "F"; tuple = [| 7 |] };
            ];
          batch_id = Some "b2";
        };
    ];
  let resp =
    Wire.Mutated
      {
        name = "g";
        db_version = 7;
        fingerprint = "fp";
        inserted = 3;
        deleted = 1;
        replayed = false;
      }
  in
  match Wire.response_of_json (Wire.response_to_json resp) with
  | Ok resp' ->
      Alcotest.(check bool) "mutated response round-trips" true (resp' = resp)
  | Error msg -> Alcotest.failf "response did not round-trip: %s" msg

let tests =
  [
    Alcotest.test_case "relation: main+delta semantics" `Quick
      test_relation_semantics;
    Alcotest.test_case "relation: view = rebuild, merge compacts" `Quick
      test_view_matches_rebuild_and_merge;
    QCheck_alcotest.to_alcotest prop_merge_preserves_view;
    Alcotest.test_case "db: versions, fingerprints, exactly-once" `Quick
      test_db_versioning_and_replay;
    Alcotest.test_case "differential: live vs rebuild, bit-identical" `Slow
      test_live_vs_rebuild_bit_identical;
    Alcotest.test_case "journal: round-trip and reset" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal: torn tail vs corruption" `Quick
      test_journal_torn_tail_and_corruption;
    Alcotest.test_case "journal: truncate keeps post-merge batches" `Quick
      test_journal_truncate;
    Alcotest.test_case "apply: failed journal hook rolls back" `Quick
      test_apply_journal_rollback;
    Alcotest.test_case "record_batch: compacted ids replay" `Quick
      test_record_batch_replays;
    Alcotest.test_case "catalog: stats follow mutation" `Quick
      test_catalog_stats_track_mutation;
    Alcotest.test_case "cache: version-precise invalidation" `Slow
      test_cache_invalidation_is_version_precise;
    Alcotest.test_case "cache: db_key distinctness" `Quick
      test_db_key_distinctness;
    Alcotest.test_case "counters exact under concurrent writers" `Slow
      test_counters_under_concurrent_writers;
    Alcotest.test_case "mutations: typed refusals" `Quick
      test_mutation_refusals;
    Alcotest.test_case "wire: mutation verbs round-trip" `Quick
      test_wire_mutation_roundtrip;
  ]
