open Ac_relational
open Ac_join

let rel tuples = Relation.of_list ~arity:3 tuples

let test_build_and_walk () =
  let r = rel [ [| 0; 1; 2 |]; [| 0; 1; 3 |]; [| 1; 0; 0 |] ] in
  let t = Trie.build r ~positions:[| 0; 1; 2 |] in
  Alcotest.(check int) "weight" 3 (Trie.weight t);
  Alcotest.(check (list int)) "roots (ascending)" [ 0; 1 ]
    (Array.to_list (Trie.keys t));
  (match Trie.child t 0 with
  | None -> Alcotest.fail "expected child 0"
  | Some sub ->
      Alcotest.(check int) "subtree weight" 2 (Trie.weight sub);
      Alcotest.(check (list int)) "level 2" [ 1 ] (Array.to_list (Trie.keys sub)));
  Alcotest.(check bool) "missing child" true (Trie.child t 7 = None)

let test_projection_positions () =
  let r = rel [ [| 0; 1; 2 |]; [| 0; 5; 2 |]; [| 1; 1; 1 |] ] in
  (* index by (position 2, position 0) only *)
  let t = Trie.build r ~positions:[| 2; 0 |] in
  Alcotest.(check (list int)) "first level = position 2 values (ascending)"
    [ 1; 2 ]
    (Array.to_list (Trie.keys t));
  match Trie.child t 2 with
  | None -> Alcotest.fail "expected branch"
  | Some sub ->
      (* both (0,1,2) and (0,5,2) collapse to the same path 2 → 0 *)
      Alcotest.(check int) "collapsed weight" 2 (Trie.weight sub);
      Alcotest.(check (list int)) "second level" [ 0 ] (Array.to_list (Trie.keys sub))

let test_keep_filter () =
  let r = rel [ [| 0; 0; 1 |]; [| 0; 1; 1 |] ] in
  let t = Trie.build ~keep:(fun tup -> tup.(0) = tup.(1)) r ~positions:[| 0; 2 |] in
  Alcotest.(check int) "filtered" 1 (Trie.weight t)

let test_empty_relation () =
  let r = Relation.create ~arity:2 in
  let t = Trie.build r ~positions:[| 0; 1 |] in
  Alcotest.(check int) "no weight" 0 (Trie.weight t);
  Alcotest.(check (list int)) "no keys" [] (Array.to_list (Trie.keys t));
  Alcotest.(check int) "num_keys" 0 (Trie.num_keys t)

let test_mem_key () =
  let r = rel [ [| 3; 1; 2 |] ] in
  let t = Trie.build r ~positions:[| 0 |] in
  Alcotest.(check bool) "mem" true (Trie.mem_key t 3);
  Alcotest.(check bool) "not mem" false (Trie.mem_key t 1)

let tests =
  [
    Alcotest.test_case "build and walk" `Quick test_build_and_walk;
    Alcotest.test_case "projection positions" `Quick test_projection_positions;
    Alcotest.test_case "keep filter" `Quick test_keep_filter;
    Alcotest.test_case "empty relation" `Quick test_empty_relation;
    Alcotest.test_case "mem key" `Quick test_mem_key;
  ]
