module Seeds = Ac_exec.Seeds
module Engine = Ac_exec.Engine
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Api = Approxcount.Api
module Colour_oracle = Approxcount.Colour_oracle
module Ecq = Ac_query.Ecq
module Graph = Ac_workload.Graph

(* ------------------------------------------------------------------ *)
(* Seeds                                                              *)

let test_seeds_deterministic () =
  for i = -3 to 100 do
    Alcotest.(check int) "derive stable" (Seeds.derive ~seed:42 i)
      (Seeds.derive ~seed:42 i)
  done;
  let seen = Hashtbl.create 1024 in
  for i = 0 to 999 do
    let v = Seeds.derive ~seed:42 i in
    Alcotest.(check bool) "derive distinct" false (Hashtbl.mem seen v);
    Hashtbl.add seen v ()
  done

let test_seeds_streams () =
  let a = Seeds.state ~seed:7 ~stream:3 in
  let b = Seeds.state ~seed:7 ~stream:3 in
  for _ = 1 to 50 do
    Alcotest.(check (float 0.0)) "equal streams replay"
      (Random.State.float a 1.0) (Random.State.float b 1.0)
  done;
  let a' = Seeds.state ~seed:7 ~stream:3 in
  let c = Seeds.state ~seed:7 ~stream:4 in
  let differs = ref false in
  for _ = 1 to 50 do
    if Random.State.float a' 1.0 <> Random.State.float c 1.0 then
      differs := true
  done;
  Alcotest.(check bool) "distinct streams differ" true !differs

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)

(* A trial whose result depends on every draw it makes: any chunking
   or stream-assignment mistake shows up as a different float. *)
let trial ~rng ~budget:_ i =
  let acc = ref (float_of_int i) in
  for _ = 1 to 100 do
    acc := !acc +. Random.State.float rng 1.0
  done;
  !acc

let test_engine_jobs_identity () =
  let baseline = Engine.run (Engine.make ~jobs:1 ~seed:99 ()) ~trials:37 trial in
  List.iter
    (fun jobs ->
      let got = Engine.run (Engine.make ~jobs ~seed:99 ()) ~trials:37 trial in
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        baseline got)
    [ 2; 4; 8 ]

let test_engine_exception_propagates () =
  let exec = Engine.make ~jobs:4 ~seed:1 () in
  match
    Engine.run exec ~trials:16 (fun ~rng:_ ~budget:_ i ->
        if i = 11 then failwith "boom";
        i)
  with
  | _ -> Alcotest.fail "expected Failure to propagate across the join"
  | exception Failure m -> Alcotest.(check string) "message intact" "boom" m

let test_engine_budget_trip () =
  let budget = Budget.create ~label:"trip" ~max_ticks:64 ~check_every:1 () in
  let exec = Engine.make ~jobs:4 ~seed:5 () in
  match
    Engine.run exec ~budget ~trials:16 (fun ~rng:_ ~budget i ->
        for _ = 1 to 100 do
          Budget.tick budget
        done;
        i)
  with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception Budget.Budget_exceeded trip ->
      (* the winning failure is a real trip, never the sibling
         cancellation it triggered *)
      Alcotest.(check bool) "work limit fired" true
        (trip.Budget.limit = Budget.Work);
      Alcotest.(check bool) "ticks absorbed into parent" true
        (Budget.ticks budget > 0)

(* ------------------------------------------------------------------ *)
(* Api determinism across jobs                                        *)

let cq = Ecq.parse "ans(x, y) :- E(x, y), E(y, z)"
let diseq = Ecq.parse "ans(x, y) :- E(x, y), x != y"

let graph_db ~seed n p =
  Graph.to_structure (Graph.random_gnp ~rng:(Random.State.make [| seed |]) n p)

let estimates ?eps ?delta ?(require_estimator = false) ~method_ q db =
  List.map
    (fun jobs ->
      match Api.run (Api.request ?eps ?delta ~method_ ~seed:123 ~jobs q db) with
      | Error e -> Alcotest.failf "api error: %s" (Error.message e)
      | Ok r ->
          Alcotest.(check int) "telemetry jobs" jobs r.Api.telemetry.Api.jobs;
          Alcotest.(check int) "telemetry seed" 123 r.Api.telemetry.Api.seed;
          if require_estimator then
            Alcotest.(check bool) "took the estimator path" false r.Api.exact;
          r.Api.estimate)
    [ 1; 2; 4; 8 ]

let check_identical label es =
  match es with
  | [] -> Alcotest.fail "no estimates"
  | e :: rest ->
      List.iter
        (fun e' -> Alcotest.(check (float 0.0)) label e e')
        rest

let test_api_fpras_determinism () =
  let db = graph_db ~seed:11 30 0.2 in
  check_identical "fpras identical across jobs"
    (estimates ~method_:Api.Fpras cq db)

let test_api_fptras_tree_dp_determinism () =
  let db = graph_db ~seed:13 20 0.3 in
  check_identical "fptras/tree-dp identical across jobs"
    (estimates ~eps:0.5 ~delta:0.2 ~require_estimator:true
       ~method_:(Api.Fptras Colour_oracle.Tree_dp)
       diseq db)

let test_api_fptras_generic_determinism () =
  let db = graph_db ~seed:13 20 0.3 in
  check_identical "fptras/generic identical across jobs"
    (estimates ~eps:0.5 ~delta:0.2 ~require_estimator:true
       ~method_:(Api.Fptras Colour_oracle.Generic)
       diseq db)

let test_api_auto_determinism () =
  let db = graph_db ~seed:11 30 0.2 in
  check_identical "auto identical across jobs"
    (estimates ~method_:Api.Auto cq db)

let test_api_sample_determinism () =
  let db = graph_db ~seed:3 12 0.4 in
  let draw jobs =
    match
      Api.sample ~draws:6
        (Api.request ~eps:0.5 ~delta:0.3
           ~method_:(Api.Fptras Colour_oracle.Tree_dp)
           ~seed:77 ~jobs diseq db)
    with
    | Ok s -> s.Api.draws
    | Error e -> Alcotest.failf "sample error: %s" (Error.message e)
  in
  let base = draw 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "draws identical jobs=%d" jobs)
        true
        (draw jobs = base))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Budget trip under jobs = 4: the governed chain degrades, every
   domain comes home, and the response still carries a finite value.  *)

let test_api_budget_degrades_under_jobs () =
  let db = graph_db ~seed:17 40 0.3 in
  let budget =
    Budget.create ~label:"squeeze" ~max_ticks:500 ~check_every:16 ()
  in
  match
    Api.run (Api.request ~method_:Api.Auto ~seed:5 ~jobs:4 ~budget diseq db)
  with
  | Error e ->
      Alcotest.failf "expected degraded Ok, got error: %s" (Error.message e)
  | Ok r ->
      Alcotest.(check bool) "degraded" true r.Api.degraded;
      Alcotest.(check bool) "attempts recorded" true (r.Api.attempts <> []);
      Alcotest.(check bool) "finite estimate" true
        (Float.is_finite r.Api.estimate)

let tests =
  [
    Alcotest.test_case "seeds deterministic + distinct" `Quick
      test_seeds_deterministic;
    Alcotest.test_case "seed streams replay" `Quick test_seeds_streams;
    Alcotest.test_case "engine: jobs identity" `Quick test_engine_jobs_identity;
    Alcotest.test_case "engine: exception propagates" `Quick
      test_engine_exception_propagates;
    Alcotest.test_case "engine: budget trip, no stuck domains" `Quick
      test_engine_budget_trip;
    Alcotest.test_case "api: fpras determinism across jobs" `Quick
      test_api_fpras_determinism;
    Alcotest.test_case "api: fptras tree-dp determinism across jobs" `Quick
      test_api_fptras_tree_dp_determinism;
    Alcotest.test_case "api: fptras generic determinism across jobs" `Quick
      test_api_fptras_generic_determinism;
    Alcotest.test_case "api: auto determinism across jobs" `Quick
      test_api_auto_determinism;
    Alcotest.test_case "api: sample determinism across jobs" `Quick
      test_api_sample_determinism;
    Alcotest.test_case "api: budget trip under jobs=4 degrades" `Quick
      test_api_budget_degrades_under_jobs;
  ]
