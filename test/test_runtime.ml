module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Chaos = Ac_runtime.Chaos
module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Planner = Approxcount.Planner
module Exact = Approxcount.Exact

(* ---------- budgets ---------- *)

let test_budget_work_trip () =
  let b = Budget.create ~max_ticks:1000 ~check_every:16 () in
  let trip =
    match
      for _ = 1 to 10_000 do
        Budget.tick b
      done
    with
    | () -> Alcotest.fail "work ceiling never tripped"
    | exception Budget.Budget_exceeded tr -> tr
  in
  (match trip.Budget.limit with
  | Budget.Work -> ()
  | l -> Alcotest.failf "wrong limit: %s" (Budget.limit_name l));
  Alcotest.(check bool) "tripped near the ceiling" true (trip.Budget.ticks <= 1100);
  Alcotest.(check bool) "tripped is set" true (Budget.tripped b <> None);
  (* sticky: the very next tick raises again, no grace period *)
  (match Budget.tick b with
  | () -> Alcotest.fail "tripped budget ticked through"
  | exception Budget.Budget_exceeded _ -> ());
  (* ... and so does an explicit check *)
  match Budget.check b with
  | () -> Alcotest.fail "tripped budget checked through"
  | exception Budget.Budget_exceeded _ -> ()

let test_budget_wall_trip () =
  let b = Budget.create ~deadline_ms:5.0 ~check_every:1 () in
  match
    for _ = 1 to 1_000 do
      Unix.sleepf 0.001;
      Budget.tick b
    done
  with
  | () -> Alcotest.fail "deadline never tripped"
  | exception Budget.Budget_exceeded tr -> (
      match tr.Budget.limit with
      | Budget.Wall_clock -> ()
      | l -> Alcotest.failf "wrong limit: %s" (Budget.limit_name l))

let test_budget_heap_trip () =
  (* park a few MB on the major heap so a 1 MB watermark must trip on
     the first full check *)
  let ballast = Array.make (4 * 1024 * 1024 / 8) 0 in
  let b = Budget.create ~max_heap_mb:1 ~check_every:1 () in
  match Budget.tick b with
  | () -> Alcotest.fail "heap watermark never tripped"
  | exception Budget.Budget_exceeded tr -> (
      match tr.Budget.limit with
      | Budget.Heap -> ()
      | l -> Alcotest.failf "wrong limit: %s" (Budget.limit_name l));
      ignore (Sys.opaque_identity ballast)

let test_budget_cancel () =
  let b = Budget.create () in
  Alcotest.(check bool) "unarmed but cancellable" false (Budget.limited b);
  Budget.cancel ~note:"user hit ^C" b;
  (match Budget.tick b with
  | () -> Alcotest.fail "cancelled budget ticked through"
  | exception Budget.Budget_exceeded tr ->
      (match tr.Budget.limit with
      | Budget.Cancelled -> ()
      | l -> Alcotest.failf "wrong limit: %s" (Budget.limit_name l));
      Alcotest.(check string) "note survives" "user hit ^C" tr.Budget.note);
  (* the shared unlimited budget must be un-cancellable *)
  match Budget.cancel Budget.none with
  | () -> Alcotest.fail "cancelling Budget.none should raise"
  | exception Invalid_argument _ -> ()

let test_budget_none_is_free () =
  for _ = 1 to 100_000 do
    Budget.tick Budget.none
  done;
  Alcotest.(check bool) "unlimited" false (Budget.limited Budget.none)

let test_budget_slice () =
  (* slicing an unlimited budget is the identity *)
  Alcotest.(check bool) "slice of none is none" true
    (Budget.slice Budget.none == Budget.none);
  let parent = Budget.create ~max_ticks:1000 ~check_every:16 () in
  let child = Budget.slice ~fraction:0.5 ~label:"child" parent in
  (match
     for _ = 1 to 10_000 do
       Budget.tick child
     done
   with
  | () -> Alcotest.fail "child never tripped"
  | exception Budget.Budget_exceeded tr ->
      Alcotest.(check string) "child label" "child" tr.Budget.label;
      Alcotest.(check bool) "child got about half" true (tr.Budget.ticks <= 600));
  (* a tripped child does not poison the parent *)
  Alcotest.(check bool) "parent untripped" true (Budget.tripped parent = None);
  Budget.check parent;
  Budget.absorb parent child;
  Alcotest.(check bool) "absorb reports child work" true
    (Budget.ticks parent >= 500);
  (* slicing a tripped budget yields an immediately-tripping child *)
  let doomed = Budget.create ~max_ticks:0 ~check_every:1 () in
  (try Budget.tick doomed with Budget.Budget_exceeded _ -> ());
  let d = Budget.slice doomed in
  match Budget.tick d with
  | () -> Alcotest.fail "slice of a tripped budget should trip at once"
  | exception Budget.Budget_exceeded _ -> ()

(* ---------- typed errors ---------- *)

let test_error_codes_distinct () =
  let errors =
    [
      Error.Parse { source = "q"; msg = "m" };
      Error.Io { file = "f"; msg = "m" };
      Error.Signature_mismatch "m";
      Error.Budget
        {
          Budget.limit = Budget.Work;
          label = "b";
          elapsed_ms = 0.0;
          ticks = 0;
          note = "n";
        };
      Error.Numeric_overflow "m";
      Error.Fault "m";
      Error.Overloaded "m";
      Error.Internal "m";
    ]
  in
  let codes = List.map Error.exit_code errors in
  let classes = List.map Error.class_name errors in
  Alcotest.(check int) "codes distinct" (List.length errors)
    (List.length (List.sort_uniq compare codes));
  Alcotest.(check int) "classes distinct" (List.length errors)
    (List.length (List.sort_uniq compare classes));
  List.iter
    (fun c -> Alcotest.(check bool) "codes in 10..17" true (c >= 10 && c <= 17))
    codes

let test_error_guard () =
  (match Error.guard (fun () -> 7) with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "guard should pass values through");
  (match Error.guard (fun () -> failwith "boom") with
  | Error (Error.Internal _) -> ()
  | _ -> Alcotest.fail "bare Failure becomes Internal");
  (match Error.guard ~source:"q" (fun () -> failwith "boom") with
  | Error (Error.Parse { source = "q"; _ }) -> ()
  | _ -> Alcotest.fail "Failure with a source becomes Parse");
  let b = Budget.create ~max_ticks:0 ~check_every:1 () in
  match Error.guard (fun () -> Budget.tick b) with
  | Error (Error.Budget _) -> ()
  | _ -> Alcotest.fail "Budget_exceeded becomes Error.Budget"

(* ---------- chaos ---------- *)

let test_chaos_deterministic () =
  let run () =
    let c = Chaos.create ~p_fail:0.2 ~p_delay:0.0 ~seed:99 () in
    let events = ref [] in
    for i = 1 to 50 do
      match Chaos.guard c "site" with
      | () -> ()
      | exception Error.E (Error.Fault _) -> events := i :: !events
    done;
    !events
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "some faults fired" true (a <> []);
  Alcotest.(check (list int)) "same seed, same stream" a b

let test_chaos_plan () =
  let c = Chaos.create ~plan:[ (3, Chaos.Fail "planned") ] ~seed:1 () in
  for i = 1 to 5 do
    match Chaos.guard c "s" with
    | () ->
        if i = 3 then Alcotest.fail "planned fault did not fire at call 3"
    | exception Error.E (Error.Fault _) ->
        if i <> 3 then Alcotest.failf "fault fired at call %d, wanted 3" i
  done;
  Alcotest.(check int) "calls counted" 5 (Chaos.calls c);
  match Chaos.history c with
  | [ (3, "s", _) ] -> ()
  | h -> Alcotest.failf "unexpected history of length %d" (List.length h)

let test_chaos_exhaust () =
  let b = Budget.create () in
  let c = Chaos.create ~plan:[ (1, Chaos.Exhaust) ] ~budget:b ~seed:1 () in
  (match Chaos.guard c "s" with
  | () -> Alcotest.fail "exhaust did not trip"
  | exception Budget.Budget_exceeded tr -> (
      match tr.Budget.limit with
      | Budget.Work -> ()
      | l -> Alcotest.failf "wrong limit: %s" (Budget.limit_name l)));
  Alcotest.(check bool) "budget stays tripped" true (Budget.tripped b <> None)

(* ---------- governed execution ---------- *)

(* small DCQ instance where every rung terminates fast; the planner picks
   the tree-DP FPTRAS, so the chain is
   tree-dp -> exact -> generic-join -> partial *)
let little_query () = Ecq.parse "ans(x) :- E(x, y), E(x, z), y != z"

let little_db () =
  Structure.of_facts ~universe_size:8
    [
      ("E", [| 0; 1 |]); ("E", [| 0; 2 |]); ("E", [| 1; 2 |]);
      ("E", [| 2; 3 |]); ("E", [| 3; 4 |]); ("E", [| 3; 5 |]);
      ("E", [| 5; 6 |]); ("E", [| 6; 7 |]); ("E", [| 6; 0 |]);
    ]

let governed ?chaos ?budget ?(strict = false) () =
  let rng = Random.State.make [| 11 |] in
  Planner.count_governed ~rng ~strict ?chaos ?budget ~eps:0.3 ~delta:0.2
    (little_query ()) (little_db ())

let ok = function
  | Ok g -> g
  | Error e -> Alcotest.failf "governed failed: %s" (Error.message e)

let test_governed_no_faults () =
  let g = ok (governed ()) in
  Alcotest.(check string) "planned rung" "tree-dp" (Planner.rung_name g.Planner.rung);
  Alcotest.(check bool) "not degraded" false g.Planner.degraded;
  Alcotest.(check bool) "guarantee holds" true g.Planner.guarantee

(* every fallback rung fires, driven by positional fault plans *)
let test_governed_every_rung () =
  let exact = Exact.by_join_projection (little_query ()) (little_db ()) in
  let fail_first n =
    List.init n (fun i -> (i + 1, Chaos.Fail "injected"))
  in
  let expect plan_len rung_name_ guarantee_ =
    let chaos = Chaos.create ~plan:(fail_first plan_len) ~seed:5 () in
    let g = ok (governed ~chaos ()) in
    Alcotest.(check string)
      (Printf.sprintf "rung after %d failures" plan_len)
      rung_name_
      (Planner.rung_name g.Planner.rung);
    Alcotest.(check bool) "degraded" (plan_len > 0) g.Planner.degraded;
    Alcotest.(check int) "attempts recorded" plan_len
      (List.length g.Planner.attempts);
    Alcotest.(check bool) "guarantee" guarantee_ g.Planner.guarantee;
    g
  in
  ignore (expect 0 "tree-dp" true);
  ignore (expect 1 "exact" true);
  ignore (expect 2 "generic-join" true);
  (* the partial rung has no budget pressure here, so it completes the
     enumeration and the count is exact *)
  let g = expect 3 "partial" true in
  Alcotest.(check (float 0.0)) "partial completed exactly" (float_of_int exact)
    g.Planner.estimate;
  (* all four rungs down -> the error surfaces *)
  let chaos = Chaos.create ~plan:(fail_first 4) ~seed:5 () in
  match governed ~chaos () with
  | Error (Error.Fault _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e)
  | Ok _ -> Alcotest.fail "chain should be exhausted"

let test_governed_strict () =
  let chaos = Chaos.create ~plan:[ (1, Chaos.Fail "injected") ] ~seed:5 () in
  match governed ~chaos ~strict:true () with
  | Error (Error.Fault _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e)
  | Ok _ -> Alcotest.fail "strict mode must not degrade"

(* a real (not injected) budget trip: a tick ceiling small enough that the
   approximation rungs cannot finish, so the partial sweep answers (the
   whole governed run fits in ~60 ticks since the probe pushdown, so the
   ceiling is tight and checked every tick) *)
let test_governed_real_budget () =
  let budget = Budget.create ~max_ticks:8 ~check_every:1 () in
  let g = ok (governed ~budget ()) in
  Alcotest.(check bool) "degraded" true g.Planner.degraded;
  Alcotest.(check bool) "estimate is sane" true
    (Float.is_finite g.Planner.estimate && g.Planner.estimate >= 0.0);
  if not g.Planner.guarantee then
    Alcotest.(check string) "no guarantee only from the partial rung" "partial"
      (Planner.rung_name g.Planner.rung)

(* cancellation mid-enumeration must leave no corrupted state: a partial
   sweep under a tripped budget, then a fresh full run, must agree with a
   run that was never interrupted *)
let test_cancellation_leaves_clean_state () =
  let q = little_query () and db = little_db () in
  let before = Exact.by_join_projection q db in
  let b = Budget.create ~max_ticks:5 ~check_every:1 () in
  let partial, completed = Exact.partial_count ~budget:b q db in
  Alcotest.(check bool) "interrupted" false completed;
  Alcotest.(check bool) "partial is a lower bound" true
    (partial >= 0 && partial <= before);
  let after = Exact.by_join_projection q db in
  Alcotest.(check int) "state not corrupted" before after;
  let cancelled = Budget.create () in
  Budget.cancel cancelled;
  let _, completed = Exact.partial_count ~budget:cancelled q db in
  Alcotest.(check bool) "cancelled run reports incomplete" false completed;
  Alcotest.(check int) "still not corrupted" before
    (Exact.by_join_projection q db)

let test_count_result_signature () =
  let q = little_query () in
  let bad_db = Structure.of_facts ~universe_size:4 [ ("F", [| 0; 1 |]) ] in
  (match
     Planner.count_result ~rng:(Random.State.make [| 1 |]) ~eps:0.3
       ~delta:0.2 q bad_db
   with
  | Error (Error.Signature_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e)
  | Ok _ -> Alcotest.fail "incompatible signature accepted");
  match
    Planner.count_governed ~rng:(Random.State.make [| 1 |]) ~eps:0.3
      ~delta:0.2 q bad_db
  with
  | Error (Error.Signature_mismatch _) -> ()
  | _ -> Alcotest.fail "governed must reject an incompatible signature too"

let test_count_result_budget_error () =
  let b = Budget.create ~max_ticks:8 ~check_every:1 () in
  match
    Planner.count_result ~rng:(Random.State.make [| 1 |]) ~budget:b
      ~eps:0.3 ~delta:0.2 (little_query ()) (little_db ())
  with
  | Error (Error.Budget tr) -> (
      match tr.Budget.limit with
      | Budget.Work -> ()
      | l -> Alcotest.failf "wrong limit: %s" (Budget.limit_name l))
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e)
  | Ok _ -> Alcotest.fail "8 ticks cannot be enough for the FPTRAS"

let tests =
  [
    Alcotest.test_case "budget: work ceiling trips and sticks" `Quick
      test_budget_work_trip;
    Alcotest.test_case "budget: wall-clock deadline trips" `Quick
      test_budget_wall_trip;
    Alcotest.test_case "budget: heap watermark trips" `Quick
      test_budget_heap_trip;
    Alcotest.test_case "budget: cooperative cancellation" `Quick
      test_budget_cancel;
    Alcotest.test_case "budget: Budget.none never trips" `Quick
      test_budget_none_is_free;
    Alcotest.test_case "budget: slices are isolated, absorbed" `Quick
      test_budget_slice;
    Alcotest.test_case "error: classes and exit codes are distinct" `Quick
      test_error_codes_distinct;
    Alcotest.test_case "error: guard maps exceptions" `Quick test_error_guard;
    Alcotest.test_case "chaos: seeded stream is deterministic" `Quick
      test_chaos_deterministic;
    Alcotest.test_case "chaos: positional plan fires exactly" `Quick
      test_chaos_plan;
    Alcotest.test_case "chaos: exhaust trips the attached budget" `Quick
      test_chaos_exhaust;
    Alcotest.test_case "governed: planned rung, no faults" `Quick
      test_governed_no_faults;
    Alcotest.test_case "governed: every fallback rung fires" `Quick
      test_governed_every_rung;
    Alcotest.test_case "governed: strict fails fast" `Quick
      test_governed_strict;
    Alcotest.test_case "governed: real budget trip degrades" `Quick
      test_governed_real_budget;
    Alcotest.test_case "cancellation leaves no corrupted state" `Quick
      test_cancellation_leaves_clean_state;
    Alcotest.test_case "count_result: signature mismatch is typed" `Quick
      test_count_result_signature;
    Alcotest.test_case "count_result: budget trip is typed" `Quick
      test_count_result_budget_error;
  ]
