module G = Ac_workload.Graph
module Lihom = Approxcount.Lihom
module Hardness = Approxcount.Hardness
module Exact = Approxcount.Exact
module Fptras = Approxcount.Fptras

(* ---------- Corollary 6: locally injective homomorphisms ---------- *)

let test_lihom_concrete () =
  (* path P3 (2 edges) into the triangle: homs = walks of length 2 in K3:
     3·2·2 = 12; local injectivity forbids the two endpoints of the middle
     vertex's neighbourhood colliding: walks with v0 ≠ v2 → 3·2·1 = 6 *)
  let pattern = G.path 3 and host = G.clique 3 in
  Alcotest.(check int) "brute" 6 (Lihom.exact_count_brute ~pattern ~host);
  Alcotest.(check int) "query encoding" 6 (Lihom.exact_count ~pattern ~host)

let test_lihom_star () =
  (* star K1,2 into K4: centre 4 choices, two ordered distinct leaves out
     of the centre image's 3 neighbours: 4·3·2 = 24 *)
  let pattern = G.star 2 and host = G.clique 4 in
  Alcotest.(check int) "star into K4" 24 (Lihom.exact_count ~pattern ~host)

let prop_lihom_encoding_correct =
  QCheck2.Test.make ~count:60 ~name:"LIHom encoding = graph brute force"
    QCheck2.Gen.(
      triple (int_range 2 4) (int_range 2 5) (int_range 0 100000))
    (fun (pn, hn, seed) ->
      let rng = Random.State.make [| seed |] in
      let pattern =
        (* random connected-ish pattern: path plus maybe one extra edge *)
        let base = List.init (pn - 1) (fun i -> (i, i + 1)) in
        let extra =
          if pn > 2 && Random.State.bool rng then [ (0, pn - 1) ] else []
        in
        G.create ~num_vertices:pn (base @ extra)
      in
      let host = G.random_gnp ~rng hn 0.5 in
      Lihom.exact_count ~pattern ~host = Lihom.exact_count_brute ~pattern ~host)

let test_lihom_fptras () =
  let pattern = G.path 3 in
  let rng = Random.State.make [| 5 |] in
  let host = G.random_gnp ~rng 10 0.4 in
  let expected = Lihom.exact_count ~pattern ~host in
  let r =
    Lihom.approx_count ~rng ~rounds:48 ~eps:0.25 ~delta:0.2 ~pattern host
  in
  (* small instance: exact path of the estimator *)
  Alcotest.(check int) "fptras equals exact" expected (int_of_float r.Fptras.estimate)

(* ---------- Observation 10: Hamiltonian paths ---------- *)

let test_hamiltonian_concrete () =
  (* P3: 0-1-2 has exactly 2 Hamiltonian path sequences *)
  Alcotest.(check int) "path graph" 2 (Hardness.exact_paths (G.path 3));
  (* K3: 3! = 6 sequences *)
  Alcotest.(check int) "K3" 6 (Hardness.exact_paths (G.clique 3));
  (* K4: 4! = 24 *)
  Alcotest.(check int) "K4" 24 (Hardness.exact_paths (G.clique 4));
  (* star K1,3 has no Hamiltonian path *)
  Alcotest.(check int) "star" 0 (Hardness.exact_paths (G.star 3));
  (* C5: each rotation/direction/starting point... paths = 5·2 = 10 *)
  Alcotest.(check int) "C5" 10 (Hardness.exact_paths (G.cycle 5))

(* brute-force reference via permutations *)
let hamiltonian_brute g =
  let n = G.num_vertices g in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map (fun rest -> x :: rest)
              (permutations (List.filter (( <> ) x) l)))
          l
  in
  permutations (List.init n Fun.id)
  |> List.filter (fun perm ->
         let rec ok = function
           | a :: b :: rest -> G.has_edge g a b && ok (b :: rest)
           | _ -> true
         in
         ok perm)
  |> List.length

let prop_hamiltonian_dp =
  QCheck2.Test.make ~count:60 ~name:"Held-Karp DP = permutation brute force"
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = G.random_gnp ~rng n 0.5 in
      Hardness.exact_paths g = hamiltonian_brute g)

let prop_hamiltonian_query =
  QCheck2.Test.make ~count:30 ~name:"Observation 10 encoding counts Hamiltonian paths"
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = G.random_gnp ~rng n 0.6 in
      Hardness.exact_via_query g = Hardness.exact_paths g)

let test_hamiltonian_query_structure () =
  let q = Hardness.query 4 in
  Alcotest.(check int) "free vars" 4 (Ac_query.Ecq.num_free q);
  Alcotest.(check int) "all pairs diseq" 6 (List.length (Ac_query.Ecq.delta q));
  (* treewidth of H(φ) is 1: the hypergraph ignores disequalities *)
  let h = Ac_query.Ecq.hypergraph q in
  let tw, _ = Ac_hypergraph.Tree_decomposition.treewidth_exact h in
  Alcotest.(check int) "treewidth 1" 1 tw

let test_hamiltonian_fptras () =
  (* With the Direct engine (no colour-coding) the exact-path estimator is
     deterministic; with the colour engine the cost is exp(‖φ‖²), so keep
     the graph small (n = 4 → |Δ| = 6). *)
  let rng = Random.State.make [| 11 |] in
  let g = G.random_gnp ~rng 5 0.7 in
  let expected = Hardness.exact_paths g in
  let r =
    Hardness.approx_via_query ~rng ~engine:Approxcount.Colour_oracle.Direct
      ~eps:0.3 ~delta:0.2 g
  in
  Alcotest.(check int) "direct engine equals DP" expected
    (int_of_float r.Fptras.estimate);
  let g4 = G.random_gnp ~rng:(Random.State.make [| 13 |]) 4 0.8 in
  let expected4 = Hardness.exact_paths g4 in
  let r4 =
    Hardness.approx_via_query
      ~rng:(Random.State.make [| 14 |])
      ~rounds:24 ~eps:0.3 ~delta:0.2 g4
  in
  Alcotest.(check int) "colour engine equals DP (n=4)" expected4
    (int_of_float r4.Fptras.estimate)

let tests =
  [
    Alcotest.test_case "lihom concrete" `Quick test_lihom_concrete;
    Alcotest.test_case "lihom star" `Quick test_lihom_star;
    Alcotest.test_case "lihom fptras" `Quick test_lihom_fptras;
    Alcotest.test_case "hamiltonian concrete" `Quick test_hamiltonian_concrete;
    Alcotest.test_case "hamiltonian query structure" `Quick test_hamiltonian_query_structure;
    Alcotest.test_case "hamiltonian fptras" `Slow test_hamiltonian_fptras;
    QCheck_alcotest.to_alcotest prop_lihom_encoding_correct;
    QCheck_alcotest.to_alcotest prop_hamiltonian_dp;
    QCheck_alcotest.to_alcotest prop_hamiltonian_query;
  ]
