module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Planner = Approxcount.Planner
module Ucq = Approxcount.Ucq
module Exact = Approxcount.Exact
module Hom = Ac_hom.Hom

(* ---------- planner ---------- *)

let test_plan_classification () =
  let check name text expected =
    let d = Planner.plan (Ecq.parse text) in
    let got =
      match d.Planner.algorithm with
      | Planner.Use_fpras -> `Fpras
      | Planner.Use_fptras Approxcount.Colour_oracle.Tree_dp -> `Tree_dp
      | Planner.Use_fptras Approxcount.Colour_oracle.Generic -> `Generic
      | Planner.Use_fptras Approxcount.Colour_oracle.Direct -> `Direct
      | Planner.Use_exact -> `Exact
    in
    if got <> expected then Alcotest.fail name
  in
  check "CQ -> FPRAS" "ans(x) :- E(x, y), E(y, z)" `Fpras;
  check "DCQ small arity -> tree-dp" "ans(x) :- E(x, y), E(x, z), y != z" `Tree_dp;
  check "ECQ -> tree-dp" "ans(x) :- E(x, y), !E(y, x)" `Tree_dp

let test_plan_wide_dcq_generic () =
  let q = Ac_workload.Query_families.wide_path ~k:3 ~arity:5 () in
  match (Planner.plan q).Planner.algorithm with
  | Planner.Use_fptras Approxcount.Colour_oracle.Generic -> ()
  | _ -> Alcotest.fail "high-arity DCQ should use the generic engine"

let test_planner_count_dispatch () =
  let db =
    Structure.of_facts ~universe_size:6
      [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]); ("E", [| 0; 2 |]); ("E", [| 3; 4 |]) ]
  in
  let rng = Random.State.make [| 3 |] in
  (* CQ through the FPRAS *)
  let cq = Ecq.parse "ans(x) :- E(x, y), E(y, z)" in
  let v, d = Planner.count ~rng ~eps:0.3 ~delta:0.2 cq db in
  Alcotest.(check bool) "fpras path" true (d.Planner.algorithm = Planner.Use_fpras);
  let exact = float_of_int (Exact.by_join_projection cq db) in
  Alcotest.(check bool) "fpras close" true (Float.abs (v -. exact) /. exact < 0.4);
  (* DCQ through the FPTRAS: small instance, exact path *)
  let dcq = Ecq.parse "ans(x) :- E(x, y), E(x, z), y != z" in
  let v2, _ = Planner.count ~rng ~eps:0.3 ~delta:0.2 dcq db in
  Alcotest.(check (float 1e-9)) "fptras exact-path value"
    (float_of_int (Exact.by_join_projection dcq db))
    v2

(* ---------- UCQ ---------- *)

let test_ucq_make_and_parse () =
  let u = Ucq.parse "ans(x) :- E(x, y); ans(x) :- R(x, y)" in
  Alcotest.(check int) "two disjuncts" 2 (List.length (Ucq.disjuncts u));
  Alcotest.(check int) "arity" 1 (Ucq.num_free u);
  (match Ucq.make [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty union");
  match Ucq.make [ Ecq.parse "ans(x) :- E(x, y)"; Ecq.parse "ans(x, y) :- E(x, y)" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch"

let test_ucq_counts () =
  let db =
    Structure.of_facts ~universe_size:5
      [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]); ("R", [| 1; 0 |]); ("R", [| 3; 0 |]) ]
  in
  let u = Ucq.parse "ans(x) :- E(x, y); ans(x) :- R(x, y)" in
  Alcotest.(check int) "exact union" 3 (Ucq.exact_count u db);
  Alcotest.(check bool) "member" true (Ucq.is_answer u db [| 3 |]);
  Alcotest.(check bool) "non member" false (Ucq.is_answer u db [| 2 |]);
  let est =
    Ucq.approx_count
      ~rng:(Random.State.make [| 7 |])
      ~kl_rounds:100 ~eps:0.3 ~delta:0.2 u db
  in
  Alcotest.(check bool)
    (Printf.sprintf "approx union (got %.2f)" est)
    true
    (Float.abs (est -. 3.0) < 1.2)

(* ---------- cores ---------- *)

let sym_edges edges n =
  Structure.of_facts ~universe_size:n
    (List.concat_map (fun (a, b) -> [ ("E", [| a; b |]); ("E", [| b; a |]) ]) edges)

let test_core_even_cycle () =
  (* C4 retracts to a single (symmetric) edge *)
  let c4 = sym_edges [ (0, 1); (1, 2); (2, 3); (3, 0) ] 4 in
  let core = Hom.core c4 in
  Alcotest.(check int) "core size" 2 (Structure.universe_size core);
  Alcotest.(check bool) "core is core" true (Hom.is_core core)

let test_core_clique () =
  let k3 = sym_edges [ (0, 1); (1, 2); (0, 2) ] 3 in
  Alcotest.(check bool) "K3 is its own core" true (Hom.is_core k3);
  Alcotest.(check int) "untouched" 3 (Structure.universe_size (Hom.core k3))

let test_core_odd_cycle_with_pendant () =
  (* C5 plus a pendant vertex: the pendant folds into the cycle *)
  let g = sym_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 5) ] 6 in
  let core = Hom.core g in
  Alcotest.(check int) "pendant folded" 5 (Structure.universe_size core);
  Alcotest.(check bool) "C5 core" true (Hom.is_core core)

let prop_core_hom_equivalent =
  QCheck2.Test.make ~count:50 ~name:"core is hom-equivalent to the original"
    QCheck2.Gen.(pair (int_range 2 4) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ac_workload.Graph.random_gnp ~rng n 0.5 in
      let s = Ac_workload.Graph.to_structure g in
      let c = Hom.core s in
      Hom.is_core c
      && Hom.decide_backtracking { Hom.source = s; target = c }
      && Hom.decide_backtracking { Hom.source = c; target = s })

(* ---------- DLM edge sampler ---------- *)

let test_sample_edge () =
  let space = Ac_dlm.Partite.space [| 6; 6 |] in
  let edges = [ [| 0; 0 |]; [| 1; 2 |]; [| 5; 5 |] ] in
  let oracle parts =
    not
      (List.exists
         (fun e ->
           Array.for_all Fun.id
             (Array.mapi (fun i v -> Array.exists (( = ) v) parts.(i)) e))
         edges)
  in
  let rng = Random.State.make [| 9 |] in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 30 do
    match Ac_dlm.Edge_count.sample_edge ~rng ~epsilon:0.3 ~delta:0.2 space oracle with
    | Some e ->
        Alcotest.(check bool) "sampled a real edge" true
          (List.exists (fun f -> f = e) edges);
        Hashtbl.replace seen (Array.to_list e) ()
    | None -> Alcotest.fail "expected an edge"
  done;
  Alcotest.(check bool) "diversity" true (Hashtbl.length seen >= 2);
  (* empty hypergraph *)
  Alcotest.(check bool) "empty" true
    (Ac_dlm.Edge_count.sample_edge ~rng ~epsilon:0.3 ~delta:0.2 space (fun _ -> true)
    = None)

let test_sample_dlm_query_level () =
  let q = Ac_workload.Query_families.friends () in
  let db =
    Structure.of_facts ~universe_size:4
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]); ("F", [| 3; 1 |]); ("F", [| 3; 2 |]) ]
  in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 5 do
    match
      Approxcount.Sampling.sample_dlm ~rng ~rounds:32 ~eps:0.3 ~delta:0.2 q db
    with
    | None -> Alcotest.fail "expected a sample"
    | Some tau -> Alcotest.(check bool) "valid answer" true (Exact.is_answer q db tau)
  done

let test_restrict () =
  let space = Ac_dlm.Partite.space [| 4; 4 |] in
  let oracle parts =
    (* edge-free unless class 0 keeps value 3 and class 1 keeps value 1 *)
    not (Array.exists (( = ) 3) parts.(0) && Array.exists (( = ) 1) parts.(1))
  in
  let space', oracle' =
    Ac_dlm.Edge_count.restrict space [| [| 2; 3 |]; [| 1 |] |] oracle
  in
  Alcotest.(check int) "restricted sizes" 3 (Ac_dlm.Partite.num_vertices space');
  (* local (1, 0) = global (3, 1): not edge-free *)
  Alcotest.(check bool) "translated" false (oracle' [| [| 1 |]; [| 0 |] |]);
  Alcotest.(check bool) "translated free" true (oracle' [| [| 0 |]; [| 0 |] |])

let tests =
  [
    Alcotest.test_case "plan classification" `Quick test_plan_classification;
    Alcotest.test_case "plan wide DCQ" `Quick test_plan_wide_dcq_generic;
    Alcotest.test_case "planner count dispatch" `Quick test_planner_count_dispatch;
    Alcotest.test_case "ucq make/parse" `Quick test_ucq_make_and_parse;
    Alcotest.test_case "ucq counts" `Quick test_ucq_counts;
    Alcotest.test_case "core of even cycle" `Quick test_core_even_cycle;
    Alcotest.test_case "core of clique" `Quick test_core_clique;
    Alcotest.test_case "core with pendant" `Quick test_core_odd_cycle_with_pendant;
    Alcotest.test_case "dlm edge sampler" `Quick test_sample_edge;
    Alcotest.test_case "query-level dlm sampler" `Quick test_sample_dlm_query_level;
    Alcotest.test_case "restrict" `Quick test_restrict;
    QCheck_alcotest.to_alcotest prop_core_hom_equivalent;
  ]
