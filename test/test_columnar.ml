(* The sealed columnar storage layer: seal semantics, complement views,
   fingerprint stability, the galloping kernels, and the differential
   guarantee that the columnar join path is observationally identical to
   the trie reference oracle (counts and bit-identical estimates). *)

module Relation = Ac_relational.Relation
module Structure = Ac_relational.Structure
module Column = Ac_relational.Column
module Selvec = Ac_kernels.Selvec
module Gallop = Ac_kernels.Gallop
module Generic_join = Ac_join.Generic_join
module Ecq = Ac_query.Ecq
module Fptras = Approxcount.Fptras
module Error = Ac_runtime.Error

let is_sealed_mutation = function
  | Error.E (Error.Sealed_mutation _) -> true
  | _ -> false

(* -- seal semantics ------------------------------------------------ *)

let test_seal_freezes_relation () =
  let r = Relation.create ~arity:2 in
  Relation.add r [| 0; 1 |];
  Relation.add r [| 1; 0 |];
  Alcotest.(check bool) "not sealed yet" false (Relation.is_sealed r);
  Relation.seal r;
  Relation.seal r (* idempotent *);
  Alcotest.(check bool) "sealed" true (Relation.is_sealed r);
  Alcotest.(check int) "cardinality preserved" 2 (Relation.cardinality r);
  Alcotest.(check bool) "mem works sealed" true (Relation.mem r [| 1; 0 |]);
  (match Relation.add r [| 2; 2 |] with
  | exception e when is_sealed_mutation e -> ()
  | exception e -> raise e
  | () -> Alcotest.fail "add after seal must raise Sealed_mutation");
  Alcotest.(check int) "exit code 20" 20
    (Error.exit_code (Error.Sealed_mutation "x"))

let test_seal_freezes_structure () =
  let db = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]) ] in
  let db = Structure.seal db in
  Alcotest.(check bool) "structure sealed" true (Structure.is_sealed db);
  (match Structure.add_fact db "E" [| 1; 2 |] with
  | exception e when is_sealed_mutation e -> ()
  | exception e -> raise e
  | () -> Alcotest.fail "add_fact after seal must raise Sealed_mutation");
  (* copy thaws: the copy accepts writes, the original stays frozen *)
  let thawed = Structure.copy db in
  Structure.add_fact thawed "E" [| 1; 2 |];
  Alcotest.(check int) "thawed copy grew" 2
    (Relation.cardinality (Structure.relation thawed "E"));
  Alcotest.(check int) "original untouched" 1
    (Relation.cardinality (Structure.relation db "E"))

let test_sealed_layout () =
  let r = Relation.of_list ~arity:2 [ [| 2; 0 |]; [| 0; 5 |]; [| 0; 3 |]; [| 2; 0 |] ] in
  Alcotest.(check bool) "builder has no cols" true (Relation.sealed_cols r = None);
  Relation.seal r;
  match Relation.sealed_cols r with
  | None -> Alcotest.fail "sealed relation must expose cols"
  | Some c ->
      Alcotest.(check int) "deduplicated rows" 3 c.Relation.rows;
      let col j i = Column.get c.Relation.columns.(j) i in
      (* lex order: (0,3) (0,5) (2,0) *)
      Alcotest.(check (list int)) "column 0" [ 0; 0; 2 ] [ col 0 0; col 0 1; col 0 2 ];
      Alcotest.(check (list int)) "column 1" [ 3; 5; 0 ] [ col 1 0; col 1 1; col 1 2 ];
      Alcotest.(check (list int)) "dict0"
        [ 0; 2 ]
        (List.init (Column.length c.Relation.dict0) (Column.get c.Relation.dict0));
      Alcotest.(check (list int)) "offsets0"
        [ 0; 2; 3 ]
        (List.init (Column.length c.Relation.offsets0) (Column.get c.Relation.offsets0))

(* -- complement views ---------------------------------------------- *)

let test_complement_view () =
  let base = Relation.of_list ~arity:2 [ [| 0; 1 |] ] in
  let v = Relation.complement_view ~universe_size:3 base in
  Alcotest.(check bool) "is complement" true (Relation.is_complement v);
  Alcotest.(check int) "cardinality 3^2 - 1" 8 (Relation.cardinality v);
  Alcotest.(check bool) "base tuple excluded" false (Relation.mem v [| 0; 1 |]);
  Alcotest.(check bool) "other tuple included" true (Relation.mem v [| 1; 0 |]);
  (* lazy iteration agrees with materialization, in canonical order *)
  let seen = ref [] in
  Relation.iter (fun t -> seen := Array.copy t :: !seen) v;
  let lazy_tuples = List.rev !seen in
  let materialized = Relation.to_list (Relation.complement ~universe_size:3 base) in
  Alcotest.(check (list (array int))) "view = materialized" materialized lazy_tuples;
  Alcotest.(check bool) "ascending" true (List.sort compare lazy_tuples = lazy_tuples);
  (* complement of complement shares the base *)
  match Relation.complement_base (Relation.complement_view ~universe_size:3 v) with
  | Some _ -> Alcotest.fail "double complement must not nest views"
  | None ->
      Alcotest.(check bool) "double complement = base" true
        (Relation.equal base (Relation.complement_view ~universe_size:3 v))

let test_complement_overflow () =
  let base = Relation.of_list ~arity:4 [ [| 0; 1; 2; 3 |] ] in
  Alcotest.(check int) "exit code 21" 21
    (Error.exit_code (Error.Complement_overflow { arity = 4; universe = 100; cap = 1 }));
  match Relation.complement ~universe_size:100 base with
  | exception Error.E (Error.Complement_overflow o) ->
      Alcotest.(check int) "default cap" Relation.default_complement_cap o.cap;
      Alcotest.(check int) "arity reported" 4 o.arity
  | _ -> Alcotest.fail "expected Complement_overflow"

(* -- fingerprint stability (builder vs sealed) --------------------- *)

let test_fingerprint_stability () =
  let facts =
    [ ("E", [| 2; 0 |]); ("E", [| 0; 1 |]); ("E", [| 1; 2 |]); ("P", [| 1 |]) ]
  in
  let builder = Structure.of_facts ~universe_size:4 facts in
  let fp_builder = Structure.fingerprint builder in
  let sealed = Structure.seal (Structure.of_facts ~universe_size:4 facts) in
  Alcotest.(check string) "builder = sealed" fp_builder (Structure.fingerprint sealed);
  (* insertion order never leaks into the fingerprint *)
  let reordered = Structure.of_facts ~universe_size:4 (List.rev facts) in
  Alcotest.(check string) "order independent" fp_builder
    (Structure.fingerprint reordered);
  (* sealing in place doesn't change it either *)
  let fp_after = Structure.fingerprint (Structure.seal builder) in
  Alcotest.(check string) "seal in place" fp_builder fp_after

(* -- galloping kernels --------------------------------------------- *)

let test_gallop_search () =
  let col = Column.of_array [| 1; 3; 3; 3; 7; 9 |] in
  let hi = Column.length col in
  Alcotest.(check int) "lower absent" 1 (Gallop.lower col ~lo:0 ~hi 2);
  Alcotest.(check int) "lower run start" 1 (Gallop.lower col ~lo:0 ~hi 3);
  Alcotest.(check int) "upper run end" 4 (Gallop.upper col ~lo:0 ~hi 3);
  Alcotest.(check (pair int int)) "equal_range present" (1, 4)
    (Gallop.equal_range col ~lo:0 ~hi 3);
  Alcotest.(check (pair int int)) "equal_range absent" (4, 4)
    (Gallop.equal_range col ~lo:0 ~hi 5);
  Alcotest.(check int) "beyond end" hi (Gallop.lower col ~lo:0 ~hi 100);
  Alcotest.(check int) "restricted lo" 4 (Gallop.lower col ~lo:4 ~hi 3)

let test_intersect_arrays () =
  let check name want arrays =
    Alcotest.(check (array int)) name want (Gallop.intersect_arrays arrays)
  in
  check "two runs" [| 2; 5 |] [| [| 1; 2; 5; 9 |]; [| 2; 3; 5 |] |];
  check "duplicates collapse" [| 2 |] [| [| 2; 2; 2 |]; [| 1; 2; 2 |] |];
  check "three runs" [| 4 |] [| [| 1; 4 |]; [| 4; 5 |]; [| 0; 4; 9 |] |];
  check "disjoint" [||] [| [| 1; 3 |]; [| 2; 4 |] |];
  check "one empty" [||] [| [| 1; 2 |]; [||]; [| 1 |] |];
  check "no runs" [||] [||];
  check "singletons" [| 7 |] [| [| 7 |]; [| 7 |]; [| 7 |] |];
  check "single run dedups" [| 1; 2 |] [| [| 1; 1; 2 |] |]

let test_intersect_bounds () =
  (* the scratch ranges handed to the callback bracket exactly the
     occurrences of the value in each run *)
  let a = Column.of_array [| 1; 2; 2; 4 |] and b = Column.of_array [| 2; 2; 2; 4; 4 |] in
  let runs =
    [|
      { Gallop.col = a; lo = 0; hi = Column.length a };
      { Gallop.col = b; lo = 0; hi = Column.length b };
    |]
  in
  let got = ref [] in
  Gallop.intersect runs (fun v bounds ->
      got := (v, Array.to_list bounds) :: !got);
  Alcotest.(check (list (pair int (list int))))
    "values and ranges"
    [ (2, [ 1; 3; 0; 3 ]); (4, [ 3; 4; 3; 5 ]) ]
    (List.rev !got)

let test_selvec () =
  let s = Selvec.create ~capacity:1 () in
  for i = 0 to 99 do
    Selvec.push s (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Selvec.length s);
  Alcotest.(check int) "get" 84 (Selvec.get s 42);
  Alcotest.(check (array int)) "to_array" (Array.init 100 (fun i -> i * 2))
    (Selvec.to_array s);
  Selvec.clear s;
  Alcotest.(check int) "cleared" 0 (Selvec.length s);
  Alcotest.(check bool) "get out of bounds" true
    (match Selvec.get s 0 with exception Invalid_argument _ -> true | _ -> false)

(* -- differential: columnar vs trie -------------------------------- *)

(* Random atom sets in the style of test_join, including a complement
   view so the filter-atom path is exercised on both backends. *)
let gen_atoms =
  QCheck2.Gen.(
    let num_vars = 3 and universe = 3 in
    list_size (int_range 1 4)
      (pair
         (list_size (int_range 1 2) (int_range 0 (num_vars - 1)))
         (list_size (int_range 0 8)
            (list_size (int_range 1 2) (int_range 0 (universe - 1)))))
    >>= fun raw_atoms ->
    bool >>= fun with_neg ->
    list_size (int_range 0 4)
      (pair (int_range 0 (universe - 1)) (int_range 0 (universe - 1)))
    >>= fun neg_tuples ->
    let atoms =
      List.filter_map
        (fun (scope, tuples) ->
          match scope with
          | [] -> None
          | _ ->
              let arity = List.length scope in
              let rel = Relation.create ~arity in
              List.iter
                (fun t ->
                  if List.length t = arity then Relation.add rel (Array.of_list t))
                tuples;
              Some (Generic_join.atom (Array.of_list scope) rel))
        raw_atoms
    in
    let atoms =
      if with_neg then
        let base = Relation.create ~arity:2 in
        List.iter (fun (a, b) -> Relation.add base [| a; b |]) neg_tuples;
        Generic_join.atom [| 0; 1 |]
          (Relation.complement_view ~universe_size:universe base)
        :: atoms
      else atoms
    in
    return atoms)

let prop_counts_agree =
  QCheck2.Test.make ~count:300 ~name:"columnar count = trie count" gen_atoms
    (fun atoms ->
      let count impl =
        Generic_join.count ~num_vars:3 ~universe_size:3 ~impl atoms
      in
      (* columnar first: it seals the relations; the trie must read the
         sealed phase identically *)
      let columnar = count Generic_join.Columnar in
      columnar = count Generic_join.Trie)

let prop_solutions_identical_sequence =
  QCheck2.Test.make ~count:150
    ~name:"columnar and trie enumerate the same sequence" gen_atoms (fun atoms ->
      let sols impl =
        Generic_join.solutions ~num_vars:3 ~universe_size:3 ~impl atoms
      in
      (* not just equal as sets: identical order, which is what makes
         bounded-enumeration estimates bit-identical downstream *)
      sols Generic_join.Columnar = sols Generic_join.Trie)

let with_impl impl f =
  let saved = Generic_join.default_impl () in
  Generic_join.set_default_impl impl;
  Fun.protect ~finally:(fun () -> Generic_join.set_default_impl saved) f

let prop_estimates_bit_identical =
  QCheck2.Test.make ~count:15
    ~name:"estimates bit-identical across impls and jobs"
    (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true)
    (fun (q, db) ->
      let estimate impl jobs =
        with_impl impl (fun () ->
            let exec = Ac_exec.Engine.make ~jobs ~seed:11 () in
            let r =
              Fptras.approx_count ~exec
                ~rng:(Random.State.make [| 3 |])
                ~engine:Approxcount.Colour_oracle.Generic ~rounds:60 ~eps:0.5
                ~delta:0.3 q db
            in
            Int64.bits_of_float r.Fptras.estimate)
      in
      let baseline = estimate Generic_join.Columnar 1 in
      baseline = estimate Generic_join.Columnar 4
      && baseline = estimate Generic_join.Trie 1
      && baseline = estimate Generic_join.Trie 4)

let tests =
  [
    Alcotest.test_case "seal freezes relation" `Quick test_seal_freezes_relation;
    Alcotest.test_case "seal freezes structure" `Quick test_seal_freezes_structure;
    Alcotest.test_case "sealed layout" `Quick test_sealed_layout;
    Alcotest.test_case "complement view" `Quick test_complement_view;
    Alcotest.test_case "complement overflow" `Quick test_complement_overflow;
    Alcotest.test_case "fingerprint stability" `Quick test_fingerprint_stability;
    Alcotest.test_case "gallop search" `Quick test_gallop_search;
    Alcotest.test_case "intersect arrays" `Quick test_intersect_arrays;
    Alcotest.test_case "intersect bounds" `Quick test_intersect_bounds;
    Alcotest.test_case "selection vector" `Quick test_selvec;
    QCheck_alcotest.to_alcotest prop_counts_agree;
    QCheck_alcotest.to_alcotest prop_solutions_identical_sequence;
    QCheck_alcotest.to_alcotest prop_estimates_bit_identical;
  ]
