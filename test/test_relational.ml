open Ac_relational

let test_tuple () =
  Alcotest.(check bool) "equal" true (Tuple.equal [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "not equal" false (Tuple.equal [| 1; 2 |] [| 2; 1 |]);
  Alcotest.(check bool) "length differs" false (Tuple.equal [| 1 |] [| 1; 1 |]);
  Alcotest.(check int) "compare equal" 0 (Tuple.compare [| 3 |] [| 3 |]);
  Alcotest.(check bool) "hash consistent" true
    (Tuple.hash [| 1; 2; 3 |] = Tuple.hash [| 1; 2; 3 |]);
  Alcotest.(check string) "to_string" "(1,2)" (Tuple.to_string [| 1; 2 |])

let test_relation_basics () =
  let r = Relation.create ~arity:2 in
  Relation.add r [| 0; 1 |];
  Relation.add r [| 0; 1 |];
  Relation.add r [| 1; 0 |];
  Alcotest.(check int) "cardinality dedupes" 2 (Relation.cardinality r);
  Alcotest.(check bool) "mem" true (Relation.mem r [| 0; 1 |]);
  Alcotest.(check bool) "not mem" false (Relation.mem r [| 1; 1 |]);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.add: tuple length does not match arity")
    (fun () -> Relation.add r [| 1 |])

let test_complement () =
  let r = Relation.of_list ~arity:2 [ [| 0; 0 |]; [| 1; 1 |] ] in
  let c = Relation.complement ~universe_size:2 r in
  Alcotest.(check int) "complement size" 2 (Relation.cardinality c);
  Alcotest.(check bool) "complement mem" true (Relation.mem c [| 0; 1 |]);
  Alcotest.(check bool) "complement not mem" false (Relation.mem c [| 0; 0 |]);
  (* complement of complement = original *)
  Alcotest.(check bool) "involution" true
    (Relation.equal r (Relation.complement ~universe_size:2 c))

let test_universal () =
  let u = Relation.universal ~universe_size:3 ~arity:2 in
  Alcotest.(check int) "9 tuples" 9 (Relation.cardinality u);
  let u1 = Relation.universal ~universe_size:4 ~arity:1 in
  Alcotest.(check int) "4 tuples" 4 (Relation.cardinality u1)

let test_structure () =
  let s = Structure.create ~universe_size:5 in
  Structure.add_fact s "E" [| 0; 1 |];
  Structure.add_fact s "E" [| 1; 2 |];
  Structure.add_fact s "P" [| 3 |];
  Alcotest.(check (list string)) "symbols" [ "E"; "P" ] (Structure.symbols s);
  Alcotest.(check int) "arity E" 2 (Structure.arity_of s "E");
  Alcotest.(check int) "max arity" 2 (Structure.max_arity s);
  Alcotest.(check bool) "holds" true (Structure.holds s "E" [| 0; 1 |]);
  Alcotest.(check bool) "not holds" false (Structure.holds s "E" [| 1; 0 |]);
  Alcotest.(check bool) "unknown symbol" false (Structure.holds s "Q" [| 0 |]);
  (* ‖A‖ = |sig| + |U| + Σ |R| · ar(R) = 2 + 5 + (2·2 + 1·1) = 12 *)
  Alcotest.(check int) "size" 12 (Structure.size s);
  Alcotest.check_raises "universe bound"
    (Invalid_argument "Structure.add_fact: element 7 outside universe of size 5")
    (fun () -> Structure.add_fact s "E" [| 7; 0 |])

let test_structure_equal_copy () =
  let s = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]) ] in
  let c = Structure.copy s in
  Alcotest.(check bool) "copy equal" true (Structure.equal s c);
  Structure.add_fact c "E" [| 2; 0 |];
  Alcotest.(check bool) "copy detached" false (Structure.equal s c)

let test_singletons () =
  let s = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]) ] in
  let s' = Structure.with_singletons s in
  Alcotest.(check bool) "singleton holds" true
    (Structure.holds s' (Structure.singleton_symbol 2) [| 2 |]);
  Alcotest.(check bool) "singleton excludes" false
    (Structure.holds s' (Structure.singleton_symbol 2) [| 1 |]);
  Alcotest.(check int) "original untouched" 1 (List.length (Structure.symbols s))

let prop_complement_partition =
  QCheck2.Test.make ~count:100 ~name:"R and ~R partition U^ar"
    QCheck2.Gen.(
      pair (int_range 1 4)
        (list_size (int_range 0 10) (pair (int_range 0 3) (int_range 0 3))))
    (fun (u, pairs) ->
      let r = Relation.create ~arity:2 in
      List.iter
        (fun (a, b) -> if a < u && b < u then Relation.add r [| a; b |])
        pairs;
      let c = Relation.complement ~universe_size:u r in
      Relation.cardinality r + Relation.cardinality c = u * u
      && Relation.fold (fun t acc -> acc && not (Relation.mem c t)) r true)

let test_fingerprint () =
  let fp = Structure.fingerprint in
  let a =
    Structure.of_facts ~universe_size:4
      [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]); ("P", [| 3 |]) ]
  in
  let b =
    (* same facts, registered in a different order *)
    Structure.of_facts ~universe_size:4
      [ ("P", [| 3 |]); ("E", [| 1; 2 |]); ("E", [| 0; 1 |]) ]
  in
  Alcotest.(check string) "insertion-order insensitive" (fp a) (fp b);
  Alcotest.(check int) "hex digest length" 32 (String.length (fp a));
  let c =
    Structure.of_facts ~universe_size:5
      [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]); ("P", [| 3 |]) ]
  in
  Alcotest.(check bool) "universe size matters" false (fp a = fp c);
  let d =
    Structure.of_facts ~universe_size:4
      [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]); ("P", [| 3 |]); ("P", [| 0 |]) ]
  in
  Alcotest.(check bool) "extra fact matters" false (fp a = fp d);
  Alcotest.(check string) "copy preserves it" (fp a) (fp (Structure.copy a))

let test_fingerprint_empty_relation () =
  (* a declared-but-empty relation is part of the signature, so it must
     be part of the identity too *)
  let with_decl = Structure_io.of_string "universe 2\nrelation E 2\n" in
  let without = Structure_io.of_string "universe 2\n" in
  Alcotest.(check bool) "declared empty relation matters" false
    (Structure.fingerprint with_decl = Structure.fingerprint without)

let prop_fingerprint_equal_structures =
  QCheck2.Test.make ~count:60 ~name:"equal structures fingerprint alike"
    Gen.db (fun db ->
      Structure.fingerprint db = Structure.fingerprint (Structure.copy db))

let tests =
  [
    Alcotest.test_case "tuple" `Quick test_tuple;
    Alcotest.test_case "relation basics" `Quick test_relation_basics;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "universal" `Quick test_universal;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "structure equal/copy" `Quick test_structure_equal_copy;
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "fingerprint" `Quick test_fingerprint;
    Alcotest.test_case "fingerprint: empty relation" `Quick
      test_fingerprint_empty_relation;
    QCheck_alcotest.to_alcotest prop_complement_partition;
    QCheck_alcotest.to_alcotest prop_fingerprint_equal_structures;
  ]
